//! Experiment E10 — the best-of-both-worlds advantage (Section 1):
//!
//! * **Resilience** — in a synchronous network the BoBW protocol tolerates
//!   `t_s < n/3` corruptions while any single protocol that must also survive
//!   asynchrony with the same threshold is capped at `t < n/4` (the paper's
//!   `n = 8` example: 2 vs 1).
//! * **Responsiveness** — in an asynchronous network whose actual delay `δ`
//!   is much smaller than the pessimistic bound `Δ`, the asynchronous
//!   execution path finishes in time proportional to `δ`, not `Δ`.

use bench::{run_cireval, run_cireval_fast_async, JsonReport};
use mpc_core::thresholds::resilience_table;
use mpc_core::Circuit;
use mpc_net::NetworkKind;

fn main() {
    println!(
        "# E10a — synchronous-network corruption tolerance: BoBW vs single-threshold baseline"
    );
    println!(
        "{:>4} {:>22} {:>22}",
        "n", "baseline (t_s = t_a)", "BoBW t_s"
    );
    for row in resilience_table(4, 13) {
        println!("{:>4} {:>22} {:>22}", row.n, row.ampc_ta, row.bobw.0);
    }
    println!("(n = 8 reproduces the paper's motivating example: 1 vs 2)");
    println!();

    println!(
        "# E10b — responsiveness: same circuit, Δ-bounded synchronous vs fast asynchronous (δ ≪ Δ)"
    );
    let n = 4;
    let circuit = Circuit::product_of_inputs(n);
    let (m_sync, out_sync) = run_cireval(n, &circuit, NetworkKind::Synchronous, &[], 11);
    let (m_fast, out_fast) = run_cireval_fast_async(n, &circuit, 2, 11);
    let mut report = JsonReport::new("e10_bobw_advantage");
    report.push_labeled("sync", n, 1, &m_sync);
    report.push_labeled("fast_async", n, 1, &m_fast);
    report.finish();
    println!(
        "synchronous  (delay = Δ = 10): simulated completion time {}",
        m_sync.completed_at
    );
    println!(
        "asynchronous (delay <= δ = 2): simulated completion time {}",
        m_fast.completed_at
    );
    println!(
        "outputs agree: {} — speed-up from responsiveness alone: {:.2}x",
        out_sync == out_fast,
        m_sync.completed_at as f64 / m_fast.completed_at as f64
    );
    println!(
        "(the asynchronous path is still bounded below by the protocol's fixed Δ-based time-outs"
    );
    println!(
        " for the broadcast phases, but every message-driven phase completes at network speed)"
    );
}
