//! Experiment E11 — simulator scaling: time-sliced multi-core party
//! execution.
//!
//! Sweeps committee size `n` × simulator worker threads over (a) an e1-style
//! full circuit evaluation and (b) one `Π_BA` instance, and reports the
//! wall-clock effect of the deterministic parallel engine. The protocol
//! executions themselves are bit-identical across thread counts (that is
//! asserted by `tests/determinism.rs`); what this experiment measures is
//! purely the harness speedup, i.e. how far the simulator is from "as fast
//! as the hardware allows" on the current machine.
//!
//! `BENCH_SMOKE=1` shrinks the sweep for CI; `BENCH_LARGE=1` extends it with
//! the committee sizes (up to `n = 128` for Π_BA) that only make sense on
//! serious multi-core hardware — the paper's protocols are `O(n⁴⁺)` in
//! simulator events, so the largest full-circuit committees take minutes per
//! run even parallelised. Note the speedup column is only meaningful on
//! multi-core hardware: with a single available core the `threads = 4`
//! configuration measures pure engine overhead (~1.4× on the reference
//! container).

use bench::{expected_clear, run_ba_threads, run_cireval_threads, JsonReport};
use mpc_core::Circuit;
use mpc_net::NetworkKind;

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let large = std::env::var_os("BENCH_LARGE").is_some();
    let mut report = JsonReport::new("e11_scale");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // Committee sizes, measured on the 1-core reference container
    // (sequential): cireval ≈ 0.1 s / 1 s / 4 s / 130 s at n = 4/6/8/10;
    // BA ≈ 0.05 s / 0.8 s / 22 s at n = 16/32/64.
    let cireval_ns: &[usize] = if smoke {
        &[4]
    } else if large {
        &[4, 6, 8, 10]
    } else {
        &[4, 6, 8]
    };
    let ba_ns: &[usize] = if smoke {
        &[8, 16]
    } else if large {
        &[16, 32, 64, 128]
    } else {
        &[16, 32, 64]
    };
    let threads: &[usize] = &[1, 4];

    println!("# E11 — deterministic parallel simulator scaling ({cores} core(s) available)");
    println!();
    println!("## E11a — e1-style circuit evaluation (synchronous, product circuit)");
    println!(
        "{:>5} {:>8} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "n", "threads", "bits", "events", "maxqueue", "wall-ms", "speedup"
    );
    for &n in cireval_ns {
        let circuit = Circuit::product_of_inputs(n);
        let expected = expected_clear(n, &circuit);
        let mut base_ms = 0.0f64;
        for &t in threads {
            let (m, out) =
                run_cireval_threads(n, &circuit, NetworkKind::Synchronous, &[], 11, Some(t));
            assert_eq!(out, expected, "parallel run must compute the same output");
            if t == 1 {
                base_ms = m.wall_ms;
            }
            let speedup = if m.wall_ms > 0.0 {
                base_ms / m.wall_ms
            } else {
                1.0
            };
            println!(
                "{:>5} {:>8} {:>12} {:>12} {:>12} {:>10.1} {:>8.2}x",
                n, t, m.honest_bits, m.events_processed, m.max_queue_depth, m.wall_ms, speedup
            );
            report.push_labeled(&format!("cireval_t{t}"), n, 1, &m);
        }
    }

    println!();
    println!("## E11b — Π_BA, unanimous inputs (synchronous)");
    println!(
        "{:>5} {:>8} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "n", "threads", "bits", "events", "maxqueue", "wall-ms", "speedup"
    );
    for &n in ba_ns {
        let mut base_ms = 0.0f64;
        for &t in threads {
            let m = run_ba_threads(n, true, NetworkKind::Synchronous, Some(t));
            if t == 1 {
                base_ms = m.wall_ms;
            }
            let speedup = if m.wall_ms > 0.0 {
                base_ms / m.wall_ms
            } else {
                1.0
            };
            println!(
                "{:>5} {:>8} {:>12} {:>12} {:>12} {:>10.1} {:>8.2}x",
                n, t, m.honest_bits, m.events_processed, m.max_queue_depth, m.wall_ms, speedup
            );
            report.push_labeled(&format!("ba_t{t}"), n, 1, &m);
        }
    }
    println!();
    println!(
        "(transcripts, metrics and bit totals are asserted bit-identical across thread \
         counts by tests/determinism.rs; wall-clock scaling requires ≥ `threads` cores)"
    );
    report.finish();
}
