//! Experiment E12 — communication-layer batching: per-destination wire
//! frames and layer-batched Beaver openings.
//!
//! Sweeps the four corners of the batching design space — frame coalescing
//! on/off × per-layer vs per-gate circuit openings — over full `Π_CirEval`
//! runs and reports simulator events, dispatched frames, honest bits,
//! simulated completion time and wall-clock time. Honest-bit accounting is
//! *per contained message*, so in a synchronous network frames on/off are
//! bit-identical at a fixed opening mode; layer batching additionally
//! shaves the per-opening `Open` message headers (`D_M` broadcasts of `2·L`
//! values instead of `c_M` broadcasts of 2). What batching chiefly buys is
//! the event count (one frame event per `(sender, destination)` pair per
//! activation instead of one per message) and the reconstruction count
//! (one OEC basis per layer).
//!
//! E12a reproduces the PR 4 full-MPC golden configuration (n = 4, seed 77)
//! so the headline event-count reduction is measured against the documented
//! 62 808-event baseline. E12b sweeps product circuits up to n = 7 — the
//! acceptance series for the "e9 cireval wall-clock at n = 7" claim.
//!
//! `BENCH_SMOKE=1` shrinks the sweep for CI; outputs are checked against the
//! cleartext evaluation in every mode.

use bench::{expected_clear, run_cireval_batching, JsonReport, Measurement};
use mpc_core::Circuit;
use mpc_net::NetworkKind;

/// The four batching modes: label × frames × per-gate openings. The first
/// entry is the pre-batching baseline, the last is the default engine.
const MODES: [(&str, bool, bool); 4] = [
    ("gate_noframes", false, true),
    ("layer_noframes", false, false),
    ("gate_frames", true, true),
    ("layer_frames", true, false),
];

fn print_row(label: &str, n: usize, m: &Measurement, base: &Measurement) {
    let event_x = base.events_processed as f64 / m.events_processed as f64;
    let wall_x = if m.wall_ms > 0.0 {
        base.wall_ms / m.wall_ms
    } else {
        1.0
    };
    println!(
        "{:>5} {:>15} {:>10} {:>9} {:>12} {:>10} {:>9.2}x {:>9.2}x",
        n,
        label,
        m.events_processed,
        m.frames_sent,
        m.honest_bits,
        format!("{:.1}", m.wall_ms),
        event_x,
        wall_x,
    );
}

fn sweep(
    report: &mut JsonReport,
    series: &str,
    n: usize,
    circuit: &Circuit,
    seed: u64,
) -> Vec<Measurement> {
    let expected = expected_clear(n, circuit);
    let only = std::env::var("E12_ONLY").ok();
    let mut measurements = Vec::new();
    for (label, frames, per_gate) in MODES {
        if only.as_deref().is_some_and(|o| o != label) {
            continue;
        }
        let (m, out) =
            run_cireval_batching(n, circuit, NetworkKind::Synchronous, seed, frames, per_gate);
        assert_eq!(
            out, expected,
            "{series}/{label} n={n} output must be correct"
        );
        report.push_labeled(&format!("{series}_{label}"), n, circuit.mult_count(), &m);
        print_row(label, n, &m, measurements.first().unwrap_or(&m));
        measurements.push(m);
    }
    measurements
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let mut report = JsonReport::new("e12_batching");
    println!("# E12 — communication-layer batching (synchronous, full Π_CirEval)");
    println!();
    println!(
        "{:>5} {:>15} {:>10} {:>9} {:>12} {:>10} {:>10} {:>10}",
        "n", "mode", "events", "frames", "bits", "wall-ms", "events-x", "wall-x"
    );

    // Optional single-point focus for ad-hoc measurement runs
    // (`E12_N=<n>` skips the golden sweep and the other committee sizes).
    let only_n: Option<usize> = std::env::var("E12_N").ok().and_then(|v| v.parse().ok());

    // E12a — the PR 4 golden configuration: n = 4, seed 77, the
    // mul+add+add circuit whose frames-off/per-gate run processes exactly
    // 62 808 events (tests/determinism.rs).
    let mut golden = Circuit::new(4);
    let prod = golden.mul(golden.input(0), golden.input(1));
    let s = golden.add(golden.input(2), golden.input(3));
    let out = golden.add(prod, s);
    golden.set_output(out);
    let ms = if only_n.is_none() {
        sweep(&mut report, "golden", 4, &golden, 77)
    } else {
        Vec::new()
    };
    if let [base, .., batched] = &ms[..] {
        let reduction = base.events_processed as f64 / batched.events_processed as f64;
        println!(
            "  (golden n=4: {} → {} events, {reduction:.2}x reduction)",
            base.events_processed, batched.events_processed
        );
    }
    println!();

    // E12b — product circuits: the e9-style cireval series, up to the n = 7
    // wall-clock acceptance point (smoke stops at n = 4).
    let ns: &[usize] = if smoke { &[4] } else { &[4, 5, 7] };
    for &n in ns {
        if only_n.is_some_and(|o| o != n) {
            continue;
        }
        let circuit = Circuit::product_of_inputs(n);
        let ms = sweep(&mut report, "product", n, &circuit, 11);
        if let [base, .., batched] = &ms[..] {
            let wall_gain = (1.0 - batched.wall_ms / base.wall_ms) * 100.0;
            println!(
                "  (product n={n}: {:.1} ms → {:.1} ms, {wall_gain:.0}% wall-clock reduction)",
                base.wall_ms, batched.wall_ms
            );
        }
        println!();
    }
    println!(
        "(frames on/off are bit-identical at a fixed opening mode — framing changes the \
         event schedule, not the paper-level accounting; per-layer openings additionally \
         save the per-opening message headers, hence the slightly smaller layer-mode bit \
         totals; outputs are checked against the cleartext evaluation in every mode)"
    );
    report.finish();
}
