//! Experiment E13 — transport backends: the deterministic simulator vs the
//! real threaded runtime vs the supervised TCP socket runtime.
//!
//! Runs the same full `Π_CirEval` evaluation on all three [`Backend`]s at
//! n ∈ {4, 7} and reports throughput (circuits/second) and the per-party
//! honest-bit accounting side by side. The simulator burns pure compute; the
//! threaded backend additionally pays genuine wall-clock tick pacing (every
//! Δ-timer is a real `recv_timeout` deadline), so its wall time is dominated
//! by `completed_at × tick` — the throughput gap *is* the price of real
//! time, not of the runtime machinery. The TCP backend pays the same pacing
//! plus real socket I/O (encode, kernel round trips, ack traffic) on every
//! link. Communication accounting must not depend on the backend: the
//! per-party bit vectors are asserted identical across all three runs (the
//! cheap always-on slice of the conformance contract; the full fingerprint
//! lives in `tests/transport_conformance.rs`).
//!
//! `BENCH_SMOKE=1` shrinks the sweep for CI; outputs are checked against the
//! cleartext evaluation on both backends.

use bench::{expected_clear, run_cireval_transport, JsonReport, Measurement};
use mpc_core::Circuit;
use mpc_net::{Backend, NetworkKind};

/// Real tick duration for the threaded runs (µs). Short: throughput numbers
/// should show the pacing floor, and the conservative link-clock gate keeps
/// the schedule conformant even when debug compute overruns a tick.
const TICK_US: u64 = 500;

fn product_circuit(n: usize, muls: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let mut acc = c.input(0);
    for i in 0..muls {
        let rhs = c.input((i + 1) % n);
        acc = c.mul(acc, rhs);
    }
    c.set_output(acc);
    c
}

fn print_row(backend: &str, n: usize, m: &Measurement, by_party: &[u64]) {
    let cps = if m.wall_ms > 0.0 {
        1000.0 / m.wall_ms
    } else {
        f64::INFINITY
    };
    println!(
        "{:>5} {:>10} {:>10.1} {:>12.3} {:>11} {:>12} {:?}",
        n, backend, m.wall_ms, cps, m.completed_at, m.honest_bits, by_party
    );
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let mut report = JsonReport::new("e13_transport");
    println!("# E13 — transport backends (synchronous, full Π_CirEval)");
    println!();
    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>11} {:>12} per-party bits",
        "n", "backend", "wall-ms", "circuits/s", "ticks", "bits"
    );

    let muls = if smoke { 1 } else { 2 };
    for n in [4usize, 7] {
        let circuit = product_circuit(n, muls);
        let expected = expected_clear(n, &circuit);
        let seed = 13 + n as u64;
        let (sim, sim_out, sim_bits) = run_cireval_transport(
            n,
            &circuit,
            NetworkKind::Synchronous,
            seed,
            Backend::Simulator,
            0,
        );
        assert_eq!(
            sim_out, expected,
            "simulator output must be correct (n={n})"
        );
        report.push_labeled("simulator", n, circuit.mult_count(), &sim);
        print_row("simulator", n, &sim, &sim_bits);

        let (th, th_out, th_bits) = run_cireval_transport(
            n,
            &circuit,
            NetworkKind::Synchronous,
            seed,
            Backend::Threaded,
            TICK_US,
        );
        assert_eq!(th_out, expected, "threaded output must be correct (n={n})");
        assert_eq!(
            sim_bits, th_bits,
            "per-party honest bits must not depend on the backend (n={n})"
        );
        report.push_labeled("threaded", n, circuit.mult_count(), &th);
        print_row("threaded", n, &th, &th_bits);

        let (tcp, tcp_out, tcp_bits) = run_cireval_transport(
            n,
            &circuit,
            NetworkKind::Synchronous,
            seed,
            Backend::Tcp,
            TICK_US,
        );
        assert_eq!(tcp_out, expected, "tcp output must be correct (n={n})");
        assert_eq!(
            sim_bits, tcp_bits,
            "per-party honest bits must not depend on the backend (n={n})"
        );
        report.push_labeled("tcp", n, circuit.mult_count(), &tcp);
        print_row("tcp", n, &tcp, &tcp_bits);

        let pacing_floor_ms = th.completed_at as f64 * TICK_US as f64 / 1000.0;
        println!(
            "  (n={n}: threaded pacing floor {pacing_floor_ms:.1} ms at {TICK_US} µs/tick, {} real timeouts fired)",
            th.timeouts_fired
        );
    }
    report.finish();
}
