//! Experiment E14 — packed secret sharing: SIMD gate blocks through the
//! share→triple→open pipeline.
//!
//! Sweeps the packing width ℓ ∈ {1, 2, 4, 8} over n ∈ {7, 10, 13} on a
//! layered multiplication circuit and reports throughput (circuits/second),
//! honest bits and the per-layer publicly-opened value counts. The ℓ = 1
//! series is the *scalar* engine (the layer-batched baseline of E12); ℓ ≥ 2
//! runs the packed engine, where each layer opens one `[D, E]` pair per
//! ℓ-gate block instead of one `(d, e)` pair per gate — `⌈L/ℓ⌉·2` opened
//! values per layer instead of `2·L` — and the whole triple-preprocessing
//! pipeline (ACS #2, transform, verify, extract) is replaced by
//! slot-positioned point-to-point deals.
//!
//! Thresholds are pinned at `t_s = t_a = 1` so the sweep varies ℓ at fixed
//! resilience; widths above the feasibility bound `ℓ ≤ n − 3·t_s` are
//! skipped. Both transport backends run (the threaded runtime re-executes
//! the simulator's schedule in real time), and every output is checked
//! against the cleartext evaluation. `BENCH_SMOKE=1` shrinks the sweep for
//! CI to n = 7, ℓ ∈ {1, 4}, simulator only.

use bench::{expected_clear, run_cireval_packed, JsonReport, Measurement};
use mpc_core::{thresholds::max_packing_width, Circuit};
use mpc_net::{Backend, NetworkKind};

const TS: usize = 1;

fn print_row(backend: &str, n: usize, ell: usize, m: &Measurement) {
    let cps = if m.wall_ms > 0.0 {
        1000.0 / m.wall_ms
    } else {
        f64::INFINITY
    };
    println!(
        "{:>5} {:>4} {:>10} {:>10.1} {:>12.3} {:>12} {:>8} opened/layer {:?}",
        n,
        ell,
        backend,
        m.wall_ms,
        cps,
        m.honest_bits,
        m.events_processed,
        m.values_opened_by_layer
    );
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let mut report = JsonReport::new("e14_packing");
    println!("# E14 — packed secret sharing (layered mult circuit, ts = ta = 1)");
    println!();
    println!(
        "{:>5} {:>4} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "n", "ell", "backend", "wall-ms", "circuits/s", "bits", "events"
    );

    let ns: &[usize] = if smoke { &[7] } else { &[7, 10, 13] };
    let widths: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let (width, depth) = if smoke { (8, 2) } else { (8, 3) };

    for &n in ns {
        let circuit = Circuit::layered(n, width, depth);
        let expected = expected_clear(n, &circuit);
        let seed = 14 + n as u64;
        // The threaded lane pays real wall-clock tick pacing, so it runs at
        // n = 7 only (like E13) — enough to show both engines behave
        // identically on the real runtime; the scaling story is the
        // simulator's.
        let backends: &[(Backend, &str)] = if smoke {
            &[(Backend::Simulator, "simulator")]
        } else if n == 7 {
            &[
                (Backend::Simulator, "simulator"),
                (Backend::Threaded, "threaded"),
            ]
        } else {
            &[(Backend::Simulator, "simulator")]
        };
        for &(backend, label) in backends {
            let mut scalar_bits = None;
            let mut scalar_opened = None;
            for &ell in widths {
                if ell > max_packing_width(n, TS) {
                    println!(
                        "{n:>5} {ell:>4}   skipped (above feasibility bound n - 3·ts = {})",
                        max_packing_width(n, TS)
                    );
                    continue;
                }
                // ℓ = 1 is the scalar baseline engine (packing knob off).
                let engine_ell = if ell == 1 { 0 } else { ell };
                let (m, out) = run_cireval_packed(
                    n,
                    &circuit,
                    NetworkKind::Synchronous,
                    seed,
                    engine_ell,
                    backend,
                );
                assert_eq!(out, expected, "output must be correct (n={n}, ell={ell})");
                if ell == 1 {
                    scalar_bits = Some(m.honest_bits);
                    scalar_opened = Some(m.values_opened_by_layer.clone());
                } else if ell >= 4 {
                    // The experiment's headline claims, asserted on every run.
                    if let Some(base) = &scalar_opened {
                        for (l, (&packed, &scalar)) in
                            m.values_opened_by_layer.iter().zip(base).enumerate()
                        {
                            assert!(
                                2 * packed <= scalar,
                                "ℓ={ell} must open ≤ half the values of the scalar \
                                 engine per layer (n={n}, layer {l}: {packed} vs {scalar})"
                            );
                        }
                    }
                    if let Some(base) = scalar_bits {
                        assert!(
                            m.honest_bits < base,
                            "ℓ={ell} must communicate fewer honest bits than the \
                             scalar engine (n={n}: {} vs {base})",
                            m.honest_bits
                        );
                    }
                }
                report.push_labeled(label, n, ell, &m);
                print_row(label, n, ell, &m);
            }
        }
    }
    report.finish();
}
