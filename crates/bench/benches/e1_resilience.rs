//! Experiment E1 — resilience landscape (Section 1 of the paper).
//!
//! Regenerates the feasibility table comparing purely synchronous MPC
//! (`t_s < n/3`), purely asynchronous MPC (`t_a < n/4`, which is also the
//! best a "single-threshold" protocol can tolerate in *both* networks) and
//! the best-of-both-worlds operating point (`3·t_s + t_a < n`), and validates
//! the boundary by actually running the protocol at the maximal thresholds.

use bench::{run_cireval, JsonReport};
use mpc_core::thresholds::resilience_table;
use mpc_core::Circuit;
use mpc_net::{CorruptionSet, NetworkKind};

fn main() {
    let mut report = JsonReport::new("e1_resilience");
    println!("# E1 — resilience landscape (paper Section 1)");
    println!(
        "{:>4} {:>10} {:>10} {:>16}",
        "n", "SMPC t_s", "AMPC t_a", "BoBW (t_s,t_a)"
    );
    for row in resilience_table(4, 16) {
        println!(
            "{:>4} {:>10} {:>10} {:>16}",
            row.n,
            row.smpc_ts,
            row.ampc_ta,
            format!("({}, {})", row.bobw.0, row.bobw.1)
        );
    }
    println!();
    println!("# boundary validation: full MPC runs at the BoBW operating point");
    for n in [4usize, 5] {
        let circuit = Circuit::product_of_inputs(n);
        let (m_honest, _) = run_cireval(n, &circuit, NetworkKind::Synchronous, &[], 1);
        let (m_corrupt, out) = run_cireval(n, &circuit, NetworkKind::Synchronous, &[n - 1], 2);
        report.push_labeled("honest", n, 1, &m_honest);
        report.push_labeled("corrupt", n, 1, &m_corrupt);
        println!(
            "n={n}: all-honest finished at simulated time {}, with t_s corruption at {}, output with corruption = {}",
            m_honest.completed_at, m_corrupt.completed_at, out.as_u64()
        );
    }
    println!();
    println!("# corruption-placement sweep: the threshold holds wherever the t_s corruptions sit");
    let n = 4;
    let ts = 1;
    let circuit = Circuit::product_of_inputs(n);
    for seed in 0..3u64 {
        let placement = CorruptionSet::random(n, ts, seed);
        let (m, out) = run_cireval(
            n,
            &circuit,
            NetworkKind::Synchronous,
            placement.corrupt_parties(),
            seed + 10,
        );
        println!(
            "n={n} corrupt={:?}: finished at {}, output = {}",
            placement.corrupt_parties(),
            m.completed_at,
            out.as_u64()
        );
        report.push_labeled(&format!("placement_seed{seed}"), n, 1, &m);
    }
    report.finish();
}
