//! Experiment E2 — `Π_ACast` cost (Lemma 2.4): `O(n²·ℓ)` bits, output within
//! `3Δ` for an honest sender in a synchronous network.

use bench::{run_acast, JsonReport};

fn main() {
    let mut report = JsonReport::new("e2_acast");
    // BENCH_SMOKE=1 runs one tiny configuration — used by CI to catch
    // bit-accounting regressions without paying for the full sweep.
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let ns: &[usize] = if smoke { &[4] } else { &[4, 7, 10, 13] };
    let ells: &[usize] = if smoke { &[1] } else { &[1, 16, 64] };
    println!("# E2 — Bracha A-cast: bits vs n and payload ℓ (claim: O(n^2 ℓ))");
    println!(
        "{:>4} {:>6} {:>12} {:>10} {:>12} {:>12}",
        "n", "ell", "bits", "msgs", "sim-time", "bits/(n²ℓ)"
    );
    for &n in ns {
        for &ell in ells {
            let m = run_acast(n, ell);
            report.push(n, ell, &m);
            assert!(m.honest_bits > 0, "exact bit accounting must be nonzero");
            let norm = m.honest_bits as f64 / (n * n * ell) as f64;
            println!(
                "{:>4} {:>6} {:>12} {:>10} {:>12} {:>12.1}",
                n, ell, m.honest_bits, m.honest_messages, m.completed_at, norm
            );
        }
    }
    println!("(a roughly constant last column for large ℓ confirms the O(n^2 ℓ) scaling; sim-time ≤ 3Δ = 30)");
    report.finish();
}
