//! Experiment E3 — `Π_BC` (Theorem 3.5): regular-mode output at
//! `T_BC = 3Δ + T_BGP`, `O(n²ℓ + n³)` bits with the substituted phase-king
//! SBA (DESIGN.md S2).

use bench::{run_bc, JsonReport};
use mpc_net::NetworkKind;
use mpc_protocols::Params;

fn main() {
    let mut report = JsonReport::new("e3_bc");
    // BENCH_SMOKE=1 runs one tiny configuration — used by CI to catch
    // bit-accounting regressions without paying for the full sweep.
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let ns: &[usize] = if smoke { &[4] } else { &[4, 7, 10] };
    println!("# E3 — Π_BC: bits and output time vs n (sync and async)");
    println!(
        "{:>4} {:>6} {:>12} {:>10} {:>12} {:>10}",
        "n", "net", "bits", "msgs", "sim-time", "T_BC"
    );
    for &n in ns {
        let params = Params::max_thresholds(n, 10);
        for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
            let m = run_bc(n, 8, kind);
            assert!(m.honest_bits > 0, "exact bit accounting must be nonzero");
            let tag = match kind {
                NetworkKind::Synchronous => "sync",
                NetworkKind::Asynchronous => "async",
            };
            report.push_labeled(tag, n, 8, &m);
            println!(
                "{:>4} {:>6} {:>12} {:>10} {:>12} {:>10}",
                n,
                tag,
                m.honest_bits,
                m.honest_messages,
                m.completed_at,
                params.t_bc()
            );
        }
    }
    println!("(in the synchronous rows every party outputs through regular mode exactly at T_BC)");
    report.finish();
}
