//! Experiment E4 — `Π_BA` (Theorem 3.6): output within `T_BA = T_BC + T_ABA`
//! in a synchronous network, almost-sure output in an asynchronous one.

use bench::{run_ba, JsonReport};
use mpc_net::NetworkKind;
use mpc_protocols::Params;

fn main() {
    let mut report = JsonReport::new("e4_ba");
    println!("# E4 — Π_BA: bits and completion time vs n, inputs, network");
    println!(
        "{:>4} {:>10} {:>6} {:>12} {:>10} {:>12} {:>10}",
        "n", "inputs", "net", "bits", "msgs", "sim-time", "T_BA"
    );
    for n in [4usize, 7, 10] {
        let params = Params::max_thresholds(n, 10);
        for unanimous in [true, false] {
            for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
                // asynchronous mixed-input runs are the slowest (random coin);
                // keep them to the smaller n to bound the harness runtime.
                if !unanimous && kind == NetworkKind::Asynchronous && n > 7 {
                    continue;
                }
                let m = run_ba(n, unanimous, kind);
                let label = format!(
                    "{}_{}",
                    if unanimous { "unanimous" } else { "mixed" },
                    if kind == NetworkKind::Synchronous {
                        "sync"
                    } else {
                        "async"
                    }
                );
                report.push_labeled(&label, n, 1, &m);
                println!(
                    "{:>4} {:>10} {:>6} {:>12} {:>10} {:>12} {:>10}",
                    n,
                    if unanimous { "unanimous" } else { "mixed" },
                    if kind == NetworkKind::Synchronous {
                        "sync"
                    } else {
                        "async"
                    },
                    m.honest_bits,
                    m.honest_messages,
                    m.completed_at,
                    params.t_ba()
                );
            }
        }
    }
    println!("(synchronous unanimous rows complete within T_BA, matching Theorem 3.6)");
    report.finish();
}
