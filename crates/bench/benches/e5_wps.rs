//! Experiment E5 — `Π_WPS` (Theorem 4.8): `O(n²L + n⁴)·log|F|` bits, honest
//! parties output at `T_WPS` in a synchronous network.

use bench::{run_wps, JsonReport};
use mpc_protocols::Params;

fn main() {
    let mut report = JsonReport::new("e5_wps");
    println!("# E5 — Π_WPS: bits vs n and L");
    println!(
        "{:>4} {:>6} {:>12} {:>10} {:>12} {:>10}",
        "n", "L", "bits", "msgs", "sim-time", "T_WPS"
    );
    for n in [4usize, 7] {
        let params = Params::max_thresholds(n, 10);
        for l in [1usize, 8, 32] {
            let m = run_wps(n, l);
            report.push(n, l, &m);
            println!(
                "{:>4} {:>6} {:>12} {:>10} {:>12} {:>10}",
                n,
                l,
                m.honest_bits,
                m.honest_messages,
                m.completed_at,
                params.t_wps()
            );
        }
    }
    println!("(bits grow additively in L on top of a fixed n-dependent term: O(n^2 L + poly(n)))");
    report.finish();
}
