//! Experiment E6 — `Π_VSS` (Theorem 4.16): `O(n³L + n⁵)·log|F|` bits, honest
//! dealer outputs at `T_VSS` in a synchronous network, `n + 1` BA instances.

use bench::{run_vss, JsonReport};
use mpc_protocols::Params;

fn main() {
    let mut report = JsonReport::new("e6_vss");
    println!("# E6 — Π_VSS: bits vs n and L");
    println!(
        "{:>4} {:>6} {:>12} {:>10} {:>12} {:>10}",
        "n", "L", "bits", "msgs", "sim-time", "T_VSS"
    );
    for n in [4usize, 7] {
        let params = Params::max_thresholds(n, 10);
        for l in [1usize, 8] {
            let m = run_vss(n, l);
            report.push(n, l, &m);
            println!(
                "{:>4} {:>6} {:>12} {:>10} {:>12} {:>10}",
                n,
                l,
                m.honest_bits,
                m.honest_messages,
                m.completed_at,
                params.t_vss()
            );
        }
    }
    println!(
        "(one VSS costs ≈ n× one WPS — compare with the E5 rows — matching the n-fold WPS fan-out)"
    );
    report.finish();
}
