//! Experiment E7 — `Π_ACS` (Lemma 5.1): `O(n⁴L + n⁶)·log|F|` bits, `O(n²)` BA
//! instances, every honest party in `CS` in a synchronous network.

use bench::{run_acs, JsonReport};
use mpc_protocols::Params;

fn main() {
    let mut report = JsonReport::new("e7_acs");
    println!("# E7 — Π_ACS: bits vs n and L");
    println!(
        "{:>4} {:>6} {:>12} {:>10} {:>12} {:>10}",
        "n", "L", "bits", "msgs", "sim-time", "T_ACS"
    );
    for (n, l) in [(4usize, 1usize), (4, 4), (5, 1), (7, 1)] {
        let params = Params::max_thresholds(n, 10);
        let m = run_acs(n, l);
        report.push(n, l, &m);
        println!(
            "{:>4} {:>6} {:>12} {:>10} {:>12} {:>10}",
            n,
            l,
            m.honest_bits,
            m.honest_messages,
            m.completed_at,
            params.t_acs()
        );
    }
    println!("(one ACS costs ≈ n× one VSS — compare with the E6 rows)");
    report.finish();
}
