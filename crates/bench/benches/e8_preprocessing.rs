//! Experiment E8 — preprocessing cost (`Π_TripSh`/`Π_PreProcessing`,
//! Lemma 6.3 / Theorem 6.5): communication grows linearly in the number of
//! multiplication gates `c_M` on top of a circuit-independent `poly(n)` term,
//! and the generated triples are correct (the evaluation below would produce
//! a wrong product otherwise).

use bench::{expected_clear, run_cireval, JsonReport};
use mpc_core::Circuit;
use mpc_net::NetworkKind;

fn main() {
    let mut report = JsonReport::new("e8_preprocessing");
    println!("# E8 — preprocessing: total bits vs number of multiplication gates c_M (n = 4)");
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>10}",
        "c_M", "bits", "msgs", "sim-time", "correct"
    );
    let n = 4;
    for width in [1usize, 2, 4, 8] {
        let circuit = Circuit::layered(n, width, 1);
        let (m, out) = run_cireval(n, &circuit, NetworkKind::Synchronous, &[], 42);
        report.push(n, circuit.mult_count(), &m);
        let ok = out == expected_clear(n, &circuit);
        println!(
            "{:>6} {:>12} {:>10} {:>12} {:>10}",
            circuit.mult_count(),
            m.honest_bits,
            m.honest_messages,
            m.completed_at,
            ok
        );
    }
    println!("(the bits column grows affinely in c_M: a fixed poly(n) setup term plus a per-triple term)");
    report.finish();
}
