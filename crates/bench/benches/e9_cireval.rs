//! Experiment E9 — `Π_CirEval` (Theorem 7.1): in a synchronous network the
//! completion time is an affine function of `n` and of the multiplicative
//! depth `D_M` (the paper's `(120n + D_M + 6k − 20)·Δ` shape), and in an
//! asynchronous network the honest parties still terminate with the correct
//! output on the inputs of at least `n − t_s` parties.

use bench::{expected_clear, run_cireval, JsonReport};
use mpc_core::Circuit;
use mpc_net::NetworkKind;

fn main() {
    let mut report = JsonReport::new("e9_cireval");
    let n = 4;
    println!("# E9a — completion time vs multiplicative depth D_M (n = 4, synchronous)");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>10}",
        "D_M", "c_M", "sim-time", "bits", "correct"
    );
    for depth in [1usize, 2, 4, 6] {
        let circuit = Circuit::layered(n, 2, depth);
        let (m, out) = run_cireval(n, &circuit, NetworkKind::Synchronous, &[], 7);
        report.push_labeled(&format!("depth{depth}"), n, circuit.mult_count(), &m);
        println!(
            "{:>6} {:>6} {:>12} {:>12} {:>10}",
            circuit.mult_depth(),
            circuit.mult_count(),
            m.completed_at,
            m.honest_bits,
            out == expected_clear(n, &circuit)
        );
    }
    println!();
    println!("# E9b — completion time vs n (product circuit, synchronous vs asynchronous)");
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>10}",
        "n", "net", "sim-time", "bits", "correct"
    );
    for n in [4usize, 5] {
        let circuit = Circuit::product_of_inputs(n);
        for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
            let (m, out) = run_cireval(n, &circuit, kind, &[], 8);
            report.push_labeled(
                if kind == NetworkKind::Synchronous {
                    "sync"
                } else {
                    "async"
                },
                n,
                circuit.mult_count(),
                &m,
            );
            println!(
                "{:>4} {:>6} {:>12} {:>12} {:>10}",
                n,
                if kind == NetworkKind::Synchronous {
                    "sync"
                } else {
                    "async"
                },
                m.completed_at,
                m.honest_bits,
                out == expected_clear(n, &circuit)
            );
        }
    }
    println!("(E9a: sim-time grows by a constant number of Δ per extra multiplication layer,");
    println!(
        " on top of a circuit-independent preprocessing term that dominates — the paper's shape)"
    );
    report.finish();
}
