//! Criterion micro-benchmarks of the algebraic substrate: field
//! multiplication, polynomial interpolation, bivariate row extraction and
//! online error correction. These back the constant factors behind every
//! communication/computation figure of E2–E10.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mpc_algebra::evaluation_points::alpha;
use mpc_algebra::{rs, Fp, Polynomial, SymmetricBivariate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_field(c: &mut Criterion) {
    let a = Fp::from_u64(123_456_789_123);
    let b = Fp::from_u64(987_654_321_987);
    c.bench_function("field/mul", |bench| {
        bench.iter(|| std::hint::black_box(a) * std::hint::black_box(b))
    });
    c.bench_function("field/inverse", |bench| {
        bench.iter(|| std::hint::black_box(a).inverse())
    });
}

fn bench_poly(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let f = Polynomial::random(&mut rng, 16);
    c.bench_function("poly/evaluate_deg16", |bench| {
        bench.iter(|| f.evaluate(std::hint::black_box(Fp::from_u64(12345))))
    });
    let points: Vec<(Fp, Fp)> = (0..17).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
    c.bench_function("poly/interpolate_deg16", |bench| {
        bench.iter(|| Polynomial::interpolate(std::hint::black_box(&points)))
    });
}

fn bench_bivariate_and_oec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let q = SymmetricBivariate::random(&mut rng, 8);
    c.bench_function("bivariate/row_deg8", |bench| {
        bench.iter(|| q.row(std::hint::black_box(alpha(3))))
    });
    let f = Polynomial::random(&mut rng, 4);
    let mut pts: Vec<(Fp, Fp)> = (0..13).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
    pts[2].1 += Fp::ONE;
    pts[9].1 += Fp::from_u64(7);
    c.bench_function("rs/oec_decode_d4_t4_2errors", |bench| {
        bench.iter_batched(
            || pts.clone(),
            |p| rs::oec_decode(4, 4, &p),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_field, bench_poly, bench_bivariate_and_oec);
criterion_main!(benches);
