//! Criterion micro-benchmarks of the algebraic substrate: field
//! multiplication, polynomial interpolation, bivariate row extraction and
//! online error correction. These back the constant factors behind every
//! communication/computation figure of E2–E10.
//!
//! Besides the criterion smoke numbers, the binary times the algebra fast
//! paths against their retained reference implementations
//! (`Polynomial::interpolate_reference`, per-element inversion,
//! `rs::oec_decode_reference`) at `n = 64` and emits the series through the
//! `BENCH_JSON` gate — the machine-readable record of the measured speedup.
//! `BENCH_SMOKE=1` shrinks the repetition counts for CI.

use std::time::Instant;

use bench::{JsonReport, Measurement};
use criterion::{criterion_group, BatchSize, Criterion};
use mpc_algebra::evaluation_points::alpha;
use mpc_algebra::{rs, Fp, Polynomial, SymmetricBivariate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_field(c: &mut Criterion) {
    let a = Fp::from_u64(123_456_789_123);
    let b = Fp::from_u64(987_654_321_987);
    c.bench_function("field/mul", |bench| {
        bench.iter(|| std::hint::black_box(a) * std::hint::black_box(b))
    });
    c.bench_function("field/inverse", |bench| {
        bench.iter(|| std::hint::black_box(a).inverse())
    });
}

fn bench_poly(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let f = Polynomial::random(&mut rng, 16);
    c.bench_function("poly/evaluate_deg16", |bench| {
        bench.iter(|| f.evaluate(std::hint::black_box(Fp::from_u64(12345))))
    });
    let points: Vec<(Fp, Fp)> = (0..17).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
    c.bench_function("poly/interpolate_deg16", |bench| {
        bench.iter(|| Polynomial::interpolate(std::hint::black_box(&points)))
    });
}

fn bench_bivariate_and_oec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let q = SymmetricBivariate::random(&mut rng, 8);
    c.bench_function("bivariate/row_deg8", |bench| {
        bench.iter(|| q.row(std::hint::black_box(alpha(3))))
    });
    let f = Polynomial::random(&mut rng, 4);
    let mut pts: Vec<(Fp, Fp)> = (0..13).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
    pts[2].1 += Fp::ONE;
    pts[9].1 += Fp::from_u64(7);
    c.bench_function("rs/oec_decode_d4_t4_2errors", |bench| {
        bench.iter_batched(
            || pts.clone(),
            |p| rs::oec_decode(4, 4, &p),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_field, bench_poly, bench_bivariate_and_oec);

/// Wall-clock of `reps` invocations of `f`, in milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0
}

fn record(wall_ms: f64) -> Measurement {
    Measurement {
        wall_ms,
        ..Measurement::default()
    }
}

/// Times the fast paths against the retained reference implementations at
/// `n = 64` and emits the `BENCH_microbench.json` series.
fn algebra_fastpath_series() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let reps = if smoke { 20 } else { 200 };
    let n = 64usize;
    let mut report = JsonReport::new("microbench");
    let mut rng = StdRng::seed_from_u64(64);

    // Interpolation through all n = 64 points (the protocols' largest case:
    // a degree-(n−1) polynomial through every party point).
    let f = Polynomial::random(&mut rng, n - 1);
    let points: Vec<(Fp, Fp)> = (0..n).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
    assert_eq!(Polynomial::interpolate(&points), f);
    let slow = time_ms(reps, || {
        std::hint::black_box(Polynomial::interpolate_reference(std::hint::black_box(
            &points,
        )));
    });
    let fast = time_ms(reps, || {
        std::hint::black_box(Polynomial::interpolate(std::hint::black_box(&points)));
    });
    report.push_labeled("interpolate_n64_reference", n, reps, &record(slow));
    report.push_labeled("interpolate_n64_fast", n, reps, &record(fast));
    // Speedup factor as a record of its own (carried in `wall_ms`).
    report.push_labeled("interpolate_n64_speedup", n, reps, &record(slow / fast));
    println!(
        "micro/interpolate_n64: reference {:.3} ms, fast {:.3} ms — {:.1}x",
        slow,
        fast,
        slow / fast
    );

    // Batch inversion vs per-element Fermat inversion, 64 elements.
    let values: Vec<Fp> = (0..n as u64).map(|v| Fp::from_u64(v * 7 + 3)).collect();
    let slow = time_ms(reps * 10, || {
        for v in &values {
            std::hint::black_box(v.inverse());
        }
    });
    let fast = time_ms(reps * 10, || {
        let mut vs = values.clone();
        Fp::batch_inverse(&mut vs);
        std::hint::black_box(vs);
    });
    report.push_labeled("inverse_n64_per_element", n, reps * 10, &record(slow));
    report.push_labeled("inverse_n64_batch", n, reps * 10, &record(fast));
    println!(
        "micro/inverse_n64: per-element {:.3} ms, batch {:.3} ms — {:.1}x",
        slow,
        fast,
        slow / fast
    );

    // Incremental OEC vs the reference retry loop: n = 64 points of a
    // degree-21 sharing with t = 21 and two corrupted points.
    let d = (n - 1) / 3;
    let g = Polynomial::random(&mut rng, d);
    let mut pts: Vec<(Fp, Fp)> = (0..n).map(|i| (alpha(i), g.evaluate(alpha(i)))).collect();
    pts[5].1 += Fp::from_u64(99);
    pts[40].1 += Fp::ONE;
    let oec_reps = (reps / 10).max(2);
    assert_eq!(rs::oec_decode(d, d, &pts).as_ref(), Some(&g));
    let slow = time_ms(oec_reps, || {
        std::hint::black_box(rs::oec_decode_reference(d, d, std::hint::black_box(&pts)));
    });
    let fast = time_ms(oec_reps, || {
        std::hint::black_box(rs::oec_decode(d, d, std::hint::black_box(&pts)));
    });
    report.push_labeled("oec_n64_2err_reference", n, oec_reps, &record(slow));
    report.push_labeled("oec_n64_2err_incremental", n, oec_reps, &record(fast));
    println!(
        "micro/oec_n64_2err: reference {:.3} ms, incremental {:.3} ms — {:.1}x",
        slow,
        fast,
        slow / fast
    );

    report.finish();
}

fn main() {
    benches();
    algebra_fastpath_series();
}
