//! `bench-compare` — diffs two `BENCH_*.json` series files.
//!
//! Usage: `compare <baseline.json> <candidate.json> [--max-regress PCT]`
//!
//! Joins the two files' records on `(experiment, n, ell)` and prints, for
//! every numeric scalar field, the baseline value, the candidate value and
//! the relative change. With `--max-regress PCT` the exit code is non-zero
//! when any *cost* field (`honest_bits`, `honest_messages`, `events`)
//! regressed by more than `PCT` percent — wall-clock fields are reported but
//! never gate, they depend on the machine.
//!
//! The parser covers exactly the JSON subset [`bench::Measurement::to_json`]
//! emits (flat objects of numbers, strings and numeric arrays inside one
//! array) — no external dependencies.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One record: scalar fields plus the identifying key.
#[derive(Debug, Default, Clone)]
struct Record {
    fields: BTreeMap<String, f64>,
}

/// Fields whose growth counts as a regression (communication/event costs;
/// deterministic across machines).
const GATED: &[&str] = &["honest_bits", "honest_messages", "events"];

/// Minimal parser for the flat record arrays `JsonReport` writes. Returns
/// `(key → record)` where the key is `experiment|n|ell`.
fn parse(text: &str) -> Result<BTreeMap<String, Record>, String> {
    let mut out = BTreeMap::new();
    // Split on top-level objects: records never nest objects.
    for (i, obj) in text.split('{').skip(1).enumerate() {
        let body = obj
            .split('}')
            .next()
            .ok_or_else(|| format!("record {i}: unterminated object"))?;
        let mut rec = Record::default();
        let mut experiment = String::new();
        for field in split_top_level_fields(body) {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| format!("record {i}: field without ':' ({field})"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            if let Some(stripped) = value.strip_prefix('"') {
                if key == "experiment" {
                    experiment = stripped.trim_end_matches('"').to_string();
                }
            } else if value.starts_with('[') {
                // Numeric arrays: fold to a sum (e.g. total opened values) —
                // enough for regression gating without schema knowledge.
                let sum: f64 = value
                    .trim_matches(|c| c == '[' || c == ']')
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse::<f64>().unwrap_or(0.0))
                    .sum();
                rec.fields.insert(format!("{key}_total"), sum);
            } else if let Ok(v) = value.parse::<f64>() {
                rec.fields.insert(key, v);
            }
        }
        let n = rec.fields.get("n").copied().unwrap_or(0.0);
        let ell = rec.fields.get("ell").copied().unwrap_or(0.0);
        if experiment.is_empty() {
            return Err(format!("record {i}: missing experiment key"));
        }
        out.insert(format!("{experiment}|{n}|{ell}"), rec);
    }
    Ok(out)
}

/// Splits an object body on commas that are not inside an array.
fn split_top_level_fields(body: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                fields.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        fields.push(&body[start..]);
    }
    fields
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regress: Option<f64> = None;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regress" {
            let Some(pct) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("--max-regress needs a numeric percentage");
                return ExitCode::from(2);
            };
            max_regress = Some(pct);
        } else {
            paths.push(a.clone());
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: compare <baseline.json> <candidate.json> [--max-regress PCT]");
        return ExitCode::from(2);
    }
    let read = |p: &str| -> Result<BTreeMap<String, Record>, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        parse(&text).map_err(|e| format!("{p}: {e}"))
    };
    let (base, cand) = match (read(&paths[0]), read(&paths[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = Vec::new();
    println!(
        "{:<40} {:<22} {:>14} {:>14} {:>9}",
        "series (experiment|n|ell)", "field", "baseline", "candidate", "change"
    );
    for (key, b) in &base {
        let Some(c) = cand.get(key) else {
            println!("{key:<40} -- missing from candidate --");
            continue;
        };
        for (field, &bv) in &b.fields {
            if field == "n" || field == "ell" {
                continue;
            }
            let Some(&cv) = c.fields.get(field) else {
                continue;
            };
            let change = if bv != 0.0 {
                (cv - bv) / bv * 100.0
            } else if cv == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
            println!("{key:<40} {field:<22} {bv:>14.1} {cv:>14.1} {change:>+8.2}%");
            if let Some(limit) = max_regress {
                if GATED.contains(&field.as_str()) && change > limit {
                    regressions.push(format!("{key} {field}: {bv} → {cv} ({change:+.2}%)"));
                }
            }
        }
    }
    for key in cand.keys() {
        if !base.contains_key(key) {
            println!("{key:<40} -- new in candidate --");
        }
    }
    if !regressions.is_empty() {
        eprintln!("\nregressions beyond --max-regress:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
