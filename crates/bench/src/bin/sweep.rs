//! `sweep` — the adversarial guarantee-checking sweep.
//!
//! Runs the default matrix from [`mpc_core::sweeps`] (corruption placement ×
//! Byzantine strategy × fault preset × network kind, per backend), checks
//! every cell against the paper's guarantee matrix, then runs the harness's
//! negative control (an injected violation that must reproduce
//! bit-identically from its seed).
//!
//! Environment knobs:
//!
//! * `SWEEP_BACKENDS` — `sim`, `threaded`, `tcp`, `both` (sim + threaded,
//!   the default) or `all` (every backend). The tcp matrix adds one
//!   socket-chaos cell per chaos preset (sever / stall / dup-bytes).
//! * `SWEEP_SEED` — base RNG seed of every cell (default `1`).
//! * `SWEEP_FILTER` — substring filter on the cell label (e.g. a fault
//!   preset name or `slow-sender`); empty runs everything.
//! * `SWEEP_SMOKE` — non-empty restricts the matrix to the garble strategy
//!   plus the no-corruption cells (slow-sender, honest-party crash): the CI
//!   smoke slice, 8 cells per backend.
//! * `SWEEP_ARTIFACTS` — path of the failing-seed artifact file (default
//!   `sweep_failures.jsonl`); one JSON line per violated cell, written only
//!   when there are violations.
//!
//! Exit code is non-zero when any cell violates its guarantee or the
//! negative control fails to reproduce.

use mpc_core::sweeps::{
    default_matrix, default_workload, negative_control, run_sweep, CellSpec, StrategyKind, Verdict,
};
use mpc_net::{Backend, NetworkKind};
use std::process::ExitCode;

fn env(name: &str, default: &str) -> String {
    std::env::var(name)
        .ok()
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_string())
}

fn main() -> ExitCode {
    let backends: Vec<Backend> = match env("SWEEP_BACKENDS", "both").as_str() {
        "sim" | "simulator" => vec![Backend::Simulator],
        "threaded" => vec![Backend::Threaded],
        "tcp" => vec![Backend::Tcp],
        "all" => vec![Backend::Simulator, Backend::Threaded, Backend::Tcp],
        _ => vec![Backend::Simulator, Backend::Threaded],
    };
    let seed: u64 = env("SWEEP_SEED", "1")
        .parse()
        .expect("SWEEP_SEED must be a u64");
    let filter = env("SWEEP_FILTER", "");
    let smoke = !env("SWEEP_SMOKE", "").is_empty();
    let artifacts = env("SWEEP_ARTIFACTS", "sweep_failures.jsonl");

    let (circuit, inputs) = default_workload(5);
    let cells: Vec<CellSpec> = default_matrix(&backends, seed)
        .into_iter()
        .filter(|c| !smoke || c.strategy == StrategyKind::Garble || c.corrupt.is_empty())
        .filter(|c| filter.is_empty() || c.label().contains(&filter))
        .collect();
    println!(
        "sweep: {} cells (backends {:?}, seed {seed}{})",
        cells.len(),
        backends,
        if smoke { ", smoke slice" } else { "" }
    );

    let outcome = run_sweep(&cells, &circuit, &inputs);
    for report in &outcome.reports {
        let status = match &report.verdict {
            Verdict::Correct => "ok".to_string(),
            Verdict::AdmissibleAbort(d) => format!("admissible-abort ({d})"),
            Verdict::Violation(d) => format!("VIOLATION ({d})"),
        };
        println!(
            "  {:<70} {:>9} ticks  {status}",
            report.spec.label(),
            report
                .finished_at
                .map_or("-".to_string(), |t| t.to_string()),
        );
    }
    if let Some((worst, report)) = outcome.worst_finished_at() {
        println!(
            "worst-case completion: {worst} ticks ({})",
            report.spec.label()
        );
    }

    let violations = outcome.violations();
    if !violations.is_empty() {
        let lines: Vec<String> = violations.iter().map(|r| r.artifact_json()).collect();
        std::fs::write(&artifacts, lines.join("\n") + "\n").expect("write artifact file");
        println!(
            "{} violation(s) — artifacts written to {artifacts}:",
            lines.len()
        );
        for line in &lines {
            println!("  {line}");
        }
    } else {
        println!("zero violations");
    }

    // Negative control: the harness must flag an injected wrong output and
    // the artifact must replay bit-identically from the printed line alone.
    let control_spec = CellSpec {
        n: 5,
        ts: 1,
        ta: 1,
        delta: 10,
        network: NetworkKind::Synchronous,
        backend: Backend::Simulator,
        corrupt: vec![0],
        strategy: StrategyKind::Passive,
        fault_preset: "dup-burst".to_string(),
        chaos_preset: "none".to_string(),
        slow_sender: false,
        packing: 0,
        seed,
    };
    let first = negative_control(&control_spec, &circuit, &inputs);
    let second = negative_control(&control_spec, &circuit, &inputs);
    let control_ok = first.is_violation() && first.artifact_json() == second.artifact_json();
    println!(
        "negative control: {} — {}",
        if control_ok {
            "ok (injected violation reproduced bit-identically)"
        } else {
            "FAILED"
        },
        first.artifact_json()
    );

    if violations.is_empty() && control_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
