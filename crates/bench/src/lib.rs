//! Shared experiment runners for the benchmark harness.
//!
//! Every benchmark binary of this crate (see `benches/`) corresponds to one
//! experiment id of `EXPERIMENTS.md` / DESIGN.md (E1–E10) and regenerates the
//! series backing one of the paper's quantitative claims. The functions here
//! run a protocol inside the deterministic simulator and return the measured
//! communication (bits sent by honest parties), the number of messages, the
//! simulated completion time and the wall-clock time of the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use mpc_algebra::{Fp, Polynomial};
use mpc_core::{CirEval, Circuit, MpcBuilder};
use mpc_net::{
    Backend, CorruptionSet, Metrics, NetConfig, NetworkKind, Protocol, Simulation, Time,
    UniformDelay,
};
use mpc_protocols::acast::Acast;
use mpc_protocols::acs::Acs;
use mpc_protocols::ba::Ba;
use mpc_protocols::bc::Bc;
use mpc_protocols::vss::Vss;
use mpc_protocols::wps::Wps;
use mpc_protocols::{BcValue, Msg, Params};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measurements of one protocol run.
#[derive(Clone, Debug, Default)]
pub struct Measurement {
    /// Bits communicated by honest parties.
    pub honest_bits: u64,
    /// Messages sent by honest parties.
    pub honest_messages: u64,
    /// Simulated time at which the run completed.
    pub completed_at: Time,
    /// Wall-clock milliseconds spent simulating.
    pub wall_ms: f64,
    /// Events the simulator processed.
    pub events_processed: u64,
    /// Wire-frame events dispatched (0 when frame coalescing is off).
    pub frames_sent: u64,
    /// Largest pending-event count observed at a time-slice boundary.
    pub max_queue_depth: u64,
    /// Simulator worker threads the run was configured with.
    pub worker_threads: u64,
    /// Same-time batch-width histogram (`hist[i]` = slices whose width fell
    /// in `[2^i, 2^(i+1))`).
    pub batch_width_hist: Vec<u64>,
    /// Timer expiries that were real `recv_timeout` deadlines (threaded
    /// backend only; the simulator reports 0).
    pub timeouts_fired: u64,
    /// Effective packed-evaluation width `ℓ` of the run (0 = scalar engine).
    pub packed_width: u64,
    /// Publicly opened values per multiplication layer (first honest party;
    /// empty on the per-gate reference path).
    pub values_opened_by_layer: Vec<u64>,
    /// Connections the TCP supervisors re-established (tcp backend only).
    pub reconnects: u64,
    /// Failed dial attempts across all links (tcp backend only).
    pub dial_retries: u64,
    /// Records retransmitted after reconnects (tcp backend only).
    pub frames_replayed: u64,
    /// Bytes abandoned to stream resyncs (tcp backend only).
    pub bytes_resynced: u64,
}

impl Measurement {
    /// Builds a measurement from a run's [`Metrics`], its simulated
    /// completion time and the wall-clock start instant.
    pub fn capture(metrics: &Metrics, completed_at: Time, start: Instant) -> Self {
        Measurement {
            honest_bits: metrics.honest_bits,
            honest_messages: metrics.honest_messages,
            completed_at,
            wall_ms: start.elapsed().as_secs_f64() * 1000.0,
            events_processed: metrics.events_processed,
            frames_sent: metrics.frames_sent,
            max_queue_depth: metrics.max_queue_depth,
            worker_threads: metrics.worker_threads,
            batch_width_hist: metrics.batch_width_hist.clone(),
            timeouts_fired: metrics.timeouts_fired,
            packed_width: metrics.packed_width,
            values_opened_by_layer: metrics.values_opened_by_layer.clone(),
            reconnects: metrics.reconnects,
            dial_retries: metrics.dial_retries,
            frames_replayed: metrics.frames_replayed,
            bytes_resynced: metrics.bytes_resynced,
        }
    }

    /// Serialises the measurement as one JSON object, keyed by the
    /// experiment name and the sweep coordinates `(n, ℓ)`.
    pub fn to_json(&self, experiment: &str, n: usize, ell: usize) -> String {
        let hist = self
            .batch_width_hist
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let opened = self
            .values_opened_by_layer
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"experiment\":\"{experiment}\",\"n\":{n},\"ell\":{ell},\
             \"honest_bits\":{},\"honest_messages\":{},\"completed_at\":{},\
             \"wall_ms\":{:.3},\"events\":{},\"frames\":{},\"max_queue_depth\":{},\
             \"threads\":{},\"packed_width\":{},\"values_opened\":[{opened}],\
             \"reconnects\":{},\"dial_retries\":{},\"frames_replayed\":{},\
             \"bytes_resynced\":{},\"batch_width_hist\":[{hist}]}}",
            self.honest_bits,
            self.honest_messages,
            self.completed_at,
            self.wall_ms,
            self.events_processed,
            self.frames_sent,
            self.max_queue_depth,
            self.worker_threads,
            self.packed_width,
            self.reconnects,
            self.dial_retries,
            self.frames_replayed,
            self.bytes_resynced,
        )
    }
}

/// Env-gated machine-readable series writer: when `BENCH_JSON=<dir>` is set,
/// every experiment binary dumps its measurement series as
/// `<dir>/BENCH_<experiment>.json` (a JSON array of [`Measurement::to_json`]
/// records). Unset, it is a no-op — the human-readable tables on stdout are
/// unaffected either way.
///
/// This is the machine-readable perf trajectory later PRs are judged
/// against: CI uploads the files as artifacts.
#[derive(Debug)]
pub struct JsonReport {
    experiment: String,
    records: Vec<String>,
}

impl JsonReport {
    /// A report for one experiment id (e.g. `"e3_bc"`).
    pub fn new(experiment: &str) -> Self {
        JsonReport {
            experiment: experiment.to_string(),
            records: Vec::new(),
        }
    }

    /// The output directory, if the `BENCH_JSON` gate is set.
    pub fn output_dir() -> Option<std::path::PathBuf> {
        std::env::var_os("BENCH_JSON").map(std::path::PathBuf::from)
    }

    /// Records one measurement under this report's experiment id.
    pub fn push(&mut self, n: usize, ell: usize, m: &Measurement) {
        self.records.push(m.to_json(&self.experiment, n, ell));
    }

    /// Records one measurement under a sub-series label
    /// (`<experiment>/<label>`), for binaries that sweep several variants.
    pub fn push_labeled(&mut self, label: &str, n: usize, ell: usize, m: &Measurement) {
        self.records
            .push(m.to_json(&format!("{}/{label}", self.experiment), n, ell));
    }

    /// Writes `BENCH_<experiment>.json` if `BENCH_JSON` is set (also invoked
    /// on drop). Errors are reported to stderr, never panicked on — a bench
    /// run must not fail because an artifact directory is missing.
    pub fn finish(&mut self) {
        if self.records.is_empty() {
            return;
        }
        let Some(dir) = Self::output_dir() else {
            self.records.clear();
            return;
        };
        let body = format!("[\n  {}\n]\n", self.records.join(",\n  "));
        self.records.clear();
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        let result = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body));
        match result {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("BENCH_JSON: could not write {}: {e}", path.display()),
        }
    }
}

impl Drop for JsonReport {
    fn drop(&mut self) {
        self.finish();
    }
}

fn measure<F: FnOnce() -> (Metrics, Time)>(f: F) -> Measurement {
    let start = Instant::now();
    let (metrics, completed_at) = f();
    Measurement::capture(&metrics, completed_at, start)
}

/// Runs one Bracha A-cast of `ell` field elements among `n` parties
/// (synchronous network) and reports its cost (experiment E2).
pub fn run_acast(n: usize, ell: usize) -> Measurement {
    let t = (n - 1) / 3;
    measure(|| {
        let payload = BcValue::Value(vec![Fp::from_u64(7); ell]);
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|i| {
                let a = if i == 0 {
                    Acast::new_sender(0, n, t, payload.clone())
                } else {
                    Acast::new(0, n, t)
                };
                Box::new(a) as Box<dyn Protocol<Msg>>
            })
            .collect();
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties);
        sim.run_until(10_000, |s| {
            (0..n).all(|i| s.party_as::<Acast>(i).unwrap().output.is_some())
        });
        (sim.metrics().clone(), sim.now())
    })
}

/// Runs one `Π_BC` broadcast among `n` parties and reports its cost and the
/// regular-mode output time (experiment E3).
pub fn run_bc(n: usize, ell: usize, kind: NetworkKind) -> Measurement {
    let params = Params::max_thresholds(n, 10);
    measure(|| {
        let payload = BcValue::Value(vec![Fp::from_u64(3); ell]);
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|i| {
                let bc = if i == 0 {
                    Bc::new_sender(0, params.ts, params, payload.clone())
                } else {
                    Bc::new(0, params.ts, params)
                };
                Box::new(bc) as Box<dyn Protocol<Msg>>
            })
            .collect();
        let cfg = NetConfig::for_kind(n, kind);
        let mut sim = Simulation::new(cfg, CorruptionSet::none(), parties);
        sim.run_until(params.t_bc() * 20, |s| {
            (0..n).all(|i| s.party_as::<Bc>(i).unwrap().value().is_some())
        });
        (sim.metrics().clone(), sim.now())
    })
}

/// Runs one `Π_BA` instance among `n` parties with the given inputs
/// (experiment E4).
pub fn run_ba(n: usize, unanimous: bool, kind: NetworkKind) -> Measurement {
    run_ba_threads(n, unanimous, kind, None)
}

/// [`run_ba`] with an explicit simulator worker-thread count (`None` defers
/// to `MPC_THREADS`). Used by the E11 scaling sweep.
pub fn run_ba_threads(
    n: usize,
    unanimous: bool,
    kind: NetworkKind,
    threads: Option<usize>,
) -> Measurement {
    let params = Params::max_thresholds(n, 10);
    measure(|| {
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|i| {
                let input = if unanimous { true } else { i % 2 == 0 };
                Box::new(Ba::new(params.ts, params, Some(input))) as Box<dyn Protocol<Msg>>
            })
            .collect();
        let mut cfg = NetConfig::for_kind(n, kind);
        if let Some(t) = threads {
            cfg = cfg.with_threads(t);
        }
        let mut sim = Simulation::new(cfg, CorruptionSet::none(), parties);
        sim.run_until(params.t_ba() * 50, |s| {
            (0..n).all(|i| s.party_as::<Ba>(i).unwrap().output.is_some())
        });
        (sim.metrics().clone(), sim.now())
    })
}

/// Runs one `Π_WPS` instance with an honest dealer sharing `l` polynomials
/// (experiment E5).
pub fn run_wps(n: usize, l: usize) -> Measurement {
    let params = Params::max_thresholds(n, 10);
    measure(|| {
        let mut rng = StdRng::seed_from_u64(1);
        let polys: Vec<Polynomial> = (0..l)
            .map(|i| {
                Polynomial::random_with_constant_term(&mut rng, params.ts, Fp::from_u64(i as u64))
            })
            .collect();
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|i| {
                let w = if i == 0 {
                    Wps::new_dealer(0, params, polys.clone())
                } else {
                    Wps::new(0, params, l)
                };
                Box::new(w) as Box<dyn Protocol<Msg>>
            })
            .collect();
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties);
        sim.run_until(params.t_wps() * 4, |s| {
            (0..n).all(|i| s.party_as::<Wps>(i).unwrap().shares.is_some())
        });
        (sim.metrics().clone(), sim.now())
    })
}

/// Runs one `Π_VSS` instance with an honest dealer sharing `l` polynomials
/// (experiment E6).
pub fn run_vss(n: usize, l: usize) -> Measurement {
    let params = Params::max_thresholds(n, 10);
    measure(|| {
        let mut rng = StdRng::seed_from_u64(2);
        let polys: Vec<Polynomial> = (0..l)
            .map(|i| {
                Polynomial::random_with_constant_term(&mut rng, params.ts, Fp::from_u64(i as u64))
            })
            .collect();
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|i| {
                let v = if i == 0 {
                    Vss::new_dealer(0, params, polys.clone())
                } else {
                    Vss::new(0, params, l)
                };
                Box::new(v) as Box<dyn Protocol<Msg>>
            })
            .collect();
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties);
        sim.run_until(params.t_vss() * 4, |s| {
            (0..n).all(|i| s.party_as::<Vss>(i).unwrap().shares.is_some())
        });
        (sim.metrics().clone(), sim.now())
    })
}

/// Runs one `Π_ACS` instance where every party shares `l` polynomials
/// (experiment E7).
pub fn run_acs(n: usize, l: usize) -> Measurement {
    let params = Params::max_thresholds(n, 10);
    measure(|| {
        let mut rng = StdRng::seed_from_u64(3);
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|i| {
                let polys: Vec<Polynomial> = (0..l)
                    .map(|_| {
                        Polynomial::random_with_constant_term(
                            &mut rng,
                            params.ts,
                            Fp::from_u64(i as u64),
                        )
                    })
                    .collect();
                Box::new(Acs::new(params, polys)) as Box<dyn Protocol<Msg>>
            })
            .collect();
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties);
        sim.run_until(params.t_acs() * 6, |s| {
            (0..n).all(|i| s.party_as::<Acs>(i).unwrap().ready())
        });
        (sim.metrics().clone(), sim.now())
    })
}

/// Runs a full `Π_CirEval` evaluation of `circuit` (experiments E8–E10).
/// Returns the measurement and the output value.
pub fn run_cireval(
    n: usize,
    circuit: &Circuit,
    kind: NetworkKind,
    corrupt: &[usize],
    seed: u64,
) -> (Measurement, Fp) {
    run_cireval_threads(n, circuit, kind, corrupt, seed, None)
}

/// [`run_cireval`] with an explicit simulator worker-thread count (`None`
/// defers to `MPC_THREADS`). Used by the E11 scaling sweep.
pub fn run_cireval_threads(
    n: usize,
    circuit: &Circuit,
    kind: NetworkKind,
    corrupt: &[usize],
    seed: u64,
    threads: Option<usize>,
) -> (Measurement, Fp) {
    let params = Params::max_thresholds(n, 10);
    let inputs: Vec<u64> = (0..n as u64).map(|i| i + 2).collect();
    let start = Instant::now();
    let mut builder = MpcBuilder::new(n, params.ts, params.ta)
        .network(kind)
        .seed(seed)
        .inputs(&inputs)
        .corrupt(corrupt);
    if let Some(t) = threads {
        builder = builder.threads(t);
    }
    let result = builder.run(circuit).expect("benchmark run must complete");
    let m = Measurement::capture(&result.metrics, result.finished_at, start);
    (m, result.output)
}

/// [`run_cireval`] with explicit communication-batching knobs: wire-frame
/// coalescing on/off × per-layer vs per-gate Beaver openings. Used by the
/// E12 batching experiment to compare the four corners of the design space.
pub fn run_cireval_batching(
    n: usize,
    circuit: &Circuit,
    kind: NetworkKind,
    seed: u64,
    frames: bool,
    per_gate: bool,
) -> (Measurement, Fp) {
    let params = Params::max_thresholds(n, 10);
    let inputs: Vec<u64> = (0..n as u64).map(|i| i + 2).collect();
    let start = Instant::now();
    let result = MpcBuilder::new(n, params.ts, params.ta)
        .network(kind)
        .seed(seed)
        .inputs(&inputs)
        .frames(frames)
        .per_gate_openings(per_gate)
        .run(circuit)
        .expect("benchmark run must complete");
    let m = Measurement::capture(&result.metrics, result.finished_at, start);
    (m, result.output)
}

/// [`run_cireval`] on an explicit transport backend. For the thread-per-party
/// backends, `tick_micros` sets the real duration of one logical tick
/// (`0` defers to `MPC_TICK_US`); wall-clock time then includes genuine
/// tick pacing, so throughput is dominated by the simulated schedule
/// rather than raw compute. Returns the per-party honest-bit accounting
/// alongside the measurement — the transport experiment (E13) compares it
/// across backends.
pub fn run_cireval_transport(
    n: usize,
    circuit: &Circuit,
    kind: NetworkKind,
    seed: u64,
    backend: Backend,
    tick_micros: u64,
) -> (Measurement, Fp, Vec<u64>) {
    let params = Params::max_thresholds(n, 10);
    let inputs: Vec<u64> = (0..n as u64).map(|i| i + 2).collect();
    let start = Instant::now();
    let mut builder = MpcBuilder::new(n, params.ts, params.ta)
        .network(kind)
        .seed(seed)
        .inputs(&inputs)
        .transport(backend);
    if backend != Backend::Simulator && tick_micros > 0 {
        builder = builder.tick_micros(tick_micros);
    }
    let result = builder.run(circuit).expect("benchmark run must complete");
    let m = Measurement::capture(&result.metrics, result.finished_at, start);
    let by_party = result.metrics.honest_bits_by_party.clone();
    (m, result.output, by_party)
}

/// [`run_cireval`] on the packed (Franklin–Yung SIMD) engine at width `ell`
/// (`0` = scalar baseline), on an explicit transport backend. Thresholds are
/// pinned at `t_s = t_a = 1` rather than `Params::max_thresholds` so the
/// packing-width sweep `ℓ ∈ {1, …, n − 3}` stays feasible at every `n` —
/// the E14 experiment varies `ℓ` at fixed resilience.
pub fn run_cireval_packed(
    n: usize,
    circuit: &Circuit,
    kind: NetworkKind,
    seed: u64,
    ell: usize,
    backend: Backend,
) -> (Measurement, Fp) {
    let inputs: Vec<u64> = (0..n as u64).map(|i| i + 2).collect();
    let start = Instant::now();
    // The threaded backend's column-distinct link sampler needs
    // `Δ − 2 ≥ n − 1`; grow Δ with n so the sweep's larger party counts run
    // on both backends.
    let delta = (n as Time + 2).max(NetConfig::DEFAULT_DELTA);
    let result = MpcBuilder::new(n, 1, 1)
        .network(kind)
        .delta(delta)
        .seed(seed)
        .inputs(&inputs)
        .packing(ell)
        .transport(backend)
        .run(circuit)
        .expect("benchmark run must complete");
    let m = Measurement::capture(&result.metrics, result.finished_at, start);
    (m, result.output)
}

/// Runs a full evaluation on an explicitly fast asynchronous network
/// (actual delay `δ ≪ Δ`), used by experiment E10 to demonstrate
/// responsiveness.
pub fn run_cireval_fast_async(
    n: usize,
    circuit: &Circuit,
    max_delay: Time,
    seed: u64,
) -> (Measurement, Fp) {
    let params = Params::max_thresholds(n, 10);
    let inputs: Vec<u64> = (0..n as u64).map(|i| i + 2).collect();
    let start = Instant::now();
    let result = MpcBuilder::new(n, params.ts, params.ta)
        .network(NetworkKind::Asynchronous)
        .scheduler(Box::new(UniformDelay {
            min: 1,
            max: max_delay,
        }))
        .seed(seed)
        .inputs(&inputs)
        .run(circuit)
        .expect("benchmark run must complete");
    let m = Measurement::capture(&result.metrics, result.finished_at, start);
    (m, result.output)
}

/// Re-export used by the benchmark binaries to double-check outputs.
pub fn expected_clear(n: usize, circuit: &Circuit) -> Fp {
    let inputs: Vec<Fp> = (0..n as u64).map(|i| Fp::from_u64(i + 2)).collect();
    circuit.evaluate_clear(&inputs)
}

/// Keeps `CirEval` a referenced type so the builder-based runners above stay
/// aligned with the lower-level API (compile-time check only).
#[allow(dead_code)]
fn _type_check(p: &CirEval) -> &CirEval {
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runners_produce_nonzero_measurements() {
        let m = run_acast(4, 4);
        assert!(m.honest_bits > 0 && m.completed_at > 0);
        let m = run_bc(4, 1, NetworkKind::Synchronous);
        assert!(m.honest_bits > 0);
    }

    #[test]
    fn cireval_runner_matches_cleartext() {
        let circuit = Circuit::product_of_inputs(4);
        let (_, out) = run_cireval(4, &circuit, NetworkKind::Synchronous, &[], 9);
        assert_eq!(out, expected_clear(4, &circuit));
    }
}
