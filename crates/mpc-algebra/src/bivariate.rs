//! `(ℓ,ℓ)`-degree symmetric bivariate polynomials (Section 2 of the paper).
//!
//! A symmetric bivariate polynomial `F(x, y) = Σ r_ij x^i y^j` with
//! `r_ij = r_ji` satisfies `F(α_j, α_i) = F(α_i, α_j)` and
//! `F(x, α_i) = F(α_i, y)`. The VSS dealer embeds its secret-sharing
//! polynomial `q(·)` at `x = 0` (`F(0, y) = q(y)`) and hands party `P_i` the
//! univariate row polynomial `f_i(x) = F(x, α_i)`.
//!
//! [`SymmetricBivariate::interpolate_rows`] implements the direction of
//! Lemma 2.1: sufficiently many pairwise-consistent row polynomials determine
//! a unique symmetric bivariate polynomial.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::domain::LagrangeBasis;
use crate::field::Fp;
use crate::poly::Polynomial;

/// An `(ℓ,ℓ)`-degree symmetric bivariate polynomial over `GF(2^61-1)`.
///
/// Stored as the `(ℓ+1)×(ℓ+1)` coefficient matrix `r_ij` with the invariant
/// `r_ij = r_ji`.
///
/// ```
/// use mpc_algebra::{Fp, Polynomial, SymmetricBivariate};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let secret_poly = Polynomial::random_with_constant_term(&mut rng, 2, Fp::from_u64(9));
/// let f = SymmetricBivariate::embedding(&mut rng, 2, &secret_poly);
/// // F(0, y) = q(y) and symmetry F(a, b) = F(b, a)
/// let a = Fp::from_u64(3);
/// let b = Fp::from_u64(7);
/// assert_eq!(f.evaluate(Fp::ZERO, a), secret_poly.evaluate(a));
/// assert_eq!(f.evaluate(a, b), f.evaluate(b, a));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymmetricBivariate {
    degree: usize,
    /// coeffs[i][j] multiplies x^i y^j; kept symmetric.
    coeffs: Vec<Vec<Fp>>,
}

impl SymmetricBivariate {
    /// Samples a uniformly random `(degree, degree)`-degree symmetric
    /// bivariate polynomial.
    // Index loops: every draw writes the mirrored pair (i,j) and (j,i).
    #[allow(clippy::needless_range_loop)]
    pub fn random<R: Rng + ?Sized>(rng: &mut R, degree: usize) -> Self {
        let mut coeffs = vec![vec![Fp::ZERO; degree + 1]; degree + 1];
        for i in 0..=degree {
            for j in i..=degree {
                let v = Fp::random(rng);
                coeffs[i][j] = v;
                coeffs[j][i] = v;
            }
        }
        SymmetricBivariate { degree, coeffs }
    }

    /// Samples a random symmetric bivariate polynomial `F` of the given degree
    /// such that `F(0, y) = q(y)` — the dealer's embedding of its sharing
    /// polynomial `q(·)` (Phase I of `Π_WPS` / `Π_VSS`).
    ///
    /// # Panics
    ///
    /// Panics if `q.degree() > degree`.
    pub fn embedding<R: Rng + ?Sized>(rng: &mut R, degree: usize, q: &Polynomial) -> Self {
        assert!(
            q.degree() <= degree || q.is_zero(),
            "secret polynomial degree exceeds bivariate degree"
        );
        let mut f = Self::random(rng, degree);
        // Overwrite row/column 0 so that F(0, y) = q(y): coefficient of x^0 y^j
        // must equal q_j (and by symmetry coefficient of x^j y^0 too).
        for j in 0..=degree {
            let qj = q.coeffs().get(j).copied().unwrap_or(Fp::ZERO);
            f.coeffs[0][j] = qj;
            f.coeffs[j][0] = qj;
        }
        f
    }

    /// The degree `ℓ` of the polynomial in each variable.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Evaluates `F(x, y)`.
    pub fn evaluate(&self, x: Fp, y: Fp) -> Fp {
        // Horner in x of polynomials in y.
        let mut acc = Fp::ZERO;
        for i in (0..=self.degree).rev() {
            let mut row = Fp::ZERO;
            for j in (0..=self.degree).rev() {
                row = row * y + self.coeffs[i][j];
            }
            acc = acc * x + row;
        }
        acc
    }

    /// The row polynomial `f_i(x) = F(x, α)` handed to the party with
    /// evaluation point `α` (equal to `F(α, y)` by symmetry).
    pub fn row(&self, alpha: Fp) -> Polynomial {
        // F(x, α) = Σ_i ( Σ_j r_ij α^j ) x^i
        let mut coeffs = vec![Fp::ZERO; self.degree + 1];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let mut acc = Fp::ZERO;
            for j in (0..=self.degree).rev() {
                acc = acc * alpha + self.coeffs[i][j];
            }
            *c = acc;
        }
        Polynomial::from_coeffs(coeffs)
    }

    /// The secret-sharing polynomial `q(y) = F(0, y)` embedded by the dealer.
    pub fn secret_polynomial(&self) -> Polynomial {
        Polynomial::from_coeffs(self.coeffs[0].clone())
    }

    /// The secret `F(0, 0)`.
    pub fn secret(&self) -> Fp {
        self.coeffs[0][0]
    }

    /// Reconstructs the unique `(d, d)`-degree symmetric bivariate polynomial
    /// from at least `d + 1` pairwise-consistent row polynomials
    /// (Lemma 2.1).
    ///
    /// `rows` maps an evaluation point `α_i` to the row polynomial
    /// `f_i(x) = F(x, α_i)`. Returns `None` if fewer than `d + 1` rows are
    /// given, if any row has degree `> d`, or if the rows are not pairwise
    /// consistent (i.e. they do not lie on a common symmetric bivariate
    /// polynomial).
    pub fn interpolate_rows(d: usize, rows: &[(Fp, Polynomial)]) -> Option<Self> {
        if rows.len() < d + 1 {
            return None;
        }
        if rows.iter().any(|(_, f)| f.degree() > d && !f.is_zero()) {
            return None;
        }
        let use_rows = &rows[..d + 1];
        // For each x-power i, interpolate the polynomial in y through the
        // points (α_k, coeff_i(f_k)). All d + 1 interpolations run over the
        // same d + 1 evaluation points, so the Lagrange basis (master
        // polynomial, barycentric weights) is built exactly once.
        let basis = LagrangeBasis::new(use_rows.iter().map(|&(alpha, _)| alpha).collect());
        let mut coeffs = vec![vec![Fp::ZERO; d + 1]; d + 1];
        for (i, out_row) in coeffs.iter_mut().enumerate() {
            let ys: Vec<Fp> = use_rows
                .iter()
                .map(|(_, f)| f.coeffs().get(i).copied().unwrap_or(Fp::ZERO))
                .collect();
            let gi = basis.interpolate(&ys);
            if gi.degree() > d && !gi.is_zero() {
                return None;
            }
            for (j, v) in out_row.iter_mut().enumerate() {
                *v = gi.coeffs().get(j).copied().unwrap_or(Fp::ZERO);
            }
        }
        let candidate = SymmetricBivariate { degree: d, coeffs };
        // Verify symmetry and consistency with *all* provided rows.
        for i in 0..=d {
            for j in 0..i {
                if candidate.coeffs[i][j] != candidate.coeffs[j][i] {
                    return None;
                }
            }
        }
        for (alpha, f) in rows {
            if &candidate.row(*alpha) != f {
                return None;
            }
        }
        Some(candidate)
    }

    /// Checks the pairwise-consistency relation `f_i(α_j) == f_j(α_i)` between
    /// two (point, row-polynomial) pairs — the test parties perform during
    /// Phase II/III of `Π_WPS`/`Π_VSS`.
    pub fn rows_consistent(a: (Fp, &Polynomial), b: (Fp, &Polynomial)) -> bool {
        a.1.evaluate(b.0) == b.1.evaluate(a.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation_points::alpha;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn embedding_preserves_secret_polynomial() {
        let mut rng = StdRng::seed_from_u64(11);
        let q = Polynomial::random_with_constant_term(&mut rng, 3, Fp::from_u64(1234));
        let f = SymmetricBivariate::embedding(&mut rng, 3, &q);
        assert_eq!(f.secret_polynomial(), q);
        assert_eq!(f.secret(), Fp::from_u64(1234));
        for x in 1..10u64 {
            assert_eq!(
                f.evaluate(Fp::ZERO, Fp::from_u64(x)),
                q.evaluate(Fp::from_u64(x))
            );
        }
    }

    #[test]
    fn rows_are_pairwise_consistent() {
        let mut rng = StdRng::seed_from_u64(12);
        let f = SymmetricBivariate::random(&mut rng, 4);
        let n = 9;
        let rows: Vec<(Fp, Polynomial)> = (0..n).map(|i| (alpha(i), f.row(alpha(i)))).collect();
        for (i, a) in rows.iter().enumerate() {
            for b in rows.iter().skip(i + 1) {
                assert!(SymmetricBivariate::rows_consistent(
                    (a.0, &a.1),
                    (b.0, &b.1)
                ));
            }
        }
    }

    #[test]
    fn row_constant_term_is_secret_share() {
        // f_i(0) = F(0, α_i) = q(α_i): the party's share of the secret.
        let mut rng = StdRng::seed_from_u64(13);
        let q = Polynomial::random_with_constant_term(&mut rng, 2, Fp::from_u64(5));
        let f = SymmetricBivariate::embedding(&mut rng, 2, &q);
        for i in 0..7 {
            assert_eq!(f.row(alpha(i)).constant_term(), q.evaluate(alpha(i)));
        }
    }

    #[test]
    fn interpolate_rows_recovers_polynomial() {
        let mut rng = StdRng::seed_from_u64(14);
        let d = 3;
        let f = SymmetricBivariate::random(&mut rng, d);
        let rows: Vec<(Fp, Polynomial)> = (0..d + 1).map(|i| (alpha(i), f.row(alpha(i)))).collect();
        let g = SymmetricBivariate::interpolate_rows(d, &rows).expect("consistent rows");
        assert_eq!(f, g);
    }

    #[test]
    fn interpolate_rows_rejects_inconsistent_rows() {
        let mut rng = StdRng::seed_from_u64(15);
        let d = 3;
        let f = SymmetricBivariate::random(&mut rng, d);
        let mut rows: Vec<(Fp, Polynomial)> =
            (0..d + 2).map(|i| (alpha(i), f.row(alpha(i)))).collect();
        // tamper with one row
        rows[1].1 = rows[1].1.add(&Polynomial::constant(Fp::ONE));
        assert!(SymmetricBivariate::interpolate_rows(d, &rows).is_none());
    }

    #[test]
    fn interpolate_rows_requires_enough_rows() {
        let mut rng = StdRng::seed_from_u64(16);
        let d = 4;
        let f = SymmetricBivariate::random(&mut rng, d);
        let rows: Vec<(Fp, Polynomial)> = (0..d).map(|i| (alpha(i), f.row(alpha(i)))).collect();
        assert!(SymmetricBivariate::interpolate_rows(d, &rows).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_symmetry(seed in any::<u64>(), d in 1usize..6, a in any::<u64>(), b in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = SymmetricBivariate::random(&mut rng, d);
            let a = Fp::from_u64(a);
            let b = Fp::from_u64(b);
            prop_assert_eq!(f.evaluate(a, b), f.evaluate(b, a));
        }

        #[test]
        fn prop_row_matches_evaluate(seed in any::<u64>(), d in 1usize..6, i in 0usize..20, x in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = SymmetricBivariate::random(&mut rng, d);
            let x = Fp::from_u64(x);
            prop_assert_eq!(f.row(alpha(i)).evaluate(x), f.evaluate(x, alpha(i)));
        }

        #[test]
        fn prop_lemma_2_1_roundtrip(seed in any::<u64>(), d in 1usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = SymmetricBivariate::random(&mut rng, d);
            let rows: Vec<(Fp, Polynomial)> =
                (0..d + 2).map(|i| (alpha(i), f.row(alpha(i)))).collect();
            let g = SymmetricBivariate::interpolate_rows(d, &rows).unwrap();
            prop_assert_eq!(f, g);
        }
    }
}
