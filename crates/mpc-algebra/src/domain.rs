//! Shared evaluation-domain cache for the fixed party points `α_0..α_{n-1}`.
//!
//! Every protocol layer of the stack interpolates over the same publicly
//! known evaluation points (Section 2 of the paper fixes `α_1..α_n` once for
//! the whole execution). This module precomputes — once per `n`, shared
//! process-wide behind an [`Arc`] — everything those interpolations need:
//!
//! * the monic master polynomial `M(x) = ∏_j (x − α_j)`,
//! * the barycentric weights `w_i = 1 / ∏_{j≠i} (α_i − α_j)` (batch-inverted
//!   via [`Fp::batch_inverse`]: one inversion for all `n`),
//! * the Lagrange-at-zero coefficients `λ_i` with `f(0) = Σ_i λ_i · f(α_i)`
//!   for every `f` of degree `< n` — full-domain secret reconstruction is an
//!   `O(n)` dot product,
//! * the inverses `α_i⁻¹`, from which the `λ` vector of any *subset* of the
//!   domain is derived without a single additional field inversion.
//!
//! [`LagrangeBasis`] is the reusable point-set form of the same idea for
//! ad-hoc `x` coordinates (e.g. a support set fixed for `ℓ` consecutive
//! interpolations, or the `α ∪ β` points of triple extraction).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::evaluation_points::alpha;
use crate::field::Fp;
use crate::poly::{self, Polynomial};

/// Precomputed Lagrange interpolation data for one fixed set of distinct
/// `x` coordinates.
///
/// Building the basis costs `O(k²)` multiplications and **one** field
/// inversion; afterwards each [`LagrangeBasis::interpolate`] is `O(k²)`
/// multiplications with *no* inversions and each
/// [`LagrangeBasis::lambda_at`] is `O(k)` multiplications plus one batched
/// inversion.
///
/// ```
/// use mpc_algebra::{Fp, LagrangeBasis, Polynomial};
/// let xs = vec![Fp::from_u64(1), Fp::from_u64(2), Fp::from_u64(5)];
/// let basis = LagrangeBasis::new(xs.clone());
/// let f = Polynomial::from_coeffs(vec![Fp::from_u64(4), Fp::from_u64(3), Fp::from_u64(2)]);
/// let ys: Vec<Fp> = xs.iter().map(|&x| f.evaluate(x)).collect();
/// assert_eq!(basis.interpolate(&ys), f);
/// let lambda = basis.lambda_at(Fp::ZERO);
/// let recon: Fp = lambda.iter().zip(&ys).map(|(&l, &y)| l * y).sum();
/// assert_eq!(recon, f.evaluate(Fp::ZERO));
/// ```
#[derive(Clone, Debug)]
pub struct LagrangeBasis {
    xs: Vec<Fp>,
    /// Coefficients (low to high) of the monic `M(x) = ∏ (x − x_i)`.
    master: Vec<Fp>,
    /// Barycentric weights `w_i = 1 / M′(x_i)`.
    weights: Vec<Fp>,
    /// Row-major `k×k` matrix: row `i` holds the coefficients of the
    /// numerator polynomial `q_i(x) = ∏_{j≠i} (x − x_j)`, so interpolation
    /// is a pure scale-accumulate over precomputed rows. Built lazily on
    /// the first [`LagrangeBasis::interpolate`] call: the long-lived
    /// [`EvalDomain`]-cached bases only ever evaluate `λ` vectors and would
    /// otherwise carry `O(k²)` dead weight for the process lifetime.
    numerators: OnceLock<Vec<Fp>>,
}

impl LagrangeBasis {
    /// Builds the basis for the given distinct `x` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains duplicates.
    pub fn new(xs: Vec<Fp>) -> Self {
        assert!(!xs.is_empty(), "need at least one evaluation point");
        let master = poly::master_polynomial(xs.iter().copied());
        // The weights are the batch-inverted derivative values
        // M′(x_i) = ∏_{j≠i}(x_i − x_j).
        let deriv = poly::derivative_coeffs(&master);
        let mut weights: Vec<Fp> = xs.iter().map(|&x| poly::horner(&deriv, x)).collect();
        assert!(
            weights.iter().all(|w| !w.is_zero()),
            "duplicate x coordinate"
        );
        Fp::batch_inverse(&mut weights);
        LagrangeBasis {
            xs,
            master,
            weights,
            numerators: OnceLock::new(),
        }
    }

    /// The lazily built numerator-row matrix (see the field docs).
    fn numerator_matrix(&self) -> &[Fp] {
        self.numerators
            .get_or_init(|| poly::numerator_rows(&self.master, &self.xs).0)
    }

    /// The basis point set.
    pub fn xs(&self) -> &[Fp] {
        &self.xs
    }

    /// Number of basis points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` only for the (unconstructible) empty basis; kept for API
    /// completeness next to [`LagrangeBasis::len`].
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The barycentric weights `w_i = 1/∏_{j≠i}(x_i − x_j)`.
    pub fn weights(&self) -> &[Fp] {
        &self.weights
    }

    /// Interpolates the unique polynomial of degree `< k` through
    /// `(x_i, ys[i])` — `O(k²)` multiplications, zero inversions.
    ///
    /// # Panics
    ///
    /// Panics if `ys.len() != self.len()`.
    pub fn interpolate(&self, ys: &[Fp]) -> Polynomial {
        assert_eq!(ys.len(), self.xs.len(), "value/point count mismatch");
        let n = self.xs.len();
        let mut result = vec![Fp::ZERO; n];
        for ((row, &yi), &wi) in self
            .numerator_matrix()
            .chunks_exact(n)
            .zip(ys)
            .zip(&self.weights)
        {
            let scale = yi * wi;
            for (r, &q) in result.iter_mut().zip(row) {
                *r += q * scale;
            }
        }
        Polynomial::from_coeffs(result)
    }

    /// The Lagrange evaluation vector at `target`: `f(target) = Σ λ_i · ys[i]`
    /// for every `f` of degree `< k`. Barycentric form: `λ_i = M(target) ·
    /// w_i / (target − x_i)`, with the divisions batched into one inversion.
    /// If `target` is itself a basis point the vector is the indicator of
    /// that point.
    pub fn lambda_at(&self, target: Fp) -> Vec<Fp> {
        let n = self.xs.len();
        let mut diffs: Vec<Fp> = self.xs.iter().map(|&x| target - x).collect();
        if let Some(hit) = diffs.iter().position(|d| d.is_zero()) {
            let mut lambda = vec![Fp::ZERO; n];
            lambda[hit] = Fp::ONE;
            return lambda;
        }
        let m_at_target = poly::horner(&self.master, target);
        Fp::batch_inverse(&mut diffs);
        self.weights
            .iter()
            .zip(&diffs)
            .map(|(&w, &dinv)| m_at_target * w * dinv)
            .collect()
    }

    /// Evaluates the degree `< k` polynomial through `(x_i, ys[i])` at
    /// `target` without materialising its coefficients.
    pub fn eval_at(&self, ys: &[Fp], target: Fp) -> Fp {
        assert_eq!(ys.len(), self.xs.len(), "value/point count mismatch");
        self.lambda_at(target)
            .iter()
            .zip(ys)
            .map(|(&l, &y)| l * y)
            .sum()
    }
}

/// The process-wide cached evaluation domain over the party points
/// `α_0..α_{n-1}` for one network size `n`.
///
/// Obtain shared handles through [`EvalDomain::get`]; construction cost is
/// paid once per `n` per process.
///
/// ```
/// use mpc_algebra::{EvalDomain, Fp, Polynomial};
/// use rand::{rngs::StdRng, SeedableRng};
/// let domain = EvalDomain::get(7);
/// let mut rng = StdRng::seed_from_u64(5);
/// let f = Polynomial::random_with_constant_term(&mut rng, 6, Fp::from_u64(99));
/// let shares: Vec<Fp> = domain.alphas().iter().map(|&a| f.evaluate(a)).collect();
/// assert_eq!(domain.reconstruct_at_zero(&shares), Fp::from_u64(99));
/// ```
#[derive(Debug)]
pub struct EvalDomain {
    n: usize,
    basis: LagrangeBasis,
    lambda_zero: Vec<Fp>,
    inv_alphas: Vec<Fp>,
    /// Lazily built bases over the prefixes `α_0..α_{k-1}` — the point sets
    /// of the triple transformation/extraction interpolations.
    prefix_bases: Mutex<HashMap<usize, Arc<LagrangeBasis>>>,
}

impl EvalDomain {
    /// Builds the domain for `n` parties. Prefer [`EvalDomain::get`], which
    /// shares one instance per `n` across the whole process.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        let basis = LagrangeBasis::new((0..n).map(alpha).collect());
        let lambda_zero = basis.lambda_at(Fp::ZERO);
        let mut inv_alphas = basis.xs().to_vec();
        Fp::batch_inverse(&mut inv_alphas);
        EvalDomain {
            n,
            basis,
            lambda_zero,
            inv_alphas,
            prefix_bases: Mutex::new(HashMap::new()),
        }
    }

    /// The shared basis over the domain prefix `α_0..α_{k-1}`, built on
    /// first use and cached for the lifetime of the domain. This is the
    /// point set of every `Π_TripTrans`/`Π_TripExt` interpolation (the first
    /// `k` raw triples define the transformed polynomials).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds `n`.
    pub fn prefix_basis(&self, k: usize) -> Arc<LagrangeBasis> {
        assert!(
            k >= 1 && k <= self.n,
            "prefix size {k} not in 1..={}",
            self.n
        );
        let mut map = self.prefix_bases.lock().expect("prefix cache poisoned");
        map.entry(k)
            .or_insert_with(|| Arc::new(LagrangeBasis::new(self.basis.xs()[..k].to_vec())))
            .clone()
    }

    /// The shared, cached domain for `n` parties.
    pub fn get(n: usize) -> Arc<EvalDomain> {
        static CACHE: OnceLock<Mutex<HashMap<usize, Arc<EvalDomain>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(Default::default);
        let mut map = cache.lock().expect("domain cache poisoned");
        map.entry(n)
            .or_insert_with(|| Arc::new(EvalDomain::new(n)))
            .clone()
    }

    /// Number of parties `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cached party points `α_0..α_{n-1}`.
    pub fn alphas(&self) -> &[Fp] {
        self.basis.xs()
    }

    /// `α_i` (0-indexed party id), from the cache.
    pub fn alpha(&self, i: usize) -> Fp {
        self.basis.xs()[i]
    }

    /// The full-domain Lagrange basis over all `n` party points.
    pub fn basis(&self) -> &LagrangeBasis {
        &self.basis
    }

    /// The Lagrange-at-zero coefficients over the full domain:
    /// `f(0) = Σ_i λ_i · f(α_i)` for every `f` of degree `< n`.
    pub fn lambda_zero(&self) -> &[Fp] {
        &self.lambda_zero
    }

    /// Full-domain secret reconstruction as an `O(n)` dot product. The
    /// caller must supply exactly one (trusted, error-free) share per party.
    ///
    /// # Panics
    ///
    /// Panics if `shares.len() != n`.
    pub fn reconstruct_at_zero(&self, shares: &[Fp]) -> Fp {
        assert_eq!(shares.len(), self.n, "need one share per party");
        self.lambda_zero
            .iter()
            .zip(shares)
            .map(|(&l, &s)| l * s)
            .sum()
    }

    /// Lagrange-at-zero coefficients for a *subset* of the domain: for every
    /// `f` of degree `< indices.len()`,
    /// `f(0) = Σ_k λ_k · f(α_{indices[k]})`.
    ///
    /// Derived entirely from the cached full-domain weights and `α⁻¹`
    /// values — `O(k·(n−k) + k)` multiplications, **zero** inversions: the
    /// subset weight is `w_i · ∏_{j∉S}(α_i − α_j)` and the `x = 0` factor is
    /// `−α_i⁻¹ · ∏_{j∈S}(−α_j)`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty, contains duplicates, or references a
    /// party `≥ n`.
    pub fn lagrange_at_zero(&self, indices: &[usize]) -> Vec<Fp> {
        assert!(!indices.is_empty(), "need at least one share index");
        let mut in_subset = vec![false; self.n];
        for &i in indices {
            assert!(i < self.n, "party index {i} out of domain 0..{}", self.n);
            assert!(!in_subset[i], "duplicate party index {i}");
            in_subset[i] = true;
        }
        let complement: Vec<Fp> = (0..self.n)
            .filter(|&j| !in_subset[j])
            .map(|j| self.basis.xs()[j])
            .collect();
        // M_S(0) = ∏_{j∈S} (0 − α_j)
        let m_s_at_zero: Fp = indices.iter().map(|&j| -self.basis.xs()[j]).product();
        indices
            .iter()
            .map(|&i| {
                let ai = self.basis.xs()[i];
                // w_i^S = w_i · ∏_{j∉S} (α_i − α_j)
                let w_sub: Fp =
                    complement.iter().map(|&aj| ai - aj).product::<Fp>() * self.basis.weights()[i];
                // λ_i = M_S(0) · w_i^S / (0 − α_i)
                m_s_at_zero * w_sub * (-self.inv_alphas[i])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basis_interpolate_matches_generic() {
        let mut rng = StdRng::seed_from_u64(1);
        for deg in 0..9 {
            let f = Polynomial::random(&mut rng, deg);
            let xs: Vec<Fp> = (0..=deg).map(alpha).collect();
            let ys: Vec<Fp> = xs.iter().map(|&x| f.evaluate(x)).collect();
            let basis = LagrangeBasis::new(xs.clone());
            assert_eq!(basis.interpolate(&ys), f, "degree {deg}");
            let pts: Vec<(Fp, Fp)> = xs.iter().copied().zip(ys.iter().copied()).collect();
            assert_eq!(basis.interpolate(&ys), Polynomial::interpolate(&pts));
        }
    }

    #[test]
    fn lambda_at_basis_point_is_indicator() {
        let basis = LagrangeBasis::new((0..5).map(alpha).collect());
        let lambda = basis.lambda_at(alpha(3));
        for (i, &l) in lambda.iter().enumerate() {
            assert_eq!(l, if i == 3 { Fp::ONE } else { Fp::ZERO });
        }
    }

    #[test]
    #[should_panic(expected = "duplicate x coordinate")]
    fn duplicate_points_rejected() {
        let _ = LagrangeBasis::new(vec![alpha(1), alpha(1)]);
    }

    #[test]
    fn domain_is_cached_and_shared() {
        let a = EvalDomain::get(9);
        let b = EvalDomain::get(9);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.n(), 9);
        assert_eq!(a.alphas().len(), 9);
        assert_eq!(a.alpha(4), alpha(4));
    }

    #[test]
    fn prefix_basis_is_cached() {
        let domain = EvalDomain::get(8);
        let a = domain.prefix_basis(3);
        let b = domain.prefix_basis(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.xs(), &domain.alphas()[..3]);
    }

    #[test]
    fn full_domain_reconstruction_is_dot_product() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10;
        let domain = EvalDomain::get(n);
        let f = Polynomial::random(&mut rng, n - 1);
        let shares: Vec<Fp> = domain.alphas().iter().map(|&a| f.evaluate(a)).collect();
        assert_eq!(domain.reconstruct_at_zero(&shares), f.constant_term());
    }

    #[test]
    fn subset_lambda_matches_generic_coefficients() {
        let n = 11;
        let domain = EvalDomain::get(n);
        for subset in [vec![0usize, 3, 7], vec![10, 2, 5, 1], (0..n).collect()] {
            let xs: Vec<Fp> = subset.iter().map(|&i| alpha(i)).collect();
            let generic = Polynomial::lagrange_coefficients(&xs, Fp::ZERO);
            assert_eq!(domain.lagrange_at_zero(&subset), generic, "{subset:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_lambda_at_matches_evaluation(
            seed in any::<u64>(),
            k in 1usize..9,
            target in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = Polynomial::random(&mut rng, k - 1);
            let xs: Vec<Fp> = (0..k).map(alpha).collect();
            let ys: Vec<Fp> = xs.iter().map(|&x| f.evaluate(x)).collect();
            let basis = LagrangeBasis::new(xs);
            let target = Fp::from_u64(target);
            prop_assert_eq!(basis.eval_at(&ys, target), f.evaluate(target));
        }
    }
}
