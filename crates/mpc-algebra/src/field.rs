//! The prime field `GF(p)` with `p = 2^61 - 1` (a Mersenne prime).
//!
//! The paper only requires `|F| > 2n`; we pick a 61-bit Mersenne prime so that
//! field elements fit in a `u64`, products fit in a `u128`, and reduction is a
//! couple of shifts. All protocol values, shares and polynomial coefficients
//! are elements of this field.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::distributions::{Distribution, Standard};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The field modulus `p = 2^61 - 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of the prime field `GF(2^61 - 1)`.
///
/// The canonical representative is always kept in `[0, p)`.
///
/// ```
/// use mpc_algebra::Fp;
/// let a = Fp::from_u64(7);
/// let b = Fp::from_u64(5);
/// assert_eq!((a + b).as_u64(), 12);
/// assert_eq!((a * b).as_u64(), 35);
/// assert_eq!(a * a.inverse().unwrap(), Fp::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Creates a field element from an arbitrary `u64`, reducing modulo `p`.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        Fp(v % MODULUS)
    }

    /// Creates a field element from an arbitrary `u128`, reducing modulo `p`.
    #[inline]
    pub fn from_u128(v: u128) -> Self {
        Fp(reduce128(v))
    }

    /// Returns the canonical representative in `[0, p)`.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Modular exponentiation `self^exp`.
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Fp::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse, or `None` for zero.
    ///
    /// Computed as `self^(p-2)` (Fermat).
    pub fn inverse(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(MODULUS - 2))
        }
    }

    /// Inverts every non-zero element of `values` in place using Montgomery's
    /// batch-inversion trick: `k` inversions cost **one** field inversion plus
    /// `3k` multiplications, instead of `k` Fermat exponentiations (~120
    /// multiplications each). Zero entries are left unchanged (zero has no
    /// inverse), matching [`Fp::inverse`] returning `None` for them.
    ///
    /// ```
    /// use mpc_algebra::Fp;
    /// let mut v = [Fp::from_u64(3), Fp::ZERO, Fp::from_u64(7)];
    /// Fp::batch_inverse(&mut v);
    /// assert_eq!(v[0], Fp::from_u64(3).inverse().unwrap());
    /// assert_eq!(v[1], Fp::ZERO);
    /// assert_eq!(v[2], Fp::from_u64(7).inverse().unwrap());
    /// ```
    pub fn batch_inverse(values: &mut [Fp]) {
        // prefix[i] = product of the non-zero entries of values[..i]
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = Fp::ONE;
        for &v in values.iter() {
            prefix.push(acc);
            if !v.is_zero() {
                acc *= v;
            }
        }
        // `acc` is a product of non-zero elements, hence non-zero.
        let mut suffix_inv = acc.inverse().expect("product of non-zero elements");
        for i in (0..values.len()).rev() {
            if values[i].is_zero() {
                continue;
            }
            let v = values[i];
            values[i] = suffix_inv * prefix[i];
            suffix_inv *= v;
        }
    }

    /// Samples a uniformly random field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling on 61 bits keeps the distribution exactly uniform.
        loop {
            let v = rng.gen::<u64>() & MODULUS;
            if v < MODULUS {
                return Fp(v);
            }
        }
    }
}

/// Fast reduction of a 128-bit value modulo the Mersenne prime `2^61 - 1`.
#[inline]
fn reduce128(v: u128) -> u64 {
    // Split into 61-bit limbs: v = hi·2^61 + lo ≡ hi + lo (mod 2^61 - 1).
    // `hi` may exceed 64 bits for arbitrary u128 inputs, so keep it in u128
    // and fold it once more before dropping to u64.
    let lo = (v as u64) & MODULUS;
    let hi = v >> 61;
    let hi_lo = (hi as u64) & MODULUS;
    let hi_hi = (hi >> 61) as u64;
    let mut r = lo + hi_lo + hi_hi;
    while r >= MODULUS {
        r -= MODULUS;
    }
    r
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp {
    fn from(v: u64) -> Self {
        Fp::from_u64(v)
    }
}

impl From<u32> for Fp {
    fn from(v: u32) -> Self {
        Fp::from_u64(v as u64)
    }
}

impl Add for Fp {
    type Output = Fp;
    #[inline]
    fn add(self, rhs: Fp) -> Fp {
        let mut s = self.0 + rhs.0;
        if s >= MODULUS {
            s -= MODULUS;
        }
        Fp(s)
    }
}

impl Sub for Fp {
    type Output = Fp;
    #[inline]
    fn sub(self, rhs: Fp) -> Fp {
        if self.0 >= rhs.0 {
            Fp(self.0 - rhs.0)
        } else {
            Fp(self.0 + MODULUS - rhs.0)
        }
    }
}

impl Mul for Fp {
    type Output = Fp;
    #[inline]
    fn mul(self, rhs: Fp) -> Fp {
        Fp(reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Div for Fp {
    type Output = Fp;
    /// # Panics
    /// Panics if `rhs` is zero.
    #[inline]
    // Field division *is* multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Fp) -> Fp {
        self * rhs.inverse().expect("division by zero in Fp")
    }
}

impl Neg for Fp {
    type Output = Fp;
    #[inline]
    fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(MODULUS - self.0)
        }
    }
}

impl AddAssign for Fp {
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp {
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp {
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}
impl DivAssign for Fp {
    fn div_assign(&mut self, rhs: Fp) {
        *self = *self / rhs;
    }
}

impl Sum for Fp {
    fn sum<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Fp> for Fp {
    fn sum<I: Iterator<Item = &'a Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, |a, b| a + *b)
    }
}

impl Product for Fp {
    fn product<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ONE, |a, b| a * b)
    }
}

impl Distribution<Fp> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Fp {
        Fp::random(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arb_fp() -> impl Strategy<Value = Fp> {
        any::<u64>().prop_map(Fp::from_u64)
    }

    #[test]
    fn constants() {
        assert_eq!(Fp::ZERO.as_u64(), 0);
        assert_eq!(Fp::ONE.as_u64(), 1);
        assert_eq!(MODULUS, 2305843009213693951);
    }

    #[test]
    fn add_wraps() {
        let a = Fp::from_u64(MODULUS - 1);
        assert_eq!((a + Fp::ONE), Fp::ZERO);
        assert_eq!((a + Fp::from_u64(5)).as_u64(), 4);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!((Fp::ZERO - Fp::ONE).as_u64(), MODULUS - 1);
    }

    #[test]
    fn neg_zero_is_zero() {
        assert_eq!(-Fp::ZERO, Fp::ZERO);
    }

    #[test]
    fn mul_large_values() {
        let a = Fp::from_u64(MODULUS - 1);
        // (p-1)^2 = p^2 - 2p + 1 ≡ 1 (mod p)
        assert_eq!(a * a, Fp::ONE);
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(Fp::ZERO.inverse().is_none());
    }

    #[test]
    fn division_matches_inverse() {
        let a = Fp::from_u64(123456789);
        let b = Fp::from_u64(987654321);
        assert_eq!(a / b * b, a);
    }

    #[test]
    fn pow_edge_cases() {
        let a = Fp::from_u64(42);
        assert_eq!(a.pow(0), Fp::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(MODULUS - 1), Fp::ONE); // Fermat's little theorem
    }

    #[test]
    fn random_is_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = Fp::random(&mut rng);
            assert!(x.as_u64() < MODULUS);
        }
    }

    #[test]
    fn batch_inverse_handles_zeros_and_empty() {
        let mut empty: [Fp; 0] = [];
        Fp::batch_inverse(&mut empty);
        let mut zeros = [Fp::ZERO, Fp::ZERO];
        Fp::batch_inverse(&mut zeros);
        assert_eq!(zeros, [Fp::ZERO, Fp::ZERO]);
        let mut mixed = [Fp::ZERO, Fp::from_u64(5), Fp::ZERO, Fp::from_u64(9)];
        Fp::batch_inverse(&mut mixed);
        assert_eq!(mixed[0], Fp::ZERO);
        assert_eq!(mixed[1], Fp::from_u64(5).inverse().unwrap());
        assert_eq!(mixed[2], Fp::ZERO);
        assert_eq!(mixed[3], Fp::from_u64(9).inverse().unwrap());
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Fp::from_u64(1), Fp::from_u64(2), Fp::from_u64(3)];
        let s: Fp = xs.iter().sum();
        let p: Fp = xs.iter().copied().product();
        assert_eq!(s.as_u64(), 6);
        assert_eq!(p.as_u64(), 6);
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_commutative(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn prop_mul_associative(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn prop_distributive(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_add_sub_roundtrip(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn prop_inverse(a in arb_fp()) {
            if !a.is_zero() {
                prop_assert_eq!(a * a.inverse().unwrap(), Fp::ONE);
            }
        }

        #[test]
        fn prop_neg_is_additive_inverse(a in arb_fp()) {
            prop_assert_eq!(a + (-a), Fp::ZERO);
        }

        #[test]
        fn prop_batch_inverse_matches_per_element(
            vs in proptest::collection::vec(any::<u64>(), 0..40),
        ) {
            let mut batch: Vec<Fp> = vs.iter().map(|&v| Fp::from_u64(v)).collect();
            Fp::batch_inverse(&mut batch);
            for (&v, &inv) in vs.iter().zip(&batch) {
                let x = Fp::from_u64(v);
                prop_assert_eq!(inv, x.inverse().unwrap_or(Fp::ZERO));
            }
        }

        #[test]
        fn prop_from_u128_consistent(a in any::<u64>(), b in any::<u64>()) {
            let prod = Fp::from_u128(a as u128 * b as u128);
            prop_assert_eq!(prod, Fp::from_u64(a) * Fp::from_u64(b));
        }
    }
}
