//! Algebraic substrate for the best-of-both-worlds MPC stack.
//!
//! This crate implements everything Section 2 of the paper ("Preliminaries")
//! assumes about the field `F` and polynomials over it:
//!
//! * [`field::Fp`] — the prime field `GF(2^61 - 1)` used for all protocol
//!   computation (the paper only requires `|F| > 2n`).
//! * [`poly::Polynomial`] — univariate polynomials with evaluation and
//!   Lagrange interpolation (Lemma "unique d-degree polynomial through d+1
//!   points").
//! * [`bivariate::SymmetricBivariate`] — `(ℓ,ℓ)`-degree symmetric bivariate
//!   polynomials and the pairwise-consistency lemma (Lemma 2.1) machinery
//!   used by the VSS/WPS protocols.
//! * [`shamir`] — `d`-sharing (Definition 2.3) and its linearity.
//! * [`rs`] — Reed–Solomon decoding (Berlekamp–Welch) used by the online
//!   error correction (OEC) procedure of \[13\].
//! * [`evaluation_points`] — the publicly known distinct non-zero points
//!   `α_1..α_n, β_1..β_n` the paper fixes for shares and triple extraction.
//! * [`domain`] — the process-wide evaluation-domain cache (master
//!   polynomial, barycentric weights, Lagrange-at-zero coefficients) that
//!   backs the `O(n²)` interpolation and `O(n)` reconstruction fast paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bivariate;
pub mod domain;
pub mod field;
pub mod packed;
pub mod poly;
pub mod rs;
pub mod shamir;

pub use bivariate::SymmetricBivariate;
pub use domain::{EvalDomain, LagrangeBasis};
pub use field::{Fp, MODULUS};
pub use packed::{PackedDomain, PackedSharing};
pub use poly::Polynomial;

/// Publicly known, distinct, non-zero evaluation points used throughout the
/// protocols.
///
/// The paper fixes `α_1, …, α_n, β_1, …, β_n` as publicly known distinct
/// non-zero field elements (Section 2). We use `α_i = i` and `β_j = n + j`,
/// which are distinct and non-zero as long as `2n < |F|` (always true here).
pub mod evaluation_points {
    use crate::field::Fp;

    /// `α_i` — the evaluation point assigned to party `i` (0-indexed party id).
    ///
    /// Party `P_i` of the paper (1-indexed) corresponds to `alpha(i-1)`.
    #[inline]
    pub fn alpha(party_index: usize) -> Fp {
        Fp::from_u64(party_index as u64 + 1)
    }

    /// `β_j` — the `j`-th auxiliary point (0-indexed), distinct from every `α_i`.
    ///
    /// Used by `Π_TripSh` / `Π_TripExt` to define "new" points on the triple
    /// polynomials, and therefore parameterised by `n`.
    #[inline]
    pub fn beta(n: usize, j: usize) -> Fp {
        Fp::from_u64((n + j) as u64 + 1)
    }

    /// All `n` party evaluation points `α_0..α_{n-1}`.
    pub fn alphas(n: usize) -> Vec<Fp> {
        (0..n).map(alpha).collect()
    }

    /// `e_k` — the `k`-th *secret-slot* point of a packed sharing
    /// ([`crate::packed`]): `e_k = −(k + 1)`, i.e. the negative counterpart
    /// of the party points. Slots are distinct from zero, from every `α_i`
    /// and from every `β_j` as long as `2n + ℓ < |F|` (always true here).
    #[inline]
    pub fn slot(k: usize) -> Fp {
        -Fp::from_u64(k as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::evaluation_points::{alpha, alphas, beta, slot};
    use super::Fp;

    #[test]
    fn alphas_are_distinct_and_nonzero() {
        let n = 32;
        let pts = alphas(n);
        for (i, a) in pts.iter().enumerate() {
            assert_ne!(*a, Fp::ZERO);
            for b in &pts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn betas_disjoint_from_alphas() {
        let n = 16;
        for j in 0..n {
            let b = beta(n, j);
            assert_ne!(b, Fp::ZERO);
            for i in 0..n {
                assert_ne!(b, alpha(i));
            }
        }
    }

    #[test]
    fn slots_disjoint_from_alphas_betas_and_zero() {
        let n = 16;
        for k in 0..n {
            let e = slot(k);
            assert_ne!(e, Fp::ZERO);
            for i in 0..n {
                assert_ne!(e, alpha(i));
                assert_ne!(e, beta(n, i));
            }
            for k2 in k + 1..n {
                assert_ne!(e, slot(k2));
            }
        }
    }
}
