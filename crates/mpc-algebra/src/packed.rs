//! Franklin–Yung packed secret sharing: `ℓ` secrets per polynomial.
//!
//! A *packed* `(d, ℓ)`-sharing embeds `ℓ` secrets `v_0..v_{ℓ−1}` into a
//! single polynomial `F` of degree at most `d + ℓ − 1`, with `F(e_k) = v_k`
//! at the dedicated *secret-slot* points `e_k`
//! ([`crate::evaluation_points::slot`], chosen negative so they never collide
//! with the party points `α_i`, the auxiliary `β_j`, or `0`). Party `i`'s
//! share is still `F(α_i)`, and the sharing stays linear: adding two packed
//! sharings adds the secrets slot-wise, so one opening amortises over `ℓ`
//! values — the SIMD effect exploited by the packed circuit engine in
//! `mpc-core`.
//!
//! Degree/resilience budget: a base degree `d = t_s` sharing becomes degree
//! `t_s + ℓ − 1` when packed, so robust (OEC) reconstruction against `t_s`
//! wrong shares needs `n ≥ (t_s + ℓ − 1) + 2·t_s + 1`, i.e. `ℓ ≤ n − 3·t_s`
//! (`mpc_core::thresholds::max_packing_width`). Privacy degrades gracefully:
//! any `t_s` shares of a degree-`t_s + ℓ − 1` packed sharing with uniformly
//! random masking still reveal nothing about the slot values.
//!
//! [`PackedDomain`] caches, per `(n, ℓ)`, everything recombination needs —
//! the slot points, a [`LagrangeBasis`] over them, and the slot-indicator
//! matrix `L_k(α_i)` used to *pack* per-slot sharings into one packed
//! sharing by a local linear combination. Cached process-wide like
//! [`crate::EvalDomain`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::Rng;

use crate::domain::{EvalDomain, LagrangeBasis};
use crate::evaluation_points::slot;
use crate::field::Fp;
use crate::poly::{master_polynomial, Polynomial};
use crate::rs;

/// A dealer-side packed sharing: the packed polynomial plus all `n` shares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedSharing {
    /// The packed polynomial with `F(e_k) = values[k]`.
    pub polynomial: Polynomial,
    /// `shares[i]` is party `i`'s share `F(α_i)`.
    pub shares: Vec<Fp>,
}

/// Cached per-`(n, ℓ)` machinery for packed sharings: slot points, the
/// Lagrange basis over them, and the slot-indicator evaluations `L_k(α_i)`.
#[derive(Debug)]
pub struct PackedDomain {
    n: usize,
    ell: usize,
    slots: Vec<Fp>,
    slot_basis: LagrangeBasis,
    /// Row-major `n × ℓ` matrix: entry `(i, k)` is `L_k(α_i)`, where `L_k`
    /// is the degree-`ℓ−1` slot indicator (`L_k(e_j) = δ_{kj}`).
    pack_rows: Vec<Fp>,
}

impl PackedDomain {
    /// Builds the packed domain for `n` parties and packing width `ell`.
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`.
    pub fn new(n: usize, ell: usize) -> Self {
        assert!(ell > 0, "packing width must be at least 1");
        let slots: Vec<Fp> = (0..ell).map(slot).collect();
        let slot_basis = LagrangeBasis::new(slots.clone());
        let party = EvalDomain::get(n);
        let mut pack_rows = Vec::with_capacity(n * ell);
        for &a in party.alphas() {
            pack_rows.extend(slot_basis.lambda_at(a));
        }
        PackedDomain {
            n,
            ell,
            slots,
            slot_basis,
            pack_rows,
        }
    }

    /// Returns the process-wide cached domain for `(n, ell)`.
    pub fn get(n: usize, ell: usize) -> Arc<PackedDomain> {
        type Cache = Mutex<HashMap<(usize, usize), Arc<PackedDomain>>>;
        static CACHE: OnceLock<Cache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("packed domain cache poisoned");
        Arc::clone(
            map.entry((n, ell))
                .or_insert_with(|| Arc::new(PackedDomain::new(n, ell))),
        )
    }

    /// Number of parties `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packing width `ℓ`.
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// The slot points `e_0..e_{ℓ−1}`.
    pub fn slots(&self) -> &[Fp] {
        &self.slots
    }

    /// The Lagrange basis over the slot points.
    pub fn slot_basis(&self) -> &LagrangeBasis {
        &self.slot_basis
    }

    /// Party `i`'s packing row: `[L_0(α_i), …, L_{ℓ−1}(α_i)]`.
    pub fn pack_row(&self, i: usize) -> &[Fp] {
        &self.pack_rows[i * self.ell..(i + 1) * self.ell]
    }

    /// Packs per-slot shares into party `i`'s packed share:
    /// `Σ_k L_k(α_i) · slot_shares[k]`.
    ///
    /// If `slot_shares[k]` is `f_k(α_i)` for a slot-positioned sharing
    /// `f_k(e_k) = v_k` of degree `d`, the result is party `i`'s share of a
    /// degree-`d + ℓ − 1` packed sharing of `(v_0, …, v_{ℓ−1})` — a purely
    /// local linear combination, no interaction.
    pub fn pack_share(&self, i: usize, slot_shares: &[Fp]) -> Fp {
        assert_eq!(slot_shares.len(), self.ell, "slot share count mismatch");
        self.pack_row(i)
            .iter()
            .zip(slot_shares)
            .map(|(&l, &s)| l * s)
            .sum()
    }

    /// Deals a fresh packed sharing of `values` with base degree `ts`: the
    /// polynomial `F(x) = I(x) + Z(x)·R(x)` where `I` interpolates the
    /// values at the slots, `Z(x) = ∏_k (x − e_k)` vanishes on every slot,
    /// and `R` is uniformly random of degree `ts − 1` (the zero polynomial
    /// when `ts = 0`). `deg F ≤ ts + ℓ − 1` and `F(e_k) = values[k]`.
    pub fn share<R: Rng + ?Sized>(&self, rng: &mut R, values: &[Fp], ts: usize) -> PackedSharing {
        assert_eq!(values.len(), self.ell, "value count must equal ℓ");
        let interp = self.slot_basis.interpolate(values);
        let polynomial = if ts == 0 {
            interp
        } else {
            let vanish = Polynomial::from_coeffs(master_polynomial(self.slots.iter().copied()));
            let mask = Polynomial::random(rng, ts - 1);
            interp.add(&vanish.mul(&mask))
        };
        let party = EvalDomain::get(self.n);
        let shares = party
            .alphas()
            .iter()
            .map(|&a| polynomial.evaluate(a))
            .collect();
        PackedSharing { polynomial, shares }
    }

    /// Reconstructs the `ℓ` slot values from error-free shares of a packed
    /// sharing of total degree ≤ `degree` (`= ts + ℓ − 1`).
    ///
    /// `shares` maps 0-indexed party ids to shares. Returns `None` if fewer
    /// than `degree + 1` shares are provided or the shares are inconsistent.
    pub fn reconstruct(&self, degree: usize, shares: &[(usize, Fp)]) -> Option<Vec<Fp>> {
        let f = crate::shamir::reconstruct_polynomial(degree, shares)?;
        Some(self.slots.iter().map(|&e| f.evaluate(e)).collect())
    }

    /// Robustly reconstructs the `ℓ` slot values from shares of which at
    /// most `t` may be corrupt, via online error correction
    /// ([`rs::oec_decode`]). `degree` is the total packed degree
    /// (`ts + ℓ − 1`); decoding needs `≥ degree + t + 1` shares.
    pub fn reconstruct_robust(
        &self,
        degree: usize,
        t: usize,
        shares: &[(usize, Fp)],
    ) -> Option<Vec<Fp>> {
        let pts: Vec<(Fp, Fp)> = shares
            .iter()
            .map(|&(i, s)| (crate::evaluation_points::alpha(i), s))
            .collect();
        let f = rs::oec_decode(degree, t, &pts)?;
        Some(self.slots.iter().map(|&e| f.evaluate(e)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation_points::alpha;
    use crate::shamir;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp(v: u64) -> Fp {
        Fp::from_u64(v)
    }

    #[test]
    fn packed_share_positions_values_at_slots() {
        let mut rng = StdRng::seed_from_u64(50);
        let (n, ell, ts) = (7, 4, 1);
        let dom = PackedDomain::get(n, ell);
        let values: Vec<Fp> = (0..ell as u64).map(|v| fp(100 + v)).collect();
        let s = dom.share(&mut rng, &values, ts);
        assert!(s.polynomial.degree() < ts + ell);
        for (k, &v) in values.iter().enumerate() {
            assert_eq!(s.polynomial.evaluate(slot(k)), v);
        }
        for (i, &sh) in s.shares.iter().enumerate() {
            assert_eq!(sh, s.polynomial.evaluate(alpha(i)));
        }
    }

    #[test]
    fn packed_share_with_zero_base_degree_is_pure_interpolation() {
        let mut rng = StdRng::seed_from_u64(51);
        let dom = PackedDomain::get(5, 2);
        let values = vec![fp(8), fp(9)];
        let s = dom.share(&mut rng, &values, 0);
        assert!(s.polynomial.degree() <= 1);
        assert_eq!(
            dom.reconstruct(1, &[(0, s.shares[0]), (1, s.shares[1])]),
            Some(values)
        );
    }

    #[test]
    fn reconstruct_roundtrip() {
        let mut rng = StdRng::seed_from_u64(52);
        let (n, ell, ts) = (10, 3, 2);
        let dom = PackedDomain::get(n, ell);
        let values: Vec<Fp> = (0..ell as u64).map(|v| fp(7000 + v * 13)).collect();
        let s = dom.share(&mut rng, &values, ts);
        let d = ts + ell - 1;
        let pts: Vec<(usize, Fp)> = (0..d + 1).map(|i| (i, s.shares[i])).collect();
        assert_eq!(dom.reconstruct(d, &pts), Some(values));
    }

    #[test]
    fn robust_reconstruct_corrects_errors() {
        let mut rng = StdRng::seed_from_u64(53);
        let (ts, ell) = (2, 3);
        // ℓ ≤ n − 3·ts  ⇒  n ≥ 9; use n = 10 for one spare share.
        let n = 10;
        let dom = PackedDomain::get(n, ell);
        let values: Vec<Fp> = (0..ell as u64).map(|v| fp(31 + v)).collect();
        let s = dom.share(&mut rng, &values, ts);
        let d = ts + ell - 1;
        let mut pts: Vec<(usize, Fp)> = (0..n).map(|i| (i, s.shares[i])).collect();
        pts[2].1 += fp(5);
        pts[7].1 += fp(11);
        assert_eq!(dom.reconstruct_robust(d, ts, &pts), Some(values));
    }

    #[test]
    fn pack_share_recombines_slot_positioned_sharings() {
        // Deal ℓ independent slot-positioned sharings f_k (f_k(e_k) = v_k,
        // degree ts), pack locally, and check the packed shares lie on a
        // degree-(ts+ℓ−1) polynomial with the right slot values.
        let mut rng = StdRng::seed_from_u64(54);
        let (n, ell, ts) = (8, 3, 1);
        let dom = PackedDomain::get(n, ell);
        let values: Vec<Fp> = (0..ell as u64).map(|v| fp(900 + v)).collect();
        let slot_sharings: Vec<shamir::Sharing> = (0..ell)
            .map(|k| shamir::share_at(&mut rng, values[k], slot(k), ts, n))
            .collect();
        let packed: Vec<(usize, Fp)> = (0..n)
            .map(|i| {
                let slot_shares: Vec<Fp> = slot_sharings.iter().map(|s| s.shares[i]).collect();
                (i, dom.pack_share(i, &slot_shares))
            })
            .collect();
        let d = ts + ell - 1;
        assert_eq!(dom.reconstruct(d, &packed), Some(values));
    }

    #[test]
    fn pack_rows_are_slot_indicators() {
        let dom = PackedDomain::new(6, 4);
        // L_k(e_j) = δ_kj by construction; check via lambda_at on slots.
        for (j, &e) in dom.slots().iter().enumerate() {
            let lam = dom.slot_basis().lambda_at(e);
            for (k, &l) in lam.iter().enumerate() {
                let expect = if j == k { Fp::ONE } else { Fp::ZERO };
                assert_eq!(l, expect);
            }
        }
    }
}
