//! Univariate polynomials over [`Fp`] with evaluation and Lagrange
//! interpolation.
//!
//! These are the `d`-degree polynomials of Definition 2.3 (`d`-sharing): a
//! sharing polynomial `f_s(·)` with `f_s(0) = s` whose evaluations at the
//! party points `α_i` are the shares.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::field::Fp;

/// A univariate polynomial over `GF(2^61-1)` stored by its coefficients
/// (`coeffs[k]` is the coefficient of `x^k`).
///
/// The zero polynomial is represented by an empty coefficient vector.
///
/// ```
/// use mpc_algebra::{Fp, Polynomial};
/// // f(x) = 3 + 2x
/// let f = Polynomial::from_coeffs(vec![Fp::from_u64(3), Fp::from_u64(2)]);
/// assert_eq!(f.evaluate(Fp::from_u64(10)).as_u64(), 23);
/// assert_eq!(f.degree(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Polynomial {
    coeffs: Vec<Fp>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `f(x) = c`.
    pub fn constant(c: Fp) -> Self {
        if c.is_zero() {
            Self::zero()
        } else {
            Polynomial { coeffs: vec![c] }
        }
    }

    /// Builds a polynomial from coefficients (`coeffs[k]` multiplies `x^k`).
    /// Trailing zero coefficients are trimmed.
    pub fn from_coeffs(coeffs: Vec<Fp>) -> Self {
        let mut p = Polynomial { coeffs };
        p.trim();
        p
    }

    /// Samples a uniformly random polynomial of degree **exactly at most**
    /// `degree` with the given constant term (`f(0) = constant_term`).
    ///
    /// This is the standard way the dealer embeds a secret into a `d`-degree
    /// sharing polynomial.
    pub fn random_with_constant_term<R: Rng + ?Sized>(
        rng: &mut R,
        degree: usize,
        constant_term: Fp,
    ) -> Self {
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(constant_term);
        for _ in 0..degree {
            coeffs.push(Fp::random(rng));
        }
        Polynomial::from_coeffs(coeffs)
    }

    /// Samples a uniformly random polynomial of degree at most `degree`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, degree: usize) -> Self {
        let coeffs = (0..=degree).map(|_| Fp::random(rng)).collect();
        Polynomial::from_coeffs(coeffs)
    }

    /// The coefficients of the polynomial (low to high degree).
    pub fn coeffs(&self) -> &[Fp] {
        &self.coeffs
    }

    /// Degree of the polynomial; the zero polynomial has degree 0 by
    /// convention here (it never matters for the protocols, which only check
    /// upper bounds).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates the polynomial at `x` (Horner's rule).
    pub fn evaluate(&self, x: Fp) -> Fp {
        let mut acc = Fp::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// The constant term `f(0)` — the shared secret in a sharing polynomial.
    pub fn constant_term(&self) -> Fp {
        self.coeffs.first().copied().unwrap_or(Fp::ZERO)
    }

    /// Lagrange-interpolates the unique polynomial of degree `< points.len()`
    /// passing through the given `(x, y)` pairs.
    ///
    /// Runs in `O(n²)` field multiplications and **one** inversion: the
    /// master polynomial `M(x) = ∏(x − x_i)` is built once, each numerator
    /// `∏_{j≠i}(x − x_j)` is peeled off by synthetic division, and the
    /// denominators `M′(x_i) = ∏_{j≠i}(x_i − x_j)` are inverted together via
    /// [`Fp::batch_inverse`]. (The textbook `O(n³)` form is retained as
    /// [`Polynomial::interpolate_reference`] for equivalence tests.)
    ///
    /// # Panics
    ///
    /// Panics if two interpolation points share the same `x` coordinate or if
    /// `points` is empty.
    pub fn interpolate(points: &[(Fp, Fp)]) -> Self {
        assert!(!points.is_empty(), "cannot interpolate zero points");
        let n = points.len();
        let xs: Vec<Fp> = points.iter().map(|&(x, _)| x).collect();
        let master = master_polynomial(xs.iter().copied());
        let (numerators, mut denoms) = numerator_rows(&master, &xs);
        assert!(
            denoms.iter().all(|d| !d.is_zero()),
            "duplicate x coordinate in interpolation"
        );
        Fp::batch_inverse(&mut denoms);
        let mut result = vec![Fp::ZERO; n];
        for ((row, &(_, yi)), &dinv) in numerators.chunks_exact(n).zip(points.iter()).zip(&denoms) {
            let scale = yi * dinv;
            for (r, &q) in result.iter_mut().zip(row) {
                *r += q * scale;
            }
        }
        Polynomial::from_coeffs(result)
    }

    /// The textbook `O(n³)` Lagrange interpolation (one inversion per point,
    /// numerator polynomial rebuilt from scratch for each point).
    ///
    /// Kept as the executable reference semantics for
    /// [`Polynomial::interpolate`]: the proptest equivalence suite and the
    /// algebra microbenchmark pin the fast path against it.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Polynomial::interpolate`].
    pub fn interpolate_reference(points: &[(Fp, Fp)]) -> Self {
        assert!(!points.is_empty(), "cannot interpolate zero points");
        let n = points.len();
        let mut result = vec![Fp::ZERO; n];
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // numerator polynomial: prod_{j != i} (x - x_j)
            let mut num = vec![Fp::ZERO; n];
            num[0] = Fp::ONE;
            let mut num_deg = 0usize;
            let mut denom = Fp::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert_ne!(xi, xj, "duplicate x coordinate in interpolation");
                denom *= xi - xj;
                // multiply num by (x - xj)
                num_deg += 1;
                for k in (1..=num_deg).rev() {
                    let lower = num[k - 1];
                    num[k] = num[k] * (-xj) + lower;
                }
                num[0] *= -xj;
            }
            let scale = yi
                * denom
                    .inverse()
                    .expect("distinct points imply nonzero denom");
            for k in 0..n {
                result[k] += num[k] * scale;
            }
        }
        Polynomial::from_coeffs(result)
    }

    /// Computes the Lagrange coefficients `λ_i` such that for every polynomial
    /// `f` of degree `< xs.len()`, `f(target) = Σ_i λ_i · f(xs[i])`.
    ///
    /// This is the "publicly known Lagrange linear function" used by
    /// `Π_TripTrans` / `Π_TripExt` to compute new shared points on a
    /// polynomial by a local linear combination of old shared points.
    ///
    /// The numerators `∏_{j≠i}(target − x_j)` come from prefix/suffix
    /// products (`O(n)`), the denominators `∏_{j≠i}(x_i − x_j)` from the
    /// master-polynomial derivative, and all inversions are batched — one
    /// field inversion total instead of one per coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `xs` contains duplicates or is empty.
    pub fn lagrange_coefficients(xs: &[Fp], target: Fp) -> Vec<Fp> {
        assert!(!xs.is_empty(), "need at least one evaluation point");
        let n = xs.len();
        let master = master_polynomial(xs.iter().copied());
        let deriv = derivative_coeffs(&master);
        let mut denoms: Vec<Fp> = xs.iter().map(|&x| horner(&deriv, x)).collect();
        assert!(
            denoms.iter().all(|d| !d.is_zero()),
            "duplicate x coordinate"
        );
        Fp::batch_inverse(&mut denoms);
        // prefix[i] = ∏_{j<i}(target − x_j), suffix = running ∏_{j>i}.
        let mut prefix = Vec::with_capacity(n);
        let mut acc = Fp::ONE;
        for &x in xs {
            prefix.push(acc);
            acc *= target - x;
        }
        let mut coeffs = vec![Fp::ZERO; n];
        let mut suffix = Fp::ONE;
        for i in (0..n).rev() {
            coeffs[i] = prefix[i] * suffix * denoms[i];
            suffix *= target - xs[i];
        }
        coeffs
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let len = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![Fp::ZERO; len];
        for (k, c) in coeffs.iter_mut().enumerate() {
            let a = self.coeffs.get(k).copied().unwrap_or(Fp::ZERO);
            let b = other.coeffs.get(k).copied().unwrap_or(Fp::ZERO);
            *c = a + b;
        }
        Polynomial::from_coeffs(coeffs)
    }

    /// Subtracts `other` from `self`.
    pub fn sub(&self, other: &Polynomial) -> Polynomial {
        let len = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![Fp::ZERO; len];
        for (k, c) in coeffs.iter_mut().enumerate() {
            let a = self.coeffs.get(k).copied().unwrap_or(Fp::ZERO);
            let b = other.coeffs.get(k).copied().unwrap_or(Fp::ZERO);
            *c = a - b;
        }
        Polynomial::from_coeffs(coeffs)
    }

    /// Multiplies two polynomials (schoolbook).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.is_zero() || other.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![Fp::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::from_coeffs(coeffs)
    }

    /// Multiplies the polynomial by a scalar.
    pub fn scale(&self, s: Fp) -> Polynomial {
        Polynomial::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Polynomial long division: returns `(quotient, remainder)` such that
    /// `self = quotient * divisor + remainder` with `deg(remainder) < deg(divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Polynomial) -> (Polynomial, Polynomial) {
        assert!(!divisor.is_zero(), "division by the zero polynomial");
        if self.coeffs.len() < divisor.coeffs.len() {
            return (Polynomial::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let dlen = divisor.coeffs.len();
        let lead_inv = divisor.coeffs[dlen - 1]
            .inverse()
            .expect("leading coefficient of a trimmed polynomial is nonzero");
        let qlen = rem.len() - dlen + 1;
        let mut quot = vec![Fp::ZERO; qlen];
        for k in (0..qlen).rev() {
            let coeff = rem[k + dlen - 1] * lead_inv;
            quot[k] = coeff;
            if coeff.is_zero() {
                continue;
            }
            for (j, &d) in divisor.coeffs.iter().enumerate() {
                rem[k + j] -= coeff * d;
            }
        }
        rem.truncate(dlen - 1);
        (Polynomial::from_coeffs(quot), Polynomial::from_coeffs(rem))
    }

    fn trim(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }
}

/// Coefficients (low to high) of the monic master polynomial `∏(x − x_i)`,
/// built incrementally in `O(n²)` multiplications.
pub(crate) fn master_polynomial(xs: impl ExactSizeIterator<Item = Fp>) -> Vec<Fp> {
    let mut master = vec![Fp::ZERO; xs.len() + 1];
    master[0] = Fp::ONE;
    let mut deg = 0usize;
    for xi in xs {
        deg += 1;
        for k in (1..=deg).rev() {
            let lower = master[k - 1];
            master[k] = master[k] * (-xi) + lower;
        }
        master[0] *= -xi;
    }
    master
}

/// The synthetic-division kernel shared by [`Polynomial::interpolate`] and
/// `domain::LagrangeBasis`: dividing the monic `master` (coefficients of
/// `∏(x − x_i)`, length `n + 1`) by each `(x − x_i)` yields the numerator
/// polynomial `q_i(x) = ∏_{j≠i}(x − x_j)`; a Horner pass fused over the
/// freshly generated coefficients gives the denominator
/// `d_i = q_i(x_i) = M′(x_i)` without touching the derivative.
///
/// Returns `(numerators, denoms)`: a row-major `n×n` matrix whose row `i`
/// holds the coefficients of `q_i` (low to high), and the `n` denominators
/// (zero exactly where `x_i` duplicates another point — callers assert).
pub(crate) fn numerator_rows(master: &[Fp], xs: &[Fp]) -> (Vec<Fp>, Vec<Fp>) {
    let n = xs.len();
    debug_assert_eq!(master.len(), n + 1, "master degree must match point count");
    let mut numerators = vec![Fp::ZERO; n * n];
    let mut denoms = Vec::with_capacity(n);
    for (row, &xi) in numerators.chunks_exact_mut(n).zip(xs) {
        let mut qk = master[n]; // leading coefficient (M is monic)
        let mut acc = qk;
        row[n - 1] = qk;
        for k in (0..n - 1).rev() {
            qk = master[k + 1] + xi * qk;
            row[k] = qk;
            acc = acc * xi + qk;
        }
        denoms.push(acc);
    }
    (numerators, denoms)
}

/// Coefficients of the formal derivative of the polynomial with coefficients
/// `coeffs` (low to high).
pub(crate) fn derivative_coeffs(coeffs: &[Fp]) -> Vec<Fp> {
    coeffs
        .iter()
        .enumerate()
        .skip(1)
        .map(|(k, &c)| Fp::from_u64(k as u64) * c)
        .collect()
}

/// Horner evaluation of raw coefficients (low to high) at `x`.
pub(crate) fn horner(coeffs: &[Fp], x: Fp) -> Fp {
    let mut acc = Fp::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp(v: u64) -> Fp {
        Fp::from_u64(v)
    }

    #[test]
    fn evaluate_simple() {
        // f(x) = 1 + 2x + 3x^2
        let f = Polynomial::from_coeffs(vec![fp(1), fp(2), fp(3)]);
        assert_eq!(f.evaluate(fp(0)), fp(1));
        assert_eq!(f.evaluate(fp(1)), fp(6));
        assert_eq!(f.evaluate(fp(2)), fp(17));
        assert_eq!(f.degree(), 2);
    }

    #[test]
    fn trailing_zeros_are_trimmed() {
        let f = Polynomial::from_coeffs(vec![fp(1), fp(0), fp(0)]);
        assert_eq!(f.degree(), 0);
        assert_eq!(f.coeffs().len(), 1);
    }

    #[test]
    fn zero_polynomial() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.evaluate(fp(5)), Fp::ZERO);
        assert_eq!(z.constant_term(), Fp::ZERO);
    }

    #[test]
    fn interpolate_recovers_polynomial() {
        let mut rng = StdRng::seed_from_u64(1);
        for deg in 0..8 {
            let f = Polynomial::random(&mut rng, deg);
            let points: Vec<(Fp, Fp)> = (1..=deg as u64 + 1)
                .map(|x| (fp(x), f.evaluate(fp(x))))
                .collect();
            let g = Polynomial::interpolate(&points);
            assert_eq!(f, g, "degree {deg}");
        }
    }

    #[test]
    fn interpolate_line() {
        // points (1,3), (2,5) → f(x) = 2x + 1
        let f = Polynomial::interpolate(&[(fp(1), fp(3)), (fp(2), fp(5))]);
        assert_eq!(f.evaluate(fp(0)), fp(1));
        assert_eq!(f.evaluate(fp(10)), fp(21));
    }

    #[test]
    #[should_panic(expected = "duplicate x coordinate")]
    fn interpolate_duplicate_x_panics() {
        let _ = Polynomial::interpolate(&[(fp(1), fp(3)), (fp(1), fp(5))]);
    }

    #[test]
    fn lagrange_coefficients_compute_new_point() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = Polynomial::random(&mut rng, 4);
        let xs: Vec<Fp> = (1..=5u64).map(fp).collect();
        let target = fp(77);
        let lambdas = Polynomial::lagrange_coefficients(&xs, target);
        let combo: Fp = xs
            .iter()
            .zip(&lambdas)
            .map(|(&x, &l)| l * f.evaluate(x))
            .sum();
        assert_eq!(combo, f.evaluate(target));
    }

    #[test]
    fn random_with_constant_term_fixes_secret() {
        let mut rng = StdRng::seed_from_u64(3);
        let secret = fp(424242);
        let f = Polynomial::random_with_constant_term(&mut rng, 5, secret);
        assert_eq!(f.constant_term(), secret);
        assert!(f.degree() <= 5);
    }

    #[test]
    fn div_rem_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Polynomial::random(&mut rng, 7);
        let b = Polynomial::random(&mut rng, 3);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.is_zero() || r.degree() < b.degree());
    }

    proptest! {
        #[test]
        fn prop_interpolation_roundtrip(
            coeffs in proptest::collection::vec(any::<u64>(), 1..10),
            xs_seed in any::<u64>(),
        ) {
            let f = Polynomial::from_coeffs(coeffs.iter().map(|&c| fp(c)).collect());
            let d = f.coeffs().len().max(1);
            // distinct nonzero x coordinates derived from a seed
            let points: Vec<(Fp, Fp)> = (0..d as u64)
                .map(|i| {
                    let x = fp(xs_seed % 1000 + 1 + i);
                    (x, f.evaluate(x))
                })
                .collect();
            let g = Polynomial::interpolate(&points);
            prop_assert_eq!(f, g);
        }

        #[test]
        fn prop_add_mul_evaluate_homomorphic(
            a in proptest::collection::vec(any::<u64>(), 0..6),
            b in proptest::collection::vec(any::<u64>(), 0..6),
            x in any::<u64>(),
        ) {
            let fa = Polynomial::from_coeffs(a.iter().map(|&c| fp(c)).collect());
            let fb = Polynomial::from_coeffs(b.iter().map(|&c| fp(c)).collect());
            let x = fp(x);
            prop_assert_eq!(fa.add(&fb).evaluate(x), fa.evaluate(x) + fb.evaluate(x));
            prop_assert_eq!(fa.mul(&fb).evaluate(x), fa.evaluate(x) * fb.evaluate(x));
            prop_assert_eq!(fa.sub(&fb).evaluate(x), fa.evaluate(x) - fb.evaluate(x));
        }
    }
}
