//! Reed–Solomon decoding (Berlekamp–Welch) and the core of the online
//! error-correction (OEC) procedure of \[13\] (Appendix A of the paper).
//!
//! A `d`-shared value corresponds to a `d`-degree polynomial evaluated at the
//! party points. When a receiver collects points from a set `P'` containing
//! at most `t` corruptions, it repeatedly tries to decode: as soon as
//! `d + t + 1` of the received points lie on a single `d`-degree polynomial,
//! that polynomial is the correct one (at least `d + 1` of those points come
//! from honest parties and uniquely determine it).

use crate::field::Fp;
use crate::poly::Polynomial;

/// Solves the linear system `A·x = b` over `GF(2^61-1)` by Gaussian
/// elimination. Returns `None` if the system has no solution; if the system
/// is under-determined an arbitrary consistent solution is returned (free
/// variables are set to zero).
pub fn solve_linear_system(a: &[Vec<Fp>], b: &[Fp]) -> Option<Vec<Fp>> {
    let rows = a.len();
    assert_eq!(rows, b.len(), "matrix/vector dimension mismatch");
    if rows == 0 {
        return Some(Vec::new());
    }
    let cols = a[0].len();
    let mut m: Vec<Vec<Fp>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            assert_eq!(row.len(), cols, "ragged matrix");
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    let mut pivot_cols = Vec::new();
    let mut rank = 0usize;
    for col in 0..cols {
        // find pivot
        let Some(pivot_row) = (rank..rows).find(|&r| !m[r][col].is_zero()) else {
            continue;
        };
        m.swap(rank, pivot_row);
        let inv = m[rank][col].inverse().expect("pivot is nonzero");
        for v in &mut m[rank][col..] {
            *v *= inv;
        }
        // Take the pivot row out so eliminating the other rows doesn't alias it.
        let pivot = std::mem::take(&mut m[rank]);
        for (r, row) in m.iter_mut().enumerate() {
            if r != rank && !row[col].is_zero() {
                let factor = row[col];
                for (v, p) in row.iter_mut().zip(&pivot).skip(col) {
                    *v -= factor * *p;
                }
            }
        }
        m[rank] = pivot;
        pivot_cols.push(col);
        rank += 1;
        if rank == rows {
            break;
        }
    }
    // Inconsistent row: all zero coefficients but nonzero rhs.
    for row in &m[rank..] {
        if row[..cols].iter().all(|c| c.is_zero()) && !row[cols].is_zero() {
            return None;
        }
    }
    let mut x = vec![Fp::ZERO; cols];
    for (r, &col) in pivot_cols.iter().enumerate() {
        x[col] = m[r][cols];
    }
    Some(x)
}

/// Berlekamp–Welch decoding.
///
/// Given `points` (distinct `x` coordinates), a target degree `d` and a bound
/// `e` on the number of erroneous points, attempts to find a polynomial `f`
/// of degree `≤ d` that agrees with at least `points.len() - e` of the
/// points. Requires `points.len() ≥ d + 2e + 1`; returns `None` otherwise or
/// when no such polynomial exists.
pub fn berlekamp_welch(d: usize, e: usize, points: &[(Fp, Fp)]) -> Option<Polynomial> {
    let k = points.len();
    if k < d + 2 * e + 1 {
        return None;
    }
    if e == 0 {
        let f = Polynomial::interpolate(&points[..d + 1]);
        if f.degree() > d && !f.is_zero() {
            return None;
        }
        if points.iter().all(|&(x, y)| f.evaluate(x) == y) {
            return Some(f);
        }
        return None;
    }
    // Unknowns: E(x) = x^e + e_{e-1} x^{e-1} + ... + e_0   (e unknowns)
    //           Q(x) = q_{d+e} x^{d+e} + ... + q_0          (d+e+1 unknowns)
    // Equations: Q(x_i) = y_i · E(x_i) for every point.
    let num_e = e;
    let num_q = d + e + 1;
    let cols = num_e + num_q;
    let mut a = Vec::with_capacity(k);
    let mut b = Vec::with_capacity(k);
    for &(x, y) in points {
        let mut row = vec![Fp::ZERO; cols];
        // -y·(e_0 + e_1 x + ... + e_{e-1} x^{e-1}) + Q(x) = y·x^e
        let mut xp = Fp::ONE;
        for v in &mut row[..num_e] {
            *v = -(y * xp);
            xp *= x;
        }
        // xp is now x^e
        let rhs = y * xp;
        let mut xq = Fp::ONE;
        for v in &mut row[num_e..] {
            *v = xq;
            xq *= x;
        }
        a.push(row);
        b.push(rhs);
    }
    let sol = solve_linear_system(&a, &b)?;
    let mut e_coeffs: Vec<Fp> = sol[..num_e].to_vec();
    e_coeffs.push(Fp::ONE); // monic leading coefficient
    let e_poly = Polynomial::from_coeffs(e_coeffs);
    let q_poly = Polynomial::from_coeffs(sol[num_e..].to_vec());
    let (f, rem) = q_poly.div_rem(&e_poly);
    if !rem.is_zero() {
        return None;
    }
    if f.degree() > d && !f.is_zero() {
        return None;
    }
    Some(f)
}

/// One step of the online error-correction loop.
///
/// `points` is the set of `(x, y)` pairs received so far from the parties of
/// `P'` (at most `t` of which are corrupt). If at least `d + t + 1` of the
/// received points lie on a single polynomial of degree `≤ d`, returns it.
///
/// Matches the OEC loop of \[13\]: with `k` points in hand, up to
/// `r = k − (d + t + 1)` of them may be ignored as erroneous, so we attempt
/// Berlekamp–Welch with `e = 0..=min(r, t)` and accept a decoded polynomial
/// only if it agrees with at least `d + t + 1` received points.
pub fn oec_decode(d: usize, t: usize, points: &[(Fp, Fp)]) -> Option<Polynomial> {
    let k = points.len();
    if k < d + t + 1 {
        return None;
    }
    let max_errors = (k - (d + t + 1)).min(t);
    for e in 0..=max_errors {
        if let Some(f) = berlekamp_welch(d, e, points) {
            let agree = points.iter().filter(|&&(x, y)| f.evaluate(x) == y).count();
            if agree > d + t {
                return Some(f);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation_points::alpha;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fp(v: u64) -> Fp {
        Fp::from_u64(v)
    }

    #[test]
    fn solve_simple_system() {
        // x + y = 5, x - y = 1  → x = 3, y = 2
        let a = vec![vec![fp(1), fp(1)], vec![fp(1), -fp(1)]];
        let b = vec![fp(5), fp(1)];
        let sol = solve_linear_system(&a, &b).unwrap();
        assert_eq!(sol, vec![fp(3), fp(2)]);
    }

    #[test]
    fn solve_inconsistent_system() {
        let a = vec![vec![fp(1), fp(1)], vec![fp(2), fp(2)]];
        let b = vec![fp(1), fp(3)];
        assert!(solve_linear_system(&a, &b).is_none());
    }

    #[test]
    fn solve_underdetermined_system() {
        let a = vec![vec![fp(1), fp(1)]];
        let b = vec![fp(4)];
        let sol = solve_linear_system(&a, &b).unwrap();
        assert_eq!(sol[0] + sol[1], fp(4));
    }

    #[test]
    fn bw_no_errors() {
        let mut rng = StdRng::seed_from_u64(20);
        let f = Polynomial::random(&mut rng, 3);
        let pts: Vec<(Fp, Fp)> = (0..8).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
        assert_eq!(berlekamp_welch(3, 0, &pts).unwrap(), f);
    }

    #[test]
    fn bw_corrects_errors() {
        let mut rng = StdRng::seed_from_u64(21);
        let d = 3;
        let e = 2;
        let f = Polynomial::random(&mut rng, d);
        let mut pts: Vec<(Fp, Fp)> = (0..d + 2 * e + 1)
            .map(|i| (alpha(i), f.evaluate(alpha(i))))
            .collect();
        pts[0].1 += fp(99);
        pts[4].1 += fp(1);
        assert_eq!(berlekamp_welch(d, e, &pts).unwrap(), f);
    }

    #[test]
    fn bw_insufficient_points() {
        let pts = vec![(fp(1), fp(1)), (fp(2), fp(2))];
        assert!(berlekamp_welch(2, 1, &pts).is_none());
    }

    #[test]
    fn oec_waits_for_enough_points() {
        let mut rng = StdRng::seed_from_u64(22);
        let d = 2;
        let t = 1;
        let f = Polynomial::random(&mut rng, d);
        let pts: Vec<(Fp, Fp)> = (0..d + t)
            .map(|i| (alpha(i), f.evaluate(alpha(i))))
            .collect();
        assert!(oec_decode(d, t, &pts).is_none());
    }

    #[test]
    fn oec_with_corrupt_point() {
        let mut rng = StdRng::seed_from_u64(23);
        let d = 2;
        let t = 2;
        let f = Polynomial::random(&mut rng, d);
        // 7 points, one corrupted: d + t + 1 = 5 honest agreeing points exist.
        let mut pts: Vec<(Fp, Fp)> = (0..7).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
        pts[3].1 += fp(7);
        assert_eq!(oec_decode(d, t, &pts).unwrap(), f);
    }

    #[test]
    fn oec_does_not_output_wrong_polynomial_with_few_points() {
        // With exactly d+t+1 points and one error, OEC must not output (it
        // cannot correct yet) — it would need to wait for more points.
        let mut rng = StdRng::seed_from_u64(24);
        let d = 2;
        let t = 2;
        let f = Polynomial::random(&mut rng, d);
        let mut pts: Vec<(Fp, Fp)> = (0..d + t + 1)
            .map(|i| (alpha(i), f.evaluate(alpha(i))))
            .collect();
        pts[0].1 += fp(1);
        assert!(oec_decode(d, t, &pts).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_oec_corrects_up_to_t_errors(
            seed in any::<u64>(),
            d in 1usize..4,
            t in 1usize..4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = Polynomial::random(&mut rng, d);
            let n = d + 2 * t + 1;
            let mut pts: Vec<(Fp, Fp)> =
                (0..n).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
            // corrupt exactly t random distinct points
            let mut corrupted = std::collections::HashSet::new();
            while corrupted.len() < t {
                corrupted.insert(rng.gen_range(0..n));
            }
            for &i in &corrupted {
                pts[i].1 += Fp::from_u64(rng.gen_range(1..1000));
            }
            prop_assert_eq!(oec_decode(d, t, &pts).unwrap(), f);
        }
    }
}
