//! Reed–Solomon decoding (Berlekamp–Welch) and the core of the online
//! error-correction (OEC) procedure of \[13\] (Appendix A of the paper).
//!
//! A `d`-shared value corresponds to a `d`-degree polynomial evaluated at the
//! party points. When a receiver collects points from a set `P'` containing
//! at most `t` corruptions, it repeatedly tries to decode: as soon as
//! `d + t + 1` of the received points lie on a single `d`-degree polynomial,
//! that polynomial is the correct one (at least `d + 1` of those points come
//! from honest parties and uniquely determine it).

use crate::domain::LagrangeBasis;
use crate::field::Fp;
use crate::poly::Polynomial;

/// Solves the linear system `A·x = b` over `GF(2^61-1)` by Gaussian
/// elimination. Returns `None` if the system has no solution; if the system
/// is under-determined an arbitrary consistent solution is returned (free
/// variables are set to zero).
///
/// The forward elimination is division-free (cross-multiplication keeps the
/// pivot rows un-normalised), so the only inversions are the pivot diagonal
/// at back-substitution time — batched into a single field inversion via
/// [`Fp::batch_inverse`]. Consistency is checked by verifying the candidate
/// solution against the original system.
pub fn solve_linear_system(a: &[Vec<Fp>], b: &[Fp]) -> Option<Vec<Fp>> {
    let rows = a.len();
    assert_eq!(rows, b.len(), "matrix/vector dimension mismatch");
    if rows == 0 {
        return Some(Vec::new());
    }
    let cols = a[0].len();
    let mut m: Vec<Vec<Fp>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            assert_eq!(row.len(), cols, "ragged matrix");
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    let mut pivot_cols = Vec::new();
    let mut rank = 0usize;
    for col in 0..cols {
        // find pivot
        let Some(pivot_row) = (rank..rows).find(|&r| !m[r][col].is_zero()) else {
            continue;
        };
        m.swap(rank, pivot_row);
        let p = m[rank][col];
        // Take the pivot row out so eliminating the rows below doesn't alias
        // it. Rows below are replaced by `p·row − row[col]·pivot` — the same
        // row space scaled by the non-zero pivot, no inversion needed.
        let pivot = std::mem::take(&mut m[rank]);
        for row in m[rank + 1..].iter_mut() {
            if row[col].is_zero() {
                continue;
            }
            let factor = row[col];
            for (v, pv) in row.iter_mut().zip(&pivot).skip(col) {
                *v = *v * p - factor * *pv;
            }
        }
        m[rank] = pivot;
        pivot_cols.push(col);
        rank += 1;
        if rank == rows {
            break;
        }
    }
    // Back-substitution with free variables set to zero; the un-normalised
    // pivot diagonal is inverted in one batch.
    let mut diag: Vec<Fp> = pivot_cols
        .iter()
        .enumerate()
        .map(|(r, &c)| m[r][c])
        .collect();
    Fp::batch_inverse(&mut diag);
    let mut x = vec![Fp::ZERO; cols];
    for (r, &c) in pivot_cols.iter().enumerate().rev() {
        let mut acc = m[r][cols];
        for cc in c + 1..cols {
            if !x[cc].is_zero() {
                acc -= m[r][cc] * x[cc];
            }
        }
        x[c] = acc * diag[r];
    }
    // An inconsistent system surfaces as a candidate that fails the original
    // equations (cheaper than tracking exact row images through the
    // division-free elimination).
    for (row, &rhs) in a.iter().zip(b) {
        let lhs: Fp = row.iter().zip(&x).map(|(&c, &xv)| c * xv).sum();
        if lhs != rhs {
            return None;
        }
    }
    Some(x)
}

/// Interpolates through the first `d + 1` points (degree `≤ d` is automatic
/// for `d + 1` distinct points).
fn interpolate_prefix(d: usize, points: &[(Fp, Fp)]) -> Polynomial {
    Polynomial::interpolate(&points[..d + 1])
}

/// Per-point power rows `x_i^0 .. x_i^max_pow`, computed once and shared
/// across every Berlekamp–Welch retry of one OEC invocation (the rows of the
/// Vandermonde-like decoding system for *every* error bound `e` are slices
/// of these).
struct PowerRows {
    rows: Vec<Vec<Fp>>,
}

impl PowerRows {
    fn new(points: &[(Fp, Fp)], max_pow: usize) -> Self {
        let rows = points
            .iter()
            .map(|&(x, _)| {
                let mut row = Vec::with_capacity(max_pow + 1);
                let mut xp = Fp::ONE;
                for _ in 0..=max_pow {
                    row.push(xp);
                    xp *= x;
                }
                row
            })
            .collect();
        PowerRows { rows }
    }
}

/// The linear-system core of Berlekamp–Welch for `e ≥ 1`, fed from
/// precomputed power rows. Returns a candidate polynomial of degree `≤ d`
/// or `None`; the caller is responsible for agreement counting.
fn bw_solve(d: usize, e: usize, points: &[(Fp, Fp)], powers: &PowerRows) -> Option<Polynomial> {
    // Unknowns: E(x) = x^e + e_{e-1} x^{e-1} + ... + e_0   (e unknowns)
    //           Q(x) = q_{d+e} x^{d+e} + ... + q_0          (d+e+1 unknowns)
    // Equations: Q(x_i) = y_i · E(x_i) for every point.
    let k = points.len();
    let num_e = e;
    let num_q = d + e + 1;
    let cols = num_e + num_q;
    let mut a = Vec::with_capacity(k);
    let mut b = Vec::with_capacity(k);
    for (&(_, y), pow) in points.iter().zip(&powers.rows) {
        let mut row = Vec::with_capacity(cols);
        // -y·(e_0 + e_1 x + ... + e_{e-1} x^{e-1}) + Q(x) = y·x^e
        row.extend(pow[..num_e].iter().map(|&xp| -(y * xp)));
        row.extend_from_slice(&pow[..num_q]);
        a.push(row);
        b.push(y * pow[num_e]);
    }
    let sol = solve_linear_system(&a, &b)?;
    let mut e_coeffs: Vec<Fp> = sol[..num_e].to_vec();
    e_coeffs.push(Fp::ONE); // monic leading coefficient
    let e_poly = Polynomial::from_coeffs(e_coeffs);
    let q_poly = Polynomial::from_coeffs(sol[num_e..].to_vec());
    let (f, rem) = q_poly.div_rem(&e_poly);
    if !rem.is_zero() {
        return None;
    }
    if f.degree() > d && !f.is_zero() {
        return None;
    }
    Some(f)
}

/// Berlekamp–Welch decoding.
///
/// Given `points` (distinct `x` coordinates), a target degree `d` and a bound
/// `e` on the number of erroneous points, attempts to find a polynomial `f`
/// of degree `≤ d` that agrees with at least `points.len() - e` of the
/// points. Requires `points.len() ≥ d + 2e + 1`; returns `None` otherwise or
/// when no such polynomial exists.
pub fn berlekamp_welch(d: usize, e: usize, points: &[(Fp, Fp)]) -> Option<Polynomial> {
    let k = points.len();
    if k < d + 2 * e + 1 {
        return None;
    }
    if e == 0 {
        let f = interpolate_prefix(d, points);
        if points.iter().all(|&(x, y)| f.evaluate(x) == y) {
            return Some(f);
        }
        return None;
    }
    bw_solve(d, e, points, &PowerRows::new(points, d + e))
}

/// One step of the online error-correction loop.
///
/// `points` is the set of `(x, y)` pairs received so far from the parties of
/// `P'` (at most `t` of which are corrupt). If at least `d + t + 1` of the
/// received points lie on a single polynomial of degree `≤ d`, returns it.
///
/// Matches the OEC loop of \[13\]: with `k` points in hand, up to
/// `r = k − (d + t + 1)` of them may be ignored as erroneous. This
/// implementation is *incremental*:
///
/// 1. **Interpolate-and-verify fast path** — the polynomial through the
///    first `d + 1` points is checked for `> d + t` agreement (and for an
///    implied error count within `min(r, t)`, so it never accepts a
///    candidate the retry loop was not allowed to reach) before any
///    linear-system machinery is touched — `O(k·d)` instead of `O(k³)` in
///    the common no-error case. Under those two conditions the accepted
///    polynomial is unique, so the fast path can only find *the* answer
///    sooner, never a different one. This also subsumes the old `e = 0`
///    Berlekamp–Welch attempt and counts agreement exactly once per
///    candidate.
/// 2. The per-point Vandermonde power rows are computed once and shared
///    across the remaining `e = 1..=min(r, t)` retries.
/// 3. Gaussian pivots inside each solve are batch-inverted
///    ([`solve_linear_system`]).
pub fn oec_decode(d: usize, t: usize, points: &[(Fp, Fp)]) -> Option<Polynomial> {
    let k = points.len();
    if k < d + t + 1 {
        return None;
    }
    let max_errors = (k - (d + t + 1)).min(t);
    let agreement = |f: &Polynomial| points.iter().filter(|&&(x, y)| f.evaluate(x) == y).count();
    let f = interpolate_prefix(d, points);
    let agree = agreement(&f);
    // The extra `k - agree ≤ max_errors` guard keeps the fast path exactly
    // equivalent to the retry loop: without it, a candidate that treats more
    // points as erroneous than any loop iteration may ignore could be
    // accepted here although the loop (and the reference implementation)
    // would fail safe with `None` — reachable only when more than `t`
    // points are actually corrupt.
    if agree > d + t && k - agree <= max_errors {
        return Some(f);
    }
    if max_errors == 0 {
        return None;
    }
    let powers = PowerRows::new(points, d + max_errors);
    for e in 1..=max_errors {
        if let Some(f) = bw_solve(d, e, points, &powers) {
            if agreement(&f) > d + t {
                return Some(f);
            }
        }
    }
    None
}

/// The pre-optimisation OEC loop (fresh Berlekamp–Welch system per error
/// bound, agreement re-counted after the `e = 0` full verification).
///
/// Retained as the executable reference semantics for [`oec_decode`]: the
/// proptest equivalence suite pins the incremental implementation against it
/// on random corruption patterns.
#[doc(hidden)]
pub fn oec_decode_reference(d: usize, t: usize, points: &[(Fp, Fp)]) -> Option<Polynomial> {
    let k = points.len();
    if k < d + t + 1 {
        return None;
    }
    let max_errors = (k - (d + t + 1)).min(t);
    for e in 0..=max_errors {
        if let Some(f) = berlekamp_welch(d, e, points) {
            let agree = points.iter().filter(|&&(x, y)| f.evaluate(x) == y).count();
            if agree > d + t {
                return Some(f);
            }
        }
    }
    None
}

/// Batched OEC over many values that share one `x`-coordinate vector (the
/// common case for [`Π_WPS` support sets and batched public
/// openings](crate::shamir)): the interpolate-and-verify fast path shares a
/// single [`LagrangeBasis`] over `xs[..d+1]` across all `columns`, falling
/// back to the full per-value [`oec_decode`] only for values where the fast
/// path does not accept.
///
/// `columns[v]` holds the received `y` values of value `v`, aligned with
/// `xs`. Returns `None` as soon as any value cannot be decoded yet.
///
/// # Panics
///
/// Panics if some column length differs from `xs.len()`.
pub fn oec_decode_batch(
    d: usize,
    t: usize,
    xs: &[Fp],
    columns: &[Vec<Fp>],
) -> Option<Vec<Polynomial>> {
    let k = xs.len();
    if k < d + t + 1 {
        return None;
    }
    let max_errors = (k - (d + t + 1)).min(t);
    let basis = LagrangeBasis::new(xs[..d + 1].to_vec());
    let mut out = Vec::with_capacity(columns.len());
    for ys in columns {
        assert_eq!(ys.len(), k, "column/xs length mismatch");
        let f = basis.interpolate(&ys[..d + 1]);
        let agree = xs
            .iter()
            .zip(ys)
            .filter(|&(&x, &y)| f.evaluate(x) == y)
            .count();
        // Same acceptance rule as `oec_decode`'s fast path, implied error
        // count included.
        if agree > d + t && k - agree <= max_errors {
            out.push(f);
            continue;
        }
        let points: Vec<(Fp, Fp)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        out.push(oec_decode(d, t, &points)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation_points::alpha;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fp(v: u64) -> Fp {
        Fp::from_u64(v)
    }

    #[test]
    fn solve_simple_system() {
        // x + y = 5, x - y = 1  → x = 3, y = 2
        let a = vec![vec![fp(1), fp(1)], vec![fp(1), -fp(1)]];
        let b = vec![fp(5), fp(1)];
        let sol = solve_linear_system(&a, &b).unwrap();
        assert_eq!(sol, vec![fp(3), fp(2)]);
    }

    #[test]
    fn solve_inconsistent_system() {
        let a = vec![vec![fp(1), fp(1)], vec![fp(2), fp(2)]];
        let b = vec![fp(1), fp(3)];
        assert!(solve_linear_system(&a, &b).is_none());
    }

    #[test]
    fn solve_underdetermined_system() {
        let a = vec![vec![fp(1), fp(1)]];
        let b = vec![fp(4)];
        let sol = solve_linear_system(&a, &b).unwrap();
        assert_eq!(sol[0] + sol[1], fp(4));
    }

    #[test]
    fn bw_no_errors() {
        let mut rng = StdRng::seed_from_u64(20);
        let f = Polynomial::random(&mut rng, 3);
        let pts: Vec<(Fp, Fp)> = (0..8).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
        assert_eq!(berlekamp_welch(3, 0, &pts).unwrap(), f);
    }

    #[test]
    fn bw_corrects_errors() {
        let mut rng = StdRng::seed_from_u64(21);
        let d = 3;
        let e = 2;
        let f = Polynomial::random(&mut rng, d);
        let mut pts: Vec<(Fp, Fp)> = (0..d + 2 * e + 1)
            .map(|i| (alpha(i), f.evaluate(alpha(i))))
            .collect();
        pts[0].1 += fp(99);
        pts[4].1 += fp(1);
        assert_eq!(berlekamp_welch(d, e, &pts).unwrap(), f);
    }

    #[test]
    fn bw_insufficient_points() {
        let pts = vec![(fp(1), fp(1)), (fp(2), fp(2))];
        assert!(berlekamp_welch(2, 1, &pts).is_none());
    }

    #[test]
    fn oec_waits_for_enough_points() {
        let mut rng = StdRng::seed_from_u64(22);
        let d = 2;
        let t = 1;
        let f = Polynomial::random(&mut rng, d);
        let pts: Vec<(Fp, Fp)> = (0..d + t)
            .map(|i| (alpha(i), f.evaluate(alpha(i))))
            .collect();
        assert!(oec_decode(d, t, &pts).is_none());
    }

    #[test]
    fn oec_with_corrupt_point() {
        let mut rng = StdRng::seed_from_u64(23);
        let d = 2;
        let t = 2;
        let f = Polynomial::random(&mut rng, d);
        // 7 points, one corrupted: d + t + 1 = 5 honest agreeing points exist.
        let mut pts: Vec<(Fp, Fp)> = (0..7).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
        pts[3].1 += fp(7);
        assert_eq!(oec_decode(d, t, &pts).unwrap(), f);
    }

    #[test]
    fn oec_fast_path_fails_safe_beyond_the_corruption_model() {
        // d = 0, t = 1, four points of which two disagree with the first:
        // the constant 5 agrees with 2 > d + t points, but accepting it
        // would mean ignoring 2 > max_errors = 1 points. The pre-refactor
        // loop fails safe with None here; the fast path must too.
        let pts = vec![
            (alpha(0), fp(5)),
            (alpha(1), fp(5)),
            (alpha(2), fp(7)),
            (alpha(3), fp(9)),
        ];
        assert_eq!(oec_decode(0, 1, &pts), None);
        assert_eq!(oec_decode_reference(0, 1, &pts), None);
        let columns = vec![pts.iter().map(|&(_, y)| y).collect::<Vec<_>>()];
        let xs: Vec<Fp> = pts.iter().map(|&(x, _)| x).collect();
        assert_eq!(oec_decode_batch(0, 1, &xs, &columns), None);
    }

    #[test]
    fn oec_does_not_output_wrong_polynomial_with_few_points() {
        // With exactly d+t+1 points and one error, OEC must not output (it
        // cannot correct yet) — it would need to wait for more points.
        let mut rng = StdRng::seed_from_u64(24);
        let d = 2;
        let t = 2;
        let f = Polynomial::random(&mut rng, d);
        let mut pts: Vec<(Fp, Fp)> = (0..d + t + 1)
            .map(|i| (alpha(i), f.evaluate(alpha(i))))
            .collect();
        pts[0].1 += fp(1);
        assert!(oec_decode(d, t, &pts).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_oec_corrects_up_to_t_errors(
            seed in any::<u64>(),
            d in 1usize..4,
            t in 1usize..4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = Polynomial::random(&mut rng, d);
            let n = d + 2 * t + 1;
            let mut pts: Vec<(Fp, Fp)> =
                (0..n).map(|i| (alpha(i), f.evaluate(alpha(i)))).collect();
            // corrupt exactly t random distinct points
            let mut corrupted = std::collections::HashSet::new();
            while corrupted.len() < t {
                corrupted.insert(rng.gen_range(0..n));
            }
            for &i in &corrupted {
                pts[i].1 += Fp::from_u64(rng.gen_range(1..1000));
            }
            prop_assert_eq!(oec_decode(d, t, &pts).unwrap(), f);
        }
    }
}
