//! Shamir `d`-sharing (Definition 2.3) and its linearity.
//!
//! A value `s ∈ F` is `d`-shared if there is a `d`-degree sharing polynomial
//! `f_s(·)` with `f_s(0) = s` and every honest `P_i` holds the share
//! `s_i = f_s(α_i)`. All circuit values in the best-of-both-worlds protocol
//! are `t_s`-shared, irrespective of the network type.

use rand::Rng;

use crate::domain::EvalDomain;
use crate::evaluation_points::alpha;
use crate::field::Fp;
use crate::poly::Polynomial;
use crate::rs;

/// A dealer-side sharing: the sharing polynomial plus the full share vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sharing {
    /// The `d`-degree sharing polynomial with `f(0) = secret`.
    pub polynomial: Polynomial,
    /// `shares[i]` is party `i`'s share `f(α_i)`.
    pub shares: Vec<Fp>,
}

/// Produces a fresh random `degree`-sharing of `secret` among `n` parties.
///
/// ```
/// use mpc_algebra::shamir;
/// use mpc_algebra::Fp;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let sharing = shamir::share(&mut rng, Fp::from_u64(42), 2, 7);
/// let points: Vec<(usize, Fp)> = (0..3).map(|i| (i, sharing.shares[i])).collect();
/// assert_eq!(shamir::reconstruct(2, &points).unwrap(), Fp::from_u64(42));
/// ```
pub fn share<R: Rng + ?Sized>(rng: &mut R, secret: Fp, degree: usize, n: usize) -> Sharing {
    let polynomial = Polynomial::random_with_constant_term(rng, degree, secret);
    let domain = EvalDomain::get(n);
    let shares = domain
        .alphas()
        .iter()
        .map(|&a| polynomial.evaluate(a))
        .collect();
    Sharing { polynomial, shares }
}

/// Produces a fresh random `degree`-sharing of `value` *positioned at* an
/// arbitrary public point: `f(position) = value` instead of the standard
/// `f(0) = value`.
///
/// This is the building block of the packed engine's slot-positioned
/// sharings ([`crate::packed`]): a block dealer shares each triple component
/// at the secret-slot points `e_k` (and, for output-cone gates, additionally
/// at `0`) so that slot-Lagrange recombination yields packed sharings
/// without any interaction. Sampling `f = r + (value − r(position))` for a
/// uniformly random degree-`degree` polynomial `r` gives the uniform
/// distribution over all degree-≤`degree` polynomials through
/// `(position, value)` — every such `f` has exactly `|F|` preimages `r`.
pub fn share_at<R: Rng + ?Sized>(
    rng: &mut R,
    value: Fp,
    position: Fp,
    degree: usize,
    n: usize,
) -> Sharing {
    let r = Polynomial::random(rng, degree);
    let shift = value - r.evaluate(position);
    let polynomial = r.add(&Polynomial::constant(shift));
    let domain = EvalDomain::get(n);
    let shares = domain
        .alphas()
        .iter()
        .map(|&a| polynomial.evaluate(a))
        .collect();
    Sharing { polynomial, shares }
}

/// Deterministic "default" sharing of a public constant: the constant
/// polynomial, i.e. every share equals the constant. Used by the paper
/// whenever parties adopt a default `t_s`-sharing of 0 (e.g. for parties
/// outside the common subset `CS`).
pub fn default_sharing(constant: Fp, n: usize) -> Sharing {
    Sharing {
        polynomial: Polynomial::constant(constant),
        shares: vec![constant; n],
    }
}

/// Reconstructs a `degree`-shared secret from error-free shares.
///
/// `shares` maps 0-indexed party ids to their shares. Returns `None` if fewer
/// than `degree + 1` shares are provided or the shares are inconsistent (they
/// do not lie on a polynomial of degree ≤ `degree`).
pub fn reconstruct(degree: usize, shares: &[(usize, Fp)]) -> Option<Fp> {
    reconstruct_polynomial(degree, shares).map(|f| f.constant_term())
}

/// Reconstructs the full sharing polynomial from error-free shares, verifying
/// that every provided share lies on it.
pub fn reconstruct_polynomial(degree: usize, shares: &[(usize, Fp)]) -> Option<Polynomial> {
    if shares.len() < degree + 1 {
        return None;
    }
    let pts: Vec<(Fp, Fp)> = shares.iter().map(|&(i, s)| (alpha(i), s)).collect();
    let f = Polynomial::interpolate(&pts[..degree + 1]);
    if f.degree() > degree && !f.is_zero() {
        return None;
    }
    if pts.iter().all(|&(x, y)| f.evaluate(x) == y) {
        Some(f)
    } else {
        None
    }
}

/// Robust reconstruction of a `degree`-shared secret from shares of which at
/// most `t` may be corrupt, via online error correction ([`rs::oec_decode`]).
///
/// Returns `None` until enough consistent shares are present.
pub fn reconstruct_robust(degree: usize, t: usize, shares: &[(usize, Fp)]) -> Option<Fp> {
    let pts: Vec<(Fp, Fp)> = shares.iter().map(|&(i, s)| (alpha(i), s)).collect();
    rs::oec_decode(degree, t, &pts).map(|f| f.constant_term())
}

/// Linearity helpers for local computation on share vectors
/// (`[c1·a + c2·b]_d = c1·[a]_d + c2·[b]_d`).
pub mod linear {
    use super::Fp;

    /// Adds two shares of the same party.
    #[inline]
    pub fn add(a: Fp, b: Fp) -> Fp {
        a + b
    }

    /// Subtracts two shares of the same party.
    #[inline]
    pub fn sub(a: Fp, b: Fp) -> Fp {
        a - b
    }

    /// Multiplies a share by a public constant.
    #[inline]
    pub fn scale(c: Fp, a: Fp) -> Fp {
        c * a
    }

    /// Adds a public constant to a share (valid because the constant
    /// polynomial is a degree-0 sharing of the constant).
    #[inline]
    pub fn add_constant(c: Fp, a: Fp) -> Fp {
        c + a
    }

    /// Generic linear combination `Σ c_i · a_i` of shares.
    pub fn combine(coeffs: &[Fp], shares: &[Fp]) -> Fp {
        assert_eq!(coeffs.len(), shares.len(), "length mismatch");
        coeffs.iter().zip(shares).map(|(&c, &s)| c * s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp(v: u64) -> Fp {
        Fp::from_u64(v)
    }

    #[test]
    fn share_reconstruct_roundtrip() {
        let mut rng = StdRng::seed_from_u64(30);
        let s = fp(31415);
        let sharing = share(&mut rng, s, 3, 10);
        let pts: Vec<(usize, Fp)> = (2..6).map(|i| (i, sharing.shares[i])).collect();
        assert_eq!(reconstruct(3, &pts).unwrap(), s);
    }

    #[test]
    fn reconstruct_rejects_too_few_shares() {
        let mut rng = StdRng::seed_from_u64(31);
        let sharing = share(&mut rng, fp(5), 3, 10);
        let pts: Vec<(usize, Fp)> = (0..3).map(|i| (i, sharing.shares[i])).collect();
        assert!(reconstruct(3, &pts).is_none());
    }

    #[test]
    fn reconstruct_rejects_inconsistent_shares() {
        let mut rng = StdRng::seed_from_u64(32);
        let sharing = share(&mut rng, fp(5), 2, 8);
        let mut pts: Vec<(usize, Fp)> = (0..6).map(|i| (i, sharing.shares[i])).collect();
        pts[0].1 += fp(1);
        assert!(reconstruct(2, &pts).is_none());
    }

    #[test]
    fn robust_reconstruct_with_corruption() {
        let mut rng = StdRng::seed_from_u64(33);
        let t = 2;
        let n = 3 * t + 1;
        let sharing = share(&mut rng, fp(777), t, n);
        let mut pts: Vec<(usize, Fp)> = (0..n).map(|i| (i, sharing.shares[i])).collect();
        pts[1].1 += fp(13);
        pts[4].1 += fp(21);
        assert_eq!(reconstruct_robust(t, t, &pts).unwrap(), fp(777));
    }

    #[test]
    fn share_at_positions_value_at_requested_point() {
        let mut rng = StdRng::seed_from_u64(35);
        let n = 7;
        let d = 2;
        let pos = -fp(3);
        let s = share_at(&mut rng, fp(4242), pos, d, n);
        assert!(s.polynomial.degree() <= d);
        assert_eq!(s.polynomial.evaluate(pos), fp(4242));
        for (i, &sh) in s.shares.iter().enumerate() {
            assert_eq!(sh, s.polynomial.evaluate(alpha(i)));
        }
    }

    #[test]
    fn default_sharing_is_constant() {
        let s = default_sharing(fp(9), 5);
        assert!(s.shares.iter().all(|&x| x == fp(9)));
        assert_eq!(s.polynomial.constant_term(), fp(9));
    }

    #[test]
    fn linearity_of_sharings() {
        let mut rng = StdRng::seed_from_u64(34);
        let n = 7;
        let d = 2;
        let a = share(&mut rng, fp(10), d, n);
        let b = share(&mut rng, fp(32), d, n);
        let combined: Vec<(usize, Fp)> = (0..n)
            .map(|i| {
                (
                    i,
                    linear::add(linear::scale(fp(3), a.shares[i]), b.shares[i]),
                )
            })
            .collect();
        assert_eq!(reconstruct(d, &combined).unwrap(), fp(3 * 10 + 32));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_roundtrip(seed in any::<u64>(), secret in any::<u64>(), d in 1usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3 * d + 1;
            let s = Fp::from_u64(secret);
            let sharing = share(&mut rng, s, d, n);
            let pts: Vec<(usize, Fp)> = (0..d + 1).map(|i| (i, sharing.shares[i])).collect();
            prop_assert_eq!(reconstruct(d, &pts).unwrap(), s);
        }

        #[test]
        fn prop_any_d_shares_are_consistent_with_any_secret_distribution(
            seed in any::<u64>(), d in 2usize..5,
        ) {
            // t shares leak nothing structural: any subset of exactly d shares
            // still interpolates *some* polynomial of degree < d through them
            // plus an arbitrary candidate secret — i.e. reconstruction from d
            // shares is impossible. We verify interpolation through d shares +
            // (0, candidate) always succeeds.
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3 * d + 1;
            let sharing = share(&mut rng, Fp::from_u64(123), d, n);
            let candidate = Fp::from_u64(999);
            let mut pts: Vec<(Fp, Fp)> = (0..d)
                .map(|i| (alpha(i), sharing.shares[i]))
                .collect();
            pts.push((Fp::ZERO, candidate));
            let f = Polynomial::interpolate(&pts);
            prop_assert_eq!(f.evaluate(Fp::ZERO), candidate);
            prop_assert!(f.degree() <= d);
        }
    }
}
