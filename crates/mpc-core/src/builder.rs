//! [`MpcBuilder`] — the one-call API for running a full best-of-both-worlds
//! MPC evaluation on any [`Transport`] backend.
//!
//! This is what the examples, the integration tests and the experiment
//! harness use: configure `n`, `(t_s, t_a)`, the network kind and the inputs,
//! then [`MpcBuilder::run`] a circuit and get every honest party's output
//! plus the run's communication metrics and completion time. The backend —
//! the deterministic discrete-event simulator, the real threaded runtime, or
//! the supervised TCP socket runtime — is picked with
//! [`MpcBuilder::transport`] (default: the `MPC_TRANSPORT` environment
//! variable via [`Backend::from_env`]).

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use mpc_algebra::Fp;
use mpc_net::{
    AdversaryStructure, Backend, ByzantineStrategy, CorruptionSet, FaultPlan, LinkDelays, Metrics,
    NetConfig, NetworkKind, PartyId, PartyView, Protocol, Scheduler, Simulation, TcpNet,
    ThreadedNet, ThresholdAdversary, Time, Transport, TransportError,
};
use mpc_protocols::byzantine::SilentParty;
use mpc_protocols::{Msg, Params};

use crate::circuit::Circuit;
use crate::cireval::CirEval;

/// Typed access to the `MPC_*` environment knobs.
///
/// Every knob the builder resolves from the environment goes through one of
/// these helpers, so a set-but-malformed value is a loud configuration error
/// instead of a silent fallback to the default — a sweep whose knob is
/// misspelled must not quietly measure the wrong thing.
pub mod knobs {
    use std::fmt::Display;
    use std::str::FromStr;

    /// The raw value of the environment variable `name`, treating unset and
    /// blank values as absent.
    pub fn raw(name: &str) -> Option<String> {
        match std::env::var(name) {
            Ok(v) if !v.trim().is_empty() => Some(v.trim().to_string()),
            _ => None,
        }
    }

    /// Parses the environment variable `name` as a `T`. `what` names the
    /// expected shape in the failure message.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set and non-blank but does not parse — the
    /// caller's default applies only to *absent* knobs, never to broken ones.
    pub fn parsed<T>(name: &str, what: &str) -> Option<T>
    where
        T: FromStr,
        T::Err: Display,
    {
        raw(name).map(|v| {
            v.parse()
                .unwrap_or_else(|e| panic!("{name}={v:?} could not be parsed as {what}: {e}"))
        })
    }
}

/// Error returned when a protocol run does not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// Human-readable description.
    pub message: String,
    /// The transport-layer failure behind this error, when one was detected
    /// (e.g. [`TransportError::Wedged`] from the threaded backend's
    /// zero-progress deadline).
    pub transport: Option<TransportError>,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(t) = &self.transport {
            write!(f, " ({t})")?;
        }
        Ok(())
    }
}

impl std::error::Error for RunError {}

/// The result of a completed MPC run.
#[derive(Debug, Clone)]
pub struct MpcRunResult {
    /// The common output of the honest parties.
    pub output: Fp,
    /// Per-party outputs (corrupt/silent parties report `None`).
    pub outputs: Vec<Option<Fp>>,
    /// The agreed input subset `CS` (whose inputs entered the computation).
    pub input_subset: Vec<PartyId>,
    /// Simulated time at which the last honest party terminated.
    pub finished_at: Time,
    /// Communication metrics of the run.
    pub metrics: Metrics,
}

/// Builder for a full MPC evaluation run.
pub struct MpcBuilder {
    params: Params,
    network: NetworkKind,
    seed: u64,
    delta: Time,
    inputs: Vec<Fp>,
    corrupt: CorruptionSet,
    structure: Option<Arc<dyn AdversaryStructure>>,
    fault_plan: Option<FaultPlan>,
    chaos_plan: Option<FaultPlan>,
    wedge_millis: Option<u64>,
    strategy: Option<Box<dyn ByzantineStrategy>>,
    scheduler: Option<Box<dyn Scheduler>>,
    horizon_factor: u64,
    threads: Option<usize>,
    frames: Option<bool>,
    per_gate_openings: bool,
    packing: Option<usize>,
    transport: Option<Backend>,
    link_delays: Option<LinkDelays>,
    tick_micros: Option<u64>,
    drain: bool,
}

impl fmt::Debug for MpcBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpcBuilder")
            .field("params", &self.params)
            .field("network", &self.network)
            .field("seed", &self.seed)
            .field("delta", &self.delta)
            .field("corrupt", &self.corrupt)
            .finish_non_exhaustive()
    }
}

impl MpcBuilder {
    /// Creates a builder for `n` parties tolerating `t_s` synchronous and
    /// `t_a` asynchronous corruptions.
    ///
    /// # Panics
    ///
    /// Panics if `t_a > t_s` or `3·t_s + t_a ≥ n` (the protocol is not
    /// defined there).
    pub fn new(n: usize, ts: usize, ta: usize) -> Self {
        let delta = NetConfig::DEFAULT_DELTA;
        MpcBuilder {
            params: Params::new(n, ts, ta, delta),
            network: NetworkKind::Synchronous,
            seed: NetConfig::DEFAULT_SEED,
            delta,
            inputs: vec![Fp::ZERO; n],
            corrupt: CorruptionSet::none(),
            structure: None,
            fault_plan: None,
            chaos_plan: None,
            wedge_millis: None,
            strategy: None,
            scheduler: None,
            horizon_factor: 8,
            threads: None,
            frames: None,
            per_gate_openings: false,
            packing: None,
            transport: None,
            link_delays: None,
            tick_micros: None,
            drain: false,
        }
    }

    /// Selects the network kind the run executes in (the parties never learn
    /// this — that is the whole point of the paper).
    pub fn network(mut self, kind: NetworkKind) -> Self {
        self.network = kind;
        self
    }

    /// Sets the master seed (reproducible runs).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the synchronous delay bound `Δ` (in simulation ticks).
    pub fn delta(mut self, delta: Time) -> Self {
        self.delta = delta;
        self.params = Params::new(self.params.n, self.params.ts, self.params.ta, delta);
        self
    }

    /// Sets the parties' private inputs (as `u64`, reduced into the field).
    pub fn inputs(mut self, inputs: &[u64]) -> Self {
        assert_eq!(inputs.len(), self.params.n, "one input per party");
        self.inputs = inputs.iter().map(|&x| Fp::from_u64(x)).collect();
        self
    }

    /// Sets the parties' private inputs as field elements.
    pub fn field_inputs(mut self, inputs: &[Fp]) -> Self {
        assert_eq!(inputs.len(), self.params.n, "one input per party");
        self.inputs = inputs.to_vec();
        self
    }

    /// Marks the listed parties as corrupt. Without a
    /// [`MpcBuilder::byzantine_strategy`] they run a crashed (silent) party
    /// instead of the protocol; richer behavioural misbehaviours can be
    /// exercised through the lower-level `Simulation` API directly.
    pub fn corrupt(mut self, parties: &[PartyId]) -> Self {
        self.corrupt = CorruptionSet::new(parties.to_vec());
        self
    }

    /// Runs under a pluggable [`AdversaryStructure`] instead of the plain
    /// `(t_s, t_a)` thresholds of [`MpcBuilder::new`]. The protocol
    /// parameters are re-derived from the structure's threshold hull
    /// ([`Params::from_structure`]); at [`MpcBuilder::run`] time the
    /// [`MpcBuilder::corrupt`] set is validated to be synchronously
    /// admissible under the structure, and the structure is exposed to the
    /// transport (e.g. for sweep harness classification).
    ///
    /// # Panics
    ///
    /// Panics if the structure's party count differs from this builder's `n`,
    /// or if the structure is infeasible.
    pub fn adversary(mut self, structure: Arc<dyn AdversaryStructure>) -> Self {
        assert_eq!(
            structure.n(),
            self.params.n,
            "adversary structure party count must match the builder's n"
        );
        self.params = Params::from_structure(structure.as_ref(), self.delta);
        self.structure = Some(structure);
        self
    }

    /// Injects a deterministic [`FaultPlan`] (crashes, partitions,
    /// drop/duplicate/delay bursts) at the network layer. Honored identically
    /// by the simulator and the threaded backend, so any failure it provokes
    /// reproduces from the run's seed alone. When unset, the
    /// `MPC_FAULT_PLAN` environment variable selects a named
    /// [`FaultPlan::preset`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the threaded backend's zero-progress deadline: if a party's gate
    /// makes no progress for this long it records a
    /// [`TransportError::Wedged`] (surfaced via the run error and counted in
    /// [`Metrics::wedges`]) and releases the gate instead of stalling
    /// forever. Ignored on the simulator. Defaults to the `MPC_WEDGE_MS`
    /// environment variable, then 30 s.
    pub fn wedge_timeout(mut self, timeout: Duration) -> Self {
        self.wedge_millis = Some((timeout.as_millis() as u64).max(1));
        self
    }

    /// The effective fault plan this builder will run with: the explicit
    /// [`MpcBuilder::fault_plan`] setting, else the `MPC_FAULT_PLAN`
    /// environment variable resolved through [`FaultPlan::preset`] with this
    /// builder's `n` and `Δ`, else no faults.
    ///
    /// # Panics
    ///
    /// Panics if `MPC_FAULT_PLAN` names an unknown preset — a fault-injection
    /// knob that silently does nothing would invalidate whole sweeps.
    pub fn effective_fault_plan(&self) -> FaultPlan {
        if let Some(plan) = &self.fault_plan {
            return plan.clone();
        }
        match knobs::raw("MPC_FAULT_PLAN") {
            Some(name) => FaultPlan::preset(&name, self.params.n, self.delta)
                .unwrap_or_else(|| panic!("MPC_FAULT_PLAN={name} is not a known fault preset")),
            None => FaultPlan::none(),
        }
    }

    /// Installs a *socket-level* chaos plan for the TCP backend: the plan's
    /// drop / extra-delay / duplicate rules are interpreted by the connection
    /// supervisors as sever-mid-record, stall-write and duplicate-byte-run
    /// faults (see `TcpNet::set_chaos_plan`). Chaos only roughens the wire —
    /// the logical schedule, outputs and guarantee verdicts are unaffected.
    /// Ignored on the other backends. When unset, the `MPC_CHAOS_PLAN`
    /// environment variable selects a named [`FaultPlan::chaos_preset`].
    pub fn chaos_plan(mut self, plan: FaultPlan) -> Self {
        self.chaos_plan = Some(plan);
        self
    }

    /// The effective socket chaos plan this builder will run with: the
    /// explicit [`MpcBuilder::chaos_plan`] setting, else `MPC_CHAOS_PLAN`
    /// resolved through [`FaultPlan::chaos_preset`], else no chaos.
    ///
    /// # Panics
    ///
    /// Panics if `MPC_CHAOS_PLAN` names an unknown chaos preset.
    pub fn effective_chaos_plan(&self) -> FaultPlan {
        if let Some(plan) = &self.chaos_plan {
            return plan.clone();
        }
        match knobs::raw("MPC_CHAOS_PLAN") {
            Some(name) => FaultPlan::chaos_preset(&name, self.params.n, self.delta)
                .unwrap_or_else(|| panic!("MPC_CHAOS_PLAN={name} is not a known chaos preset")),
            None => FaultPlan::none(),
        }
    }

    /// Applies a wire-level [`ByzantineStrategy`] to every message the
    /// corrupt parties send. The corrupt parties then run the *honest*
    /// protocol code — the misbehaviour happens on the wire (bytes replaced,
    /// garbled or dropped), which exercises the decode boundary of every
    /// honest receiver.
    pub fn byzantine_strategy(mut self, strategy: Box<dyn ByzantineStrategy>) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the message scheduler (e.g. an adversarial asynchronous
    /// schedule from [`mpc_net::scheduler`]).
    pub fn scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Multiplier applied to the default simulation horizon (useful for very
    /// adversarial schedules).
    pub fn horizon_factor(mut self, factor: u64) -> Self {
        self.horizon_factor = factor;
        self
    }

    /// Sets the simulator's worker-thread count for same-time-slice
    /// pre-execution (see [`NetConfig::with_threads`]). Purely a wall-clock
    /// knob: the run's outputs, metrics and bit accounting are identical
    /// for every value. Defaults to the `MPC_THREADS` environment variable,
    /// then 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables or disables wire-frame coalescing explicitly (see
    /// [`NetConfig::with_frames`]); defaults to the `MPC_FRAMES` environment
    /// variable, then on. Framing changes the event schedule (and therefore
    /// the transcript), never the outputs or the bit accounting rules.
    pub fn frames(mut self, frames: bool) -> Self {
        self.frames = Some(frames);
        self
    }

    /// Switches `Π_CirEval` to the per-gate opening reference path (one
    /// public reconstruction per multiplication gate instead of one batch per
    /// multiplication layer). Used by equivalence tests and the e12
    /// benchmark baseline.
    pub fn per_gate_openings(mut self, per_gate: bool) -> Self {
        self.per_gate_openings = per_gate;
        self
    }

    /// Sets the packed (Franklin–Yung SIMD) evaluation width `ℓ`: each
    /// multiplication layer is evaluated in blocks of `ℓ` gates sharing one
    /// Beaver opening. `0` (the default) keeps the scalar engine and the
    /// run's transcript bit-identical to previous versions. Widths above the
    /// feasibility bound `n − 3·t_s`
    /// ([`crate::thresholds::max_packing_width`]) are clamped to it. When
    /// unset, the `MPC_PACKING` environment variable applies.
    pub fn packing(mut self, ell: usize) -> Self {
        self.packing = Some(ell);
        self
    }

    /// The effective packing width this builder will run with: the explicit
    /// [`MpcBuilder::packing`] setting, else `MPC_PACKING`, else 0 (scalar),
    /// clamped to [`crate::thresholds::max_packing_width`].
    pub fn effective_packing(&self) -> usize {
        let requested = self
            .packing
            .or_else(|| knobs::parsed("MPC_PACKING", "a packing width (unsigned integer)"))
            .unwrap_or(0);
        requested.min(crate::thresholds::max_packing_width(
            self.params.n,
            self.params.ts,
        ))
    }

    /// Selects the backend the run executes on: the deterministic simulator
    /// or the real threaded runtime. Defaults to the `MPC_TRANSPORT`
    /// environment variable (see [`Backend::from_env`]), i.e. the simulator
    /// unless `MPC_TRANSPORT=threaded`.
    pub fn transport(mut self, backend: Backend) -> Self {
        self.transport = Some(backend);
        self
    }

    /// Overrides the threaded backend's per-link latency matrix (ignored on
    /// the simulator — pass the same matrix as a [`MpcBuilder::scheduler`]
    /// there). Used by the conformance harness to drive both backends with
    /// the exact same link delays.
    pub fn link_delays(mut self, links: LinkDelays) -> Self {
        self.link_delays = Some(links);
        self
    }

    /// Overrides the threaded backend's real tick duration in microseconds
    /// (default: the `MPC_TICK_US` environment variable, then 1000). Ignored
    /// on the simulator.
    pub fn tick_micros(mut self, micros: u64) -> Self {
        self.tick_micros = Some(micros);
        self
    }

    /// Runs to quiescence instead of stopping as soon as every honest party
    /// has an output. The simulator stops early by default (cheapest); the
    /// threaded backend always drains — so enable this when comparing
    /// metrics across backends.
    pub fn drain(mut self, drain: bool) -> Self {
        self.drain = drain;
        self
    }

    /// The protocol parameters this builder will run with.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Runs the protocol on `circuit` and returns the honest parties' common
    /// output.
    ///
    /// # Errors
    ///
    /// Returns an error if the honest parties do not all terminate within the
    /// simulation horizon, or if they terminate with inconsistent outputs
    /// (which would indicate a protocol violation).
    pub fn run(self, circuit: &Circuit) -> Result<MpcRunResult, RunError> {
        let params = self.params;
        let n = params.n;
        let corrupt = self.corrupt.clone();
        let wire_level = self.strategy.is_some();
        let packing = self.effective_packing();
        let fault_plan = self.effective_fault_plan();
        let structure: Arc<dyn AdversaryStructure> = self
            .structure
            .clone()
            .unwrap_or_else(|| Arc::new(ThresholdAdversary::new(n, params.ts, params.ta)));
        if !structure.sync_admissible(corrupt.corrupt_parties()) {
            return Err(RunError {
                message: format!(
                    "corrupt set {:?} is not admissible under the adversary structure",
                    corrupt.corrupt_parties()
                ),
                transport: None,
            });
        }
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|i| {
                if corrupt.is_corrupt(i) && !wire_level {
                    Box::new(SilentParty) as Box<dyn Protocol<Msg>>
                } else {
                    let mut party = CirEval::new(params, circuit.clone(), self.inputs[i]);
                    party.set_per_gate_openings(self.per_gate_openings);
                    party.set_packing(packing);
                    Box::new(party) as Box<dyn Protocol<Msg>>
                }
            })
            .collect();
        let mut cfg = NetConfig::for_kind(n, self.network)
            .with_delta(self.delta)
            .with_seed(self.seed);
        if let Some(threads) = self.threads {
            cfg = cfg.with_threads(threads);
        }
        if let Some(frames) = self.frames {
            cfg = cfg.with_frames(frames);
        }
        let backend = self.transport.unwrap_or_else(Backend::from_env);
        let chaos_plan = self.effective_chaos_plan();
        let mut scheduler = self.scheduler;
        let mut net: Box<dyn Transport<Msg>> = match backend {
            Backend::Simulator => {
                let mut sim = match scheduler.take() {
                    Some(s) => Simulation::with_scheduler(cfg, corrupt.clone(), s, parties),
                    None => Simulation::new(cfg, corrupt.clone(), parties),
                };
                sim.set_fault_plan(fault_plan.clone());
                Box::new(sim)
            }
            Backend::Threaded | Backend::Tcp => {
                // The thread-per-party backends need frozen per-link
                // latencies: an explicit matrix wins, then a sampled snapshot
                // of a custom scheduler, then the network kind's default
                // matrix.
                let links = match self.link_delays {
                    Some(links) => links,
                    None => match scheduler.take() {
                        Some(mut s) => LinkDelays::sampled_from(n, cfg.seed, s.as_mut()),
                        None => LinkDelays::for_kind(n, cfg.kind, cfg.delta, cfg.seed),
                    },
                };
                if backend == Backend::Threaded {
                    let mut th = ThreadedNet::with_links(cfg, corrupt.clone(), links, parties);
                    if let Some(micros) = self.tick_micros {
                        th = th.with_tick_micros(micros);
                    }
                    if let Some(millis) = self.wedge_millis {
                        th = th.with_wedge_millis(millis);
                    }
                    th.set_fault_plan(fault_plan.clone());
                    Box::new(th)
                } else {
                    let mut th = TcpNet::with_links(cfg, corrupt.clone(), links, parties);
                    if let Some(micros) = self.tick_micros {
                        th = th.with_tick_micros(micros);
                    }
                    if let Some(millis) = self.wedge_millis {
                        th = th.with_wedge_millis(millis);
                    }
                    th.set_fault_plan(fault_plan.clone());
                    th.set_chaos_plan(chaos_plan);
                    Box::new(th)
                }
            }
        };
        net.set_adversary_structure(Arc::clone(&structure));
        if let Some(strategy) = self.strategy {
            net.set_strategy(strategy);
        }
        let horizon = params.horizon_for_depth(circuit.mult_depth()) * self.horizon_factor;
        let party_output = |view: &dyn PartyView<Msg>, i: PartyId| {
            mpc_net::party_as::<CirEval, Msg>(view, i).and_then(|p| p.output)
        };
        // A plan-crashed party is itself one of the tolerated faults: it
        // stops processing (and may resume having missed messages), so it is
        // not owed an output. Requiring one would stall every run that
        // crashes an otherwise-honest party — the guarantee only covers the
        // honest parties the plan leaves alive.
        let crash_targets = fault_plan.crash_targets();
        let requires_output = |i: PartyId| corrupt.is_honest(i) && !crash_targets.contains(&i);
        let mut pred = |view: &dyn PartyView<Msg>| {
            (0..n)
                .filter(|&i| requires_output(i))
                .all(|i| party_output(view, i).is_some())
        };
        let done = if self.drain {
            net.run_to_quiescence(horizon);
            pred(net.as_ref())
        } else {
            net.run_until_done(horizon, &mut pred)
        };
        if !done {
            return Err(RunError {
                message: format!("honest parties did not terminate within horizon {horizon}"),
                transport: net.last_error().cloned(),
            });
        }
        let view: &dyn PartyView<Msg> = net.as_ref();
        let outputs: Vec<Option<Fp>> = (0..n).map(|i| party_output(view, i)).collect();
        // Agreement is checked over every honest output that exists — a
        // plan-crashed party that still produced one must agree too.
        let honest_outputs: Vec<Fp> = (0..n)
            .filter(|&i| corrupt.is_honest(i))
            .filter_map(|i| outputs[i])
            .collect();
        if honest_outputs.is_empty() {
            return Err(RunError {
                message: "no honest party produced an output".to_string(),
                transport: None,
            });
        }
        if honest_outputs.windows(2).any(|w| w[0] != w[1]) {
            return Err(RunError {
                message: "honest parties disagree on the output".to_string(),
                transport: None,
            });
        }
        let input_subset = (0..n)
            .find_map(|i| {
                mpc_net::party_as::<CirEval, Msg>(view, i).and_then(|p| p.input_subset.clone())
            })
            .unwrap_or_default();
        let mut metrics = net.metrics().clone();
        metrics.packed_width = packing as u64;
        metrics.values_opened_by_layer = (0..n)
            .filter(|&i| corrupt.is_honest(i))
            .find_map(|i| {
                mpc_net::party_as::<CirEval, Msg>(view, i).map(|p| p.values_opened_by_layer.clone())
            })
            .unwrap_or_default();
        Ok(MpcRunResult {
            output: honest_outputs[0],
            outputs,
            input_subset,
            finished_at: view.now(),
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_a_simple_circuit() {
        let mut c = Circuit::new(4);
        let prod = c.mul(c.input(0), c.input(1));
        let s = c.add(c.input(2), c.input(3));
        let out = c.add(prod, s);
        c.set_output(out);
        let result = MpcBuilder::new(4, 1, 0)
            .network(NetworkKind::Synchronous)
            .inputs(&[3, 5, 7, 11])
            .run(&c)
            .expect("run succeeds");
        assert_eq!(result.output.as_u64(), 3 * 5 + 7 + 11);
        assert_eq!(result.input_subset, vec![0, 1, 2, 3]);
        assert!(result.metrics.honest_bits > 0);
    }

    #[test]
    fn garbling_corrupt_party_does_not_stop_honest_termination() {
        // The corrupt party runs the honest protocol, but every byte it puts
        // on the wire is garbled; honest receivers must treat the undecodable
        // bytes as Byzantine input (drop, never panic) and still terminate
        // with a common output.
        let c = Circuit::product_of_inputs(4);
        let result = MpcBuilder::new(4, 1, 0)
            .inputs(&[2, 3, 4, 5])
            .corrupt(&[3])
            .byzantine_strategy(Box::new(mpc_net::GarbleBytes))
            .run(&c)
            .expect("honest parties must terminate despite garbled bytes");
        assert!(result.metrics.adversary_tampered > 0);
        assert!(result.metrics.decode_failures > 0);
        // the honest parties' agreement on the output is asserted inside run()
        assert!((0..3).all(|i| result.outputs[i].is_some()));
    }

    #[test]
    #[should_panic(expected = "3*t_s + t_a < n")]
    fn builder_rejects_infeasible_thresholds() {
        let _ = MpcBuilder::new(4, 1, 1);
    }

    #[test]
    fn builder_runs_under_explicit_adversary_structure() {
        let c = Circuit::sum_of_inputs(4);
        let result = MpcBuilder::new(4, 1, 0)
            .adversary(Arc::new(ThresholdAdversary::new(4, 1, 0)))
            .inputs(&[1, 2, 3, 4])
            .corrupt(&[2])
            .run(&c)
            .expect("admissible corrupt set runs");
        assert_eq!(result.output.as_u64(), 1 + 2 + 4);
    }

    #[test]
    fn builder_rejects_inadmissible_corrupt_set() {
        // A general adversary that only ever corrupts party 0: corrupting
        // party 3 is outside the structure and must be rejected up front.
        let g = mpc_net::GeneralAdversary::new(4, vec![vec![0]], vec![]);
        let c = Circuit::sum_of_inputs(4);
        let err = MpcBuilder::new(4, 1, 0)
            .adversary(Arc::new(g))
            .inputs(&[1, 2, 3, 4])
            .corrupt(&[3])
            .run(&c)
            .expect_err("inadmissible corrupt set must be rejected");
        assert!(err.message.contains("not admissible"), "{}", err.message);
        assert!(err.transport.is_none());
    }

    #[test]
    fn builder_fault_plan_crash_of_corrupt_party_still_terminates() {
        // Crashing an already-silent corrupt party at the wire exercises the
        // fault plumbing end-to-end: honest traffic *to* the crashed party is
        // dropped (fault_drops > 0) and the honest majority still terminates.
        let c = Circuit::sum_of_inputs(4);
        let result = MpcBuilder::new(4, 1, 0)
            .inputs(&[1, 2, 3, 4])
            .corrupt(&[3])
            .fault_plan(FaultPlan::none().crash(3, 0, None))
            .run(&c)
            .expect("honest parties terminate despite the crash fault");
        assert_eq!(result.output.as_u64(), 1 + 2 + 3);
        assert!(result.metrics.fault_drops > 0);
    }

    #[test]
    fn builder_fault_plan_duplicate_burst_is_tolerated() {
        // Duplicated deliveries must never change the honest output.
        let c = Circuit::product_of_inputs(4);
        let baseline = MpcBuilder::new(4, 1, 0)
            .inputs(&[2, 3, 4, 5])
            .run(&c)
            .expect("clean run succeeds");
        let dup = MpcBuilder::new(4, 1, 0)
            .inputs(&[2, 3, 4, 5])
            .fault_plan(FaultPlan::none().duplicate_burst(None, None, (0, 200), 3))
            .run(&c)
            .expect("duplicate burst is tolerated");
        assert_eq!(baseline.output, dup.output);
        assert!(dup.metrics.fault_duplicates > 0);
    }

    #[test]
    fn builder_rejects_wrong_input_count() {
        let c = Circuit::sum_of_inputs(4);
        let result =
            std::panic::catch_unwind(|| MpcBuilder::new(4, 1, 0).inputs(&[1, 2, 3]).run(&c));
        assert!(result.is_err());
    }
}
