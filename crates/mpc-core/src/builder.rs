//! [`MpcBuilder`] — the one-call API for running a full best-of-both-worlds
//! MPC evaluation inside the deterministic network simulation.
//!
//! This is what the examples, the integration tests and the experiment
//! harness use: configure `n`, `(t_s, t_a)`, the network kind and the inputs,
//! then [`MpcBuilder::run`] a circuit and get every honest party's output
//! plus the run's communication metrics and completion time.

use std::fmt;

use mpc_algebra::Fp;
use mpc_net::{
    ByzantineStrategy, CorruptionSet, Metrics, NetConfig, NetworkKind, PartyId, Protocol,
    Scheduler, Simulation, Time,
};
use mpc_protocols::byzantine::SilentParty;
use mpc_protocols::{Msg, Params};

use crate::circuit::Circuit;
use crate::cireval::CirEval;

/// Error returned when a protocol run does not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for RunError {}

/// The result of a completed MPC run.
#[derive(Debug, Clone)]
pub struct MpcRunResult {
    /// The common output of the honest parties.
    pub output: Fp,
    /// Per-party outputs (corrupt/silent parties report `None`).
    pub outputs: Vec<Option<Fp>>,
    /// The agreed input subset `CS` (whose inputs entered the computation).
    pub input_subset: Vec<PartyId>,
    /// Simulated time at which the last honest party terminated.
    pub finished_at: Time,
    /// Communication metrics of the run.
    pub metrics: Metrics,
}

/// Builder for a full MPC evaluation run.
pub struct MpcBuilder {
    params: Params,
    network: NetworkKind,
    seed: u64,
    delta: Time,
    inputs: Vec<Fp>,
    corrupt: CorruptionSet,
    strategy: Option<Box<dyn ByzantineStrategy>>,
    scheduler: Option<Box<dyn Scheduler>>,
    horizon_factor: u64,
    threads: Option<usize>,
    frames: Option<bool>,
    per_gate_openings: bool,
}

impl fmt::Debug for MpcBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpcBuilder")
            .field("params", &self.params)
            .field("network", &self.network)
            .field("seed", &self.seed)
            .field("delta", &self.delta)
            .field("corrupt", &self.corrupt)
            .finish_non_exhaustive()
    }
}

impl MpcBuilder {
    /// Creates a builder for `n` parties tolerating `t_s` synchronous and
    /// `t_a` asynchronous corruptions.
    ///
    /// # Panics
    ///
    /// Panics if `t_a > t_s` or `3·t_s + t_a ≥ n` (the protocol is not
    /// defined there).
    pub fn new(n: usize, ts: usize, ta: usize) -> Self {
        let delta = NetConfig::DEFAULT_DELTA;
        MpcBuilder {
            params: Params::new(n, ts, ta, delta),
            network: NetworkKind::Synchronous,
            seed: NetConfig::DEFAULT_SEED,
            delta,
            inputs: vec![Fp::ZERO; n],
            corrupt: CorruptionSet::none(),
            strategy: None,
            scheduler: None,
            horizon_factor: 8,
            threads: None,
            frames: None,
            per_gate_openings: false,
        }
    }

    /// Selects the network kind the run executes in (the parties never learn
    /// this — that is the whole point of the paper).
    pub fn network(mut self, kind: NetworkKind) -> Self {
        self.network = kind;
        self
    }

    /// Sets the master seed (reproducible runs).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the synchronous delay bound `Δ` (in simulation ticks).
    pub fn delta(mut self, delta: Time) -> Self {
        self.delta = delta;
        self.params = Params::new(self.params.n, self.params.ts, self.params.ta, delta);
        self
    }

    /// Sets the parties' private inputs (as `u64`, reduced into the field).
    pub fn inputs(mut self, inputs: &[u64]) -> Self {
        assert_eq!(inputs.len(), self.params.n, "one input per party");
        self.inputs = inputs.iter().map(|&x| Fp::from_u64(x)).collect();
        self
    }

    /// Sets the parties' private inputs as field elements.
    pub fn field_inputs(mut self, inputs: &[Fp]) -> Self {
        assert_eq!(inputs.len(), self.params.n, "one input per party");
        self.inputs = inputs.to_vec();
        self
    }

    /// Marks the listed parties as corrupt. Without a
    /// [`MpcBuilder::byzantine_strategy`] they run a crashed (silent) party
    /// instead of the protocol; richer behavioural misbehaviours can be
    /// exercised through the lower-level `Simulation` API directly.
    pub fn corrupt(mut self, parties: &[PartyId]) -> Self {
        self.corrupt = CorruptionSet::new(parties.to_vec());
        self
    }

    /// Applies a wire-level [`ByzantineStrategy`] to every message the
    /// corrupt parties send. The corrupt parties then run the *honest*
    /// protocol code — the misbehaviour happens on the wire (bytes replaced,
    /// garbled or dropped), which exercises the decode boundary of every
    /// honest receiver.
    pub fn byzantine_strategy(mut self, strategy: Box<dyn ByzantineStrategy>) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the message scheduler (e.g. an adversarial asynchronous
    /// schedule from [`mpc_net::scheduler`]).
    pub fn scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Multiplier applied to the default simulation horizon (useful for very
    /// adversarial schedules).
    pub fn horizon_factor(mut self, factor: u64) -> Self {
        self.horizon_factor = factor;
        self
    }

    /// Sets the simulator's worker-thread count for same-time-slice
    /// pre-execution (see [`NetConfig::with_threads`]). Purely a wall-clock
    /// knob: the run's outputs, metrics and bit accounting are identical
    /// for every value. Defaults to the `MPC_THREADS` environment variable,
    /// then 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables or disables wire-frame coalescing explicitly (see
    /// [`NetConfig::with_frames`]); defaults to the `MPC_FRAMES` environment
    /// variable, then on. Framing changes the event schedule (and therefore
    /// the transcript), never the outputs or the bit accounting rules.
    pub fn frames(mut self, frames: bool) -> Self {
        self.frames = Some(frames);
        self
    }

    /// Switches `Π_CirEval` to the per-gate opening reference path (one
    /// public reconstruction per multiplication gate instead of one batch per
    /// multiplication layer). Used by equivalence tests and the e12
    /// benchmark baseline.
    pub fn per_gate_openings(mut self, per_gate: bool) -> Self {
        self.per_gate_openings = per_gate;
        self
    }

    /// The protocol parameters this builder will run with.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Runs the protocol on `circuit` and returns the honest parties' common
    /// output.
    ///
    /// # Errors
    ///
    /// Returns an error if the honest parties do not all terminate within the
    /// simulation horizon, or if they terminate with inconsistent outputs
    /// (which would indicate a protocol violation).
    pub fn run(self, circuit: &Circuit) -> Result<MpcRunResult, RunError> {
        let params = self.params;
        let n = params.n;
        let corrupt = self.corrupt.clone();
        let wire_level = self.strategy.is_some();
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|i| {
                if corrupt.is_corrupt(i) && !wire_level {
                    Box::new(SilentParty) as Box<dyn Protocol<Msg>>
                } else {
                    let mut party = CirEval::new(params, circuit.clone(), self.inputs[i]);
                    party.set_per_gate_openings(self.per_gate_openings);
                    Box::new(party) as Box<dyn Protocol<Msg>>
                }
            })
            .collect();
        let mut cfg = NetConfig::for_kind(n, self.network)
            .with_delta(self.delta)
            .with_seed(self.seed);
        if let Some(threads) = self.threads {
            cfg = cfg.with_threads(threads);
        }
        if let Some(frames) = self.frames {
            cfg = cfg.with_frames(frames);
        }
        let mut sim = match self.scheduler {
            Some(s) => Simulation::with_scheduler(cfg, corrupt.clone(), s, parties),
            None => Simulation::new(cfg, corrupt.clone(), parties),
        };
        if let Some(strategy) = self.strategy {
            sim.set_strategy(strategy);
        }
        let horizon = params.horizon_for_depth(circuit.mult_depth()) * self.horizon_factor;
        let done = sim.run_until(horizon, |s| {
            (0..n)
                .filter(|&i| corrupt.is_honest(i))
                .all(|i| s.party_as::<CirEval>(i).is_some_and(|p| p.output.is_some()))
        });
        if !done {
            return Err(RunError {
                message: format!("honest parties did not terminate within horizon {horizon}"),
            });
        }
        let outputs: Vec<Option<Fp>> = (0..n)
            .map(|i| sim.party_as::<CirEval>(i).and_then(|p| p.output))
            .collect();
        let honest_outputs: Vec<Fp> = (0..n)
            .filter(|&i| corrupt.is_honest(i))
            .map(|i| outputs[i].expect("checked by predicate"))
            .collect();
        if honest_outputs.windows(2).any(|w| w[0] != w[1]) {
            return Err(RunError {
                message: "honest parties disagree on the output".to_string(),
            });
        }
        let input_subset = (0..n)
            .find_map(|i| {
                sim.party_as::<CirEval>(i)
                    .and_then(|p| p.input_subset.clone())
            })
            .unwrap_or_default();
        Ok(MpcRunResult {
            output: honest_outputs[0],
            outputs,
            input_subset,
            finished_at: sim.now(),
            metrics: sim.metrics().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_a_simple_circuit() {
        let mut c = Circuit::new(4);
        let prod = c.mul(c.input(0), c.input(1));
        let s = c.add(c.input(2), c.input(3));
        let out = c.add(prod, s);
        c.set_output(out);
        let result = MpcBuilder::new(4, 1, 0)
            .network(NetworkKind::Synchronous)
            .inputs(&[3, 5, 7, 11])
            .run(&c)
            .expect("run succeeds");
        assert_eq!(result.output.as_u64(), 3 * 5 + 7 + 11);
        assert_eq!(result.input_subset, vec![0, 1, 2, 3]);
        assert!(result.metrics.honest_bits > 0);
    }

    #[test]
    fn garbling_corrupt_party_does_not_stop_honest_termination() {
        // The corrupt party runs the honest protocol, but every byte it puts
        // on the wire is garbled; honest receivers must treat the undecodable
        // bytes as Byzantine input (drop, never panic) and still terminate
        // with a common output.
        let c = Circuit::product_of_inputs(4);
        let result = MpcBuilder::new(4, 1, 0)
            .inputs(&[2, 3, 4, 5])
            .corrupt(&[3])
            .byzantine_strategy(Box::new(mpc_net::GarbleBytes))
            .run(&c)
            .expect("honest parties must terminate despite garbled bytes");
        assert!(result.metrics.adversary_tampered > 0);
        assert!(result.metrics.decode_failures > 0);
        // the honest parties' agreement on the output is asserted inside run()
        assert!((0..3).all(|i| result.outputs[i].is_some()));
    }

    #[test]
    #[should_panic(expected = "3*t_s + t_a < n")]
    fn builder_rejects_infeasible_thresholds() {
        let _ = MpcBuilder::new(4, 1, 1);
    }

    #[test]
    fn builder_rejects_wrong_input_count() {
        let c = Circuit::sum_of_inputs(4);
        let result =
            std::panic::catch_unwind(|| MpcBuilder::new(4, 1, 0).inputs(&[1, 2, 3]).run(&c));
        assert!(result.is_err());
    }
}
