//! Arithmetic circuits over `GF(2^61-1)`.
//!
//! The function `f : F^n → F` to be securely computed is represented as an
//! arithmetic circuit with linear gates (addition, addition/multiplication by
//! public constants) and multiplication gates (Section 2 of the paper). Only
//! multiplication gates cost communication during the shared evaluation; the
//! circuit's multiplication count `c_M` and multiplicative depth `D_M` drive
//! the complexity formulas of Theorems 6.5 and 7.1.

use mpc_algebra::Fp;

/// A handle to a circuit wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Wire(pub(crate) usize);

impl Wire {
    /// The index of the gate whose output this wire carries (gates are in
    /// topological order, so a gate's inputs always have smaller indices).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One gate of the circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// The `i`-th circuit input (party `P_{i+1}`'s private input).
    Input(usize),
    /// A publicly known constant.
    Constant(Fp),
    /// Addition of two wires.
    Add(Wire, Wire),
    /// Subtraction of two wires.
    Sub(Wire, Wire),
    /// Multiplication by a public constant.
    MulConst(Wire, Fp),
    /// Addition of a public constant.
    AddConst(Wire, Fp),
    /// Multiplication of two wires (the only gates that cost communication).
    Mul(Wire, Wire),
}

/// An arithmetic circuit with a single output wire.
///
/// ```
/// use mpc_core::Circuit;
/// use mpc_algebra::Fp;
///
/// // f(x1, x2, x3) = x1 * x2 + 3 * x3
/// let mut c = Circuit::new(3);
/// let prod = c.mul(c.input(0), c.input(1));
/// let scaled = c.mul_const(c.input(2), Fp::from_u64(3));
/// let out = c.add(prod, scaled);
/// c.set_output(out);
/// assert_eq!(c.mult_count(), 1);
/// let y = c.evaluate_clear(&[Fp::from_u64(2), Fp::from_u64(5), Fp::from_u64(7)]);
/// assert_eq!(y.as_u64(), 2 * 5 + 3 * 7);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Circuit {
    n_inputs: usize,
    gates: Vec<Gate>,
    output: Option<Wire>,
}

impl Circuit {
    /// Creates a circuit with `n_inputs` input wires (one per party).
    pub fn new(n_inputs: usize) -> Self {
        let gates = (0..n_inputs).map(Gate::Input).collect();
        Circuit {
            n_inputs,
            gates,
            output: None,
        }
    }

    /// Number of inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The wire carrying input `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_inputs`.
    pub fn input(&self, i: usize) -> Wire {
        assert!(i < self.n_inputs, "input index out of range");
        Wire(i)
    }

    fn push(&mut self, g: Gate) -> Wire {
        self.gates.push(g);
        Wire(self.gates.len() - 1)
    }

    /// Adds a public constant wire.
    pub fn constant(&mut self, c: Fp) -> Wire {
        self.push(Gate::Constant(c))
    }

    /// Adds an addition gate.
    pub fn add(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Gate::Add(a, b))
    }

    /// Adds a subtraction gate.
    pub fn sub(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Gate::Sub(a, b))
    }

    /// Adds a multiplication-by-constant gate.
    pub fn mul_const(&mut self, a: Wire, c: Fp) -> Wire {
        self.push(Gate::MulConst(a, c))
    }

    /// Adds an addition-of-constant gate.
    pub fn add_const(&mut self, a: Wire, c: Fp) -> Wire {
        self.push(Gate::AddConst(a, c))
    }

    /// Adds a multiplication gate.
    pub fn mul(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Gate::Mul(a, b))
    }

    /// Declares the circuit output wire.
    pub fn set_output(&mut self, w: Wire) {
        self.output = Some(w);
    }

    /// The output wire.
    ///
    /// # Panics
    /// Panics if no output has been set.
    pub fn output(&self) -> Wire {
        self.output.expect("circuit output not set")
    }

    /// All gates in topological order (wires only ever reference earlier
    /// gates by construction).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of multiplication gates `c_M`.
    pub fn mult_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Mul(_, _)))
            .count()
    }

    /// The multiplicative depth `D_M` and per-gate multiplication layer
    /// (layer of a `Mul` gate = 1 + max layer among its inputs).
    pub fn mult_layers(&self) -> (usize, Vec<usize>) {
        let mut layer = vec![0usize; self.gates.len()];
        let mut depth = 0;
        for (i, g) in self.gates.iter().enumerate() {
            layer[i] = match *g {
                Gate::Input(_) | Gate::Constant(_) => 0,
                Gate::Add(a, b) | Gate::Sub(a, b) => layer[a.0].max(layer[b.0]),
                Gate::MulConst(a, _) | Gate::AddConst(a, _) => layer[a.0],
                Gate::Mul(a, b) => {
                    let l = layer[a.0].max(layer[b.0]) + 1;
                    depth = depth.max(l);
                    l
                }
            };
        }
        (depth, layer)
    }

    /// Multiplicative depth `D_M`.
    pub fn mult_depth(&self) -> usize {
        self.mult_layers().0
    }

    /// Topological layering of the multiplication gates: `layers()[l]` holds
    /// the gate ids of the `Mul` gates of multiplication layer `l + 1`, in
    /// ascending gate order. Every input wire of a gate in `layers()[l]`
    /// depends only on multiplications of layers `≤ l` (strictly earlier
    /// layers), so once the openings of the first `l` layers are resolved,
    /// all of layer `l + 1`'s Beaver maskings can be issued in one batch —
    /// this is what `Π_CirEval`'s layer-batched evaluation opens per layer
    /// (`2·|layers()[l]|` values under one tag) instead of per gate.
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let (depth, layer) = self.mult_layers();
        let mut out = vec![Vec::new(); depth];
        for (g, gate) in self.gates.iter().enumerate() {
            if matches!(gate, Gate::Mul(_, _)) {
                out[layer[g] - 1].push(g);
            }
        }
        out
    }

    /// Evaluates the circuit in the clear (reference semantics for tests and
    /// experiments).
    ///
    /// # Panics
    /// Panics if `inputs.len() != n_inputs` or the output is not set.
    pub fn evaluate_clear(&self, inputs: &[Fp]) -> Fp {
        assert_eq!(inputs.len(), self.n_inputs, "wrong number of inputs");
        let mut values = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let v = match *g {
                Gate::Input(i) => inputs[i],
                Gate::Constant(c) => c,
                Gate::Add(a, b) => values[a.0] + values[b.0],
                Gate::Sub(a, b) => values[a.0] - values[b.0],
                Gate::MulConst(a, c) => values[a.0] * c,
                Gate::AddConst(a, c) => values[a.0] + c,
                Gate::Mul(a, b) => values[a.0] * values[b.0],
            };
            values.push(v);
        }
        values[self.output().0]
    }

    /// A convenience circuit: the sum of all inputs (no multiplications).
    pub fn sum_of_inputs(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        let mut acc = c.input(0);
        for i in 1..n {
            acc = c.add(acc, c.input(i));
        }
        c.set_output(acc);
        c
    }

    /// A convenience circuit: the product of all inputs (`n − 1`
    /// multiplications, depth ⌈log₂ n⌉ with balanced association).
    pub fn product_of_inputs(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        let mut wires: Vec<Wire> = (0..n).map(|i| c.input(i)).collect();
        while wires.len() > 1 {
            let mut next = Vec::new();
            for pair in wires.chunks(2) {
                if pair.len() == 2 {
                    next.push(c.mul(pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            wires = next;
        }
        c.set_output(wires[0]);
        c
    }

    /// A synthetic benchmark circuit with `width` multiplications per layer
    /// and `depth` layers (inputs are reused cyclically).
    pub fn layered(n_inputs: usize, width: usize, depth: usize) -> Circuit {
        let mut c = Circuit::new(n_inputs);
        let mut prev: Vec<Wire> = (0..n_inputs).map(|i| c.input(i)).collect();
        for _ in 0..depth {
            let mut next = Vec::new();
            for w in 0..width {
                let a = prev[w % prev.len()];
                let b = prev[(w + 1) % prev.len()];
                next.push(c.mul(a, b));
            }
            prev = next;
        }
        let mut acc = prev[0];
        for &w in &prev[1..] {
            acc = c.add(acc, w);
        }
        c.set_output(acc);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fp(v: u64) -> Fp {
        Fp::from_u64(v)
    }

    #[test]
    fn sum_circuit_has_no_mults() {
        let c = Circuit::sum_of_inputs(5);
        assert_eq!(c.mult_count(), 0);
        assert_eq!(c.mult_depth(), 0);
        let y = c.evaluate_clear(&[fp(1), fp(2), fp(3), fp(4), fp(5)]);
        assert_eq!(y, fp(15));
    }

    #[test]
    fn product_circuit_depth_is_logarithmic() {
        let c = Circuit::product_of_inputs(8);
        assert_eq!(c.mult_count(), 7);
        assert_eq!(c.mult_depth(), 3);
        let y = c.evaluate_clear(&[fp(1), fp(2), fp(3), fp(4), fp(5), fp(6), fp(7), fp(8)]);
        assert_eq!(y, fp(40320));
    }

    #[test]
    fn layered_circuit_counts() {
        let c = Circuit::layered(4, 3, 5);
        assert_eq!(c.mult_count(), 15);
        assert_eq!(c.mult_depth(), 5);
        let layers = c.layers();
        assert_eq!(layers.len(), 5);
        assert!(layers.iter().all(|l| l.len() == 3));
    }

    #[test]
    fn layers_partition_mul_gates_and_respect_dependencies() {
        let c = Circuit::product_of_inputs(8);
        let layers = c.layers();
        assert_eq!(layers.len(), c.mult_depth());
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, c.mult_count());
        let (_, per_gate) = c.mult_layers();
        for (l, gates) in layers.iter().enumerate() {
            for &g in gates {
                let Gate::Mul(a, b) = c.gates()[g] else {
                    panic!("layer member must be a Mul gate");
                };
                assert_eq!(per_gate[g], l + 1);
                assert!(per_gate[a.0] <= l && per_gate[b.0] <= l);
            }
        }
    }

    #[test]
    fn mixed_gates_evaluate_correctly() {
        let mut c = Circuit::new(2);
        let s = c.add(c.input(0), c.input(1));
        let d = c.sub(c.input(0), c.input(1));
        let p = c.mul(s, d); // x^2 - y^2
        let shifted = c.add_const(p, fp(10));
        let scaled = c.mul_const(shifted, fp(2));
        c.set_output(scaled);
        let y = c.evaluate_clear(&[fp(7), fp(3)]);
        assert_eq!(y, fp(2 * (49 - 9 + 10)));
    }

    #[test]
    #[should_panic(expected = "input index out of range")]
    fn input_out_of_range_panics() {
        let c = Circuit::new(2);
        let _ = c.input(2);
    }

    proptest! {
        #[test]
        fn prop_sum_and_product(inputs in proptest::collection::vec(1u64..1000, 2..8)) {
            let n = inputs.len();
            let xs: Vec<Fp> = inputs.iter().map(|&v| fp(v)).collect();
            let sum = Circuit::sum_of_inputs(n).evaluate_clear(&xs);
            prop_assert_eq!(sum, xs.iter().copied().sum());
            let prod = Circuit::product_of_inputs(n).evaluate_clear(&xs);
            prop_assert_eq!(prod, xs.iter().copied().product());
        }
    }
}
