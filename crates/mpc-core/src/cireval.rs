//! `Π_CirEval` — the best-of-both-worlds circuit-evaluation protocol
//! (Fig 11, Theorem 7.1), together with the preprocessing phase that feeds it
//! (`Π_TripSh` / `Π_PreProcessing`, Figs 8 and 10, and `Π_TripTrans` /
//! `Π_TripExt`, Figs 7 and 9).
//!
//! Structure of one run:
//!
//! 1. **Input sharing** — one `Π_ACS` instance in which every party
//!    `t_s`-shares its private input; parties outside the agreed common
//!    subset `CS₁` contribute a default sharing of `0`. In a synchronous
//!    network every honest party's input makes it into `CS₁`.
//! 2. **Triple provisioning** — a second `Π_ACS` instance (run in parallel)
//!    in which every party `t_s`-shares the raw random multiplication triples
//!    it deals *and* the verification triples it will use as a supervisor.
//!    This is the batched equivalent of the per-dealer `Π_VSS`+`Π_ACS` calls
//!    of `Π_TripSh`/`Π_PreProcessing` (see DESIGN.md).
//! 3. **Triple transformation and supervised verification** — for each dealer
//!    of the triple subset `CS₂`, the raw triples are transformed
//!    (`Π_TripTrans`) and every point is re-multiplied under the supervision
//!    of each member of `CS₂` with that supervisor's verification triple;
//!    non-zero differences trigger the public opening of the suspected point
//!    and, if it is not a multiplication triple, the dealer's batch is
//!    replaced by the default `(0, 0, 0)` sharing — exactly `Π_TripSh`.
//! 4. **Triple extraction** (`Π_TripExt`) — from the verified triples of
//!    `2d + 1` dealers, `d + 1 − t_s` triples that are random to the
//!    adversary are extracted per batch.
//! 5. **Shared circuit evaluation** — linear gates locally, multiplication
//!    gates with Beaver's protocol, one extracted triple per gate.
//! 6. **Output and termination** — the output wire is publicly
//!    reconstructed; `(ready, y)` messages à la Bracha ensure every honest
//!    party terminates with the same output.
//!
//! `CirEval` is `Send` (asserted below): under the simulator's deterministic
//! parallel engine a whole party — this state machine included — is handed
//! to a worker thread for the duration of one time slice, and its per-event
//! behaviour depends only on its own state and RNG, which is what keeps
//! `threads = k` runs bit-identical to sequential ones.

use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use mpc_algebra::evaluation_points::{alpha, beta};
use mpc_algebra::{shamir, EvalDomain, Fp, PackedDomain, Polynomial};
use mpc_net::{Context, PartyId, PathSlice, Protocol, Time};
use mpc_protocols::acs::Acs;
use mpc_protocols::{Msg, Params};

use crate::circuit::{Circuit, Gate};
use crate::openings::OpeningManager;
use crate::packing::{point, BasisElem, LinComb, PackedPlan, Pos};
use crate::triples::{
    beaver_masked_shares, beaver_output_share, interpolate_share_with, packed_z_form_share,
    TripleShare,
};

const SEG_ACS_INPUT: u32 = 0;
const SEG_ACS_TRIPLES: u32 = 1;

const TAG_TRANSFORM: u32 = 1 << 28;
const TAG_VERIFY: u32 = 2 << 28;
const TAG_GAMMA: u32 = 3 << 28;
const TAG_SUSPECT: u32 = 4 << 28;
const TAG_EXTRACT: u32 = 5 << 28;
const TAG_CIRCUIT: u32 = 6 << 28;
const TAG_OUTPUT: u32 = 7 << 28;
const TAG_PACKED: u32 = 8 << 28;
/// Public degree-probe openings of the packed deals, one tag per dealer.
const TAG_PROBE: u32 = 9 << 28;

/// Root-path timer id: the packed-deal phase deadline, after which dealers
/// still unresolved at this party are publicly reported
/// ([`Msg::PackedReport`]).
const TIMER_PACKED_DEAL: u64 = 0x50_44_4c;

/// One party's shares of a block-slot triple `(a, b, c)`, per dealt position.
type TripleForms = BTreeMap<Pos, (Fp, Fp, Fp)>;

/// Progress of one `Π_CirEval` run (coarse phases; each phase is driven by
/// message arrival, not timers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    AwaitAcs,
    /// Packed mode only: awaiting every assigned dealer's
    /// [`Msg::PackedDeal`] payload (replaces the whole
    /// Transform…Extract preprocessing pipeline).
    PackedDeal,
    Transform,
    VerifyBeaver,
    Gamma,
    Suspect,
    Extract,
    Circuit,
    OpenOutput,
    Ready,
    Done,
}

/// One instance of the full best-of-both-worlds MPC protocol.
///
/// `Send` by construction (its `Arc<EvalDomain>` cache is itself `Sync`),
/// which lets the simulator's parallel engine move the whole party to a
/// worker thread per time slice.
#[derive(Debug)]
pub struct CirEval {
    params: Params,
    /// Shared evaluation-domain cache for `n` parties: every triple
    /// transformation/extraction interpolation runs over one of its cached
    /// prefix bases.
    domain: Arc<EvalDomain>,
    circuit: Circuit,
    my_input: Fp,
    acs_input: Option<Acs>,
    acs_triples: Option<Acs>,
    openings: OpeningManager,
    phase: Phase,
    // preprocessing dimensions
    batches: usize,
    d_ext: usize,
    // state derived once both ACS instances are ready
    input_shares: Vec<Fp>,
    dealers: Vec<PartyId>,
    supervisors: Vec<PartyId>,
    raw: HashMap<(usize, usize, usize), TripleShare>,
    z_high: HashMap<(usize, usize, usize), Fp>,
    flagged: HashSet<(usize, usize)>,
    verified: BTreeMap<(usize, usize), TripleShare>,
    ext_z: HashMap<(usize, usize), Fp>,
    pool: Vec<TripleShare>,
    wire_shares: Vec<Option<Fp>>,
    /// Triple-pool index of each `Mul` gate (in gate order), `usize::MAX`
    /// for non-multiplication gates — a flat vector instead of a per-gate
    /// hash map, computed once at construction.
    gate_triple: Vec<usize>,
    /// Multiplication layers of the circuit ([`Circuit::layers`]), computed
    /// once; the default evaluation path opens one batch per layer.
    mul_layers: Vec<Vec<usize>>,
    /// Next unresolved multiplication layer (index into `mul_layers`).
    next_mul_layer: usize,
    /// Whether the current layer's Beaver maskings have been broadcast.
    layer_issued: bool,
    /// Reference mode: one opening per multiplication gate (the pre-batching
    /// behaviour), kept for equivalence tests and the e12 benchmark. All
    /// parties of a run must agree on the mode: the same `TAG_CIRCUIT`
    /// offset means "gate id" in one mode and "layer index" in the other,
    /// so mixed-mode parties would merge shares of different values.
    per_gate_openings: bool,
    /// Per-gate mode bookkeeping: whether gate `g`'s opening was issued.
    mul_opened: Vec<bool>,
    // ------------------------------------------------------------------
    // packed (SIMD) evaluation path — active when `packing > 0`
    // ------------------------------------------------------------------
    /// Packing width `ℓ` (0 = scalar engine; set via [`CirEval::set_packing`]).
    packing: usize,
    /// The static block plan (packed mode only).
    plan: Option<Arc<PackedPlan>>,
    /// Slot-point domain cache (packed mode only).
    pdomain: Option<Arc<PackedDomain>>,
    /// Raw `PackedDeal` payloads buffered until `CS₁` is known.
    deal_buf: BTreeMap<PartyId, Vec<Fp>>,
    /// Senders whose deal parsed successfully / was rejected (wrong length).
    deals_ok: HashSet<PartyId>,
    deals_dead: HashSet<PartyId>,
    /// Whether the packed-deal deadline ([`TIMER_PACKED_DEAL`]) has fired;
    /// from then on unresolved dealers are publicly reported.
    deal_deadline: bool,
    /// Dealers this party has already reported via [`Msg::PackedReport`].
    my_reports: HashSet<PartyId>,
    /// Distinct reporters per accused dealer. `t_s + 1` of them — at least
    /// one honest — are public proof of a deal failure and trigger the
    /// uniform fallback to the scalar engine.
    deal_reports: BTreeMap<PartyId, HashSet<PartyId>>,
    /// Triple-ACS traffic buffered while the packed path (which has no
    /// triple ACS) was live, replayed if the scalar fallback launches
    /// ACS #2 late.
    acs2_buf: Vec<(PartyId, Vec<u32>, Msg)>,
    /// Whether this run abandoned the packed engine for the scalar path
    /// after a detectably bad packed dealer.
    pub packed_fell_back: bool,
    /// `CS₁`, sorted — the canonical order behind dealer assignment and the
    /// deal payload layout.
    cs1_sorted: Vec<PartyId>,
    /// My slot-positioned shares of party `j`'s input, by position.
    input_forms: Vec<BTreeMap<Pos, Fp>>,
    /// My shares of block/slot triples `(a, b, c)`, per dealt position.
    triple_forms: HashMap<(usize, usize), TripleForms>,
    /// My shares of resolved multiplication outputs, per dealt position.
    z_forms: HashMap<usize, BTreeMap<Pos, Fp>>,
    /// Next unresolved multiplication layer of the packed driver.
    packed_layer: usize,
    /// Whether the current packed layer's `[D, E]` openings went out.
    packed_issued: bool,
    /// Effective packing width (0 when scalar) — exported into `Metrics`.
    pub packed_width: usize,
    /// Publicly opened value count per multiplication layer (layer-batched
    /// scalar and packed paths; the per-gate reference path leaves it empty).
    pub values_opened_by_layer: Vec<u64>,
    /// `(ready, y)` votes per candidate output (deterministic iteration
    /// order — `Fp` is `Ord`).
    ready_counts: BTreeMap<Fp, HashSet<PartyId>>,
    sent_ready: bool,
    /// The reconstructed circuit output, once the termination condition holds.
    pub output: Option<Fp>,
    /// Local time at which the output was fixed.
    pub output_at: Option<Time>,
    /// The common subset whose inputs were used (set once known).
    pub input_subset: Option<Vec<PartyId>>,
}

impl CirEval {
    /// Creates one party's instance of `Π_CirEval`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit does not have exactly `params.n` inputs.
    pub fn new(params: Params, circuit: Circuit, my_input: Fp) -> Self {
        assert_eq!(circuit.n_inputs(), params.n, "one input per party");
        let d_ext = (params.n - params.ts - 1) / 2;
        let per_batch = d_ext + 1 - params.ts;
        let c_m = circuit.mult_count();
        let batches = if c_m == 0 { 0 } else { c_m.div_ceil(per_batch) };
        let n_gates = circuit.gates().len();
        // One triple per multiplication gate, assigned in gate order.
        let mut gate_triple = vec![usize::MAX; n_gates];
        let mut next_triple = 0usize;
        for (g, gate) in circuit.gates().iter().enumerate() {
            if matches!(gate, Gate::Mul(_, _)) {
                gate_triple[g] = next_triple;
                next_triple += 1;
            }
        }
        let mul_layers = circuit.layers();
        CirEval {
            params,
            domain: EvalDomain::get(params.n),
            circuit,
            my_input,
            acs_input: None,
            acs_triples: None,
            openings: OpeningManager::new(),
            phase: Phase::AwaitAcs,
            batches,
            d_ext,
            input_shares: Vec::new(),
            dealers: Vec::new(),
            supervisors: Vec::new(),
            raw: HashMap::new(),
            z_high: HashMap::new(),
            flagged: HashSet::new(),
            verified: BTreeMap::new(),
            ext_z: HashMap::new(),
            pool: Vec::new(),
            wire_shares: vec![None; n_gates],
            gate_triple,
            mul_layers,
            next_mul_layer: 0,
            layer_issued: false,
            per_gate_openings: false,
            mul_opened: vec![false; n_gates],
            packing: 0,
            plan: None,
            pdomain: None,
            deal_buf: BTreeMap::new(),
            deals_ok: HashSet::new(),
            deals_dead: HashSet::new(),
            deal_deadline: false,
            my_reports: HashSet::new(),
            deal_reports: BTreeMap::new(),
            acs2_buf: Vec::new(),
            packed_fell_back: false,
            cs1_sorted: Vec::new(),
            input_forms: Vec::new(),
            triple_forms: HashMap::new(),
            z_forms: HashMap::new(),
            packed_layer: 0,
            packed_issued: false,
            packed_width: 0,
            values_opened_by_layer: Vec::new(),
            ready_counts: BTreeMap::new(),
            sent_ready: false,
            output: None,
            output_at: None,
            input_subset: None,
        }
    }

    /// The name of the evaluation phase this party is currently in — a
    /// stable diagnostic label for stall post-mortems (the sweep harness and
    /// resilience tests print it when a run fails to terminate).
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::AwaitAcs => "await-acs",
            Phase::PackedDeal => "packed-deal",
            Phase::Transform => "transform",
            Phase::VerifyBeaver => "verify-beaver",
            Phase::Gamma => "gamma",
            Phase::Suspect => "suspect",
            Phase::Extract => "extract",
            Phase::Circuit => "circuit",
            Phase::OpenOutput => "open-output",
            Phase::Ready => "ready",
            Phase::Done => "done",
        }
    }

    /// Selects the circuit-evaluation opening mode: `true` opens every
    /// multiplication gate under its own tag (the pre-batching reference
    /// path), `false` (the default) opens one `2·L` batch per multiplication
    /// layer. Every party of a run must use the same mode — the opening tags
    /// are part of the implicit protocol agreement.
    pub fn set_per_gate_openings(&mut self, per_gate: bool) {
        self.per_gate_openings = per_gate;
    }

    /// Switches this party to the packed (Franklin–Yung SIMD) evaluation
    /// engine at width `ell ≥ 1`; `0` keeps the scalar engine. Every party
    /// of a run must use the same width (the block plan and opening tags are
    /// part of the implicit protocol agreement), and `ell` must satisfy
    /// `ell ≤ n − 3·t_s` ([`crate::thresholds::max_packing_width`]) for the
    /// degree-`t_s + ℓ − 1` packed openings to stay OEC-decodable —
    /// [`crate::MpcBuilder`] clamps the requested width accordingly.
    pub fn set_packing(&mut self, ell: usize) {
        self.packing = ell;
        self.packed_width = ell;
        if ell > 0 {
            assert!(
                ell <= crate::thresholds::max_packing_width(self.params.n, self.params.ts),
                "packing width exceeds the OEC feasibility bound n - 3*ts"
            );
            self.plan = Some(Arc::new(PackedPlan::new(&self.circuit, ell)));
            self.pdomain = Some(PackedDomain::get(self.params.n, ell));
            self.input_forms = vec![BTreeMap::new(); self.params.n];
        } else {
            self.plan = None;
            self.pdomain = None;
            self.input_forms = Vec::new();
        }
    }

    fn raw_per_dealer(&self) -> usize {
        2 * self.params.ts + 1
    }

    /// Layout of a party's triple-ACS polynomial vector.
    fn raw_offset(&self, batch: usize, k: usize, comp: usize) -> usize {
        (batch * self.raw_per_dealer() + k) * 3 + comp
    }
    fn verif_base(&self) -> usize {
        self.batches * self.raw_per_dealer() * 3
    }
    fn verif_offset(&self, batch: usize, dealer_party: PartyId, comp: usize) -> usize {
        self.verif_base() + (batch * self.params.n + dealer_party) * 3 + comp
    }
    fn triple_polys_len(&self) -> usize {
        self.verif_base() + self.batches * self.params.n * 3
    }

    fn transform_idx(&self, dpos: usize, batch: usize, i: usize) -> u32 {
        ((dpos * self.batches.max(1) + batch) * self.raw_per_dealer() + i) as u32
    }
    fn verify_idx(&self, dpos: usize, batch: usize, sup: usize) -> u32 {
        ((dpos * self.batches.max(1) + batch) * self.params.n + sup) as u32
    }
    fn extract_idx(&self, batch: usize, p: usize) -> u32 {
        (batch * (2 * self.d_ext + 1) + p) as u32
    }

    fn ts(&self) -> usize {
        self.params.ts
    }

    fn raw_triple(&self, dpos: usize, batch: usize, k: usize) -> TripleShare {
        self.raw[&(dpos, batch, k)]
    }

    /// My share of `X(target)` (resp. `Y`) of the per-dealer transformed
    /// triple polynomials, defined by the first `t_s + 1` raw triples.
    fn dealer_xy_share(&self, dpos: usize, batch: usize, target: Fp) -> (Fp, Fp) {
        // One λ vector serves both component dot products.
        let lambda = self.domain.prefix_basis(self.ts() + 1).lambda_at(target);
        let (mut a, mut b) = (Fp::ZERO, Fp::ZERO);
        for (i, &l) in lambda.iter().enumerate() {
            let triple = self.raw_triple(dpos, batch, i);
            a += l * triple.a;
            b += l * triple.b;
        }
        (a, b)
    }

    /// My share of `Z(target)` of the per-dealer transformed triple
    /// polynomials (degree `2·t_s`, defined by all `2·t_s + 1` points).
    fn dealer_z_share(&self, dpos: usize, batch: usize, target: Fp) -> Fp {
        let basis = self.domain.prefix_basis(self.raw_per_dealer());
        let ys: Vec<Fp> = (0..self.raw_per_dealer())
            .map(|i| {
                if i <= self.ts() {
                    self.raw_triple(dpos, batch, i).c
                } else {
                    self.z_high[&(dpos, batch, i)]
                }
            })
            .collect();
        interpolate_share_with(&basis, &ys, target)
    }

    /// The degree-`t_s` sharing polynomials this party contributes to the
    /// triple ACS: `batches × (2·t_s + 1)` raw multiplication triples plus
    /// `batches × n` verification triples, in the layout of
    /// [`Self::raw_offset`] / [`Self::verif_offset`]. Shared by the scalar
    /// `init` path and the packed fallback (which launches ACS #2 late).
    fn make_triple_polys(&self, ctx: &mut Context<'_, Msg>) -> Vec<Polynomial> {
        let ts = self.params.ts;
        let mut polys = Vec::with_capacity(self.triple_polys_len());
        for _ in 0..self.batches {
            for _ in 0..self.raw_per_dealer() {
                let a = Fp::random(ctx.rng());
                let b = Fp::random(ctx.rng());
                let c = a * b;
                for v in [a, b, c] {
                    polys.push(Polynomial::random_with_constant_term(ctx.rng(), ts, v));
                }
            }
        }
        for _ in 0..self.batches {
            for _ in 0..self.params.n {
                let u = Fp::random(ctx.rng());
                let v = Fp::random(ctx.rng());
                let w = u * v;
                for val in [u, v, w] {
                    polys.push(Polynomial::random_with_constant_term(ctx.rng(), ts, val));
                }
            }
        }
        polys
    }

    fn verification_triple(
        &self,
        sup: PartyId,
        batch: usize,
        dealer_party: PartyId,
    ) -> TripleShare {
        let acs = self.acs_triples.as_ref().expect("phase after ACS");
        let shares = acs.shares_from(sup).expect("supervisor is in CS2");
        TripleShare::new(
            shares[self.verif_offset(batch, dealer_party, 0)],
            shares[self.verif_offset(batch, dealer_party, 1)],
            shares[self.verif_offset(batch, dealer_party, 2)],
        )
    }

    // ------------------------------------------------------------------
    // phase transitions
    // ------------------------------------------------------------------

    fn drive(&mut self, ctx: &mut Context<'_, Msg>) {
        // bounded loop: phases can cascade when waves are empty
        for _ in 0..32 {
            let before = self.phase;
            match self.phase {
                Phase::AwaitAcs => self.drive_await_acs(ctx),
                Phase::PackedDeal => self.drive_packed_deal(ctx),
                Phase::Transform => self.drive_transform(ctx),
                Phase::VerifyBeaver => self.drive_verify(ctx),
                Phase::Gamma => self.drive_gamma(ctx),
                Phase::Suspect => self.drive_suspect(ctx),
                Phase::Extract => self.drive_extract(ctx),
                Phase::Circuit if self.packing > 0 => self.drive_packed_circuit(ctx),
                Phase::Circuit => self.drive_circuit(ctx),
                Phase::OpenOutput => self.drive_open_output(ctx),
                Phase::Ready => self.drive_ready(ctx),
                Phase::Done => return,
            }
            if self.phase == before {
                return;
            }
        }
    }

    fn drive_await_acs(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.packing > 0 {
            // Packed mode runs on ACS #1 alone: triples arrive as
            // slot-positioned point-to-point deals, so the whole
            // transform/verify/extract pipeline (and its ACS) is skipped.
            let Some(acs1) = &self.acs_input else { return };
            if !acs1.ready() {
                return;
            }
            let mut cs1 = acs1.common_subset.clone().expect("ready implies CS");
            cs1.sort_unstable();
            self.input_subset = Some(cs1.clone());
            self.input_shares = (0..self.params.n)
                .map(|j| {
                    if cs1.contains(&j) {
                        acs1.shares_from(j).expect("in CS")[0]
                    } else {
                        Fp::ZERO
                    }
                })
                .collect();
            self.cs1_sorted = cs1;
            self.phase = Phase::PackedDeal;
            // Deadline for every assigned dealer's deal to arrive and pass
            // its degree probe. `T_ACS` is generous (deals + probes need two
            // message hops), so in honest runs — synchronous or not — the
            // phase completes long before the timer fires.
            ctx.set_timer(self.params.t_acs(), TIMER_PACKED_DEAL);
            self.issue_packed_deals(ctx);
            return;
        }
        let (Some(acs1), Some(acs2)) = (&self.acs_input, &self.acs_triples) else {
            return;
        };
        if !acs1.ready() || !acs2.ready() {
            return;
        }
        let cs1 = acs1.common_subset.clone().expect("ready implies CS");
        let cs2 = acs2.common_subset.clone().expect("ready implies CS");
        self.input_subset = Some(cs1.clone());
        // input shares: default 0-sharing for parties outside CS1
        self.input_shares = (0..self.params.n)
            .map(|j| {
                if cs1.contains(&j) {
                    acs1.shares_from(j).expect("in CS")[0]
                } else {
                    Fp::ZERO
                }
            })
            .collect();
        self.supervisors = cs2.clone();
        self.dealers = cs2.iter().copied().take(2 * self.d_ext + 1).collect();
        // cache my shares of every dealer's raw triples
        for (dpos, &dealer) in self.dealers.iter().enumerate() {
            let shares = self
                .acs_triples
                .as_ref()
                .unwrap()
                .shares_from(dealer)
                .unwrap()
                .clone();
            for batch in 0..self.batches {
                for k in 0..self.raw_per_dealer() {
                    let t = TripleShare::new(
                        shares[self.raw_offset(batch, k, 0)],
                        shares[self.raw_offset(batch, k, 1)],
                        shares[self.raw_offset(batch, k, 2)],
                    );
                    self.raw.insert((dpos, batch, k), t);
                }
            }
        }
        self.phase = Phase::Transform;
        self.issue_transform(ctx);
    }

    // ------------------------------------------------------------------
    // packed (SIMD) evaluation path
    // ------------------------------------------------------------------

    /// Deals this party's slot-positioned sharings: its input at every
    /// consumed slot position (members of `CS₁` only) and one fresh triple
    /// `(a, b, c = a·b)` per slot of each assigned block, shared at *every*
    /// position of that slot's position set. One `(a, b, c)` is drawn per
    /// slot and re-shared per position — the positions must carry the same
    /// secrets for the z-form identity ([`packed_z_form_share`]) to hold.
    fn issue_packed_deals(&mut self, ctx: &mut Context<'_, Msg>) {
        let plan = self.plan.clone().expect("packed mode has a plan");
        let cs1 = self.cs1_sorted.clone();
        let n = self.params.n;
        let ts = self.ts();
        let me = ctx.me;
        let mut payloads: Vec<Vec<Fp>> = vec![Vec::new(); n];
        if cs1.contains(&me) {
            for &pos in &plan.input_positions[me] {
                let s = shamir::share_at(ctx.rng(), self.my_input, point(pos), ts, n);
                for (p, share) in payloads.iter_mut().zip(&s.shares) {
                    p.push(*share);
                }
            }
        }
        for blk in plan.blocks_of(me, &cs1) {
            for k in 0..plan.ell {
                let a = Fp::random(ctx.rng());
                let b = Fp::random(ctx.rng());
                let c = a * b;
                for &pos in &plan.positions[blk][k] {
                    for v in [a, b, c] {
                        let s = shamir::share_at(ctx.rng(), v, point(pos), ts, n);
                        for (p, share) in payloads.iter_mut().zip(&s.shares) {
                            p.push(*share);
                        }
                    }
                }
            }
        }
        // One trailing blinding-mask share per non-empty deal: folded into
        // the public degree probe (`parse_deal`) so the opened probe value
        // is uniformly random and leaks nothing about the dealt secrets.
        if !payloads[me].is_empty() {
            let mask = Fp::random(ctx.rng());
            let s = shamir::share_at(ctx.rng(), mask, point(Pos::Zero), ts, n);
            for (p, share) in payloads.iter_mut().zip(&s.shares) {
                p.push(*share);
            }
        }
        let mine = std::mem::take(&mut payloads[me]);
        self.parse_deal(ctx, me, mine);
        for (i, payload) in payloads.into_iter().enumerate() {
            if i != me && !payload.is_empty() {
                ctx.send(i, Msg::PackedDeal(payload));
            }
        }
    }

    /// The `j`-th public probe coefficient for `dealer`'s deal: 64 ideal
    /// common coins (DESIGN.md substitution S1) assembled into one field
    /// element. Every party derives the same coefficients at the root path,
    /// and in the ideal-coin model the dealer cannot anticipate them when
    /// dealing, so a garbled element survives the probe combination only
    /// with probability `~2⁻⁶⁴`.
    fn probe_coeff(&self, ctx: &Context<'_, Msg>, dealer: PartyId, j: usize) -> Fp {
        let mut bits = 0u64;
        for bit in 0..64u64 {
            let round = ((dealer as u64) << 40) ^ ((j as u64) << 8) ^ bit;
            if ctx.common_coin(round) {
                bits |= 1 << bit;
            }
        }
        Fp::from_u64(bits)
    }

    /// Parses one sender's deal payload against the canonical layout. A
    /// payload whose length does not match [`PackedPlan::expected_deal_len`]
    /// is rejected and the sender marked Byzantine. A shape-valid payload
    /// additionally triggers this party's public degree probe: the
    /// common-coin combination of every dealt share plus the trailing
    /// blinding-mask share, opened under `TAG_PROBE + dealer`. For an honest
    /// dealer every element is a point of a degree-`t_s` polynomial, so the
    /// probe opening reconstructs at degree `t_s` everywhere; a deal whose
    /// sharings are inconsistent leaves the probe undecodable (whp over the
    /// coins), which [`Self::drive_packed_deal`] converts into a public
    /// report after the deadline.
    fn parse_deal(&mut self, ctx: &mut Context<'_, Msg>, from: PartyId, values: Vec<Fp>) {
        let plan = self.plan.clone().expect("packed mode has a plan");
        if values.len() != plan.expected_deal_len(from, &self.cs1_sorted) {
            self.deals_dead.insert(from);
            return;
        }
        if values.is_empty() {
            // Nothing to deal (outside CS₁, no blocks assigned).
            self.deals_ok.insert(from);
            return;
        }
        let base = values.len() - 1;
        let mut probe = values[base];
        for (j, &v) in values[..base].iter().enumerate() {
            probe += self.probe_coeff(ctx, from, j) * v;
        }
        self.openings
            .open(ctx, TAG_PROBE + from as u32, vec![probe]);
        // The trailing mask share is consumed by the probe alone; the layout
        // below covers exactly the `base` dealt shares.
        let mut it = values.into_iter();
        if self.cs1_sorted.contains(&from) {
            for &pos in &plan.input_positions[from] {
                self.input_forms[from].insert(pos, it.next().expect("length checked"));
            }
        }
        for blk in plan.blocks_of(from, &self.cs1_sorted) {
            for k in 0..plan.ell {
                let forms = self.triple_forms.entry((blk, k)).or_default();
                for &pos in &plan.positions[blk][k] {
                    let fa = it.next().expect("length checked");
                    let fb = it.next().expect("length checked");
                    let fc = it.next().expect("length checked");
                    forms.insert(pos, (fa, fb, fc));
                }
            }
        }
        self.deals_ok.insert(from);
    }

    /// Parses any deals buffered before `CS₁` was known and advances to the
    /// circuit once every assigned dealer is *good*: its deal parsed
    /// shape-valid **and** its public degree probe reconstructed at degree
    /// `t_s`. After the deadline ([`TIMER_PACKED_DEAL`]) this party reports
    /// every dealer still unresolved; `t_s + 1` distinct reporters against
    /// any dealer — at least one of them honest — make the failure public,
    /// and every party abandons the packed engine together
    /// ([`Self::fall_back_to_scalar`]).
    fn drive_packed_deal(&mut self, ctx: &mut Context<'_, Msg>) {
        let buffered: Vec<(PartyId, Vec<Fp>)> =
            std::mem::take(&mut self.deal_buf).into_iter().collect();
        for (from, values) in buffered {
            if !self.deals_ok.contains(&from) && !self.deals_dead.contains(&from) {
                self.parse_deal(ctx, from, values);
            }
        }
        let plan = self.plan.clone().expect("packed mode has a plan");
        let ts = self.ts();
        let mut all_good = true;
        for s in 0..self.params.n {
            if plan.expected_deal_len(s, &self.cs1_sorted) == 0 {
                continue;
            }
            let good = self.deals_ok.contains(&s)
                && self
                    .openings
                    .try_reconstruct(TAG_PROBE + s as u32, 1, ts, ts)
                    .is_some();
            if good {
                continue;
            }
            all_good = false;
            if self.deal_deadline && self.my_reports.insert(s) {
                self.deal_reports.entry(s).or_default().insert(ctx.me);
                ctx.broadcast(Msg::PackedReport(s as u32));
            }
        }
        if all_good {
            self.phase = Phase::Circuit;
            return;
        }
        if self
            .deal_reports
            .values()
            .any(|reporters| reporters.len() > ts)
        {
            self.fall_back_to_scalar(ctx);
        }
    }

    /// Abandons the packed engine for the scalar preprocessing path after a
    /// publicly-reported deal failure: clears all packed state, launches the
    /// triple ACS that packed mode skipped at `init`, and replays the triple
    /// ACS traffic buffered meanwhile. Every honest party takes this exit
    /// (the trigger is `t_s + 1` public reports, which reach everyone), so
    /// the late-started ACS has its full honest quorum. Reported dealers
    /// keep participating in the scalar path, where `Π_TripSh`'s supervised
    /// verification neutralises bad triples without trusting any dealer.
    fn fall_back_to_scalar(&mut self, ctx: &mut Context<'_, Msg>) {
        self.packed_fell_back = true;
        self.packing = 0;
        self.packed_width = 0;
        self.plan = None;
        self.pdomain = None;
        self.input_forms = Vec::new();
        self.triple_forms.clear();
        self.z_forms.clear();
        self.deal_buf.clear();
        self.values_opened_by_layer.clear();
        self.packed_layer = 0;
        self.packed_issued = false;
        self.phase = Phase::AwaitAcs;
        let polys = self.make_triple_polys(ctx);
        let mut acs2 = Acs::new(self.params, polys);
        ctx.scoped(SEG_ACS_TRIPLES, |ctx| acs2.init(ctx));
        for (from, path, msg) in std::mem::take(&mut self.acs2_buf) {
            ctx.scoped(SEG_ACS_TRIPLES, |ctx| {
                acs2.on_message(ctx, from, &path, msg)
            });
        }
        self.acs_triples = Some(acs2);
    }

    /// My share of the wire value `combo` positioned at `pos`, assembled
    /// locally from the basis forms (sharing is linear). A missing input
    /// form means the input's owner is outside `CS₁`: everyone substitutes
    /// the all-zero sharing (a valid sharing of `0` at every position).
    fn combo_share_at(&self, combo: &LinComb, pos: Pos) -> Fp {
        let mut acc = combo.constant;
        for (&elem, &coeff) in &combo.terms {
            let share = match (elem, pos) {
                (BasisElem::Input(j), Pos::Zero) => self.input_shares[j],
                (BasisElem::Input(j), _) => {
                    self.input_forms[j].get(&pos).copied().unwrap_or(Fp::ZERO)
                }
                (BasisElem::MulOut(g), _) => self.z_forms[&g][&pos],
            };
            acc += coeff * share;
        }
        acc
    }

    /// Packed circuit driver: one `[D, E]` opening per ℓ-gate block per
    /// layer. `D(x) = Σ_k L_k(x)·(X_k(x) − A_k(x))` over the slot Lagrange
    /// basis has degree `t_s + ℓ − 1` and carries `d_k = x_k − a_k` at slot
    /// point `e_k`; one robust opening therefore unpacks all `ℓ` masked
    /// differences at once. Outputs are re-positioned locally at degree
    /// `t_s` via the z-form identity, so the opened degree never compounds.
    fn drive_packed_circuit(&mut self, ctx: &mut Context<'_, Msg>) {
        let plan = self.plan.clone().expect("packed mode has a plan");
        let pdom = self.pdomain.clone().expect("packed mode has a domain");
        let ts = self.ts();
        let ell = plan.ell;
        let me = ctx.me;
        loop {
            if self.packed_layer >= plan.layers.len() {
                let share =
                    self.combo_share_at(&plan.wire_combos[self.circuit.output().0], Pos::Zero);
                self.phase = Phase::OpenOutput;
                self.openings.open(ctx, TAG_OUTPUT, vec![share]);
                return;
            }
            let blocks = &plan.layers[self.packed_layer];
            if !self.packed_issued {
                self.packed_issued = true;
                self.values_opened_by_layer.push(2 * blocks.len() as u64);
                for blk in blocks {
                    let row = pdom.pack_row(me).to_vec();
                    let (mut d_sh, mut e_sh) = (Fp::ZERO, Fp::ZERO);
                    for (k, &lk) in row.iter().enumerate() {
                        let (x, y) = match blk.slots[k] {
                            Some(g) => {
                                let Gate::Mul(a, b) = self.circuit.gates()[g] else {
                                    unreachable!("packed blocks only hold Mul gates")
                                };
                                (
                                    self.combo_share_at(&plan.wire_combos[a.0], Pos::Slot(k)),
                                    self.combo_share_at(&plan.wire_combos[b.0], Pos::Slot(k)),
                                )
                            }
                            // Padding slots multiply 0·0 under the dealt
                            // random triple, keeping the masks uniform.
                            None => (Fp::ZERO, Fp::ZERO),
                        };
                        let (fa, fb, _) = self.triple_forms[&(blk.index, k)][&Pos::Slot(k)];
                        d_sh += lk * (x - fa);
                        e_sh += lk * (y - fb);
                    }
                    self.openings
                        .open(ctx, TAG_PACKED + blk.index as u32, vec![d_sh, e_sh]);
                }
            }
            let degree = ts + ell - 1;
            let mut opened = Vec::with_capacity(blocks.len());
            for blk in blocks {
                let Some(de) = self
                    .openings
                    .try_reconstruct_at(TAG_PACKED + blk.index as u32, 2, degree, ts, pdom.slots())
                    .map(<[Fp]>::to_vec)
                else {
                    return;
                };
                opened.push(de);
            }
            for (blk, de) in blocks.iter().zip(&opened) {
                for k in 0..ell {
                    let Some(g) = blk.slots[k] else { continue };
                    let (d, e) = (de[k], de[ell + k]);
                    let forms = self.triple_forms[&(blk.index, k)].clone();
                    let entry = self.z_forms.entry(g).or_default();
                    for (pos, (fa, fb, fc)) in forms {
                        entry.insert(pos, packed_z_form_share(d, e, fa, fb, fc));
                    }
                }
            }
            self.packed_layer += 1;
            self.packed_issued = false;
        }
    }

    fn issue_transform(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        for dpos in 0..self.dealers.len() {
            for batch in 0..self.batches {
                for i in ts + 1..self.raw_per_dealer() {
                    let (x, y) = self.dealer_xy_share(dpos, batch, alpha(i));
                    let triple = self.raw_triple(dpos, batch, i);
                    let (d, e) = beaver_masked_shares(x, y, &triple);
                    let tag = TAG_TRANSFORM + self.transform_idx(dpos, batch, i);
                    self.openings.open(ctx, tag, vec![d, e]);
                }
            }
        }
    }

    fn drive_transform(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        // collect all transform openings
        for dpos in 0..self.dealers.len() {
            for batch in 0..self.batches {
                for i in ts + 1..self.raw_per_dealer() {
                    let tag = TAG_TRANSFORM + self.transform_idx(dpos, batch, i);
                    let Some(&[d, e]) = self.openings.try_reconstruct(tag, 2, ts, ts) else {
                        return;
                    };
                    let triple = self.raw_triple(dpos, batch, i);
                    self.z_high
                        .entry((dpos, batch, i))
                        .or_insert_with(|| beaver_output_share(d, e, &triple));
                }
            }
        }
        self.phase = Phase::VerifyBeaver;
        self.issue_verify(ctx);
    }

    fn issue_verify(&mut self, ctx: &mut Context<'_, Msg>) {
        for dpos in 0..self.dealers.len() {
            let dealer_party = self.dealers[dpos];
            for batch in 0..self.batches {
                for (spos, &sup) in self.supervisors.clone().iter().enumerate() {
                    let (x, y) = self.dealer_xy_share(dpos, batch, alpha(sup));
                    let vt = self.verification_triple(sup, batch, dealer_party);
                    let (d, e) = beaver_masked_shares(x, y, &vt);
                    let tag = TAG_VERIFY + self.verify_idx(dpos, batch, spos);
                    self.openings.open(ctx, tag, vec![d, e]);
                }
            }
        }
    }

    fn drive_verify(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        let mut gammas = Vec::new();
        for dpos in 0..self.dealers.len() {
            let dealer_party = self.dealers[dpos];
            for batch in 0..self.batches {
                for (spos, &sup) in self.supervisors.clone().iter().enumerate() {
                    let tag = TAG_VERIFY + self.verify_idx(dpos, batch, spos);
                    let Some(&[d, e]) = self.openings.try_reconstruct(tag, 2, ts, ts) else {
                        return;
                    };
                    let vt = self.verification_triple(sup, batch, dealer_party);
                    let z_prime = beaver_output_share(d, e, &vt);
                    let z = self.dealer_z_share(dpos, batch, alpha(sup));
                    gammas.push((dpos, batch, spos, z - z_prime));
                }
            }
        }
        self.phase = Phase::Gamma;
        for (dpos, batch, spos, gamma) in gammas {
            let tag = TAG_GAMMA + self.verify_idx(dpos, batch, spos);
            self.openings.open(ctx, tag, vec![gamma]);
        }
    }

    fn drive_gamma(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        let mut suspects = Vec::new();
        for dpos in 0..self.dealers.len() {
            for batch in 0..self.batches {
                for spos in 0..self.supervisors.len() {
                    let tag = TAG_GAMMA + self.verify_idx(dpos, batch, spos);
                    // γ is a linear combination of t_s-shared values, hence
                    // itself t_s-shared (the degree 2·t_s of Z(·) lives in the
                    // evaluation-point variable, not the sharing polynomial).
                    let Some(&[g]) = self.openings.try_reconstruct(tag, 1, ts, ts) else {
                        return;
                    };
                    if !g.is_zero() {
                        suspects.push((dpos, batch, spos));
                    }
                }
            }
        }
        self.phase = Phase::Suspect;
        for (dpos, batch, spos) in suspects {
            let sup = self.supervisors[spos];
            let (x, y) = self.dealer_xy_share(dpos, batch, alpha(sup));
            let z = self.dealer_z_share(dpos, batch, alpha(sup));
            let tag = TAG_SUSPECT + self.verify_idx(dpos, batch, spos);
            self.openings.open(ctx, tag, vec![x, y, z]);
        }
    }

    fn drive_suspect(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        // re-derive the suspect list from the (public, agreed) gamma values
        for dpos in 0..self.dealers.len() {
            for batch in 0..self.batches {
                for spos in 0..self.supervisors.len() {
                    let gtag = TAG_GAMMA + self.verify_idx(dpos, batch, spos);
                    let gamma = self.openings.get(gtag).expect("gamma phase completed")[0];
                    if gamma.is_zero() {
                        continue;
                    }
                    let tag = TAG_SUSPECT + self.verify_idx(dpos, batch, spos);
                    let Some(&[x, y, z]) = self.openings.try_reconstruct(tag, 3, ts, ts) else {
                        return;
                    };
                    if x * y != z {
                        self.flagged.insert((dpos, batch));
                    }
                }
            }
        }
        // fix the per-dealer verified triples
        for dpos in 0..self.dealers.len() {
            for batch in 0..self.batches {
                let t = if self.flagged.contains(&(dpos, batch)) {
                    TripleShare::zero()
                } else {
                    let target = beta(self.params.n, 0);
                    let (x, y) = self.dealer_xy_share(dpos, batch, target);
                    let z = self.dealer_z_share(dpos, batch, target);
                    TripleShare::new(x, y, z)
                };
                self.verified.insert((dpos, batch), t);
            }
        }
        self.phase = Phase::Extract;
        self.issue_extract(ctx);
    }

    /// `X̂/Ŷ` shares of the extraction polynomials of `batch` at `target`
    /// (degree `d`, defined by the verified triples of the first `d + 1`
    /// dealer positions).
    fn ext_xy_share(&self, batch: usize, target: Fp) -> (Fp, Fp) {
        // One λ vector serves both component dot products.
        let lambda = self.domain.prefix_basis(self.d_ext + 1).lambda_at(target);
        let (mut a, mut b) = (Fp::ZERO, Fp::ZERO);
        for (p, &l) in lambda.iter().enumerate() {
            let triple = self.verified[&(p, batch)];
            a += l * triple.a;
            b += l * triple.b;
        }
        (a, b)
    }

    fn ext_z_share(&self, batch: usize, target: Fp) -> Fp {
        let basis = self.domain.prefix_basis(2 * self.d_ext + 1);
        let ys: Vec<Fp> = (0..2 * self.d_ext + 1)
            .map(|p| {
                if p <= self.d_ext {
                    self.verified[&(p, batch)].c
                } else {
                    self.ext_z[&(batch, p)]
                }
            })
            .collect();
        interpolate_share_with(&basis, &ys, target)
    }

    fn issue_extract(&mut self, ctx: &mut Context<'_, Msg>) {
        for batch in 0..self.batches {
            for p in self.d_ext + 1..2 * self.d_ext + 1 {
                let (x, y) = self.ext_xy_share(batch, alpha(p));
                let triple = self.verified[&(p, batch)];
                let (d, e) = beaver_masked_shares(x, y, &triple);
                let tag = TAG_EXTRACT + self.extract_idx(batch, p);
                self.openings.open(ctx, tag, vec![d, e]);
            }
        }
    }

    fn drive_extract(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        for batch in 0..self.batches {
            for p in self.d_ext + 1..2 * self.d_ext + 1 {
                let tag = TAG_EXTRACT + self.extract_idx(batch, p);
                let Some(&[d, e]) = self.openings.try_reconstruct(tag, 2, ts, ts) else {
                    return;
                };
                let triple = self.verified[&(p, batch)];
                self.ext_z
                    .entry((batch, p))
                    .or_insert_with(|| beaver_output_share(d, e, &triple));
            }
        }
        // extract d + 1 - t_s fresh triples per batch
        for batch in 0..self.batches {
            for j in 0..(self.d_ext + 1 - ts) {
                let target = beta(self.params.n, j);
                let (x, y) = self.ext_xy_share(batch, target);
                let z = self.ext_z_share(batch, target);
                self.pool.push(TripleShare::new(x, y, z));
            }
        }
        assert!(
            self.circuit.mult_count() <= self.pool.len(),
            "triple pool must cover every multiplication gate"
        );
        self.phase = Phase::Circuit;
        self.drive_circuit(ctx);
    }

    /// One topological pass filling every wire computable from inputs,
    /// constants, linear gates and already-resolved multiplications. Gates
    /// are stored in topological order, so a single pass resolves the entire
    /// linear region exposed by the multiplication layers opened so far.
    fn propagate_linear(&mut self) {
        for g in 0..self.circuit.gates().len() {
            if self.wire_shares[g].is_some() {
                continue;
            }
            let value = match self.circuit.gates()[g] {
                Gate::Input(i) => Some(self.input_shares[i]),
                Gate::Constant(c) => Some(c),
                Gate::Add(a, b) => match (self.wire_shares[a.0], self.wire_shares[b.0]) {
                    (Some(x), Some(y)) => Some(x + y),
                    _ => None,
                },
                Gate::Sub(a, b) => match (self.wire_shares[a.0], self.wire_shares[b.0]) {
                    (Some(x), Some(y)) => Some(x - y),
                    _ => None,
                },
                Gate::MulConst(a, c) => self.wire_shares[a.0].map(|x| x * c),
                Gate::AddConst(a, c) => self.wire_shares[a.0].map(|x| x + c),
                // Multiplications resolve through their layer's opening.
                Gate::Mul(_, _) => None,
            };
            if value.is_some() {
                self.wire_shares[g] = value;
            }
        }
    }

    /// Layer-batched shared evaluation (the default): a single pass over the
    /// multiplication layers, opening **one** `2·L` batch of Beaver maskings
    /// per layer — `D_M` openings total instead of `c_M`, with the OEC
    /// interpolate-and-verify basis shared across the whole layer
    /// (`rs::oec_decode_batch` inside the opening manager).
    fn drive_circuit(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.per_gate_openings {
            self.drive_circuit_per_gate(ctx);
            return;
        }
        let ts = self.ts();
        loop {
            self.propagate_linear();
            if let Some(share) = self.wire_shares[self.circuit.output().0] {
                self.phase = Phase::OpenOutput;
                self.openings.open(ctx, TAG_OUTPUT, vec![share]);
                return;
            }
            if self.next_mul_layer >= self.mul_layers.len() {
                return;
            }
            let tag = TAG_CIRCUIT + self.next_mul_layer as u32;
            let gates = &self.mul_layers[self.next_mul_layer];
            if !self.layer_issued {
                self.layer_issued = true;
                self.values_opened_by_layer.push(2 * gates.len() as u64);
                // Every input of a layer-(l+1) multiplication depends only on
                // multiplications of layers ≤ l, so after the propagation
                // pass all of them are resolved and the whole layer's
                // maskings go out as one batch.
                let mut values = Vec::with_capacity(2 * gates.len());
                for &g in gates {
                    let Gate::Mul(a, b) = self.circuit.gates()[g] else {
                        unreachable!("mul_layers only contains Mul gates")
                    };
                    let x = self.wire_shares[a.0].expect("earlier layers resolved");
                    let y = self.wire_shares[b.0].expect("earlier layers resolved");
                    let triple = self.pool[self.gate_triple[g]];
                    let (d, e) = beaver_masked_shares(x, y, &triple);
                    values.push(d);
                    values.push(e);
                }
                self.openings.open(ctx, tag, values);
            }
            let Some(de) = self
                .openings
                .try_reconstruct(tag, 2 * gates.len(), ts, ts)
                .map(<[Fp]>::to_vec)
            else {
                return;
            };
            for (i, &g) in self.mul_layers[self.next_mul_layer].iter().enumerate() {
                let triple = self.pool[self.gate_triple[g]];
                self.wire_shares[g] = Some(beaver_output_share(de[2 * i], de[2 * i + 1], &triple));
            }
            self.next_mul_layer += 1;
            self.layer_issued = false;
        }
    }

    /// Per-gate reference path: the pre-batching behaviour (one opening per
    /// multiplication gate, issued as the gate's inputs resolve), kept for
    /// equivalence tests and as the e12 benchmark baseline.
    fn drive_circuit_per_gate(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        let mut progress = true;
        while progress {
            progress = false;
            for g in 0..self.circuit.gates().len() {
                if self.wire_shares[g].is_some() {
                    continue;
                }
                let value = match self.circuit.gates()[g] {
                    Gate::Input(i) => Some(self.input_shares[i]),
                    Gate::Constant(c) => Some(c),
                    Gate::Add(a, b) => match (self.wire_shares[a.0], self.wire_shares[b.0]) {
                        (Some(x), Some(y)) => Some(x + y),
                        _ => None,
                    },
                    Gate::Sub(a, b) => match (self.wire_shares[a.0], self.wire_shares[b.0]) {
                        (Some(x), Some(y)) => Some(x - y),
                        _ => None,
                    },
                    Gate::MulConst(a, c) => self.wire_shares[a.0].map(|x| x * c),
                    Gate::AddConst(a, c) => self.wire_shares[a.0].map(|x| x + c),
                    Gate::Mul(a, b) => {
                        let (Some(x), Some(y)) = (self.wire_shares[a.0], self.wire_shares[b.0])
                        else {
                            continue;
                        };
                        let triple = self.pool[self.gate_triple[g]];
                        let tag = TAG_CIRCUIT + g as u32;
                        if !self.mul_opened[g] {
                            self.mul_opened[g] = true;
                            let (d, e) = beaver_masked_shares(x, y, &triple);
                            self.openings.open(ctx, tag, vec![d, e]);
                        }
                        self.openings
                            .try_reconstruct(tag, 2, ts, ts)
                            .map(|de| beaver_output_share(de[0], de[1], &triple))
                    }
                };
                if let Some(v) = value {
                    self.wire_shares[g] = Some(v);
                    progress = true;
                }
            }
        }
        if let Some(share) = self.wire_shares[self.circuit.output().0] {
            self.phase = Phase::OpenOutput;
            self.openings.open(ctx, TAG_OUTPUT, vec![share]);
        }
    }

    fn drive_open_output(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        let Some(&[y]) = self.openings.try_reconstruct(TAG_OUTPUT, 1, ts, ts) else {
            return;
        };
        self.phase = Phase::Ready;
        if !self.sent_ready {
            self.sent_ready = true;
            ctx.broadcast(Msg::Ready(vec![y]));
        }
        self.drive_ready(ctx);
    }

    fn drive_ready(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        // Decide on a borrowed view (no per-call clone of the vote map),
        // then act: at most one echo and one decision can fire per call.
        let mut echo = None;
        let mut decide = None;
        for (&y, senders) in &self.ready_counts {
            if echo.is_none() && senders.len() > ts {
                echo = Some(y);
            }
            if decide.is_none() && senders.len() > 2 * ts {
                decide = Some(y);
            }
        }
        if let Some(y) = echo {
            if !self.sent_ready {
                self.sent_ready = true;
                ctx.broadcast(Msg::Ready(vec![y]));
            }
        }
        if let Some(y) = decide {
            if self.output.is_none() {
                self.output = Some(y);
                self.output_at = Some(ctx.now);
                self.phase = Phase::Done;
            }
        }
    }
}

impl Protocol<Msg> for CirEval {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        let ts = self.ts();
        // ACS #1: share my input
        let input_poly = Polynomial::random_with_constant_term(ctx.rng(), ts, self.my_input);
        let mut acs1 = Acs::new(self.params, vec![input_poly]);
        ctx.scoped(SEG_ACS_INPUT, |ctx| acs1.init(ctx));
        self.acs_input = Some(acs1);
        // Packed mode: triples are dealt point-to-point after CS₁ is known —
        // no second ACS instance at all.
        if self.packing > 0 {
            return;
        }
        // ACS #2: share my raw triples and verification triples
        let polys = self.make_triple_polys(ctx);
        let mut acs2 = Acs::new(self.params, polys);
        ctx.scoped(SEG_ACS_TRIPLES, |ctx| acs2.init(ctx));
        self.acs_triples = Some(acs2);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: PartyId,
        path: PathSlice<'_>,
        msg: Msg,
    ) {
        match path.first() {
            Some(&SEG_ACS_INPUT) => {
                if let Some(acs) = self.acs_input.as_mut() {
                    ctx.scoped(SEG_ACS_INPUT, |ctx| {
                        acs.on_message(ctx, from, &path[1..], msg)
                    });
                }
            }
            Some(&SEG_ACS_TRIPLES) => {
                if let Some(acs) = self.acs_triples.as_mut() {
                    ctx.scoped(SEG_ACS_TRIPLES, |ctx| {
                        acs.on_message(ctx, from, &path[1..], msg)
                    });
                } else if self.packing > 0 {
                    // Packed mode has no triple ACS (yet): keep the traffic
                    // for the scalar fallback, which launches ACS #2 late.
                    self.acs2_buf.push((from, path[1..].to_vec(), msg));
                }
            }
            None => match msg {
                Msg::Open { tag, values } => self.openings.on_open(from, tag, values),
                // Buffered raw until CS₁ fixes the expected layout; parsed
                // by `drive_packed_deal`. First payload per sender wins
                // (honest dealers send exactly one).
                Msg::PackedDeal(values) if self.packing > 0 => {
                    self.deal_buf.entry(from).or_insert(values);
                }
                // Cumulative public evidence against a packed dealer;
                // weighed by `drive_packed_deal`.
                Msg::PackedReport(dealer) if (dealer as usize) < self.params.n => {
                    self.deal_reports
                        .entry(dealer as usize)
                        .or_default()
                        .insert(from);
                }
                Msg::Ready(values) => {
                    if let Some(&y) = values.first() {
                        self.ready_counts.entry(y).or_default().insert(from);
                    }
                }
                _ => {}
            },
            _ => {}
        }
        self.drive(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, path: PathSlice<'_>, id: u64) {
        match path.first() {
            Some(&SEG_ACS_INPUT) => {
                if let Some(acs) = self.acs_input.as_mut() {
                    ctx.scoped(SEG_ACS_INPUT, |ctx| acs.on_timer(ctx, &path[1..], id));
                }
            }
            Some(&SEG_ACS_TRIPLES) => {
                if let Some(acs) = self.acs_triples.as_mut() {
                    ctx.scoped(SEG_ACS_TRIPLES, |ctx| acs.on_timer(ctx, &path[1..], id));
                }
            }
            // Root-path timer: the packed-deal deadline (sticky — harmless
            // if the phase already completed).
            None if id == TIMER_PACKED_DEAL => {
                self.deal_deadline = true;
            }
            _ => {}
        }
        self.drive(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CirEval>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_net::{
        Backend, CorruptionSet, LinkDelays, NetConfig, PartyView, Scheduler, Simulation,
        ThreadedNet, Transport,
    };

    /// Drives a circuit evaluation through the [`Transport`] abstraction; the
    /// backend follows `MPC_TRANSPORT` so the whole module doubles as a
    /// threaded-runtime exercise under `MPC_TRANSPORT=threaded`.
    fn run_circuit(
        params: Params,
        circuit: &Circuit,
        inputs: &[u64],
        corrupt: CorruptionSet,
        sync: bool,
        seed: u64,
    ) -> (Vec<Option<Fp>>, Time) {
        let parties: Vec<Box<dyn Protocol<Msg>>> = inputs
            .iter()
            .map(|&x| {
                Box::new(CirEval::new(params, circuit.clone(), Fp::from_u64(x)))
                    as Box<dyn Protocol<Msg>>
            })
            .collect();
        let cfg = if sync {
            NetConfig::synchronous(params.n)
        } else {
            NetConfig::asynchronous(params.n)
        }
        .with_seed(seed);
        let mut scheduler: Box<dyn Scheduler> = match cfg.kind {
            mpc_net::NetworkKind::Synchronous => Box::new(mpc_net::FixedDelay(cfg.delta)),
            mpc_net::NetworkKind::Asynchronous => Box::new(mpc_net::UniformDelay {
                min: 1,
                max: cfg.delta * 5,
            }),
        };
        let mut net: Box<dyn Transport<Msg>> = match Backend::from_env() {
            Backend::Simulator => Box::new(Simulation::with_scheduler(
                cfg.clone(),
                corrupt.clone(),
                scheduler,
                parties,
            )),
            Backend::Threaded => {
                let links = LinkDelays::sampled_from(cfg.n, cfg.seed, scheduler.as_mut());
                Box::new(ThreadedNet::with_links(
                    cfg,
                    corrupt.clone(),
                    links,
                    parties,
                ))
            }
            Backend::Tcp => {
                let links = LinkDelays::sampled_from(cfg.n, cfg.seed, scheduler.as_mut());
                Box::new(mpc_net::TcpNet::with_links(
                    cfg,
                    corrupt.clone(),
                    links,
                    parties,
                ))
            }
        };
        let horizon = params.horizon_for_depth(circuit.mult_depth()) * 8;
        let done = net.run_until_done(horizon, &mut |view| {
            (0..params.n).filter(|&i| corrupt.is_honest(i)).all(|i| {
                mpc_net::party_as::<CirEval, Msg>(view, i)
                    .unwrap()
                    .output
                    .is_some()
            })
        });
        assert!(done, "circuit evaluation did not finish before the horizon");
        let view: &dyn PartyView<Msg> = net.as_ref();
        let outs = (0..params.n)
            .map(|i| mpc_net::party_as::<CirEval, Msg>(view, i).unwrap().output)
            .collect();
        (outs, view.now())
    }

    #[test]
    fn linear_circuit_all_honest_sync() {
        let params = Params::new(4, 1, 0, 10);
        let circuit = Circuit::sum_of_inputs(4);
        let inputs = [3u64, 5, 7, 11];
        let (outs, _) = run_circuit(params, &circuit, &inputs, CorruptionSet::none(), true, 1);
        for o in outs {
            assert_eq!(o.unwrap().as_u64(), 3 + 5 + 7 + 11);
        }
    }

    #[test]
    fn multiplication_circuit_all_honest_sync() {
        let params = Params::new(4, 1, 0, 10);
        let mut circuit = Circuit::new(4);
        let p = circuit.mul(circuit.input(0), circuit.input(1));
        let q = circuit.add(circuit.input(2), circuit.input(3));
        let r = circuit.mul(p, q);
        circuit.set_output(r);
        let inputs = [3u64, 5, 7, 11];
        let expected = 3 * 5 * (7 + 11);
        let (outs, _) = run_circuit(params, &circuit, &inputs, CorruptionSet::none(), true, 2);
        for o in outs {
            assert_eq!(o.unwrap().as_u64(), expected);
        }
    }

    #[test]
    fn multiplication_circuit_with_silent_corrupt_party_sync() {
        // t_s = 1 corruption in a synchronous network: the corrupt party is
        // silent, its input defaults to 0 only if it is excluded from CS1 —
        // with a silent party that is exactly what happens.
        let params = Params::new(4, 1, 0, 10);
        let circuit = Circuit::product_of_inputs(4);
        let inputs = [3u64, 5, 7, 2];
        let parties: Vec<Box<dyn Protocol<Msg>>> = inputs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                if i == 3 {
                    Box::new(mpc_protocols::byzantine::SilentParty) as Box<dyn Protocol<Msg>>
                } else {
                    Box::new(CirEval::new(params, circuit.clone(), Fp::from_u64(x)))
                        as Box<dyn Protocol<Msg>>
                }
            })
            .collect();
        let corrupt = CorruptionSet::new(vec![3]);
        let mut sim = Simulation::new(NetConfig::synchronous(params.n), corrupt.clone(), parties);
        let horizon = params.horizon_for_depth(circuit.mult_depth()) * 8;
        let done = sim.run_until(horizon, |s| {
            (0..3).all(|i| s.party_as::<CirEval>(i).unwrap().output.is_some())
        });
        assert!(
            done,
            "honest parties must finish despite a silent corrupt party"
        );
        // the silent party's input is replaced by 0 → product is 0
        for i in 0..3 {
            let p = sim.party_as::<CirEval>(i).unwrap();
            assert_eq!(p.output.unwrap().as_u64(), 0);
            assert!(!p.input_subset.as_ref().unwrap().contains(&3));
        }
    }

    /// Like [`run_circuit`] but with every party on the packed engine.
    fn run_circuit_packed(
        params: Params,
        circuit: &Circuit,
        inputs: &[u64],
        ell: usize,
        sync: bool,
        seed: u64,
    ) -> Vec<Option<Fp>> {
        let parties: Vec<Box<dyn Protocol<Msg>>> = inputs
            .iter()
            .map(|&x| {
                let mut p = CirEval::new(params, circuit.clone(), Fp::from_u64(x));
                p.set_packing(ell);
                Box::new(p) as Box<dyn Protocol<Msg>>
            })
            .collect();
        let cfg = if sync {
            NetConfig::synchronous(params.n)
        } else {
            NetConfig::asynchronous(params.n)
        }
        .with_seed(seed);
        let mut sim = Simulation::new(cfg, CorruptionSet::none(), parties);
        let horizon = params.horizon_for_depth(circuit.mult_depth()) * 8;
        let done = sim.run_until(horizon, |s| {
            (0..params.n).all(|i| s.party_as::<CirEval>(i).unwrap().output.is_some())
        });
        assert!(done, "packed evaluation did not finish before the horizon");
        (0..params.n)
            .map(|i| sim.party_as::<CirEval>(i).unwrap().output)
            .collect()
    }

    #[test]
    fn packed_engine_matches_cleartext_two_layers() {
        // Two multiplication layers, enough gates per layer to exercise both
        // real and padding slots at ℓ = 2 and ℓ = 4.
        let params = Params::new(7, 1, 1, 10);
        let mut circuit = Circuit::new(7);
        let m: Vec<_> = (0..3)
            .map(|i| circuit.mul(circuit.input(2 * i), circuit.input(2 * i + 1)))
            .collect();
        let s01 = circuit.add(m[0], m[1]);
        let top = circuit.mul(s01, m[2]);
        let out = circuit.add(top, circuit.input(6));
        circuit.set_output(out);
        let inputs = [3u64, 5, 7, 11, 13, 17, 19];
        let expected = (3 * 5 + 7 * 11) * (13 * 17) + 19;
        for ell in [1, 2, 4] {
            for sync in [true, false] {
                let outs =
                    run_circuit_packed(params, &circuit, &inputs, ell, sync, 40 + ell as u64);
                for o in outs {
                    assert_eq!(o.unwrap().as_u64(), expected, "ell={ell} sync={sync}");
                }
            }
        }
    }

    #[test]
    fn packed_engine_linear_circuit_and_metrics_fields() {
        let params = Params::new(7, 1, 1, 10);
        let circuit = Circuit::sum_of_inputs(7);
        let inputs = [1u64, 2, 3, 4, 5, 6, 7];
        let outs = run_circuit_packed(params, &circuit, &inputs, 4, true, 50);
        for o in outs {
            assert_eq!(o.unwrap().as_u64(), 28);
        }
    }

    #[test]
    fn packed_engine_opens_fewer_values_per_layer() {
        // One layer of 8 multiplications: scalar opens 16 values, ℓ = 4
        // packs them into 2 blocks of 2 opened values each.
        let params = Params::new(7, 1, 1, 10);
        let mut circuit = Circuit::new(7);
        let mut acc = circuit.mul(circuit.input(0), circuit.input(1));
        for _ in 0..7 {
            let m = circuit.mul(circuit.input(2), circuit.input(3));
            let s = circuit.add(acc, m);
            acc = s;
        }
        circuit.set_output(acc);
        // ^ all 8 muls live in layer 0 (inputs only), then linear gates.
        let inputs = [2u64, 3, 4, 5, 1, 1, 1];
        let parties: Vec<Box<dyn Protocol<Msg>>> = inputs
            .iter()
            .map(|&x| {
                let mut p = CirEval::new(params, circuit.clone(), Fp::from_u64(x));
                p.set_packing(4);
                Box::new(p) as Box<dyn Protocol<Msg>>
            })
            .collect();
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n).with_seed(60),
            CorruptionSet::none(),
            parties,
        );
        let horizon = params.horizon_for_depth(circuit.mult_depth()) * 8;
        assert!(sim.run_until(horizon, |s| {
            (0..params.n).all(|i| s.party_as::<CirEval>(i).unwrap().output.is_some())
        }));
        let p = sim.party_as::<CirEval>(0).unwrap();
        assert_eq!(p.output.unwrap().as_u64(), 2 * 3 + 7 * (4 * 5));
        assert_eq!(p.packed_width, 4);
        assert_eq!(p.values_opened_by_layer, vec![4]); // 2 blocks × [D, E]
        assert!(!p.packed_fell_back, "honest deals must pass their probes");
    }

    /// A wire-level dealer that behaves honestly everywhere *except* in its
    /// packed deals, whose elements it perturbs with fresh per-recipient,
    /// per-element randomness — the worst uniformly-detectable case: a
    /// constant or linear perturbation would still be a valid degree-`t_s`
    /// sharing (of the wrong secret at worst), whereas independent noise
    /// leaves every probe combination off the polynomial.
    #[derive(Debug)]
    struct GarblePackedDeals;

    impl mpc_net::ByzantineStrategy for GarblePackedDeals {
        fn on_send(
            &mut self,
            send: &mpc_net::WireSend<'_>,
            rng: &mut rand::rngs::StdRng,
        ) -> mpc_net::WireAction {
            use mpc_net::{WireDecode, WireEncode};
            if !send.path.is_empty() {
                return mpc_net::WireAction::Deliver;
            }
            let Ok(Msg::PackedDeal(values)) = Msg::decode(send.bytes) else {
                return mpc_net::WireAction::Deliver;
            };
            let garbled: Vec<Fp> = values.iter().map(|&v| v + Fp::random(rng)).collect();
            mpc_net::WireAction::Replace(Msg::PackedDeal(garbled).encode())
        }
    }

    #[test]
    fn packed_garbling_dealer_triggers_uniform_scalar_fallback() {
        // PR 7 hole, closed: a dealer inside CS₁ whose packed deals are
        // inconsistent used to hang the run forever. Now every honest party
        // sees the dealer's degree probe fail to reconstruct, reports it
        // after the deadline, and the t_s + 1 public reports flip everyone
        // to the scalar preprocessing path, which completes with the
        // *correct* output (the dealer's ACS-shared input still counts —
        // only its triples are distrusted, and Π_TripSh re-verifies those).
        let params = Params::new(5, 1, 0, 10);
        let circuit = Circuit::product_of_inputs(5);
        let inputs = [3u64, 5, 7, 2, 4];
        let parties: Vec<Box<dyn Protocol<Msg>>> = inputs
            .iter()
            .map(|&x| {
                let mut p = CirEval::new(params, circuit.clone(), Fp::from_u64(x));
                p.set_packing(2);
                Box::new(p) as Box<dyn Protocol<Msg>>
            })
            .collect();
        let corrupt = CorruptionSet::new(vec![4]);
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n).with_seed(71),
            corrupt,
            parties,
        );
        sim.set_strategy(Box::new(GarblePackedDeals));
        let horizon = params.horizon_for_depth(circuit.mult_depth()) * 8;
        let done = sim.run_until(horizon, |s| {
            (0..4).all(|i| s.party_as::<CirEval>(i).unwrap().output.is_some())
        });
        assert!(done, "honest parties must terminate despite a bad dealer");
        for i in 0..4 {
            let p = sim.party_as::<CirEval>(i).unwrap();
            assert_eq!(p.output.unwrap().as_u64(), 3 * 5 * 7 * 2 * 4);
            assert!(p.packed_fell_back, "party {i} must have fallen back");
            assert_eq!(p.packed_width, 0);
            assert!(p.input_subset.as_ref().unwrap().contains(&4));
        }
    }

    #[test]
    fn multiplication_circuit_async_network() {
        let params = Params::new(4, 1, 0, 10);
        let mut circuit = Circuit::new(4);
        let p = circuit.mul(circuit.input(0), circuit.input(1));
        let out = circuit.add(p, circuit.input(2));
        circuit.set_output(out);
        let inputs = [4u64, 6, 9, 1];
        let (outs, _) = run_circuit(params, &circuit, &inputs, CorruptionSet::none(), false, 3);
        for o in outs {
            assert_eq!(o.unwrap().as_u64(), 4 * 6 + 9);
        }
    }
}
