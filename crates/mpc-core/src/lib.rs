//! The paper's main contribution: best-of-both-worlds perfectly-secure MPC.
//!
//! * [`circuit`] — arithmetic circuits over `GF(2^61-1)` (the function `f` to
//!   be evaluated, Section 2).
//! * [`openings`] — robust public reconstruction of `t_s`-shared values via
//!   online error correction (used by Beaver's protocol and the output phase).
//! * [`triples`] — Beaver's multiplication (`Π_Beaver`, Fig 6) and the local
//!   share arithmetic behind triple transformation/extraction (Figs 7, 9).
//! * [`cireval`] — `Π_CirEval` (Fig 11): input sharing via `Π_ACS`, the
//!   triple-generation preprocessing phase (`Π_TripSh`/`Π_PreProcessing`,
//!   Figs 8, 10), shared circuit evaluation and the termination phase.
//! * [`packing`] — the static plan behind the packed (Franklin–Yung) SIMD
//!   evaluation path: width-`ℓ` gate blocks, slot-position sets and the
//!   canonical deal layout.
//! * [`builder`] — [`MpcBuilder`], the one-call API used by the examples and
//!   experiments.
//! * [`sweeps`] — the guarantee-checking sweep harness: corruption placement
//!   × Byzantine strategy × fault plan × network kind × backend, with every
//!   cell checked against the paper's guarantee matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod circuit;
pub mod cireval;
pub mod openings;
pub mod packing;
pub mod sweeps;
pub mod thresholds;
pub mod triples;

pub use builder::{MpcBuilder, MpcRunResult};
pub use circuit::{Circuit, Gate, Wire};
pub use cireval::CirEval;
pub use packing::PackedPlan;
pub use sweeps::{
    cell_guarantee, check_cell, check_cell_against, default_matrix, default_workload,
    negative_control, run_sweep, CellReport, CellSpec, Guarantee, StrategyKind, SweepOutcome,
    Verdict,
};
