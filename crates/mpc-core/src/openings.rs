//! Robust public reconstruction of `t_s`-shared values.
//!
//! Beaver's protocol, the triple-verification steps of `Π_TripSh` and the
//! output phase of `Π_CirEval` all publicly reconstruct shared values: every
//! party sends its share to everyone and applies `OEC(t_s, t_s, P)` on what it
//! receives. [`OpeningManager`] tracks any number of such reconstructions in
//! parallel, keyed by a deterministic tag agreed implicitly by all parties.
//!
//! Two reconstruction flavours share the machinery: the classic
//! [`OpeningManager::try_reconstruct`] recovers each value's secret at `0`
//! (constant term), while [`OpeningManager::try_reconstruct_at`] recovers the
//! full decoded polynomials evaluated at an arbitrary public point set — the
//! packed engine uses it to read all `ℓ` slot values out of one opening.
//! A given tag must only ever be used with one flavour (the result cache is
//! shared).

use std::collections::{BTreeMap, HashMap};

use mpc_algebra::evaluation_points::alpha;
use mpc_algebra::{rs, Fp, Polynomial};
use mpc_net::{Context, PartyId};
use mpc_protocols::Msg;

/// Tracks concurrent public reconstructions of batches of shared values.
#[derive(Debug, Default)]
pub struct OpeningManager {
    received: HashMap<u32, BTreeMap<PartyId, Vec<Fp>>>,
    opened: HashMap<u32, Vec<Fp>>,
    my_batches: HashMap<u32, usize>,
    /// Sender count at the last *failed* decode attempt per tag. `on_open`
    /// only ever adds senders, so an unchanged count means no new
    /// information — the retry (openings are re-attempted on every message
    /// delivery) is skipped without rebuilding columns.
    last_attempt: HashMap<u32, usize>,
}

/// Decodes every value of a batch to its full sharing polynomial.
///
/// When every sender supplied a full batch (the honest-sender common case)
/// all `count` values share one evaluation-point vector, so the OEC
/// interpolate-and-verify basis is built once for the whole batch
/// ([`rs::oec_decode_batch`]); ragged (Byzantine-shortened) batches fall
/// back to the per-value loop.
fn decode_polys(
    received: &BTreeMap<PartyId, Vec<Fp>>,
    count: usize,
    degree: usize,
    t: usize,
) -> Option<Vec<Polynomial>> {
    if count > 0 && received.values().all(|v| v.len() >= count) {
        let xs: Vec<Fp> = received.keys().map(|&p| alpha(p)).collect();
        let columns: Vec<Vec<Fp>> = (0..count)
            .map(|idx| received.values().map(|v| v[idx]).collect())
            .collect();
        rs::oec_decode_batch(degree, t, &xs, &columns)
    } else {
        let mut out = Vec::with_capacity(count);
        for idx in 0..count {
            let pts: Vec<(Fp, Fp)> = received
                .iter()
                .filter_map(|(&p, v)| v.get(idx).map(|&s| (alpha(p), s)))
                .collect();
            out.push(rs::oec_decode(degree, t, &pts)?);
        }
        Some(out)
    }
}

impl OpeningManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts the public reconstruction of a batch of values by sending this
    /// party's shares to everyone under the given tag.
    pub fn open(&mut self, ctx: &mut Context<'_, Msg>, tag: u32, my_shares: Vec<Fp>) {
        if self.my_batches.contains_key(&tag) {
            return;
        }
        self.my_batches.insert(tag, my_shares.len());
        ctx.broadcast(Msg::Open {
            tag,
            values: my_shares,
        });
    }

    /// Records a received `Open` message.
    pub fn on_open(&mut self, from: PartyId, tag: u32, values: Vec<Fp>) {
        self.received
            .entry(tag)
            .or_default()
            .entry(from)
            .or_insert(values);
    }

    /// Runs the shared decode pipeline for `tag` (early-outs, failed-attempt
    /// memo) and returns the decoded polynomials on first success.
    fn decode(
        &mut self,
        tag: u32,
        count: usize,
        degree: usize,
        t: usize,
    ) -> Option<Vec<Polynomial>> {
        let received = self.received.get(&tag)?;
        // `OEC(d, t, ·)` cannot succeed on fewer than `d + t + 1` points
        // (see `rs::oec_decode`); bail out before building the per-value
        // columns — reconstruction is re-attempted on every delivery, so
        // this early exit runs on the hot path of every opening round.
        if received.len() < degree + t + 1 {
            return None;
        }
        if self.last_attempt.get(&tag) == Some(&received.len()) {
            return None;
        }
        match decode_polys(received, count, degree, t) {
            Some(polys) => {
                self.last_attempt.remove(&tag);
                Some(polys)
            }
            None => {
                self.last_attempt.insert(tag, received.len());
                None
            }
        }
    }

    /// Attempts to reconstruct the batch under `tag` (containing `count`
    /// values, each shared with degree `degree` and at most `t` corrupt
    /// shares). Returns the secrets (the value of each sharing polynomial at
    /// `0`). Results are cached once successful.
    pub fn try_reconstruct(
        &mut self,
        tag: u32,
        count: usize,
        degree: usize,
        t: usize,
    ) -> Option<&[Fp]> {
        if !self.opened.contains_key(&tag) {
            let polys = self.decode(tag, count, degree, t)?;
            let out = polys.iter().map(|p| p.constant_term()).collect();
            self.opened.insert(tag, out);
        }
        self.opened.get(&tag).map(Vec::as_slice)
    }

    /// Attempts to reconstruct the batch under `tag` and evaluate every
    /// decoded polynomial at each of the given public `points` — the packed
    /// opening: one tag carries a whole ℓ-block, and the slot points unpack
    /// it into `count · points.len()` public values.
    ///
    /// The result is flattened value-major: entry `v · points.len() + k` is
    /// value `v` evaluated at `points[k]`. Cached once successful (under the
    /// same cache as [`OpeningManager::try_reconstruct`] — do not mix
    /// flavours on one tag).
    pub fn try_reconstruct_at(
        &mut self,
        tag: u32,
        count: usize,
        degree: usize,
        t: usize,
        points: &[Fp],
    ) -> Option<&[Fp]> {
        if !self.opened.contains_key(&tag) {
            let polys = self.decode(tag, count, degree, t)?;
            let mut out = Vec::with_capacity(count * points.len());
            for poly in &polys {
                out.extend(points.iter().map(|&x| poly.evaluate(x)));
            }
            self.opened.insert(tag, out);
        }
        self.opened.get(&tag).map(Vec::as_slice)
    }

    /// The reconstructed batch, if already available.
    pub fn get(&self, tag: u32) -> Option<&[Fp]> {
        self.opened.get(&tag).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_algebra::evaluation_points::slot;
    use mpc_algebra::{shamir, PackedDomain};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_batch_with_corrupt_share() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 7;
        let t = 2;
        let s1 = shamir::share(&mut rng, Fp::from_u64(11), t, n);
        let s2 = shamir::share(&mut rng, Fp::from_u64(22), t, n);
        let mut mgr = OpeningManager::new();
        for p in 0..n {
            let mut values = vec![s1.shares[p], s2.shares[p]];
            if p == 3 {
                values[0] += Fp::from_u64(5); // corrupt share
            }
            mgr.on_open(p, 7, values);
        }
        let out = mgr.try_reconstruct(7, 2, t, t).unwrap().to_vec();
        assert_eq!(out, vec![Fp::from_u64(11), Fp::from_u64(22)]);
    }

    #[test]
    fn insufficient_shares_return_none() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 7;
        let t = 2;
        let s = shamir::share(&mut rng, Fp::from_u64(9), t, n);
        let mut mgr = OpeningManager::new();
        for p in 0..3 {
            mgr.on_open(p, 1, vec![s.shares[p]]);
        }
        assert!(mgr.try_reconstruct(1, 1, t, t).is_none());
    }

    #[test]
    fn reconstruct_at_unpacks_slot_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let (n, ts, ell) = (8, 1, 3);
        let dom = PackedDomain::get(n, ell);
        let degree = ts + ell - 1;
        let va: Vec<Fp> = (0..ell as u64).map(|v| Fp::from_u64(100 + v)).collect();
        let vb: Vec<Fp> = (0..ell as u64).map(|v| Fp::from_u64(200 + v)).collect();
        let sa = dom.share(&mut rng, &va, ts);
        let sb = dom.share(&mut rng, &vb, ts);
        let mut mgr = OpeningManager::new();
        for p in 0..n {
            let mut values = vec![sa.shares[p], sb.shares[p]];
            if p == 5 {
                values[1] += Fp::from_u64(3); // corrupt share, within OEC budget
            }
            mgr.on_open(p, 9, values);
        }
        let slots: Vec<Fp> = (0..ell).map(slot).collect();
        let out = mgr
            .try_reconstruct_at(9, 2, degree, ts, &slots)
            .unwrap()
            .to_vec();
        assert_eq!(out[..ell], va[..]);
        assert_eq!(out[ell..], vb[..]);
    }

    #[test]
    fn failed_attempts_are_memoised_until_new_senders_arrive() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 7;
        let t = 2;
        let s = shamir::share(&mut rng, Fp::from_u64(77), t, n);
        let mut mgr = OpeningManager::new();
        // d + t + 1 = 5 senders, but two of them lie → decode fails.
        for p in 0..5 {
            let mut v = vec![s.shares[p]];
            if p < 2 {
                v[0] += Fp::from_u64(1);
            }
            mgr.on_open(p, 11, v);
        }
        assert!(mgr.try_reconstruct(11, 1, t, t).is_none());
        assert_eq!(mgr.last_attempt.get(&11), Some(&5));
        // Same sender set → memoised early-out (no state change).
        assert!(mgr.try_reconstruct(11, 1, t, t).is_none());
        // Two more honest senders → retry succeeds.
        for p in 5..7 {
            mgr.on_open(p, 11, vec![s.shares[p]]);
        }
        assert_eq!(
            mgr.try_reconstruct(11, 1, t, t),
            Some(&[Fp::from_u64(77)][..])
        );
        assert!(!mgr.last_attempt.contains_key(&11));
    }
}
