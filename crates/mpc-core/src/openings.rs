//! Robust public reconstruction of `t_s`-shared values.
//!
//! Beaver's protocol, the triple-verification steps of `Π_TripSh` and the
//! output phase of `Π_CirEval` all publicly reconstruct shared values: every
//! party sends its share to everyone and applies `OEC(t_s, t_s, P)` on what it
//! receives. [`OpeningManager`] tracks any number of such reconstructions in
//! parallel, keyed by a deterministic tag agreed implicitly by all parties.

use std::collections::{BTreeMap, HashMap};

use mpc_algebra::evaluation_points::alpha;
use mpc_algebra::{rs, Fp};
use mpc_net::{Context, PartyId};
use mpc_protocols::Msg;

/// Tracks concurrent public reconstructions of batches of shared values.
#[derive(Debug, Default)]
pub struct OpeningManager {
    received: HashMap<u32, BTreeMap<PartyId, Vec<Fp>>>,
    opened: HashMap<u32, Vec<Fp>>,
    my_batches: HashMap<u32, usize>,
}

impl OpeningManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts the public reconstruction of a batch of values by sending this
    /// party's shares to everyone under the given tag.
    pub fn open(&mut self, ctx: &mut Context<'_, Msg>, tag: u32, my_shares: Vec<Fp>) {
        if self.my_batches.contains_key(&tag) {
            return;
        }
        self.my_batches.insert(tag, my_shares.len());
        ctx.broadcast(Msg::Open {
            tag,
            values: my_shares,
        });
    }

    /// Records a received `Open` message.
    pub fn on_open(&mut self, from: PartyId, tag: u32, values: Vec<Fp>) {
        self.received
            .entry(tag)
            .or_default()
            .entry(from)
            .or_insert(values);
    }

    /// Attempts to reconstruct the batch under `tag` (containing `count`
    /// values, each shared with degree `degree` and at most `t` corrupt
    /// shares). Results are cached once successful.
    ///
    /// When every sender supplied a full batch (the honest-sender common
    /// case) all `count` values share one evaluation-point vector, so the
    /// OEC interpolate-and-verify basis is built once for the whole batch
    /// ([`rs::oec_decode_batch`]); ragged (Byzantine-shortened) batches fall
    /// back to the per-value loop.
    pub fn try_reconstruct(
        &mut self,
        tag: u32,
        count: usize,
        degree: usize,
        t: usize,
    ) -> Option<&Vec<Fp>> {
        if !self.opened.contains_key(&tag) {
            let received = self.received.get(&tag)?;
            // `OEC(d, t, ·)` cannot succeed on fewer than `d + t + 1` points
            // (see `rs::oec_decode`); bail out before building the per-value
            // columns — reconstruction is re-attempted on every delivery, so
            // this early exit runs on the hot path of every opening round.
            if received.len() < degree + t + 1 {
                return None;
            }
            let out = if count > 0 && received.values().all(|v| v.len() >= count) {
                let xs: Vec<Fp> = received.keys().map(|&p| alpha(p)).collect();
                let columns: Vec<Vec<Fp>> = (0..count)
                    .map(|idx| received.values().map(|v| v[idx]).collect())
                    .collect();
                let polys = rs::oec_decode_batch(degree, t, &xs, &columns)?;
                polys.iter().map(|p| p.constant_term()).collect()
            } else {
                let mut out = Vec::with_capacity(count);
                for idx in 0..count {
                    let pts: Vec<(Fp, Fp)> = received
                        .iter()
                        .filter_map(|(&p, v)| v.get(idx).map(|&s| (alpha(p), s)))
                        .collect();
                    let poly = rs::oec_decode(degree, t, &pts)?;
                    out.push(poly.constant_term());
                }
                out
            };
            self.opened.insert(tag, out);
        }
        self.opened.get(&tag)
    }

    /// The reconstructed batch, if already available.
    pub fn get(&self, tag: u32) -> Option<&Vec<Fp>> {
        self.opened.get(&tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_algebra::shamir;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_batch_with_corrupt_share() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 7;
        let t = 2;
        let s1 = shamir::share(&mut rng, Fp::from_u64(11), t, n);
        let s2 = shamir::share(&mut rng, Fp::from_u64(22), t, n);
        let mut mgr = OpeningManager::new();
        for p in 0..n {
            let mut values = vec![s1.shares[p], s2.shares[p]];
            if p == 3 {
                values[0] += Fp::from_u64(5); // corrupt share
            }
            mgr.on_open(p, 7, values);
        }
        let out = mgr.try_reconstruct(7, 2, t, t).unwrap().clone();
        assert_eq!(out, vec![Fp::from_u64(11), Fp::from_u64(22)]);
    }

    #[test]
    fn insufficient_shares_return_none() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 7;
        let t = 2;
        let s = shamir::share(&mut rng, Fp::from_u64(9), t, n);
        let mut mgr = OpeningManager::new();
        for p in 0..3 {
            mgr.on_open(p, 1, vec![s.shares[p]]);
        }
        assert!(mgr.try_reconstruct(1, 1, t, t).is_none());
    }
}
