//! Static packed-evaluation plan: how a circuit maps onto width-`ℓ` SIMD
//! gate blocks.
//!
//! The packed engine ([`crate::CirEval`] with `MpcBuilder::packing ≥ 1`)
//! evaluates each multiplication layer of [`Circuit::layers`] in blocks of
//! `ℓ` gates sharing one Beaver opening. Everything the parties must agree
//! on *before* any message flows — which gate sits in which slot, which
//! slot-positioned sharings each value needs, and how a dealer's
//! [`mpc_protocols::Msg::PackedDeal`] payload is laid out — is derived
//! deterministically from the circuit alone by [`PackedPlan::new`], so the
//! plan never travels on the wire.
//!
//! The key structure is the affine *wire decomposition*: every wire of an
//! arithmetic circuit is an affine combination of a small basis — the input
//! wires and the multiplication-gate outputs ([`BasisElem`]) — because all
//! other gates are linear. The packed engine therefore only needs
//! slot-positioned sharings of basis values: a wire's share *at any
//! position* is the same affine combination of the basis shares at that
//! position ([`LinComb`]), computed locally.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mpc_algebra::evaluation_points::slot;
use mpc_algebra::Fp;
use mpc_net::PartyId;

use crate::circuit::{Circuit, Gate};

/// A position at which a slot-form sharing of a basis value is needed.
///
/// The `Ord` derive fixes the canonical order of every position list (and
/// hence of the [`mpc_protocols::Msg::PackedDeal`] payload layout): slot
/// positions first, ascending, then the standard secret position `0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pos {
    /// The secret-slot point `e_k` ([`slot`]): needed when the value feeds
    /// slot `k` of some multiplication block (or occupies it).
    Slot(usize),
    /// The standard secret position `x = 0`: needed when the value is in the
    /// affine cone of the circuit output.
    Zero,
}

/// The field point a [`Pos`] denotes.
pub fn point(pos: Pos) -> Fp {
    match pos {
        Pos::Slot(k) => slot(k),
        Pos::Zero => Fp::ZERO,
    }
}

/// Basis element of the affine wire decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum BasisElem {
    /// The input wire of party `j`.
    Input(usize),
    /// The output of the multiplication gate with this gate index.
    MulOut(usize),
}

/// An affine combination `constant + Σ coeff · basis` over [`BasisElem`]s.
///
/// Zero coefficients are never stored, so iteration over `terms` visits
/// exactly the basis values the wire actually depends on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinComb {
    /// Basis coefficients (deterministic iteration order).
    pub terms: BTreeMap<BasisElem, Fp>,
    /// The affine constant.
    pub constant: Fp,
}

impl LinComb {
    /// The combination `1 · elem`.
    pub fn basis(elem: BasisElem) -> Self {
        LinComb {
            terms: BTreeMap::from([(elem, Fp::ONE)]),
            constant: Fp::ZERO,
        }
    }

    /// The constant combination.
    pub fn constant(c: Fp) -> Self {
        LinComb {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    fn merge(&self, other: &LinComb, sign: Fp) -> LinComb {
        let mut out = self.clone();
        out.constant += sign * other.constant;
        for (&elem, &c) in &other.terms {
            let entry = out.terms.entry(elem).or_insert(Fp::ZERO);
            *entry += sign * c;
            if entry.is_zero() {
                out.terms.remove(&elem);
            }
        }
        out
    }

    /// `self + other`.
    pub fn add(&self, other: &LinComb) -> LinComb {
        self.merge(other, Fp::ONE)
    }

    /// `self − other`.
    pub fn sub(&self, other: &LinComb) -> LinComb {
        self.merge(other, -Fp::ONE)
    }

    /// `c · self`.
    pub fn scale(&self, c: Fp) -> LinComb {
        if c.is_zero() {
            return LinComb::default();
        }
        LinComb {
            terms: self.terms.iter().map(|(&e, &v)| (e, c * v)).collect(),
            constant: c * self.constant,
        }
    }

    /// `self + c`.
    pub fn add_const(&self, c: Fp) -> LinComb {
        let mut out = self.clone();
        out.constant += c;
        out
    }
}

/// One width-`ℓ` SIMD block of a multiplication layer.
#[derive(Clone, Debug)]
pub struct PackedBlock {
    /// Global block index (tags, dealer assignment).
    pub index: usize,
    /// Multiplication layer this block belongs to.
    pub layer: usize,
    /// Gate index occupying each slot; `None` is a padding slot (the dealer
    /// still deals a random triple there so the packed masks are uniform).
    pub slots: Vec<Option<usize>>,
}

/// The full static plan for packed evaluation of one circuit at width `ℓ`.
#[derive(Clone, Debug)]
pub struct PackedPlan {
    /// Packing width `ℓ`.
    pub ell: usize,
    /// Blocks grouped by multiplication layer (same order as
    /// [`Circuit::layers`]).
    pub layers: Vec<Vec<PackedBlock>>,
    /// Total number of blocks across all layers.
    pub n_blocks: usize,
    /// Affine decomposition of every wire (indexed by gate).
    pub wire_combos: Vec<LinComb>,
    /// `positions[block][slot]`: the sorted position set the block dealer
    /// deals that slot's triple at — always contains the slot's own point;
    /// plus every consumer slot of the gate's output and `0` if the output
    /// is in the circuit-output cone.
    pub positions: Vec<Vec<Vec<Pos>>>,
    /// `input_positions[j]`: sorted slot positions party `j`'s input value
    /// is consumed at (the `0` position is covered by the ACS input sharing
    /// and never appears here).
    pub input_positions: Vec<Vec<Pos>>,
}

impl PackedPlan {
    /// Builds the plan for `circuit` at width `ell ≥ 1`.
    pub fn new(circuit: &Circuit, ell: usize) -> Self {
        assert!(ell >= 1, "packing width must be at least 1");
        let gates = circuit.gates();
        // Forward pass: affine decomposition of every wire. Gates are stored
        // topologically, so operand combos always precede their consumers.
        let mut wire_combos: Vec<LinComb> = Vec::with_capacity(gates.len());
        for (g, gate) in gates.iter().enumerate() {
            let combo = match *gate {
                Gate::Input(i) => LinComb::basis(BasisElem::Input(i)),
                Gate::Constant(c) => LinComb::constant(c),
                Gate::Add(a, b) => wire_combos[a.0].add(&wire_combos[b.0]),
                Gate::Sub(a, b) => wire_combos[a.0].sub(&wire_combos[b.0]),
                Gate::MulConst(a, c) => wire_combos[a.0].scale(c),
                Gate::AddConst(a, c) => wire_combos[a.0].add_const(c),
                Gate::Mul(_, _) => LinComb::basis(BasisElem::MulOut(g)),
            };
            wire_combos.push(combo);
        }
        // Chunk every multiplication layer into ℓ-wide blocks.
        let mut layers = Vec::new();
        let mut n_blocks = 0usize;
        let mut gate_slot: HashMap<usize, (usize, usize)> = HashMap::new();
        for (l, layer) in circuit.layers().iter().enumerate() {
            let mut blocks = Vec::new();
            for chunk in layer.chunks(ell) {
                let mut slots: Vec<Option<usize>> = chunk.iter().map(|&g| Some(g)).collect();
                slots.resize(ell, None);
                for (k, s) in slots.iter().enumerate() {
                    if let Some(g) = s {
                        gate_slot.insert(*g, (n_blocks, k));
                    }
                }
                blocks.push(PackedBlock {
                    index: n_blocks,
                    layer: l,
                    slots,
                });
                n_blocks += 1;
            }
            layers.push(blocks);
        }
        // Position sets. Every slot needs its own point (packed masks);
        // every basis value feeding a multiplication operand needs that
        // consumer's slot point; output-cone multiplication outputs need 0.
        let mut pos_sets: Vec<Vec<BTreeSet<Pos>>> = vec![vec![BTreeSet::new(); ell]; n_blocks];
        let mut input_sets: Vec<BTreeSet<Pos>> = vec![BTreeSet::new(); circuit.n_inputs()];
        for layer in &layers {
            for blk in layer {
                for k in 0..ell {
                    pos_sets[blk.index][k].insert(Pos::Slot(k));
                    let Some(g) = blk.slots[k] else { continue };
                    let Gate::Mul(a, b) = gates[g] else {
                        unreachable!("mult layers only contain Mul gates")
                    };
                    for w in [a.0, b.0] {
                        for &elem in wire_combos[w].terms.keys() {
                            match elem {
                                BasisElem::Input(j) => {
                                    input_sets[j].insert(Pos::Slot(k));
                                }
                                BasisElem::MulOut(g2) => {
                                    let (b2, k2) = gate_slot[&g2];
                                    pos_sets[b2][k2].insert(Pos::Slot(k));
                                }
                            }
                        }
                    }
                }
            }
        }
        for &elem in wire_combos[circuit.output().0].terms.keys() {
            if let BasisElem::MulOut(g) = elem {
                let (b2, k2) = gate_slot[&g];
                pos_sets[b2][k2].insert(Pos::Zero);
            }
        }
        PackedPlan {
            ell,
            layers,
            n_blocks,
            wire_combos,
            positions: pos_sets
                .into_iter()
                .map(|slots| slots.into_iter().map(|s| s.into_iter().collect()).collect())
                .collect(),
            input_positions: input_sets
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
        }
    }

    /// The party dealing `block`'s triples: the common subset `cs1` (sorted)
    /// round-robin by block index. `cs1` is never empty (`|CS₁| ≥ n − t_s`).
    pub fn assigned_dealer(&self, block: usize, cs1: &[PartyId]) -> PartyId {
        cs1[block % cs1.len()]
    }

    /// All block indices assigned to `party` under `cs1`, ascending.
    pub fn blocks_of(&self, party: PartyId, cs1: &[PartyId]) -> Vec<usize> {
        (0..self.n_blocks)
            .filter(|&b| self.assigned_dealer(b, cs1) == party)
            .collect()
    }

    /// Field elements of `block`'s section in its dealer's deal payload:
    /// three components per dealt position of every slot.
    pub fn block_deal_len(&self, block: usize) -> usize {
        self.positions[block].iter().map(|p| 3 * p.len()).sum()
    }

    /// Exact per-recipient length of sender `s`'s deal payload under `cs1`:
    /// the input section (one element per consumed input position, present
    /// only for members of `cs1` — everyone substitutes the all-zero sharing
    /// for excluded inputs) followed by the sections of `s`'s assigned
    /// blocks, plus one trailing *probe mask* share (a fresh random `t_s`
    /// sharing that blinds the public degree-consistency probe of the deal —
    /// see `CirEval::parse_deal`). A sender with no inputs or blocks to deal
    /// has expected length 0 and sends nothing (no mask either).
    pub fn expected_deal_len(&self, s: PartyId, cs1: &[PartyId]) -> usize {
        let mut len = 0;
        if cs1.contains(&s) {
            len += self.input_positions[s].len();
        }
        len += self
            .blocks_of(s, cs1)
            .iter()
            .map(|&b| self.block_deal_len(b))
            .sum::<usize>();
        if len > 0 {
            len += 1;
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// in0·in1, (in0·in1)·in2, output = that + in3.
    fn two_layer_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        let m1 = c.mul(c.input(0), c.input(1));
        let m2 = c.mul(m1, c.input(2));
        let out = c.add(m2, c.input(3));
        c.set_output(out);
        c
    }

    #[test]
    fn wire_combos_decompose_linear_gates() {
        let c = two_layer_circuit();
        let plan = PackedPlan::new(&c, 2);
        // Output = MulOut(m2) + Input(3).
        let out = &plan.wire_combos[c.output().0];
        assert_eq!(out.constant, Fp::ZERO);
        assert_eq!(out.terms.len(), 2);
        assert!(out.terms.keys().any(|e| matches!(e, BasisElem::MulOut(_))));
        assert!(out.terms.keys().any(|e| *e == BasisElem::Input(3)));
    }

    #[test]
    fn blocks_pad_to_width_and_positions_cover_usage() {
        let c = two_layer_circuit();
        let plan = PackedPlan::new(&c, 2);
        assert_eq!(plan.layers.len(), 2);
        assert_eq!(plan.n_blocks, 2);
        // Each layer has one mult → one block with a padding slot.
        for layer in &plan.layers {
            assert_eq!(layer.len(), 1);
            assert_eq!(layer[0].slots.len(), 2);
            assert!(layer[0].slots[0].is_some());
            assert!(layer[0].slots[1].is_none());
            // Padding slot still deals at its own point.
            assert_eq!(plan.positions[layer[0].index][1], vec![Pos::Slot(1)]);
        }
        // m1 feeds slot 0 of the layer-1 block → its positions contain its
        // own slot and the consumer slot (both Slot(0) here), no Zero (m1 is
        // not in the output cone).
        let m1_pos = &plan.positions[plan.layers[0][0].index][0];
        assert_eq!(m1_pos, &vec![Pos::Slot(0)]);
        // m2 is in the output cone → own slot + Zero.
        let m2_pos = &plan.positions[plan.layers[1][0].index][0];
        assert_eq!(m2_pos, &vec![Pos::Slot(0), Pos::Zero]);
        // Inputs 0,1,2 feed multiplication slots; input 3 only the output.
        assert_eq!(plan.input_positions[0], vec![Pos::Slot(0)]);
        assert_eq!(plan.input_positions[1], vec![Pos::Slot(0)]);
        assert_eq!(plan.input_positions[2], vec![Pos::Slot(0)]);
        assert!(plan.input_positions[3].is_empty());
    }

    #[test]
    fn deal_lengths_are_consistent_across_views() {
        let c = Circuit::layered(6, 5, 3);
        let plan = PackedPlan::new(&c, 4);
        let cs1: Vec<PartyId> = vec![0, 2, 3, 4, 5];
        // Every block has exactly one dealer; section lengths add up.
        let total: usize = (0..plan.n_blocks).map(|b| plan.block_deal_len(b)).sum();
        let by_dealer: usize = (0..6)
            .map(|p| {
                plan.blocks_of(p, &cs1)
                    .iter()
                    .map(|&b| plan.block_deal_len(b))
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(total, by_dealer);
        for p in 0..6 {
            let inp = if cs1.contains(&p) {
                plan.input_positions[p].len()
            } else {
                0
            };
            let blocks: usize = plan
                .blocks_of(p, &cs1)
                .iter()
                .map(|&b| plan.block_deal_len(b))
                .sum();
            let mask = usize::from(inp + blocks > 0);
            assert_eq!(plan.expected_deal_len(p, &cs1), inp + blocks + mask);
        }
        // Dealer assignment is round-robin over cs1.
        assert_eq!(plan.assigned_dealer(0, &cs1), 0);
        assert_eq!(plan.assigned_dealer(1, &cs1), 2);
        assert_eq!(plan.assigned_dealer(cs1.len(), &cs1), 0);
    }

    #[test]
    fn lincomb_algebra() {
        let a = LinComb::basis(BasisElem::Input(0));
        let b = LinComb::basis(BasisElem::Input(1));
        let c = a.scale(Fp::from_u64(3)).add(&b).add_const(Fp::from_u64(7));
        assert_eq!(c.constant, Fp::from_u64(7));
        assert_eq!(c.terms[&BasisElem::Input(0)], Fp::from_u64(3));
        // Cancellation removes the term entirely.
        let d = c.sub(&b);
        assert!(!d.terms.contains_key(&BasisElem::Input(1)));
        let zero = a.sub(&a);
        assert!(zero.terms.is_empty());
        assert_eq!(zero.constant, Fp::ZERO);
    }

    #[test]
    fn point_maps_positions_to_field_points() {
        assert_eq!(point(Pos::Zero), Fp::ZERO);
        assert_eq!(point(Pos::Slot(2)), slot(2));
        assert!(Pos::Slot(0) < Pos::Slot(1));
        assert!(Pos::Slot(9) < Pos::Zero);
    }
}
