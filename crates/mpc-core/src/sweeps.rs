//! Guarantee-checking sweep harness: runs the protocol across a matrix of
//! corruption placements × Byzantine strategies × fault plans × network
//! kinds × backends, and checks every cell against the paper's guarantee
//! matrix.
//!
//! The paper promises, per cell:
//!
//! * **Synchronous network, ≤ `t_s` effective faults** — every honest party
//!   terminates with the correct output (full security).
//! * **Asynchronous network (or a fault plan that breaks the `Δ` bound),
//!   ≤ `t_a` effective faults** — every honest party still terminates with
//!   the correct output (the fallback guarantee).
//! * **Beyond those bounds** — no termination promise, but any output an
//!   honest party *does* produce must be correct and agreed (the harness
//!   never excuses wrong or disagreeing outputs).
//!
//! [`cell_guarantee`] encodes that matrix: it folds the fault plan's
//! crash/omission targets into the effective fault set and decides whether a
//! plan or scheduler preserves the synchronous delivery bound. [`check_cell`]
//! runs one cell on either backend and classifies the outcome as
//! [`Verdict::Correct`], [`Verdict::AdmissibleAbort`] or
//! [`Verdict::Violation`]. Every report serialises to a one-line JSON
//! artifact ([`CellReport::artifact_json`]) carrying the full cell spec
//! including the seed, so a failing cell reproduces bit-identically from the
//! printed line alone ([`negative_control`] proves that property on every
//! sweep).

use crate::builder::MpcBuilder;
use crate::circuit::Circuit;
use mpc_algebra::Fp;
use mpc_net::{
    Backend, ByzantineStrategy, ChannelDeterministic, Crash, EquivocateBroadcast, FaultPlan,
    GarbleBytes, LinkDelays, NetworkKind, PartyId, Passive, SkewedAsyncScheduler, Time, WireEncode,
};
use mpc_protocols::{AcastMsg, BcValue, Msg};
use std::collections::BTreeSet;

/// The behavioural strategy a cell's corrupt parties follow on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// Corrupt parties run the honest protocol unmodified.
    Passive,
    /// Every message of a corrupt sender is dropped (fail-silent).
    Crash,
    /// Payload bytes are randomly flipped (channel-deterministically, so the
    /// strategy behaves identically on both backends).
    Garble,
    /// Broadcasts equivocate: the upper half of the id space receives an
    /// alternative well-formed encoding instead of the real payload.
    Equivocate,
}

impl StrategyKind {
    /// Every strategy, in sweep order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::Passive,
        StrategyKind::Crash,
        StrategyKind::Garble,
        StrategyKind::Equivocate,
    ];

    /// Stable lowercase name used in artifacts and filters.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Passive => "passive",
            StrategyKind::Crash => "crash",
            StrategyKind::Garble => "garble",
            StrategyKind::Equivocate => "equivocate",
        }
    }

    /// Parses [`StrategyKind::name`] back into the strategy.
    pub fn parse(name: &str) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Instantiates the wire-level strategy for one run. `seed` keys the
    /// channel-deterministic wrapper so randomized strategies replay exactly.
    pub fn instantiate(self, seed: u64) -> Box<dyn ByzantineStrategy> {
        match self {
            StrategyKind::Passive => Box::new(Passive),
            StrategyKind::Crash => Box::new(Crash),
            StrategyKind::Garble => Box::new(ChannelDeterministic::new(GarbleBytes, seed)),
            StrategyKind::Equivocate => Box::new(EquivocateBroadcast {
                // A well-formed alternative encoding: an acast of the wrong
                // bit, so equivocation is seen by decoders, not dropped as
                // garbage at the wire boundary.
                alt: Msg::Acast(AcastMsg::Send(BcValue::Bit(true))).encode(),
            }),
        }
    }
}

/// One cell of the sweep matrix: a complete, self-contained run description.
///
/// Everything needed to reproduce the run bit-identically (on the simulator
/// backend) is in this struct, and all of it lands in the JSON artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellSpec {
    /// Number of parties.
    pub n: usize,
    /// Synchronous corruption threshold `t_s`.
    pub ts: usize,
    /// Asynchronous corruption threshold `t_a`.
    pub ta: usize,
    /// Synchronous delivery bound `Δ` (ticks).
    pub delta: Time,
    /// Network model the run executes under.
    pub network: NetworkKind,
    /// Which party runtime executes the cell.
    pub backend: Backend,
    /// Byzantine-corrupt parties (they run the honest code behind
    /// `strategy`'s wire filter, except under [`StrategyKind::Crash`]).
    pub corrupt: Vec<PartyId>,
    /// Wire behaviour of the corrupt parties.
    pub strategy: StrategyKind,
    /// Named [`FaultPlan::preset`] injected at the transport seam.
    pub fault_preset: String,
    /// Named [`FaultPlan::chaos_preset`] interpreted at the *socket* layer
    /// by the TCP backend's connection supervisors (sever-mid-record,
    /// stall-write, duplicate-byte-run). `"none"`/empty means a clean wire;
    /// ignored on the other backends. Chaos never changes the guarantee row
    /// — it only roughens the bytes, and the supervisor's
    /// reconnect-with-replay must absorb it.
    pub chaos_preset: String,
    /// Additionally run the classic slow-sender attack: one party's outgoing
    /// links lag far beyond `Δ`, forcing the synchronous-path timeouts to
    /// expire and the asynchronous fallback to carry the run.
    pub slow_sender: bool,
    /// Packing width `ℓ` (0 disables the packed path).
    pub packing: usize,
    /// RNG seed of the run (and of randomized strategies).
    pub seed: u64,
}

impl CellSpec {
    /// Compact human-readable cell label for logs.
    pub fn label(&self) -> String {
        format!(
            "{:?}/{:?}/{}/{}/corrupt{:?}{}{}",
            self.backend,
            self.network,
            if self.fault_preset.is_empty() {
                "none"
            } else {
                &self.fault_preset
            },
            self.strategy.name(),
            self.corrupt,
            if self.slow_sender { "/slow-sender" } else { "" },
            if self.has_chaos() {
                format!("/chaos-{}", self.chaos_preset)
            } else {
                String::new()
            },
        )
    }

    /// True when this cell runs socket chaos (a non-`none` chaos preset on
    /// the TCP backend).
    pub fn has_chaos(&self) -> bool {
        self.backend == Backend::Tcp && !self.chaos_preset.is_empty() && self.chaos_preset != "none"
    }
}

/// What the guarantee matrix promises for one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Guarantee {
    /// Guaranteed output delivery: every honest party must terminate with
    /// the correct output within the horizon.
    MustTerminate,
    /// The effective fault count exceeds the model's threshold: the run may
    /// abort at the horizon, but produced outputs must still be correct.
    MayAbort,
}

/// The effect a named fault preset has on the guarantee matrix:
/// `(extra effective faults, preserves the synchronous Δ bound)`.
///
/// Crashes and inbound omission bursts make their target indistinguishable
/// from a corrupt party, so the target joins the effective fault set.
/// Partitions and unbounded delay bursts deliver everything eventually but
/// break the `Δ` bound, demoting a synchronous run to the asynchronous
/// guarantee row. Duplication is free: delivery stays within `Δ` and adds no
/// faults.
fn preset_effects(preset: &str, n: usize) -> (Vec<PartyId>, bool) {
    match preset {
        "none" | "" => (vec![], true),
        "crash" | "crash-recover" => (vec![n - 1], true),
        "partition-heal" => (vec![], false),
        "dup-burst" => (vec![], true),
        "drop-burst" => (vec![n - 1], true),
        "delay-burst" => (vec![], false),
        other => panic!("unknown fault preset {other:?}"),
    }
}

/// True when the cell's run is governed by the synchronous row of the
/// guarantee matrix: a synchronous network, a `Δ`-preserving fault preset
/// and no slow-sender scheduler.
pub fn is_sync_model(spec: &CellSpec) -> bool {
    let (_, sync_preserving) = preset_effects(&spec.fault_preset, spec.n);
    spec.network == NetworkKind::Synchronous && sync_preserving && !spec.slow_sender
}

/// Evaluates the paper's guarantee matrix for `spec`.
///
/// Under the synchronous model ([`is_sync_model`]) the fault threshold is
/// `t_s`, otherwise `t_a`. The effective fault set is the corrupt set united
/// with the preset's crash/omission targets.
pub fn cell_guarantee(spec: &CellSpec) -> Guarantee {
    let (extra, _) = preset_effects(&spec.fault_preset, spec.n);
    let mut faulty: BTreeSet<PartyId> = spec.corrupt.iter().copied().collect();
    faulty.extend(extra);
    let bound = if is_sync_model(spec) {
        spec.ts
    } else {
        spec.ta
    };
    if faulty.len() <= bound {
        Guarantee::MustTerminate
    } else {
        Guarantee::MayAbort
    }
}

/// Outcome of checking one cell against the guarantee matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All honest parties terminated with the correct, common output (and
    /// the cell's side conditions — e.g. slow-sender timeout engagement —
    /// held).
    Correct,
    /// The run aborted, but the cell had no termination guarantee; the
    /// payload carries the abort reason.
    AdmissibleAbort(String),
    /// A guarantee was violated; the payload says which.
    Violation(String),
}

/// One checked cell: the spec, what was promised, and what happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellReport {
    /// The cell that ran.
    pub spec: CellSpec,
    /// What the guarantee matrix promised.
    pub guarantee: Guarantee,
    /// What actually happened.
    pub verdict: Verdict,
    /// Tick at which the last honest party terminated (`None` on abort) —
    /// the sweep's worst case is the paper's "completion time" figure.
    pub finished_at: Option<Time>,
    /// Protocol timers that expired during the run (both backends count
    /// these identically); slow-sender cells assert this is non-zero.
    pub timeouts_fired: u64,
    /// Connections the TCP supervisors re-established during the run (0 on
    /// the other backends); sever-chaos cells assert this is non-zero — the
    /// cell must prove the chaos actually engaged, not merely that the run
    /// survived a clean wire.
    pub reconnects: u64,
}

impl CellReport {
    /// True when the cell violated its guarantee.
    pub fn is_violation(&self) -> bool {
        matches!(self.verdict, Verdict::Violation(_))
    }

    /// One-line JSON artifact: the full cell spec (including the seed) plus
    /// the verdict, machine-readable and sufficient to reproduce the run.
    pub fn artifact_json(&self) -> String {
        let s = &self.spec;
        let corrupt: Vec<String> = s.corrupt.iter().map(|p| p.to_string()).collect();
        let (verdict, detail) = match &self.verdict {
            Verdict::Correct => ("correct", String::new()),
            Verdict::AdmissibleAbort(d) => ("admissible-abort", d.clone()),
            Verdict::Violation(d) => ("violation", d.clone()),
        };
        format!(
            concat!(
                "{{\"n\":{},\"ts\":{},\"ta\":{},\"delta\":{},",
                "\"network\":\"{:?}\",\"backend\":\"{:?}\",\"corrupt\":[{}],",
                "\"strategy\":\"{}\",\"fault_preset\":\"{}\",\"chaos_preset\":\"{}\",",
                "\"slow_sender\":{},",
                "\"packing\":{},\"seed\":{},\"guarantee\":\"{:?}\",",
                "\"verdict\":\"{}\",\"detail\":\"{}\",\"finished_at\":{},",
                "\"timeouts_fired\":{},\"reconnects\":{}}}"
            ),
            s.n,
            s.ts,
            s.ta,
            s.delta,
            s.network,
            s.backend,
            corrupt.join(","),
            s.strategy.name(),
            s.fault_preset,
            s.chaos_preset,
            s.slow_sender,
            s.packing,
            s.seed,
            self.guarantee,
            verdict,
            // The details are our own fixed strings plus numbers, but keep
            // the line valid JSON even if one ever grows a quote.
            detail.replace('\\', "\\\\").replace('"', "\\\""),
            self.finished_at
                .map_or("null".to_string(), |t| t.to_string()),
            self.timeouts_fired,
            self.reconnects,
        )
    }
}

/// Runs one cell and checks the produced outputs against the circuit's
/// clear evaluation over the run's agreed input subset `CS` (parties outside
/// `CS` contribute the default input `0`, exactly as `Π_CirEval` does),
/// shifted by `tamper`.
///
/// `tamper` exists so the harness can test *itself*: any non-zero value
/// injects a violation whose artifact must reproduce bit-identically (see
/// [`negative_control`]). Real sweeps pass [`Fp::ZERO`].
pub fn check_cell_against(
    spec: &CellSpec,
    circuit: &Circuit,
    inputs: &[u64],
    tamper: Fp,
) -> CellReport {
    let plan = FaultPlan::preset(&spec.fault_preset, spec.n, spec.delta)
        .unwrap_or_else(|| panic!("unknown fault preset {:?}", spec.fault_preset));
    let mut b = MpcBuilder::new(spec.n, spec.ts, spec.ta)
        .network(spec.network)
        .delta(spec.delta)
        .seed(spec.seed)
        .inputs(inputs)
        .corrupt(&spec.corrupt)
        .transport(spec.backend)
        .fault_plan(plan)
        .packing(spec.packing);
    if !spec.corrupt.is_empty() {
        b = b.byzantine_strategy(spec.strategy.instantiate(spec.seed));
    }
    if spec.has_chaos() {
        let chaos = FaultPlan::chaos_preset(&spec.chaos_preset, spec.n, spec.delta)
            .unwrap_or_else(|| panic!("unknown chaos preset {:?}", spec.chaos_preset));
        b = b.chaos_plan(chaos);
    }
    if spec.slow_sender {
        // The classic attack on the synchronous path: one sender's links lag
        // far beyond Δ. On the simulator this is an adversarial scheduler;
        // the thread-per-party backends freeze the same shape into a latency
        // matrix.
        match spec.backend {
            Backend::Simulator => {
                b = b.scheduler(Box::new(SkewedAsyncScheduler {
                    slowed_senders: vec![spec.seed as usize % spec.n],
                    lag: 20 * spec.delta,
                    fast: spec.delta,
                }));
            }
            Backend::Threaded | Backend::Tcp => {
                b = b.link_delays(LinkDelays::asynchronous(spec.n, spec.delta, spec.seed));
            }
        }
    }
    if spec.backend != Backend::Simulator {
        // Real-time runs: shrink the tick so cells that wait out long fault
        // windows (or the full horizon) stay within wall-clock budget.
        b = b.tick_micros(100);
    }
    let guarantee = cell_guarantee(spec);
    match b.run(circuit) {
        Ok(result) => {
            // The protocol computes f over the agreed subset CS: parties
            // outside CS contribute the default input 0.
            let masked: Vec<Fp> = inputs
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    if result.input_subset.contains(&i) {
                        Fp::from_u64(v)
                    } else {
                        Fp::ZERO
                    }
                })
                .collect();
            let expected = circuit.evaluate_clear(&masked) + tamper;
            let (plan_faulty, _) = preset_effects(&spec.fault_preset, spec.n);
            let mut verdict = Verdict::Correct;
            // Π_ACS guarantees |CS| ≥ n − t_s in either model…
            if result.input_subset.len() < spec.n - spec.ts {
                verdict = Verdict::Violation(format!(
                    "input subset {:?} smaller than n - t_s",
                    result.input_subset
                ));
            }
            // …and under the synchronous model every honest party that the
            // fault plan leaves alive gets its input in.
            if verdict == Verdict::Correct && is_sync_model(spec) {
                if let Some(left_out) = (0..spec.n).find(|i| {
                    !spec.corrupt.contains(i)
                        && !plan_faulty.contains(i)
                        && !result.input_subset.contains(i)
                }) {
                    verdict = Verdict::Violation(format!(
                        "synchronous run excluded honest party {left_out}'s input"
                    ));
                }
            }
            for i in (0..spec.n).filter(|i| !spec.corrupt.contains(i)) {
                if verdict != Verdict::Correct {
                    break;
                }
                match result.outputs[i] {
                    Some(y) if y == expected => {}
                    Some(y) => {
                        verdict = Verdict::Violation(format!(
                            "honest party {i} output {} != expected {}",
                            y.as_u64(),
                            expected.as_u64()
                        ));
                    }
                    // A plan-crashed party is one of the tolerated faults:
                    // it is not owed an output (but any output it does
                    // produce is held to agreement above).
                    None if plan_faulty.contains(&i) => {}
                    None => {
                        verdict = Verdict::Violation(format!("honest party {i} has no output"));
                    }
                }
            }
            if verdict == Verdict::Correct && spec.slow_sender && result.metrics.timeouts_fired == 0
            {
                verdict = Verdict::Violation(
                    "slow-sender cell fired no timeouts: the attack never \
                     engaged the fallback path"
                        .to_string(),
                );
            }
            // A sever-chaos cell that never reconnected did not test what it
            // claims to test: the chaos shim must demonstrably have torn
            // connections that the supervisors then re-established.
            if verdict == Verdict::Correct
                && spec.has_chaos()
                && spec.chaos_preset == "sever"
                && result.metrics.reconnects == 0
            {
                verdict = Verdict::Violation(
                    "sever-chaos cell recorded no reconnects: the chaos shim \
                     never engaged the supervisors"
                        .to_string(),
                );
            }
            CellReport {
                spec: spec.clone(),
                guarantee,
                verdict,
                finished_at: Some(result.finished_at),
                timeouts_fired: result.metrics.timeouts_fired,
                reconnects: result.metrics.reconnects,
            }
        }
        Err(e) => {
            let verdict = match guarantee {
                Guarantee::MayAbort => Verdict::AdmissibleAbort(e.to_string()),
                Guarantee::MustTerminate => {
                    Verdict::Violation(format!("cell with guaranteed termination aborted: {e}"))
                }
            };
            CellReport {
                spec: spec.clone(),
                guarantee,
                verdict,
                finished_at: None,
                timeouts_fired: 0,
                reconnects: 0,
            }
        }
    }
}

/// Runs one cell and checks it against the circuit's clear evaluation over
/// the agreed input subset.
pub fn check_cell(spec: &CellSpec, circuit: &Circuit, inputs: &[u64]) -> CellReport {
    check_cell_against(spec, circuit, inputs, Fp::ZERO)
}

/// The sweep's standard workload: a small layered circuit (two
/// multiplication layers) with every party's input on a load-bearing wire,
/// and fixed distinct inputs.
pub fn default_workload(n: usize) -> (Circuit, Vec<u64>) {
    let circuit = Circuit::layered(n, n, 2);
    let inputs: Vec<u64> = (0..n as u64).map(|i| 3 * i + 2).collect();
    (circuit, inputs)
}

/// Fault presets of the default matrix. Each is paired (in
/// [`default_matrix`]) with a corruption placement that keeps the effective
/// fault count within threshold, so every default cell asserts *real
/// termination with the correct output* — not merely a graceful abort.
pub const DEFAULT_PRESETS: [&str; 3] = ["crash", "partition-heal", "dup-burst"];

/// Socket-chaos presets appended to the matrix for the TCP backend (see
/// `FaultPlan::chaos_preset`): connection severed mid-record, write stalled
/// past a wedge-sized deadline, and duplicated byte runs forcing checksum
/// resyncs.
pub const CHAOS_PRESETS: [&str; 3] = ["sever", "stall", "dup-bytes"];

/// Builds the default sweep matrix for the given backends: per backend,
/// {sync, async} × [`DEFAULT_PRESETS`] × [`StrategyKind::ALL`] plus one
/// slow-sender attack cell and one honest-party-crash cell — at `n = 5`,
/// `(t_s, t_a) = (1, 1)`, the smallest best-of-both-worlds operating point
/// with both thresholds positive.
///
/// Corruption placement is chosen per preset so the Byzantine party
/// coincides with the preset's crash/omission target (crash-style presets
/// hit the highest id; the corrupt party is placed there), keeping every
/// cell inside the guarantee region ([`Guarantee::MustTerminate`]).
pub fn default_matrix(backends: &[Backend], seed: u64) -> Vec<CellSpec> {
    let (n, ts, ta, delta) = (5, 1, 1, 10);
    let mut cells = Vec::new();
    for &backend in backends {
        for network in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
            for preset in DEFAULT_PRESETS {
                let corrupt = match preset {
                    "crash" | "crash-recover" | "drop-burst" => vec![n - 1],
                    _ => vec![0],
                };
                for strategy in StrategyKind::ALL {
                    cells.push(CellSpec {
                        n,
                        ts,
                        ta,
                        delta,
                        network,
                        backend,
                        corrupt: corrupt.clone(),
                        strategy,
                        fault_preset: preset.to_string(),
                        chaos_preset: "none".to_string(),
                        slow_sender: false,
                        packing: 0,
                        seed,
                    });
                }
            }
        }
        cells.push(CellSpec {
            n,
            ts,
            ta,
            delta,
            network: NetworkKind::Asynchronous,
            backend,
            corrupt: vec![],
            strategy: StrategyKind::Passive,
            fault_preset: "none".to_string(),
            chaos_preset: "none".to_string(),
            slow_sender: true,
            packing: 0,
            seed,
        });
        // An *honest* party crashing mid-run (no co-located corruption): the
        // crash target spends the t_s budget by itself and is owed no
        // output, but every surviving party must still terminate. This cell
        // regressed once — the builder's completion predicate used to wait
        // for the crashed party's output forever.
        cells.push(CellSpec {
            n,
            ts,
            ta,
            delta,
            network: NetworkKind::Synchronous,
            backend,
            corrupt: vec![],
            strategy: StrategyKind::Passive,
            fault_preset: "crash".to_string(),
            chaos_preset: "none".to_string(),
            slow_sender: false,
            packing: 0,
            seed,
        });
        // The TCP backend gets one extra column per socket-chaos preset: no
        // logical faults, no corruption — a clean protocol run over a hostile
        // wire that the supervisors must fully absorb ("sever" additionally
        // asserts reconnects > 0 in `check_cell_against`).
        if backend == Backend::Tcp {
            for chaos in CHAOS_PRESETS {
                cells.push(CellSpec {
                    n,
                    ts,
                    ta,
                    delta,
                    network: NetworkKind::Synchronous,
                    backend,
                    corrupt: vec![],
                    strategy: StrategyKind::Passive,
                    fault_preset: "none".to_string(),
                    chaos_preset: chaos.to_string(),
                    slow_sender: false,
                    packing: 0,
                    seed,
                });
            }
        }
    }
    cells
}

/// Result of sweeping a matrix of cells.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// One report per cell, in matrix order.
    pub reports: Vec<CellReport>,
}

impl SweepOutcome {
    /// The cells that violated their guarantee.
    pub fn violations(&self) -> Vec<&CellReport> {
        self.reports.iter().filter(|r| r.is_violation()).collect()
    }

    /// Worst-case completion tick over all terminating cells, with the cell
    /// that attained it.
    pub fn worst_finished_at(&self) -> Option<(Time, &CellReport)> {
        self.reports
            .iter()
            .filter_map(|r| r.finished_at.map(|t| (t, r)))
            .max_by_key(|&(t, _)| t)
    }
}

/// Checks every cell of `cells` against `circuit`/`inputs`.
pub fn run_sweep(cells: &[CellSpec], circuit: &Circuit, inputs: &[u64]) -> SweepOutcome {
    SweepOutcome {
        reports: cells
            .iter()
            .map(|c| check_cell(c, circuit, inputs))
            .collect(),
    }
}

/// Negative control for the harness itself: re-checks `spec` against a
/// deliberately shifted expected output. The returned report must be a
/// violation, and calling this twice must yield byte-identical artifacts
/// (bit-exact reproducibility from the printed seed) — [`check_cell`]'s
/// machinery is only trustworthy if an injected failure both trips it and
/// replays exactly.
pub fn negative_control(spec: &CellSpec, circuit: &Circuit, inputs: &[u64]) -> CellReport {
    check_cell_against(spec, circuit, inputs, Fp::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_matrix_logic() {
        let base = CellSpec {
            n: 5,
            ts: 1,
            ta: 1,
            delta: 10,
            network: NetworkKind::Synchronous,
            backend: Backend::Simulator,
            corrupt: vec![0],
            strategy: StrategyKind::Passive,
            fault_preset: "none".to_string(),
            chaos_preset: "none".to_string(),
            slow_sender: false,
            packing: 0,
            seed: 1,
        };
        assert_eq!(cell_guarantee(&base), Guarantee::MustTerminate);

        // Crash preset on top of a *different* corrupt party: two effective
        // faults > t_s — no promise.
        let mut two_faults = base.clone();
        two_faults.fault_preset = "crash".to_string();
        assert_eq!(cell_guarantee(&two_faults), Guarantee::MayAbort);
        // …but co-located with the corruption it stays guaranteed.
        two_faults.corrupt = vec![4];
        assert_eq!(cell_guarantee(&two_faults), Guarantee::MustTerminate);

        // A partition breaks the Δ bound: the sync run drops to the t_a row
        // (still guaranteed here because t_a = 1).
        let mut partitioned = base.clone();
        partitioned.fault_preset = "partition-heal".to_string();
        assert_eq!(cell_guarantee(&partitioned), Guarantee::MustTerminate);
        // With t_a = 0 the same cell loses its guarantee while the plain
        // sync cell keeps it.
        partitioned.ta = 0;
        assert_eq!(cell_guarantee(&partitioned), Guarantee::MayAbort);
        let mut sync_ta0 = base.clone();
        sync_ta0.ta = 0;
        assert_eq!(cell_guarantee(&sync_ta0), Guarantee::MustTerminate);

        // Slow sender likewise demotes to the asynchronous row.
        let mut slow = base.clone();
        slow.slow_sender = true;
        slow.corrupt = vec![];
        assert_eq!(cell_guarantee(&slow), Guarantee::MustTerminate);
        slow.corrupt = vec![0, 1];
        assert_eq!(cell_guarantee(&slow), Guarantee::MayAbort);
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(s.name()), Some(s));
        }
        assert_eq!(StrategyKind::parse("nonsense"), None);
    }

    #[test]
    fn default_matrix_shape_and_guarantees() {
        let cells = default_matrix(&[Backend::Simulator, Backend::Threaded], 7);
        // 2 backends × (2 networks × 3 presets × 4 strategies
        //               + 1 slow-sender + 1 honest-crash)
        assert_eq!(cells.len(), 2 * (2 * 3 * 4 + 2));
        for cell in &cells {
            assert_eq!(
                cell_guarantee(cell),
                Guarantee::MustTerminate,
                "default matrix must stay inside the guarantee region: {}",
                cell.label()
            );
        }
        // The TCP backend gets the same cells plus one per chaos preset;
        // chaos never changes the guarantee row.
        let tcp = default_matrix(&[Backend::Tcp], 7);
        assert_eq!(tcp.len(), 2 * 3 * 4 + 2 + CHAOS_PRESETS.len());
        assert_eq!(tcp.iter().filter(|c| c.has_chaos()).count(), 3);
        for cell in &tcp {
            assert_eq!(cell_guarantee(cell), Guarantee::MustTerminate);
        }
    }

    #[test]
    fn simulator_sweep_subset_has_zero_violations() {
        // A representative single-seed slice of the default matrix: every
        // (network × preset) pair under the strongest strategy, plus the
        // no-corruption cells (slow-sender attack, honest-party crash). The
        // full matrix (all strategies, both backends) runs in the `sweep`
        // bench binary and CI smoke step.
        let (circuit, inputs) = default_workload(5);
        let cells: Vec<CellSpec> = default_matrix(&[Backend::Simulator], 11)
            .into_iter()
            .filter(|c| c.strategy == StrategyKind::Garble || c.corrupt.is_empty())
            .collect();
        assert_eq!(cells.len(), 2 * 3 + 2);
        let outcome = run_sweep(&cells, &circuit, &inputs);
        let violations = outcome.violations();
        assert!(
            violations.is_empty(),
            "violations:\n{}",
            violations
                .iter()
                .map(|r| r.artifact_json())
                .collect::<Vec<_>>()
                .join("\n")
        );
        let slow = outcome
            .reports
            .iter()
            .find(|r| r.spec.slow_sender)
            .expect("matrix has a slow-sender cell");
        assert!(
            slow.timeouts_fired > 0,
            "slow-sender attack must force timeouts"
        );
        let (worst, _) = outcome.worst_finished_at().expect("terminating cells");
        assert!(worst > 0);
    }

    #[test]
    fn one_threaded_cell_checks_out() {
        let (circuit, inputs) = default_workload(5);
        let spec = CellSpec {
            n: 5,
            ts: 1,
            ta: 1,
            delta: 10,
            network: NetworkKind::Synchronous,
            backend: Backend::Threaded,
            corrupt: vec![4],
            strategy: StrategyKind::Equivocate,
            fault_preset: "crash".to_string(),
            chaos_preset: "none".to_string(),
            slow_sender: false,
            packing: 0,
            seed: 13,
        };
        let report = check_cell(&spec, &circuit, &inputs);
        assert_eq!(
            report.verdict,
            Verdict::Correct,
            "{}",
            report.artifact_json()
        );
    }

    #[test]
    fn one_tcp_sever_chaos_cell_checks_out() {
        // A clean protocol run over a wire where every data record out of
        // party 4 is torn mid-record on its first transmission: the
        // supervisors must reconnect and replay through every protocol
        // phase, and the cell verdict additionally requires reconnects > 0.
        let (circuit, inputs) = default_workload(5);
        let spec = CellSpec {
            n: 5,
            ts: 1,
            ta: 1,
            delta: 10,
            network: NetworkKind::Synchronous,
            backend: Backend::Tcp,
            corrupt: vec![],
            strategy: StrategyKind::Passive,
            fault_preset: "none".to_string(),
            chaos_preset: "sever".to_string(),
            slow_sender: false,
            packing: 0,
            seed: 17,
        };
        let report = check_cell(&spec, &circuit, &inputs);
        assert_eq!(
            report.verdict,
            Verdict::Correct,
            "{}",
            report.artifact_json()
        );
        assert!(report.reconnects > 0, "{}", report.artifact_json());
        assert!(report
            .artifact_json()
            .contains("\"chaos_preset\":\"sever\""));
    }

    #[test]
    fn negative_control_reproduces_bit_identically() {
        let (circuit, inputs) = default_workload(5);
        let spec = CellSpec {
            n: 5,
            ts: 1,
            ta: 1,
            delta: 10,
            network: NetworkKind::Synchronous,
            backend: Backend::Simulator,
            corrupt: vec![0],
            strategy: StrategyKind::Passive,
            fault_preset: "dup-burst".to_string(),
            chaos_preset: "none".to_string(),
            slow_sender: false,
            packing: 0,
            seed: 99,
        };
        let first = negative_control(&spec, &circuit, &inputs);
        assert!(first.is_violation(), "{}", first.artifact_json());
        let second = negative_control(&spec, &circuit, &inputs);
        assert_eq!(
            first.artifact_json(),
            second.artifact_json(),
            "an injected violation must replay bit-identically from its seed"
        );
        // The artifact alone reconstructs the spec fields needed to re-run.
        let line = first.artifact_json();
        for needle in [
            "\"seed\":99",
            "\"fault_preset\":\"dup-burst\"",
            "\"verdict\":\"violation\"",
            "\"backend\":\"Simulator\"",
        ] {
            assert!(line.contains(needle), "{line} missing {needle}");
        }
    }
}
