//! Resilience-threshold helpers for experiment E1 (the paper's feasibility
//! landscape, Section 1).
//!
//! * synchronous-only perfectly-secure MPC: `t_s < n/3` \[BGW88\];
//! * asynchronous-only perfectly-secure MPC: `t_a < n/4` \[BCG93\];
//! * best-of-both-worlds (this paper): `t_a ≤ t_s` and `3·t_s + t_a < n`.

pub use mpc_net::adversary::{
    feasible_threshold_pairs, thresholds_feasible, AdversaryStructure, GeneralAdversary,
    ThresholdAdversary,
};

/// One row of the resilience-landscape table of experiment E1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResilienceRow {
    /// Number of parties.
    pub n: usize,
    /// Maximum corruptions of a purely synchronous protocol (`⌈n/3⌉ − 1`).
    pub smpc_ts: usize,
    /// Maximum corruptions of a purely asynchronous protocol (`⌈n/4⌉ − 1`),
    /// which is also what the `t_s = t_a` baseline tolerates in *both*
    /// networks.
    pub ampc_ta: usize,
    /// The best-of-both-worlds operating point `(t_s, t_a)` with maximal
    /// `t_s` and then maximal `t_a` subject to `3·t_s + t_a < n`.
    pub bobw: (usize, usize),
}

/// Maximum packed-sharing width `ℓ` supported at `(n, t_s)`.
///
/// A packed sharing with base degree `t_s` has total degree
/// `d = t_s + ℓ − 1`; robust public reconstruction via `OEC(d, t_s, ·)`
/// needs `n ≥ d + 2·t_s + 1` honest-majority headroom
/// (`mpc_algebra::rs::oec_decode` requires `d + t + 1` points with at most
/// `n − (d + t + 1) ≥ t` of them wrong), i.e. `ℓ ≤ n − 3·t_s`.
/// The best-of-both-worlds feasibility condition `3·t_s + t_a < n`
/// guarantees this is always ≥ 1.
pub fn max_packing_width(n: usize, ts: usize) -> usize {
    n.saturating_sub(3 * ts)
}

/// Builds the resilience landscape for `n` in `[n_min, n_max]`.
pub fn resilience_table(n_min: usize, n_max: usize) -> Vec<ResilienceRow> {
    (n_min..=n_max)
        .map(|n| {
            let smpc_ts = (n - 1) / 3;
            let ampc_ta = (n - 1) / 4;
            let bobw = feasible_threshold_pairs(n)
                .into_iter()
                .max_by_key(|&(ts, ta)| (ts, ta))
                .unwrap_or((0, 0));
            ResilienceRow {
                n,
                smpc_ts,
                ampc_ta,
                bobw,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_n8() {
        // Section 1: for n = 8, SMPC tolerates 2, AMPC tolerates 1, and the
        // best-of-both-worlds protocol tolerates 2 synchronously and 1
        // asynchronously.
        let row = &resilience_table(8, 8)[0];
        assert_eq!(row.smpc_ts, 2);
        assert_eq!(row.ampc_ta, 1);
        assert_eq!(row.bobw, (2, 1));
    }

    #[test]
    fn packing_width_is_positive_whenever_thresholds_are_feasible() {
        for n in 4..=40 {
            for (ts, ta) in feasible_threshold_pairs(n) {
                assert!(thresholds_feasible(n, ts, ta));
                assert!(max_packing_width(n, ts) >= 1, "n={n} ts={ts}");
            }
        }
        // Spot checks: the degree budget t_s + ℓ − 1 must leave 2·t_s + 1
        // headroom for OEC.
        assert_eq!(max_packing_width(7, 1), 4);
        assert_eq!(max_packing_width(7, 2), 1);
        assert_eq!(max_packing_width(10, 1), 7);
        assert_eq!(max_packing_width(13, 1), 10);
        assert_eq!(max_packing_width(4, 1), 1);
    }

    #[test]
    fn bobw_never_exceeds_single_network_optima() {
        for row in resilience_table(4, 40) {
            let (ts, ta) = row.bobw;
            assert!(ts <= row.smpc_ts);
            assert!(ta <= row.ampc_ta);
            assert!(thresholds_feasible(row.n, ts, ta));
        }
    }

    #[test]
    fn bobw_beats_ampc_baseline_in_sync_resilience_for_n_at_least_5() {
        // The motivation of the paper: in a synchronous network the BoBW
        // protocol tolerates strictly more corruptions than any protocol that
        // must also survive asynchrony with the same threshold (t_s = t_a <
        // n/4), whenever n ≥ 5 and n is not a multiple where the bounds
        // coincide.
        for row in resilience_table(5, 40) {
            assert!(row.bobw.0 >= row.ampc_ta);
        }
        let better: Vec<usize> = resilience_table(5, 40)
            .iter()
            .filter(|r| r.bobw.0 > r.ampc_ta)
            .map(|r| r.n)
            .collect();
        assert!(better.contains(&8));
        assert!(better.len() > 20, "BoBW strictly better for most n");
    }
}
