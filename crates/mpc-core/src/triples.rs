//! Local share arithmetic for Beaver multiplication (`Π_Beaver`, Fig 6) and
//! the triple transformation/extraction protocols (`Π_TripTrans`, Fig 7 and
//! `Π_TripExt`, Fig 9).
//!
//! Everything here operates on a *single party's* shares; the interactive
//! parts (public reconstructions) are driven by
//! [`crate::cireval::CirEval`] through [`crate::openings::OpeningManager`].

use mpc_algebra::{Fp, LagrangeBasis, Polynomial};

/// One party's shares of a Beaver triple `(a, b, c)` with `c = a·b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TripleShare {
    /// Share of `a`.
    pub a: Fp,
    /// Share of `b`.
    pub b: Fp,
    /// Share of `c`.
    pub c: Fp,
}

impl TripleShare {
    /// Bundles three shares into a triple share.
    pub fn new(a: Fp, b: Fp, c: Fp) -> Self {
        TripleShare { a, b, c }
    }

    /// The all-zero default sharing used for discarded dealers (a valid
    /// sharing of the multiplication triple `(0, 0, 0)`).
    pub fn zero() -> Self {
        TripleShare::default()
    }
}

/// First step of Beaver's protocol: the shares of `d = x − a` and `e = y − b`
/// that get publicly reconstructed.
pub fn beaver_masked_shares(x: Fp, y: Fp, triple: &TripleShare) -> (Fp, Fp) {
    (x - triple.a, y - triple.b)
}

/// Final step of Beaver's protocol: this party's share of `z = x·y` given the
/// publicly reconstructed `d = x − a`, `e = y − b` (Fig 6:
/// `[z] = d·e + d·[b] + e·[a] + [c]`).
pub fn beaver_output_share(d: Fp, e: Fp, triple: &TripleShare) -> Fp {
    d * e + d * triple.b + e * triple.a + triple.c
}

/// Beaver's output step for the packed engine, expressed on *position-form*
/// shares: given the publicly reconstructed slot values `d = x − a`,
/// `e = y − b` and this party's shares `fa, fb, fc` of the slot triple
/// positioned at some common point `p`, returns the party's share of a
/// degree-`t_s` sharing of `z = x·y` positioned at the same `p`:
/// `z@p = d·e + d·fb@p + e·fa@p + fc@p`.
///
/// The identity holds pointwise because the triple's `(a, b, c)` carry the
/// *same* secret at every dealt position — re-positioning the output is free
/// and keeps the degree at `t_s` instead of the `t_s + 2ℓ − 2` a naive packed
/// product would cost.
pub fn packed_z_form_share(d: Fp, e: Fp, fa: Fp, fb: Fp, fc: Fp) -> Fp {
    d * e + d * fb + e * fa + fc
}

/// This party's share of `P(target)` where `P` is the unique polynomial of
/// degree `< points.len()` with `P(x_i) = v_i` and `share_i` is the party's
/// share of `v_i` — the "Lagrange linear function" applied locally to shares
/// (valid by the linearity of `d`-sharing).
pub fn interpolate_share(points: &[(Fp, Fp)], target: Fp) -> Fp {
    let xs: Vec<Fp> = points.iter().map(|&(x, _)| x).collect();
    let lambdas = Polynomial::lagrange_coefficients(&xs, target);
    points.iter().zip(&lambdas).map(|(&(_, s), &l)| s * l).sum()
}

/// [`interpolate_share`] over a prebuilt [`LagrangeBasis`]: the master
/// polynomial and barycentric weights of the (fixed, publicly known) point
/// set are reused across every gate opening, so one call costs `O(k)`
/// multiplications plus a single batched inversion.
///
/// # Panics
///
/// Panics if `shares.len() != basis.len()`.
pub fn interpolate_share_with(basis: &LagrangeBasis, shares: &[Fp], target: Fp) -> Fp {
    basis.eval_at(shares, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_algebra::evaluation_points::alpha;
    use mpc_algebra::shamir;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp(v: u64) -> Fp {
        Fp::from_u64(v)
    }

    #[test]
    fn beaver_identity_on_shares() {
        // share x, y and a random triple; run the Beaver algebra per party and
        // check the reconstructed product.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 7;
        let t = 2;
        let (x, y, a, b) = (fp(12), fp(34), fp(1000), fp(2000));
        let c = a * b;
        let sx = shamir::share(&mut rng, x, t, n);
        let sy = shamir::share(&mut rng, y, t, n);
        let sa = shamir::share(&mut rng, a, t, n);
        let sb = shamir::share(&mut rng, b, t, n);
        let sc = shamir::share(&mut rng, c, t, n);
        // public reconstruction of d, e
        let d = x - a;
        let e = y - b;
        let z_shares: Vec<(usize, Fp)> = (0..n)
            .map(|i| {
                let triple = TripleShare::new(sa.shares[i], sb.shares[i], sc.shares[i]);
                let (di, ei) = beaver_masked_shares(sx.shares[i], sy.shares[i], &triple);
                // d, e are themselves t-shared; sanity check linearity
                assert_eq!(di, sx.shares[i] - sa.shares[i]);
                assert_eq!(ei, sy.shares[i] - sb.shares[i]);
                (i, beaver_output_share(d, e, &triple))
            })
            .collect();
        assert_eq!(shamir::reconstruct(t, &z_shares).unwrap(), x * y);
    }

    #[test]
    fn beaver_with_non_multiplication_triple_gives_wrong_product() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 4;
        let t = 1;
        let (x, y, a, b) = (fp(3), fp(5), fp(7), fp(11));
        let c = a * b + fp(1); // NOT a multiplication triple
        let _sx = shamir::share(&mut rng, x, t, n);
        let _sy = shamir::share(&mut rng, y, t, n);
        let sa = shamir::share(&mut rng, a, t, n);
        let sb = shamir::share(&mut rng, b, t, n);
        let sc = shamir::share(&mut rng, c, t, n);
        let d = x - a;
        let e = y - b;
        let z_shares: Vec<(usize, Fp)> = (0..n)
            .map(|i| {
                let triple = TripleShare::new(sa.shares[i], sb.shares[i], sc.shares[i]);
                (i, beaver_output_share(d, e, &triple))
            })
            .collect();
        assert_eq!(shamir::reconstruct(t, &z_shares).unwrap(), x * y + fp(1));
    }

    #[test]
    fn packed_z_form_recovers_product_at_arbitrary_position() {
        // Share x, y, a, b, c = a·b all positioned at the same non-zero point
        // `p`; the z-form combination must be a degree-t sharing of x·y
        // positioned at `p` as well.
        let mut rng = StdRng::seed_from_u64(6);
        let n = 7;
        let t = 2;
        let p = fp(424_242);
        let (x, y, a, b) = (fp(21), fp(43), fp(900), fp(77));
        let c = a * b;
        let sa = shamir::share_at(&mut rng, a, p, t, n);
        let sb = shamir::share_at(&mut rng, b, p, t, n);
        let sc = shamir::share_at(&mut rng, c, p, t, n);
        let d = x - a;
        let e = y - b;
        let z_shares: Vec<(Fp, Fp)> = (0..n)
            .map(|i| {
                let z = packed_z_form_share(d, e, sa.shares[i], sb.shares[i], sc.shares[i]);
                (alpha(i), z)
            })
            .collect();
        let zp = Polynomial::interpolate(&z_shares[..t + 1]);
        assert_eq!(zp.evaluate(p), x * y);
        // degree stays ≤ t: the interpolation through t+1 shares already
        // matches every other share.
        for &(xi, zi) in &z_shares[t + 1..] {
            assert_eq!(zp.evaluate(xi), zi);
        }
    }

    #[test]
    fn interpolate_share_with_basis_matches_generic() {
        let basis = LagrangeBasis::new(vec![alpha(0), alpha(1), alpha(2)]);
        let points = [(alpha(0), fp(6)), (alpha(1), fp(10)), (alpha(2), fp(99))];
        let shares: Vec<Fp> = points.iter().map(|&(_, s)| s).collect();
        for target in [fp(0), fp(7), fp(1234), alpha(1)] {
            assert_eq!(
                interpolate_share_with(&basis, &shares, target),
                interpolate_share(&points, target)
            );
        }
    }

    #[test]
    fn interpolate_share_matches_cleartext_interpolation() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 7;
        let t = 2;
        // two values on a degree-1 polynomial P with P(α_0)=6, P(α_1)=10
        let v0 = fp(6);
        let v1 = fp(10);
        let s0 = shamir::share(&mut rng, v0, t, n);
        let s1 = shamir::share(&mut rng, v1, t, n);
        let target = fp(123);
        // expected cleartext value at target
        let p = Polynomial::interpolate(&[(alpha(0), v0), (alpha(1), v1)]);
        let expected = p.evaluate(target);
        let shares: Vec<(usize, Fp)> = (0..n)
            .map(|i| {
                let s = interpolate_share(
                    &[(alpha(0), s0.shares[i]), (alpha(1), s1.shares[i])],
                    target,
                );
                (i, s)
            })
            .collect();
        assert_eq!(shamir::reconstruct(t, &shares).unwrap(), expected);
    }
}
