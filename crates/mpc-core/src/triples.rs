//! Local share arithmetic for Beaver multiplication (`Π_Beaver`, Fig 6) and
//! the triple transformation/extraction protocols (`Π_TripTrans`, Fig 7 and
//! `Π_TripExt`, Fig 9).
//!
//! Everything here operates on a *single party's* shares; the interactive
//! parts (public reconstructions) are driven by
//! [`crate::cireval::CirEval`] through [`crate::openings::OpeningManager`].

use mpc_algebra::{Fp, LagrangeBasis, Polynomial};

/// One party's shares of a Beaver triple `(a, b, c)` with `c = a·b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TripleShare {
    /// Share of `a`.
    pub a: Fp,
    /// Share of `b`.
    pub b: Fp,
    /// Share of `c`.
    pub c: Fp,
}

impl TripleShare {
    /// Bundles three shares into a triple share.
    pub fn new(a: Fp, b: Fp, c: Fp) -> Self {
        TripleShare { a, b, c }
    }

    /// The all-zero default sharing used for discarded dealers (a valid
    /// sharing of the multiplication triple `(0, 0, 0)`).
    pub fn zero() -> Self {
        TripleShare::default()
    }
}

/// First step of Beaver's protocol: the shares of `d = x − a` and `e = y − b`
/// that get publicly reconstructed.
pub fn beaver_masked_shares(x: Fp, y: Fp, triple: &TripleShare) -> (Fp, Fp) {
    (x - triple.a, y - triple.b)
}

/// Final step of Beaver's protocol: this party's share of `z = x·y` given the
/// publicly reconstructed `d = x − a`, `e = y − b` (Fig 6:
/// `[z] = d·e + d·[b] + e·[a] + [c]`).
pub fn beaver_output_share(d: Fp, e: Fp, triple: &TripleShare) -> Fp {
    d * e + d * triple.b + e * triple.a + triple.c
}

/// This party's share of `P(target)` where `P` is the unique polynomial of
/// degree `< points.len()` with `P(x_i) = v_i` and `share_i` is the party's
/// share of `v_i` — the "Lagrange linear function" applied locally to shares
/// (valid by the linearity of `d`-sharing).
pub fn interpolate_share(points: &[(Fp, Fp)], target: Fp) -> Fp {
    let xs: Vec<Fp> = points.iter().map(|&(x, _)| x).collect();
    let lambdas = Polynomial::lagrange_coefficients(&xs, target);
    points.iter().zip(&lambdas).map(|(&(_, s), &l)| s * l).sum()
}

/// [`interpolate_share`] over a prebuilt [`LagrangeBasis`]: the master
/// polynomial and barycentric weights of the (fixed, publicly known) point
/// set are reused across every gate opening, so one call costs `O(k)`
/// multiplications plus a single batched inversion.
///
/// # Panics
///
/// Panics if `shares.len() != basis.len()`.
pub fn interpolate_share_with(basis: &LagrangeBasis, shares: &[Fp], target: Fp) -> Fp {
    basis.eval_at(shares, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_algebra::evaluation_points::alpha;
    use mpc_algebra::shamir;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp(v: u64) -> Fp {
        Fp::from_u64(v)
    }

    #[test]
    fn beaver_identity_on_shares() {
        // share x, y and a random triple; run the Beaver algebra per party and
        // check the reconstructed product.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 7;
        let t = 2;
        let (x, y, a, b) = (fp(12), fp(34), fp(1000), fp(2000));
        let c = a * b;
        let sx = shamir::share(&mut rng, x, t, n);
        let sy = shamir::share(&mut rng, y, t, n);
        let sa = shamir::share(&mut rng, a, t, n);
        let sb = shamir::share(&mut rng, b, t, n);
        let sc = shamir::share(&mut rng, c, t, n);
        // public reconstruction of d, e
        let d = x - a;
        let e = y - b;
        let z_shares: Vec<(usize, Fp)> = (0..n)
            .map(|i| {
                let triple = TripleShare::new(sa.shares[i], sb.shares[i], sc.shares[i]);
                let (di, ei) = beaver_masked_shares(sx.shares[i], sy.shares[i], &triple);
                // d, e are themselves t-shared; sanity check linearity
                assert_eq!(di, sx.shares[i] - sa.shares[i]);
                assert_eq!(ei, sy.shares[i] - sb.shares[i]);
                (i, beaver_output_share(d, e, &triple))
            })
            .collect();
        assert_eq!(shamir::reconstruct(t, &z_shares).unwrap(), x * y);
    }

    #[test]
    fn beaver_with_non_multiplication_triple_gives_wrong_product() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 4;
        let t = 1;
        let (x, y, a, b) = (fp(3), fp(5), fp(7), fp(11));
        let c = a * b + fp(1); // NOT a multiplication triple
        let _sx = shamir::share(&mut rng, x, t, n);
        let _sy = shamir::share(&mut rng, y, t, n);
        let sa = shamir::share(&mut rng, a, t, n);
        let sb = shamir::share(&mut rng, b, t, n);
        let sc = shamir::share(&mut rng, c, t, n);
        let d = x - a;
        let e = y - b;
        let z_shares: Vec<(usize, Fp)> = (0..n)
            .map(|i| {
                let triple = TripleShare::new(sa.shares[i], sb.shares[i], sc.shares[i]);
                (i, beaver_output_share(d, e, &triple))
            })
            .collect();
        assert_eq!(shamir::reconstruct(t, &z_shares).unwrap(), x * y + fp(1));
    }

    #[test]
    fn interpolate_share_with_basis_matches_generic() {
        let basis = LagrangeBasis::new(vec![alpha(0), alpha(1), alpha(2)]);
        let points = [(alpha(0), fp(6)), (alpha(1), fp(10)), (alpha(2), fp(99))];
        let shares: Vec<Fp> = points.iter().map(|&(_, s)| s).collect();
        for target in [fp(0), fp(7), fp(1234), alpha(1)] {
            assert_eq!(
                interpolate_share_with(&basis, &shares, target),
                interpolate_share(&points, target)
            );
        }
    }

    #[test]
    fn interpolate_share_matches_cleartext_interpolation() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 7;
        let t = 2;
        // two values on a degree-1 polynomial P with P(α_0)=6, P(α_1)=10
        let v0 = fp(6);
        let v1 = fp(10);
        let s0 = shamir::share(&mut rng, v0, t, n);
        let s1 = shamir::share(&mut rng, v1, t, n);
        let target = fp(123);
        // expected cleartext value at target
        let p = Polynomial::interpolate(&[(alpha(0), v0), (alpha(1), v1)]);
        let expected = p.evaluate(target);
        let shares: Vec<(usize, Fp)> = (0..n)
            .map(|i| {
                let s = interpolate_share(
                    &[(alpha(0), s0.shares[i]), (alpha(1), s1.shares[i])],
                    target,
                );
                (i, s)
            })
            .collect();
        assert_eq!(shamir::reconstruct(t, &shares).unwrap(), expected);
    }
}
