//! The static-corruption model of the paper, plus pluggable wire-level
//! Byzantine behaviours.
//!
//! A computationally unbounded Byzantine adversary picks a set of parties to
//! corrupt *before* the execution starts (static corruption). In a
//! synchronous network it may corrupt up to `t_s` parties; in an asynchronous
//! network up to `t_a`, where `t_a < t_s` and `3·t_s + t_a < n`.
//!
//! Corruption acts at two layers:
//!
//! * **behavioural** — a corrupt party runs a different root protocol
//!   (`mpc_protocols::byzantine`);
//! * **wire-level** — a [`ByzantineStrategy`] intercepts every byte string a
//!   corrupt party puts on a channel and may pass it through, replace it, or
//!   drop it. Byte tampering is meaningful because messages really are bytes
//!   ([`crate::wire`]): a garbled payload that no longer decodes is treated
//!   by the receiving boundary as Byzantine input and dropped, never a panic.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::transport::PartyId;

/// The set of statically corrupted parties.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorruptionSet {
    corrupt: Vec<PartyId>,
}

impl CorruptionSet {
    /// No corruptions.
    pub fn none() -> Self {
        CorruptionSet {
            corrupt: Vec::new(),
        }
    }

    /// Corrupts exactly the listed parties.
    pub fn new(mut corrupt: Vec<PartyId>) -> Self {
        corrupt.sort_unstable();
        corrupt.dedup();
        CorruptionSet { corrupt }
    }

    /// Corrupts the first `t` parties (`P_1 … P_t`) — convenient for tests.
    pub fn first(t: usize) -> Self {
        CorruptionSet {
            corrupt: (0..t).collect(),
        }
    }

    /// Corrupts the last `t` of `n` parties.
    pub fn last(n: usize, t: usize) -> Self {
        CorruptionSet {
            corrupt: (n.saturating_sub(t)..n).collect(),
        }
    }

    /// Corrupts `t` of `n` parties chosen uniformly (deterministically from
    /// `seed`), so tests and benchmarks can sweep corruption *placements*
    /// instead of always corrupting the first or last `t` parties.
    ///
    /// # Panics
    ///
    /// Panics if `t > n`.
    pub fn random(n: usize, t: usize, seed: u64) -> Self {
        assert!(t <= n, "cannot corrupt {t} of {n} parties");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_44_u64.rotate_left(17));
        let mut ids: Vec<PartyId> = (0..n).collect();
        // Partial Fisher–Yates: the first t slots end up uniformly chosen.
        for i in 0..t {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        Self::new(ids[..t].to_vec())
    }

    /// Is `p` corrupt?
    pub fn is_corrupt(&self, p: PartyId) -> bool {
        self.corrupt.binary_search(&p).is_ok()
    }

    /// Is `p` honest?
    pub fn is_honest(&self, p: PartyId) -> bool {
        !self.is_corrupt(p)
    }

    /// Number of corrupt parties.
    pub fn count(&self) -> usize {
        self.corrupt.len()
    }

    /// The corrupt party ids, sorted.
    pub fn corrupt_parties(&self) -> &[PartyId] {
        &self.corrupt
    }

    /// The honest party ids among `0..n`, sorted.
    pub fn honest_parties(&self, n: usize) -> Vec<PartyId> {
        (0..n).filter(|&p| self.is_honest(p)).collect()
    }
}

/// One outgoing wire message from a corrupt sender, as seen by a
/// [`ByzantineStrategy`]. For a broadcast the strategy is consulted once per
/// recipient (`broadcast == true`), which is what makes equivocation
/// expressible: different recipients may receive different bytes.
#[derive(Debug)]
pub struct WireSend<'a> {
    /// The corrupt sending party.
    pub from: PartyId,
    /// The receiving party.
    pub to: PartyId,
    /// Total number of parties `n`.
    pub n: usize,
    /// Instance path the message is addressed to.
    pub path: &'a [u32],
    /// The canonical encoding of the payload.
    pub bytes: &'a [u8],
    /// Whether this copy is part of a broadcast effect.
    pub broadcast: bool,
}

/// What a [`ByzantineStrategy`] decided to do with one wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireAction {
    /// Deliver the bytes unchanged (the payload stays shared).
    Deliver,
    /// Deliver these bytes instead (equivocation, garbling, …). The
    /// replacement need not decode — undecodable bytes are dropped at the
    /// receiving boundary and counted in [`crate::Metrics::decode_failures`].
    Replace(Vec<u8>),
    /// Suppress the message entirely (crash/omission behaviour).
    Drop,
}

/// A wire-level Byzantine behaviour, applied by the simulator to every
/// message sent by a *corrupt* party (honest parties' channels are private
/// and authentic, so the adversary cannot touch them).
///
/// Strategies are consulted at the send boundary with the already-encoded
/// canonical bytes and draw any randomness they need from the transport's
/// dedicated adversary RNG, keeping runs reproducible. `Send` because the
/// threaded transport backend consults the (mutex-guarded) strategy from the
/// corrupt party's own thread.
pub trait ByzantineStrategy: Send {
    /// Decides the fate of one outgoing message of a corrupt sender.
    fn on_send(&mut self, send: &WireSend<'_>, rng: &mut StdRng) -> WireAction;
}

/// The default strategy: corrupt parties' messages pass through untouched
/// (their misbehaviour, if any, is purely behavioural).
#[derive(Clone, Copy, Debug, Default)]
pub struct Passive;

impl ByzantineStrategy for Passive {
    fn on_send(&mut self, _send: &WireSend<'_>, _rng: &mut StdRng) -> WireAction {
        WireAction::Deliver
    }
}

/// Crash-style corruption: every message of a corrupt sender is suppressed.
#[derive(Clone, Copy, Debug, Default)]
pub struct Crash;

impl ByzantineStrategy for Crash {
    fn on_send(&mut self, _send: &WireSend<'_>, _rng: &mut StdRng) -> WireAction {
        WireAction::Drop
    }
}

/// Equivocate on broadcasts: recipients in the upper half of the id space
/// receive `alt` (an alternative canonical encoding chosen by the test)
/// instead of the real payload; unicasts pass through unchanged.
#[derive(Clone, Debug)]
pub struct EquivocateBroadcast {
    /// The alternative byte string delivered to recipients with
    /// `to ≥ n / 2`.
    pub alt: Vec<u8>,
}

impl ByzantineStrategy for EquivocateBroadcast {
    fn on_send(&mut self, send: &WireSend<'_>, _rng: &mut StdRng) -> WireAction {
        if send.broadcast && send.to >= send.n / 2 {
            WireAction::Replace(self.alt.clone())
        } else {
            WireAction::Deliver
        }
    }
}

/// Garble the payload bytes of every corrupt-sender message: each byte is
/// XORed with a random mask with probability ≈ 1/4, and at least one byte is
/// always flipped. Most garbled payloads fail to decode and are dropped at
/// the receiving boundary, so this strategy stress-tests that decode
/// failures are handled as Byzantine input rather than panics.
#[derive(Clone, Copy, Debug, Default)]
pub struct GarbleBytes;

impl ByzantineStrategy for GarbleBytes {
    fn on_send(&mut self, send: &WireSend<'_>, rng: &mut StdRng) -> WireAction {
        let mut bytes = send.bytes.to_vec();
        let mut flipped = false;
        for b in bytes.iter_mut() {
            if rng.gen_range(0..4u8) == 0 {
                *b ^= rng.gen_range(1..=u8::MAX);
                flipped = true;
            }
        }
        if !flipped {
            if let Some(b) = bytes.first_mut() {
                *b ^= 0xFF;
            }
        }
        WireAction::Replace(bytes)
    }
}

/// Makes any randomized strategy's decisions a pure function of the channel:
/// each `(from, to)` pair keeps its own consult counter, and every consult
/// hands the inner strategy a fresh RNG seeded from
/// `(seed, from, to, counter)` instead of the transport's shared adversary
/// RNG stream.
///
/// This removes the one source of cross-backend divergence randomized
/// strategies have: the simulator consults the strategy in global event
/// order while the threaded backend consults it in the corrupt parties'
/// thread order, so a strategy that draws from the *shared* stream (e.g.
/// [`GarbleBytes`]) only conforms when a single corrupt party fixes the
/// consult order. Wrapped in `ChannelDeterministic`, the draws depend only
/// on the channel and its consult index — identical on both backends for
/// any corruption set.
#[derive(Clone, Debug)]
pub struct ChannelDeterministic<S> {
    inner: S,
    seed: u64,
    counters: std::collections::BTreeMap<(PartyId, PartyId), u64>,
}

impl<S> ChannelDeterministic<S> {
    /// Wraps `inner`, deriving all per-consult randomness from `seed`.
    pub fn new(inner: S, seed: u64) -> Self {
        ChannelDeterministic {
            inner,
            seed,
            counters: std::collections::BTreeMap::new(),
        }
    }
}

impl<S: ByzantineStrategy> ByzantineStrategy for ChannelDeterministic<S> {
    fn on_send(&mut self, send: &WireSend<'_>, _rng: &mut StdRng) -> WireAction {
        let k = self.counters.entry((send.from, send.to)).or_insert(0);
        let mix = self
            .seed
            .wrapping_add((send.from as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((send.to as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(k.wrapping_mul(0x1656_67B1_9E37_79F9));
        *k += 1;
        let mut channel_rng = StdRng::seed_from_u64(mix);
        self.inner.on_send(send, &mut channel_rng)
    }
}

/// Checks the paper's main resilience condition `3·t_s + t_a < n`
/// (which implies `t_s < n/3` and `t_a < n/4`).
pub fn thresholds_feasible(n: usize, ts: usize, ta: usize) -> bool {
    ta <= ts && 3 * ts + ta < n
}

/// The largest feasible `(t_s, t_a)` pairs for a given `n`: for every `t_s`
/// up to `⌈n/3⌉−1`, the maximum `t_a` satisfying `3·t_s + t_a < n` (capped at
/// `t_s`). Used by experiment E1.
pub fn feasible_threshold_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut ts = 0usize;
    while 3 * ts < n {
        if (3 * ts) < n {
            let max_ta = (n - 1 - 3 * ts).min(ts);
            out.push((ts, max_ta));
        }
        ts += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_set_membership() {
        let c = CorruptionSet::new(vec![4, 1, 4]);
        assert!(c.is_corrupt(1));
        assert!(c.is_corrupt(4));
        assert!(c.is_honest(0));
        assert_eq!(c.count(), 2);
        assert_eq!(c.honest_parties(5), vec![0, 2, 3]);
    }

    #[test]
    fn first_and_last_helpers() {
        assert_eq!(CorruptionSet::first(2).corrupt_parties(), &[0, 1]);
        assert_eq!(CorruptionSet::last(7, 2).corrupt_parties(), &[5, 6]);
    }

    #[test]
    fn random_corruption_is_deterministic_and_well_formed() {
        for n in [4usize, 7, 13] {
            for t in 0..=(n - 1) / 3 {
                for seed in 0..20u64 {
                    let a = CorruptionSet::random(n, t, seed);
                    assert_eq!(a, CorruptionSet::random(n, t, seed), "same seed, same set");
                    assert_eq!(a.count(), t);
                    assert!(a.corrupt_parties().iter().all(|&p| p < n));
                }
            }
        }
        // different seeds must actually move the placement around
        let placements: std::collections::HashSet<Vec<PartyId>> = (0..32)
            .map(|s| CorruptionSet::random(10, 3, s).corrupt_parties().to_vec())
            .collect();
        assert!(placements.len() > 1, "seed must influence the placement");
    }

    #[test]
    fn strategy_actions() {
        let mut rng = StdRng::seed_from_u64(1);
        let send = WireSend {
            from: 0,
            to: 3,
            n: 4,
            path: &[],
            bytes: &[1, 2, 3],
            broadcast: true,
        };
        assert_eq!(Passive.on_send(&send, &mut rng), WireAction::Deliver);
        assert_eq!(Crash.on_send(&send, &mut rng), WireAction::Drop);
        let mut eq = EquivocateBroadcast { alt: vec![9] };
        assert_eq!(eq.on_send(&send, &mut rng), WireAction::Replace(vec![9]));
        let lower = WireSend { to: 1, ..send };
        assert_eq!(eq.on_send(&lower, &mut rng), WireAction::Deliver);
        let WireAction::Replace(garbled) = GarbleBytes.on_send(&send, &mut rng) else {
            panic!("garble must replace the payload");
        };
        assert_eq!(garbled.len(), 3);
        assert_ne!(garbled, vec![1, 2, 3], "at least one byte must change");
    }

    #[test]
    fn channel_deterministic_ignores_the_shared_rng_stream() {
        let send = WireSend {
            from: 0,
            to: 3,
            n: 4,
            path: &[],
            bytes: &[1, 2, 3, 4, 5, 6, 7, 8],
            broadcast: false,
        };
        // Same consult sequence under two *different* shared RNG states must
        // produce identical decisions …
        let mut a = ChannelDeterministic::new(GarbleBytes, 42);
        let mut b = ChannelDeterministic::new(GarbleBytes, 42);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(999);
        for _ in 0..5 {
            assert_eq!(a.on_send(&send, &mut rng_a), b.on_send(&send, &mut rng_b));
        }
        // … while consecutive consults on one channel still differ (the
        // per-channel counter advances the derived seed).
        let mut c = ChannelDeterministic::new(GarbleBytes, 42);
        let first = c.on_send(&send, &mut rng_a);
        let second = c.on_send(&send, &mut rng_a);
        assert_ne!(first, second, "consult counter must advance the stream");
        // … and the shared stream is never touched.
        let mut untouched = StdRng::seed_from_u64(7);
        let mut reference = StdRng::seed_from_u64(7);
        let _ = ChannelDeterministic::new(GarbleBytes, 1).on_send(&send, &mut untouched);
        assert_eq!(
            untouched.gen::<u64>(),
            reference.gen::<u64>(),
            "wrapper must not consume the shared adversary RNG"
        );
    }

    #[test]
    fn threshold_condition_matches_paper_example() {
        // n = 8: the paper's motivating example — 2 corruptions in a
        // synchronous network and 1 in an asynchronous network are feasible.
        assert!(thresholds_feasible(8, 2, 1));
        // t_s = t_a = 2 would need n > 8.
        assert!(!thresholds_feasible(8, 2, 2));
        // SMPC bound alone is not enough: t_s=2,t_a=2 feasible only for n ≥ 9.
        assert!(thresholds_feasible(9, 2, 2));
        // degenerate cases
        assert!(thresholds_feasible(4, 1, 0));
        assert!(!thresholds_feasible(4, 1, 1));
    }

    #[test]
    fn feasible_pairs_are_feasible_and_maximal() {
        for n in 4..20 {
            for (ts, ta) in feasible_threshold_pairs(n) {
                assert!(thresholds_feasible(n, ts, ta), "n={n} ts={ts} ta={ta}");
                // maximality in ta
                assert!(ta == ts || !thresholds_feasible(n, ts, ta + 1));
            }
        }
    }
}
