//! The static-corruption model of the paper.
//!
//! A computationally unbounded Byzantine adversary picks a set of parties to
//! corrupt *before* the execution starts (static corruption). In a
//! synchronous network it may corrupt up to `t_s` parties; in an asynchronous
//! network up to `t_a`, where `t_a < t_s` and `3·t_s + t_a < n`.

use crate::simulation::PartyId;

/// The set of statically corrupted parties.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorruptionSet {
    corrupt: Vec<PartyId>,
}

impl CorruptionSet {
    /// No corruptions.
    pub fn none() -> Self {
        CorruptionSet {
            corrupt: Vec::new(),
        }
    }

    /// Corrupts exactly the listed parties.
    pub fn new(mut corrupt: Vec<PartyId>) -> Self {
        corrupt.sort_unstable();
        corrupt.dedup();
        CorruptionSet { corrupt }
    }

    /// Corrupts the first `t` parties (`P_1 … P_t`) — convenient for tests.
    pub fn first(t: usize) -> Self {
        CorruptionSet {
            corrupt: (0..t).collect(),
        }
    }

    /// Corrupts the last `t` of `n` parties.
    pub fn last(n: usize, t: usize) -> Self {
        CorruptionSet {
            corrupt: (n.saturating_sub(t)..n).collect(),
        }
    }

    /// Is `p` corrupt?
    pub fn is_corrupt(&self, p: PartyId) -> bool {
        self.corrupt.binary_search(&p).is_ok()
    }

    /// Is `p` honest?
    pub fn is_honest(&self, p: PartyId) -> bool {
        !self.is_corrupt(p)
    }

    /// Number of corrupt parties.
    pub fn count(&self) -> usize {
        self.corrupt.len()
    }

    /// The corrupt party ids, sorted.
    pub fn corrupt_parties(&self) -> &[PartyId] {
        &self.corrupt
    }

    /// The honest party ids among `0..n`, sorted.
    pub fn honest_parties(&self, n: usize) -> Vec<PartyId> {
        (0..n).filter(|&p| self.is_honest(p)).collect()
    }
}

/// Checks the paper's main resilience condition `3·t_s + t_a < n`
/// (which implies `t_s < n/3` and `t_a < n/4`).
pub fn thresholds_feasible(n: usize, ts: usize, ta: usize) -> bool {
    ta <= ts && 3 * ts + ta < n
}

/// The largest feasible `(t_s, t_a)` pairs for a given `n`: for every `t_s`
/// up to `⌈n/3⌉−1`, the maximum `t_a` satisfying `3·t_s + t_a < n` (capped at
/// `t_s`). Used by experiment E1.
pub fn feasible_threshold_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut ts = 0usize;
    while 3 * ts < n {
        if (3 * ts) < n {
            let max_ta = (n - 1 - 3 * ts).min(ts);
            out.push((ts, max_ta));
        }
        ts += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_set_membership() {
        let c = CorruptionSet::new(vec![4, 1, 4]);
        assert!(c.is_corrupt(1));
        assert!(c.is_corrupt(4));
        assert!(c.is_honest(0));
        assert_eq!(c.count(), 2);
        assert_eq!(c.honest_parties(5), vec![0, 2, 3]);
    }

    #[test]
    fn first_and_last_helpers() {
        assert_eq!(CorruptionSet::first(2).corrupt_parties(), &[0, 1]);
        assert_eq!(CorruptionSet::last(7, 2).corrupt_parties(), &[5, 6]);
    }

    #[test]
    fn threshold_condition_matches_paper_example() {
        // n = 8: the paper's motivating example — 2 corruptions in a
        // synchronous network and 1 in an asynchronous network are feasible.
        assert!(thresholds_feasible(8, 2, 1));
        // t_s = t_a = 2 would need n > 8.
        assert!(!thresholds_feasible(8, 2, 2));
        // SMPC bound alone is not enough: t_s=2,t_a=2 feasible only for n ≥ 9.
        assert!(thresholds_feasible(9, 2, 2));
        // degenerate cases
        assert!(thresholds_feasible(4, 1, 0));
        assert!(!thresholds_feasible(4, 1, 1));
    }

    #[test]
    fn feasible_pairs_are_feasible_and_maximal() {
        for n in 4..20 {
            for (ts, ta) in feasible_threshold_pairs(n) {
                assert!(thresholds_feasible(n, ts, ta), "n={n} ts={ts} ta={ta}");
                // maximality in ta
                assert!(ta == ts || !thresholds_feasible(n, ts, ta + 1));
            }
        }
    }
}
