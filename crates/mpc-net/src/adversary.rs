//! The static-corruption model of the paper, plus pluggable wire-level
//! Byzantine behaviours.
//!
//! A computationally unbounded Byzantine adversary picks a set of parties to
//! corrupt *before* the execution starts (static corruption). In a
//! synchronous network it may corrupt up to `t_s` parties; in an asynchronous
//! network up to `t_a`, where `t_a < t_s` and `3·t_s + t_a < n`.
//!
//! Corruption acts at two layers:
//!
//! * **behavioural** — a corrupt party runs a different root protocol
//!   (`mpc_protocols::byzantine`);
//! * **wire-level** — a [`ByzantineStrategy`] intercepts every byte string a
//!   corrupt party puts on a channel and may pass it through, replace it, or
//!   drop it. Byte tampering is meaningful because messages really are bytes
//!   ([`crate::wire`]): a garbled payload that no longer decodes is treated
//!   by the receiving boundary as Byzantine input and dropped, never a panic.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::transport::PartyId;

/// The set of statically corrupted parties.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorruptionSet {
    corrupt: Vec<PartyId>,
}

impl CorruptionSet {
    /// No corruptions.
    pub fn none() -> Self {
        CorruptionSet {
            corrupt: Vec::new(),
        }
    }

    /// Corrupts exactly the listed parties.
    pub fn new(mut corrupt: Vec<PartyId>) -> Self {
        corrupt.sort_unstable();
        corrupt.dedup();
        CorruptionSet { corrupt }
    }

    /// Corrupts the first `t` parties (`P_1 … P_t`) — convenient for tests.
    pub fn first(t: usize) -> Self {
        CorruptionSet {
            corrupt: (0..t).collect(),
        }
    }

    /// Corrupts the last `t` of `n` parties.
    pub fn last(n: usize, t: usize) -> Self {
        CorruptionSet {
            corrupt: (n.saturating_sub(t)..n).collect(),
        }
    }

    /// Corrupts `t` of `n` parties chosen uniformly (deterministically from
    /// `seed`), so tests and benchmarks can sweep corruption *placements*
    /// instead of always corrupting the first or last `t` parties.
    ///
    /// # Panics
    ///
    /// Panics if `t > n`.
    pub fn random(n: usize, t: usize, seed: u64) -> Self {
        assert!(t <= n, "cannot corrupt {t} of {n} parties");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_44_u64.rotate_left(17));
        let mut ids: Vec<PartyId> = (0..n).collect();
        // Partial Fisher–Yates: the first t slots end up uniformly chosen.
        for i in 0..t {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        Self::new(ids[..t].to_vec())
    }

    /// Is `p` corrupt?
    pub fn is_corrupt(&self, p: PartyId) -> bool {
        self.corrupt.binary_search(&p).is_ok()
    }

    /// Is `p` honest?
    pub fn is_honest(&self, p: PartyId) -> bool {
        !self.is_corrupt(p)
    }

    /// Number of corrupt parties.
    pub fn count(&self) -> usize {
        self.corrupt.len()
    }

    /// The corrupt party ids, sorted.
    pub fn corrupt_parties(&self) -> &[PartyId] {
        &self.corrupt
    }

    /// The honest party ids among `0..n`, sorted.
    pub fn honest_parties(&self, n: usize) -> Vec<PartyId> {
        (0..n).filter(|&p| self.is_honest(p)).collect()
    }
}

/// One outgoing wire message from a corrupt sender, as seen by a
/// [`ByzantineStrategy`]. For a broadcast the strategy is consulted once per
/// recipient (`broadcast == true`), which is what makes equivocation
/// expressible: different recipients may receive different bytes.
#[derive(Debug)]
pub struct WireSend<'a> {
    /// The corrupt sending party.
    pub from: PartyId,
    /// The receiving party.
    pub to: PartyId,
    /// Total number of parties `n`.
    pub n: usize,
    /// Instance path the message is addressed to.
    pub path: &'a [u32],
    /// The canonical encoding of the payload.
    pub bytes: &'a [u8],
    /// Whether this copy is part of a broadcast effect.
    pub broadcast: bool,
}

/// What a [`ByzantineStrategy`] decided to do with one wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireAction {
    /// Deliver the bytes unchanged (the payload stays shared).
    Deliver,
    /// Deliver these bytes instead (equivocation, garbling, …). The
    /// replacement need not decode — undecodable bytes are dropped at the
    /// receiving boundary and counted in [`crate::Metrics::decode_failures`].
    Replace(Vec<u8>),
    /// Suppress the message entirely (crash/omission behaviour).
    Drop,
}

/// A wire-level Byzantine behaviour, applied by the simulator to every
/// message sent by a *corrupt* party (honest parties' channels are private
/// and authentic, so the adversary cannot touch them).
///
/// Strategies are consulted at the send boundary with the already-encoded
/// canonical bytes and draw any randomness they need from the transport's
/// dedicated adversary RNG, keeping runs reproducible. `Send` because the
/// threaded transport backend consults the (mutex-guarded) strategy from the
/// corrupt party's own thread.
pub trait ByzantineStrategy: Send {
    /// Decides the fate of one outgoing message of a corrupt sender.
    fn on_send(&mut self, send: &WireSend<'_>, rng: &mut StdRng) -> WireAction;
}

/// The default strategy: corrupt parties' messages pass through untouched
/// (their misbehaviour, if any, is purely behavioural).
#[derive(Clone, Copy, Debug, Default)]
pub struct Passive;

impl ByzantineStrategy for Passive {
    fn on_send(&mut self, _send: &WireSend<'_>, _rng: &mut StdRng) -> WireAction {
        WireAction::Deliver
    }
}

/// Crash-style corruption: every message of a corrupt sender is suppressed.
#[derive(Clone, Copy, Debug, Default)]
pub struct Crash;

impl ByzantineStrategy for Crash {
    fn on_send(&mut self, _send: &WireSend<'_>, _rng: &mut StdRng) -> WireAction {
        WireAction::Drop
    }
}

/// Equivocate on broadcasts: recipients in the upper half of the id space
/// receive `alt` (an alternative canonical encoding chosen by the test)
/// instead of the real payload; unicasts pass through unchanged.
#[derive(Clone, Debug)]
pub struct EquivocateBroadcast {
    /// The alternative byte string delivered to recipients with
    /// `to ≥ n / 2`.
    pub alt: Vec<u8>,
}

impl ByzantineStrategy for EquivocateBroadcast {
    fn on_send(&mut self, send: &WireSend<'_>, _rng: &mut StdRng) -> WireAction {
        if send.broadcast && send.to >= send.n / 2 {
            WireAction::Replace(self.alt.clone())
        } else {
            WireAction::Deliver
        }
    }
}

/// Garble the payload bytes of every corrupt-sender message: each byte is
/// XORed with a random mask with probability ≈ 1/4, and at least one byte is
/// always flipped. Most garbled payloads fail to decode and are dropped at
/// the receiving boundary, so this strategy stress-tests that decode
/// failures are handled as Byzantine input rather than panics.
#[derive(Clone, Copy, Debug, Default)]
pub struct GarbleBytes;

impl ByzantineStrategy for GarbleBytes {
    fn on_send(&mut self, send: &WireSend<'_>, rng: &mut StdRng) -> WireAction {
        let mut bytes = send.bytes.to_vec();
        let mut flipped = false;
        for b in bytes.iter_mut() {
            if rng.gen_range(0..4u8) == 0 {
                *b ^= rng.gen_range(1..=u8::MAX);
                flipped = true;
            }
        }
        if !flipped {
            if let Some(b) = bytes.first_mut() {
                *b ^= 0xFF;
            }
        }
        WireAction::Replace(bytes)
    }
}

/// Makes any randomized strategy's decisions a pure function of the channel:
/// each `(from, to)` pair keeps its own consult counter, and every consult
/// hands the inner strategy a fresh RNG seeded from
/// `(seed, from, to, counter)` instead of the transport's shared adversary
/// RNG stream.
///
/// This removes the one source of cross-backend divergence randomized
/// strategies have: the simulator consults the strategy in global event
/// order while the threaded backend consults it in the corrupt parties'
/// thread order, so a strategy that draws from the *shared* stream (e.g.
/// [`GarbleBytes`]) only conforms when a single corrupt party fixes the
/// consult order. Wrapped in `ChannelDeterministic`, the draws depend only
/// on the channel and its consult index — identical on both backends for
/// any corruption set.
#[derive(Clone, Debug)]
pub struct ChannelDeterministic<S> {
    inner: S,
    seed: u64,
    counters: std::collections::BTreeMap<(PartyId, PartyId), u64>,
}

impl<S> ChannelDeterministic<S> {
    /// Wraps `inner`, deriving all per-consult randomness from `seed`.
    pub fn new(inner: S, seed: u64) -> Self {
        ChannelDeterministic {
            inner,
            seed,
            counters: std::collections::BTreeMap::new(),
        }
    }
}

impl<S: ByzantineStrategy> ByzantineStrategy for ChannelDeterministic<S> {
    fn on_send(&mut self, send: &WireSend<'_>, _rng: &mut StdRng) -> WireAction {
        let k = self.counters.entry((send.from, send.to)).or_insert(0);
        let mix = self
            .seed
            .wrapping_add((send.from as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((send.to as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(k.wrapping_mul(0x1656_67B1_9E37_79F9));
        *k += 1;
        let mut channel_rng = StdRng::seed_from_u64(mix);
        self.inner.on_send(send, &mut channel_rng)
    }
}

/// Checks the paper's main resilience condition `3·t_s + t_a < n`
/// (which implies `t_s < n/3` and `t_a < n/4`).
pub fn thresholds_feasible(n: usize, ts: usize, ta: usize) -> bool {
    ta <= ts && 3 * ts + ta < n
}

// ---------------------------------------------------------------------------
// Pluggable adversary structures
// ---------------------------------------------------------------------------

/// A pluggable *adversary structure*: which corruption sets the adversary may
/// pick in each network kind.
///
/// The paper works with the threshold special case (`|Z| ≤ t_s` synchronously,
/// `|Z| ≤ t_a` asynchronously), but the same authors generalized the protocol
/// line to arbitrary monotone structures (arXiv:2208.06223), where feasibility
/// becomes the `Q^(3,1)(P, Z_s, Z_a)` condition: no union of three
/// sync-admissible sets and one async-admissible set covers the whole party
/// set. This trait abstracts both so the builder, the transports, and the
/// sweep harness can validate corruption placements against either.
///
/// The share-based protocols themselves still run at the structure's
/// *threshold hull* [`AdversaryStructure::threshold_projection`] — a general
/// structure refines **which** sets are admissible (tightening what the sweep
/// harness enumerates), while the Shamir degrees come from the hull, which
/// must itself satisfy [`thresholds_feasible`].
pub trait AdversaryStructure: Send + Sync + std::fmt::Debug {
    /// Number of parties the structure is defined over.
    fn n(&self) -> usize;

    /// May the adversary corrupt exactly `set` when the network turns out to
    /// be synchronous? Monotone: any subset of an admissible set is
    /// admissible.
    fn sync_admissible(&self, set: &[PartyId]) -> bool;

    /// May the adversary corrupt exactly `set` when the network turns out to
    /// be asynchronous?
    fn async_admissible(&self, set: &[PartyId]) -> bool;

    /// The threshold hull `(t_s, t_a)`: the largest sync- and
    /// async-admissible set sizes. The protocol parameter plumbing
    /// (`Params`) is derived from this projection.
    fn threshold_projection(&self) -> (usize, usize);

    /// Does the structure admit a perfectly-secure best-of-both-worlds
    /// protocol? Threshold case: `t_a ≤ t_s ∧ 3·t_s + t_a < n`. General
    /// case: `Q^(3,1)` plus every async-admissible set being
    /// sync-admissible.
    fn feasible(&self) -> bool;

    /// The maximal sync-admissible sets, each sorted. Used by the sweep
    /// harness to enumerate worst-case corruption placements; intended for
    /// small `n` (the threshold instance enumerates `C(n, t_s)` sets).
    fn maximal_sync_sets(&self) -> Vec<Vec<PartyId>>;

    /// The maximal async-admissible sets, each sorted.
    fn maximal_async_sets(&self) -> Vec<Vec<PartyId>>;
}

/// All `k`-subsets of `0..n`, each sorted, in lexicographic order.
fn k_subsets(n: usize, k: usize) -> Vec<Vec<PartyId>> {
    if k > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cur: Vec<PartyId> = (0..k).collect();
    loop {
        out.push(cur.clone());
        // advance to the next combination
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if cur[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        cur[i] += 1;
        for j in i + 1..k {
            cur[j] = cur[j - 1] + 1;
        }
    }
}

/// The paper's own threshold structure: any set of at most `t_s` parties
/// synchronously, at most `t_a` asynchronously.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThresholdAdversary {
    /// Number of parties.
    pub n: usize,
    /// Synchronous corruption threshold.
    pub ts: usize,
    /// Asynchronous corruption threshold.
    pub ta: usize,
}

impl ThresholdAdversary {
    /// A threshold structure over `n` parties. Feasibility is *reported* by
    /// [`AdversaryStructure::feasible`], not asserted here, so the sweep
    /// harness can also describe infeasible corners.
    pub fn new(n: usize, ts: usize, ta: usize) -> Self {
        ThresholdAdversary { n, ts, ta }
    }
}

impl AdversaryStructure for ThresholdAdversary {
    fn n(&self) -> usize {
        self.n
    }
    fn sync_admissible(&self, set: &[PartyId]) -> bool {
        set.iter().all(|&p| p < self.n) && distinct_len(set) <= self.ts
    }
    fn async_admissible(&self, set: &[PartyId]) -> bool {
        set.iter().all(|&p| p < self.n) && distinct_len(set) <= self.ta
    }
    fn threshold_projection(&self) -> (usize, usize) {
        (self.ts, self.ta)
    }
    fn feasible(&self) -> bool {
        thresholds_feasible(self.n, self.ts, self.ta)
    }
    fn maximal_sync_sets(&self) -> Vec<Vec<PartyId>> {
        k_subsets(self.n, self.ts)
    }
    fn maximal_async_sets(&self) -> Vec<Vec<PartyId>> {
        k_subsets(self.n, self.ta)
    }
}

/// Number of distinct elements of a (possibly unsorted) id list.
fn distinct_len(set: &[PartyId]) -> usize {
    let mut s: Vec<PartyId> = set.to_vec();
    s.sort_unstable();
    s.dedup();
    s.len()
}

/// An explicit-set general (non-threshold) adversary structure, given by its
/// maximal sets: a corruption set is admissible iff it is a subset of one of
/// them. This is the second [`AdversaryStructure`] instance — small by
/// construction (maximal sets are listed explicitly), matching the
/// general-adversary model of arXiv:2208.06223 at the scale our sweeps run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralAdversary {
    n: usize,
    sync_max: Vec<Vec<PartyId>>,
    async_max: Vec<Vec<PartyId>>,
}

impl GeneralAdversary {
    /// Builds the structure from explicit maximal-set lists. Sets are
    /// sorted/deduped and dominated sets (subsets of another listed set)
    /// removed, so the stored representation is canonical.
    ///
    /// # Panics
    ///
    /// Panics if any listed party id is `≥ n`.
    pub fn new(n: usize, sync_max: Vec<Vec<PartyId>>, async_max: Vec<Vec<PartyId>>) -> Self {
        let canon = |sets: Vec<Vec<PartyId>>| -> Vec<Vec<PartyId>> {
            let mut sets: Vec<Vec<PartyId>> = sets
                .into_iter()
                .map(|mut s| {
                    s.sort_unstable();
                    s.dedup();
                    assert!(s.iter().all(|&p| p < n), "party id out of range");
                    s
                })
                .collect();
            sets.sort();
            sets.dedup();
            let dominated: Vec<bool> = sets
                .iter()
                .map(|s| {
                    sets.iter()
                        .any(|o| o != s && s.iter().all(|p| o.contains(p)))
                })
                .collect();
            sets.into_iter()
                .zip(dominated)
                .filter_map(|(s, d)| (!d).then_some(s))
                .collect()
        };
        GeneralAdversary {
            n,
            sync_max: canon(sync_max),
            async_max: canon(async_max),
        }
    }

    fn admissible_in(sets: &[Vec<PartyId>], set: &[PartyId]) -> bool {
        let mut set: Vec<PartyId> = set.to_vec();
        set.sort_unstable();
        set.dedup();
        if set.is_empty() {
            return true; // the empty set is always admissible (monotonicity)
        }
        sets.iter().any(|max| set.iter().all(|p| max.contains(p)))
    }
}

impl AdversaryStructure for GeneralAdversary {
    fn n(&self) -> usize {
        self.n
    }
    fn sync_admissible(&self, set: &[PartyId]) -> bool {
        set.iter().all(|&p| p < self.n) && Self::admissible_in(&self.sync_max, set)
    }
    fn async_admissible(&self, set: &[PartyId]) -> bool {
        set.iter().all(|&p| p < self.n) && Self::admissible_in(&self.async_max, set)
    }
    fn threshold_projection(&self) -> (usize, usize) {
        let hull = |sets: &[Vec<PartyId>]| sets.iter().map(Vec::len).max().unwrap_or(0);
        (hull(&self.sync_max), hull(&self.async_max))
    }
    fn feasible(&self) -> bool {
        // Every async-admissible set must also be sync-admissible (the
        // general-adversary analogue of t_a ≤ t_s) …
        if !self
            .async_max
            .iter()
            .all(|z| Self::admissible_in(&self.sync_max, z))
        {
            return false;
        }
        // … and Q^(3,1): no Z1 ∪ Z2 ∪ Z3 ∪ Z4 (Z1..3 ∈ Z_s, Z4 ∈ Z_a)
        // covers the party set. Empty structures contribute ∅.
        let empty = vec![Vec::new()];
        let zs = if self.sync_max.is_empty() {
            &empty
        } else {
            &self.sync_max
        };
        let za = if self.async_max.is_empty() {
            &empty
        } else {
            &self.async_max
        };
        for z1 in zs {
            for z2 in zs {
                for z3 in zs {
                    for z4 in za {
                        let mut cover = vec![false; self.n];
                        for z in [z1, z2, z3, z4] {
                            for &p in z {
                                cover[p] = true;
                            }
                        }
                        if cover.iter().all(|&c| c) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
    fn maximal_sync_sets(&self) -> Vec<Vec<PartyId>> {
        self.sync_max.clone()
    }
    fn maximal_async_sets(&self) -> Vec<Vec<PartyId>> {
        self.async_max.clone()
    }
}

/// The largest feasible `(t_s, t_a)` pairs for a given `n`: for every `t_s`
/// up to `⌈n/3⌉−1`, the maximum `t_a` satisfying `3·t_s + t_a < n` (capped at
/// `t_s`). Used by experiment E1.
pub fn feasible_threshold_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut ts = 0usize;
    while 3 * ts < n {
        if (3 * ts) < n {
            let max_ta = (n - 1 - 3 * ts).min(ts);
            out.push((ts, max_ta));
        }
        ts += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_set_membership() {
        let c = CorruptionSet::new(vec![4, 1, 4]);
        assert!(c.is_corrupt(1));
        assert!(c.is_corrupt(4));
        assert!(c.is_honest(0));
        assert_eq!(c.count(), 2);
        assert_eq!(c.honest_parties(5), vec![0, 2, 3]);
    }

    #[test]
    fn first_and_last_helpers() {
        assert_eq!(CorruptionSet::first(2).corrupt_parties(), &[0, 1]);
        assert_eq!(CorruptionSet::last(7, 2).corrupt_parties(), &[5, 6]);
    }

    #[test]
    fn random_corruption_is_deterministic_and_well_formed() {
        for n in [4usize, 7, 13] {
            for t in 0..=(n - 1) / 3 {
                for seed in 0..20u64 {
                    let a = CorruptionSet::random(n, t, seed);
                    assert_eq!(a, CorruptionSet::random(n, t, seed), "same seed, same set");
                    assert_eq!(a.count(), t);
                    assert!(a.corrupt_parties().iter().all(|&p| p < n));
                }
            }
        }
        // different seeds must actually move the placement around
        let placements: std::collections::HashSet<Vec<PartyId>> = (0..32)
            .map(|s| CorruptionSet::random(10, 3, s).corrupt_parties().to_vec())
            .collect();
        assert!(placements.len() > 1, "seed must influence the placement");
    }

    #[test]
    fn strategy_actions() {
        let mut rng = StdRng::seed_from_u64(1);
        let send = WireSend {
            from: 0,
            to: 3,
            n: 4,
            path: &[],
            bytes: &[1, 2, 3],
            broadcast: true,
        };
        assert_eq!(Passive.on_send(&send, &mut rng), WireAction::Deliver);
        assert_eq!(Crash.on_send(&send, &mut rng), WireAction::Drop);
        let mut eq = EquivocateBroadcast { alt: vec![9] };
        assert_eq!(eq.on_send(&send, &mut rng), WireAction::Replace(vec![9]));
        let lower = WireSend { to: 1, ..send };
        assert_eq!(eq.on_send(&lower, &mut rng), WireAction::Deliver);
        let WireAction::Replace(garbled) = GarbleBytes.on_send(&send, &mut rng) else {
            panic!("garble must replace the payload");
        };
        assert_eq!(garbled.len(), 3);
        assert_ne!(garbled, vec![1, 2, 3], "at least one byte must change");
    }

    #[test]
    fn channel_deterministic_ignores_the_shared_rng_stream() {
        let send = WireSend {
            from: 0,
            to: 3,
            n: 4,
            path: &[],
            bytes: &[1, 2, 3, 4, 5, 6, 7, 8],
            broadcast: false,
        };
        // Same consult sequence under two *different* shared RNG states must
        // produce identical decisions …
        let mut a = ChannelDeterministic::new(GarbleBytes, 42);
        let mut b = ChannelDeterministic::new(GarbleBytes, 42);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(999);
        for _ in 0..5 {
            assert_eq!(a.on_send(&send, &mut rng_a), b.on_send(&send, &mut rng_b));
        }
        // … while consecutive consults on one channel still differ (the
        // per-channel counter advances the derived seed).
        let mut c = ChannelDeterministic::new(GarbleBytes, 42);
        let first = c.on_send(&send, &mut rng_a);
        let second = c.on_send(&send, &mut rng_a);
        assert_ne!(first, second, "consult counter must advance the stream");
        // … and the shared stream is never touched.
        let mut untouched = StdRng::seed_from_u64(7);
        let mut reference = StdRng::seed_from_u64(7);
        let _ = ChannelDeterministic::new(GarbleBytes, 1).on_send(&send, &mut untouched);
        assert_eq!(
            untouched.gen::<u64>(),
            reference.gen::<u64>(),
            "wrapper must not consume the shared adversary RNG"
        );
    }

    #[test]
    fn threshold_condition_matches_paper_example() {
        // n = 8: the paper's motivating example — 2 corruptions in a
        // synchronous network and 1 in an asynchronous network are feasible.
        assert!(thresholds_feasible(8, 2, 1));
        // t_s = t_a = 2 would need n > 8.
        assert!(!thresholds_feasible(8, 2, 2));
        // SMPC bound alone is not enough: t_s=2,t_a=2 feasible only for n ≥ 9.
        assert!(thresholds_feasible(9, 2, 2));
        // degenerate cases
        assert!(thresholds_feasible(4, 1, 0));
        assert!(!thresholds_feasible(4, 1, 1));
    }

    #[test]
    fn threshold_structure_matches_threshold_predicates() {
        let s = ThresholdAdversary::new(8, 2, 1);
        assert!(s.feasible());
        assert_eq!(s.threshold_projection(), (2, 1));
        assert!(s.sync_admissible(&[0, 5]));
        assert!(!s.sync_admissible(&[0, 5, 7]));
        assert!(s.async_admissible(&[3]));
        assert!(!s.async_admissible(&[3, 4]));
        assert!(!s.sync_admissible(&[8]), "out-of-range id is inadmissible");
        // duplicated ids count once
        assert!(s.sync_admissible(&[5, 5]));
        assert_eq!(s.maximal_sync_sets().len(), 28); // C(8,2)
        assert_eq!(s.maximal_async_sets().len(), 8); // C(8,1)
        assert!(!ThresholdAdversary::new(8, 2, 2).feasible());
    }

    #[test]
    fn k_subsets_enumeration() {
        assert_eq!(k_subsets(4, 0), vec![Vec::<PartyId>::new()]);
        assert_eq!(k_subsets(4, 4), vec![vec![0, 1, 2, 3]]);
        assert_eq!(
            k_subsets(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert!(k_subsets(3, 4).is_empty());
    }

    #[test]
    fn general_adversary_admissibility_and_q31() {
        // n = 4 with singleton maximal sets everywhere is exactly the
        // (ts, ta) = (1, 1) threshold structure — infeasible (Q^(3,1) fails:
        // {0}∪{1}∪{2}∪{3} covers P).
        let all_singletons: Vec<Vec<PartyId>> = (0..4).map(|p| vec![p]).collect();
        let s = GeneralAdversary::new(4, all_singletons.clone(), all_singletons.clone());
        assert!(!s.feasible());
        // Restricting the async structure to {3} alone mirrors (1, 0)-ish
        // placements... still infeasible because sync sets cover 0,1,2 and
        // async adds 3.
        let s = GeneralAdversary::new(4, all_singletons.clone(), vec![vec![3]]);
        assert!(!s.feasible());
        // Async structure empty (t_a = 0): Q^(3,1) needs no 3 sync sets to
        // cover P; with singletons over n = 4 they cannot.
        let s = GeneralAdversary::new(4, all_singletons.clone(), Vec::new());
        assert!(s.feasible());
        assert_eq!(s.threshold_projection(), (1, 0));
        assert!(s.sync_admissible(&[2]));
        assert!(!s.sync_admissible(&[1, 2]));
        assert!(s.async_admissible(&[]));
        assert!(!s.async_admissible(&[0]));
        // A genuinely non-threshold structure: party 0 may only be corrupted
        // together with nobody else, while {1,2} may fall jointly — no
        // threshold expresses "either {0} or {1,2}".
        let s = GeneralAdversary::new(7, vec![vec![0], vec![1, 2]], vec![vec![0]]);
        assert!(s.feasible());
        assert_eq!(s.threshold_projection(), (2, 1));
        assert!(s.sync_admissible(&[1, 2]));
        assert!(!s.sync_admissible(&[0, 1]), "mixed set is not admissible");
        assert!(s.async_admissible(&[0]));
        assert!(!s.async_admissible(&[1]));
    }

    #[test]
    fn general_adversary_canonicalizes_maximal_sets() {
        let s = GeneralAdversary::new(
            5,
            vec![vec![2, 1], vec![1], vec![1, 2], vec![4]],
            Vec::new(),
        );
        // {1} is dominated by {1,2}; duplicates collapse.
        assert_eq!(s.maximal_sync_sets(), vec![vec![1, 2], vec![4]]);
    }

    #[test]
    fn async_set_escaping_sync_structure_is_infeasible() {
        // t_a ≤ t_s analogue: an async-admissible set that is not
        // sync-admissible breaks feasibility outright.
        let s = GeneralAdversary::new(7, vec![vec![0]], vec![vec![1]]);
        assert!(!s.feasible());
    }

    #[test]
    fn feasible_pairs_are_feasible_and_maximal() {
        for n in 4..20 {
            for (ts, ta) in feasible_threshold_pairs(n) {
                assert!(thresholds_feasible(n, ts, ta), "n={n} ts={ts} ta={ta}");
                // maximality in ta
                assert!(ta == ts || !thresholds_feasible(n, ts, ta + 1));
            }
        }
    }
}
