//! The protocol/state-machine interface and the execution [`Context`].
//!
//! Every protocol of the paper is implemented as a state machine that reacts
//! to delivered messages and local timers. Composite protocols (e.g. `Π_BC`
//! containing an A-cast and an SBA instance, or `Π_VSS` containing `n`
//! `Π_WPS` instances) own their children and route messages to them using a
//! hierarchical *instance path*: every message carries the path of the
//! instance it is addressed to, and [`Context::scoped`] makes the routing
//! transparent to the child code.

use std::any::Any;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::transport::{PartyId, Time};

/// Hierarchical instance path identifying one protocol instance within the
/// composition tree (e.g. `[ACS, vss=3, wps=5, ba, bc=2, acast]`).
///
/// Interned as a cheaply clonable `Arc<[u32]>`: one allocation when an
/// effect is emitted, shared by reference across every queued delivery event
/// (all `n` recipients of a broadcast) and transcript entry instead of a
/// `Vec<u32>` clone per copy.
pub type Path = Arc<[u32]>;

/// Borrowed view of a [`Path`].
pub type PathSlice<'a> = &'a [u32];

/// A protocol instance: an event-driven state machine.
///
/// Implementations must be deterministic functions of the events they are
/// fed plus the randomness drawn from [`Context::rng`]; the simulator then
/// guarantees reproducible executions.
///
/// `Send` is a supertrait so that the simulator may pre-execute different
/// parties' same-time events on worker threads (see the "Deterministic
/// parallel execution" section of DESIGN.md). A party's state machine is
/// only ever touched by one thread at a time — the bound merely allows the
/// *ownership* of that party to move to a worker for the duration of a
/// time slice.
pub trait Protocol<M>: Any + Send {
    /// Called exactly once, at the party's local time of instance creation.
    fn init(&mut self, ctx: &mut Context<'_, M>);

    /// A message addressed to this instance (or one of its descendants)
    /// arrived. `path` is the remaining path *below* this instance: an empty
    /// path means the message is for this instance itself; otherwise
    /// `path[0]` identifies the child to route to.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: PartyId, path: PathSlice<'_>, msg: M);

    /// A timer set by this instance or one of its descendants fired.
    /// `path` follows the same routing convention as [`Protocol::on_message`].
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, path: PathSlice<'_>, timer_id: u64);

    /// Upcast helper for inspecting protocol state after a simulation run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast helper.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Side effects produced while handling one event: outgoing messages and
/// timer requests, each tagged with the full instance path they originate
/// from.
#[derive(Debug, Default)]
pub struct Effects<M> {
    /// `(destination, instance path, payload)` unicasts.
    pub sends: Vec<(PartyId, Path, M)>,
    /// `(instance path, payload)` broadcasts: one effect per *broadcast*,
    /// not per recipient. The simulator encodes the payload once and shares
    /// the bytes across all `n` deliveries (including the sender's own).
    pub broadcasts: Vec<(Path, M)>,
    /// `(delay, instance path, timer id)` timer requests.
    pub timers: Vec<(Time, Path, u64)>,
}

impl<M> Effects<M> {
    /// An empty effect set.
    pub fn new() -> Self {
        Effects {
            sends: Vec::new(),
            broadcasts: Vec::new(),
            timers: Vec::new(),
        }
    }
}

/// Execution context handed to protocol instances on every event.
///
/// It knows the party's identity, the global protocol parameters, the current
/// local time, the instance path of the code currently running (so that sends
/// and timers are automatically scoped), the party's deterministic RNG and
/// the ideal common-coin oracle.
pub struct Context<'a, M> {
    /// This party's id (0-indexed; the paper's `P_i` is id `i-1`).
    pub me: PartyId,
    /// Total number of parties `n`.
    pub n: usize,
    /// Current local time (equals global simulation time).
    pub now: Time,
    /// The publicly known synchronous delay bound `Δ`.
    pub delta: Time,
    path: Vec<u32>,
    /// Interned `Arc` of the current `path`, built lazily on the first
    /// effect and reused until [`Context::scoped`] changes the path — a
    /// handler emitting many sends/timers from one instance allocates the
    /// path once.
    path_arc: Option<Path>,
    effects: &'a mut Effects<M>,
    rng: &'a mut StdRng,
    coin_seed: u64,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context rooted at an empty instance path. Used by the
    /// simulator; protocol code receives contexts rather than building them.
    pub fn new(
        me: PartyId,
        n: usize,
        now: Time,
        delta: Time,
        effects: &'a mut Effects<M>,
        rng: &'a mut StdRng,
        coin_seed: u64,
    ) -> Self {
        Context {
            me,
            n,
            now,
            delta,
            path: Vec::new(),
            path_arc: None,
            effects,
            rng,
            coin_seed,
        }
    }

    /// The instance path of the code currently executing.
    pub fn path(&self) -> PathSlice<'_> {
        &self.path
    }

    /// The interned `Arc` form of the current path (allocated at most once
    /// per scope level per event).
    fn current_path(&mut self) -> Path {
        self.path_arc
            .get_or_insert_with(|| Arc::from(self.path.as_slice()))
            .clone()
    }

    /// Sends `msg` to party `to`, addressed to the current instance path.
    pub fn send(&mut self, to: PartyId, msg: M) {
        let path = self.current_path();
        self.effects.sends.push((to, path, msg));
    }

    /// Sends `msg` to every party (including the sender itself, as the
    /// paper's protocols have parties process their own broadcasts).
    ///
    /// Unlike `n` individual [`Context::send`] calls this emits a *single*
    /// broadcast effect: the simulator encodes the payload once and shares
    /// the encoded bytes across all `n` deliveries, so no per-recipient
    /// clone of the payload is ever made.
    pub fn broadcast(&mut self, msg: M) {
        let path = self.current_path();
        self.effects.broadcasts.push((path, msg));
    }

    /// Requests a timer that fires after `delay` local time units, delivered
    /// back to the current instance path with the given `timer_id`.
    pub fn set_timer(&mut self, delay: Time, timer_id: u64) {
        let path = self.current_path();
        self.effects.timers.push((delay, path, timer_id));
    }

    /// Requests a timer that fires at the next local time that is an exact
    /// multiple of `Δ` (used by the "wait till the local time becomes a
    /// multiple of Δ" steps of `Π_WPS` / `Π_VSS`). If the current time is
    /// already a multiple of `Δ`, the timer fires after a full `Δ`.
    pub fn set_timer_next_delta_multiple(&mut self, timer_id: u64) {
        let rem = self.now % self.delta;
        let delay = if rem == 0 {
            self.delta
        } else {
            self.delta - rem
        };
        self.set_timer(delay, timer_id);
    }

    /// Runs `f` with the context scoped one level deeper (segment `seg`), so
    /// that the child instance's sends/timers carry the extended path.
    pub fn scoped<R>(&mut self, seg: u32, f: impl FnOnce(&mut Context<'_, M>) -> R) -> R {
        self.path.push(seg);
        self.path_arc = None;
        let r = f(self);
        self.path.pop();
        self.path_arc = None;
        r
    }

    /// The party's deterministic random-number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Ideal common coin for round `round` of the *current* instance: every
    /// party querying the same (instance path, round) obtains the same
    /// unpredictable bit. This models the perfectly-secure common coin that
    /// the ABA protocols of \[3, 7\] construct from shunning AVSS (DESIGN.md
    /// substitution S1).
    pub fn common_coin(&self, round: u64) -> bool {
        let mut h = self.coin_seed ^ 0x9e37_79b9_7f4a_7c15;
        for &seg in &self.path {
            h = splitmix64(h ^ seg as u64);
        }
        h = splitmix64(h ^ round.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        h & 1 == 1
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Convenience trait for drawing random field-sized values in protocol code
/// without importing `rand` traits everywhere.
pub trait RngExt {
    /// A uniformly random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl RngExt for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scoped_paths_extend_and_restore() {
        let mut effects: Effects<u32> = Effects::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Context::new(0, 4, 0, 10, &mut effects, &mut rng, 42);
        ctx.send(1, 7);
        ctx.scoped(5, |ctx| {
            ctx.send(2, 8);
            ctx.scoped(9, |ctx| ctx.set_timer(3, 1));
        });
        ctx.send(3, 9);
        assert_eq!(&effects.sends[0].1[..], &[] as &[u32]);
        assert_eq!(&effects.sends[1].1[..], &[5]);
        assert_eq!(&effects.sends[2].1[..], &[] as &[u32]);
        assert_eq!(&effects.timers[0].1[..], &[5, 9]);
    }

    #[test]
    fn effects_from_one_scope_share_one_interned_path() {
        let mut effects: Effects<u32> = Effects::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Context::new(0, 4, 0, 10, &mut effects, &mut rng, 42);
        ctx.scoped(5, |ctx| {
            ctx.send(1, 7);
            ctx.send(2, 8);
            ctx.broadcast(9);
        });
        assert!(Arc::ptr_eq(&effects.sends[0].1, &effects.sends[1].1));
        assert!(Arc::ptr_eq(&effects.sends[0].1, &effects.broadcasts[0].0));
    }

    #[test]
    fn broadcast_emits_one_shared_effect() {
        let mut effects: Effects<u32> = Effects::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Context::new(2, 5, 0, 10, &mut effects, &mut rng, 42);
        ctx.scoped(3, |ctx| ctx.broadcast(1));
        assert!(effects.sends.is_empty());
        assert_eq!(effects.broadcasts.len(), 1);
        assert_eq!(&effects.broadcasts[0].0[..], &[3]);
        assert_eq!(effects.broadcasts[0].1, 1);
    }

    #[test]
    fn delta_multiple_timer() {
        let mut effects: Effects<u32> = Effects::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = Context::new(0, 4, 25, 10, &mut effects, &mut rng, 42);
        ctx.set_timer_next_delta_multiple(7);
        assert_eq!(effects.timers[0].0, 5); // 25 → 30
        let mut effects2: Effects<u32> = Effects::new();
        let mut ctx = Context::new(0, 4, 30, 10, &mut effects2, &mut rng, 42);
        ctx.set_timer_next_delta_multiple(7);
        assert_eq!(effects2.timers[0].0, 10); // already a multiple → next one
    }

    #[test]
    fn common_coin_is_path_and_round_dependent_but_party_independent() {
        let mut e1: Effects<u32> = Effects::new();
        let mut e2: Effects<u32> = Effects::new();
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(999);
        let mut c1 = Context::new(0, 4, 0, 10, &mut e1, &mut rng1, 42);
        let mut c2 = Context::new(3, 4, 50, 10, &mut e2, &mut rng2, 42);
        // same path + round → same coin regardless of party/time/rng
        let a = c1.scoped(3, |c| c.common_coin(2));
        let b = c2.scoped(3, |c| c.common_coin(2));
        assert_eq!(a, b);
        // different rounds give (eventually) different coins
        let coins: Vec<bool> = (0..64)
            .map(|r| c1.scoped(3, |c| c.common_coin(r)))
            .collect();
        assert!(coins.iter().any(|&c| c) && coins.iter().any(|&c| !c));
    }
}
