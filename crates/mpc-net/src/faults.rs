//! Deterministic fault injection at the [`crate::scheduler`] seam.
//!
//! A [`FaultPlan`] is an ordered list of composable fault rules — crashes
//! (with optional recovery), partitions (with optional heal), and targeted
//! message drop / duplicate / delay bursts — evaluated by a **pure**
//! function of the message coordinates `(from, to, send_tick,
//! deliver_tick)`. No randomness is drawn at query time, so the *same* plan
//! produces the *same* per-message decisions on the simulator and the
//! threaded backend: every failure a sweep finds is a one-seed repro.
//!
//! Determinism contract:
//!
//! * [`FaultPlan::resolve`] is a pure function of its arguments; plans carry
//!   no interior mutability and no RNG.
//! * Faults only ever **add** latency (or drop a message outright) — the
//!   adjusted delivery tick is never earlier than the scheduler's, which
//!   preserves the threaded backend's conservative delivery floors.
//! * Self-sends (`to == from`) are exempt: those model a party's internal
//!   hand-off, not network traffic.
//! * Crash faults act at the *wire*: a crashed party is fail-silent (its
//!   outbound and inbound traffic is cut) while its runtime keeps executing,
//!   which is exactly how both transports can honor the fault identically.
//! * Crash-with-recovery and partition-then-heal **hold** the affected
//!   message and re-deliver it after the fault clears with the original link
//!   latency added, guaranteeing eventual delivery — the protocol then
//!   completes through the asynchronous fallback path instead of wedging.

use crate::transport::{PartyId, Time};

/// One composable injected fault. All windows are half-open `[start, end)`
/// in simulated ticks, matched against a message's **send** tick (a message
/// already in flight when a partition starts still arrives; one sent during
/// it is cut).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultRule {
    /// `party` fail-silent from tick `at`; with `recover = Some(r)` its
    /// traffic is held and re-delivered from tick `r`, otherwise cut forever.
    Crash {
        /// The crashing party.
        party: PartyId,
        /// First tick at which the party is down.
        at: Time,
        /// Tick at which the party is back, if it ever is.
        recover: Option<Time>,
    },
    /// The network splits into `side` vs. its complement from tick `from`;
    /// messages crossing the cut are held until `heal` (or dropped if the
    /// partition never heals).
    Partition {
        /// One side of the cut (the other side is its complement).
        side: Vec<PartyId>,
        /// First tick at which the cut is active.
        from: Time,
        /// Tick at which the partition heals, if it ever does.
        heal: Option<Time>,
    },
    /// Drop every matching message sent during the window.
    DropBurst {
        /// Only messages from this sender (`None` = any sender).
        from: Option<PartyId>,
        /// Only messages to this receiver (`None` = any receiver).
        to: Option<PartyId>,
        /// Half-open `[start, end)` send-tick window.
        window: (Time, Time),
    },
    /// Deliver every matching message sent during the window **twice**: once
    /// on schedule and once `gap` ticks later. Exercises the protocols'
    /// at-least-once tolerance (replay is within the adversary's power on an
    /// asynchronous network).
    DuplicateBurst {
        /// Only messages from this sender (`None` = any sender).
        from: Option<PartyId>,
        /// Only messages to this receiver (`None` = any receiver).
        to: Option<PartyId>,
        /// Half-open `[start, end)` send-tick window.
        window: (Time, Time),
        /// Extra ticks after the scheduled delivery for the duplicate copy.
        gap: Time,
    },
    /// Add `extra` ticks of latency to every matching message sent during
    /// the window (targeted slow-link schedule).
    DelayBurst {
        /// Only messages from this sender (`None` = any sender).
        from: Option<PartyId>,
        /// Only messages to this receiver (`None` = any receiver).
        to: Option<PartyId>,
        /// Half-open `[start, end)` send-tick window.
        window: (Time, Time),
        /// Additional latency in ticks.
        extra: Time,
    },
}

/// What the plan decided for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver at `at` (≥ the scheduler's tick); with `duplicate = Some(d)`,
    /// deliver a second identical copy at `d > at`.
    Deliver {
        /// Adjusted delivery tick.
        at: Time,
        /// Delivery tick of the duplicate copy, if any.
        duplicate: Option<Time>,
    },
    /// Suppress the message entirely.
    Drop,
}

/// An ordered, immutable list of [`FaultRule`]s applied to every
/// cross-party message on top of the scheduler's link delays.
///
/// Rules compose front to back: the first rule that drops wins; hold/delay
/// adjustments accumulate on the delivery tick; of several duplicate rules
/// the last match wins. Duplicate copies are *not* re-filtered through the
/// plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

fn in_window(t: Time, (start, end): (Time, Time)) -> bool {
    t >= start && t < end
}

fn filters_match(f: Option<PartyId>, t: Option<PartyId>, from: PartyId, to: PartyId) -> bool {
    f.is_none_or(|p| p == from) && t.is_none_or(|p| p == to)
}

impl FaultPlan {
    /// The empty plan: every message passes through untouched.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan made of the given rules, applied in order.
    pub fn new(rules: Vec<FaultRule>) -> Self {
        FaultPlan { rules }
    }

    /// Is this the empty plan?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, in application order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Appends a crash fault. `recover = None` crashes forever.
    pub fn crash(mut self, party: PartyId, at: Time, recover: Option<Time>) -> Self {
        self.rules.push(FaultRule::Crash { party, at, recover });
        self
    }

    /// Parties targeted by a [`FaultRule::Crash`] rule (recovering or not),
    /// deduplicated and in ascending order. A crash target spends one unit of
    /// the corruption budget: it is a fail-stop fault the protocol must
    /// tolerate, and it is *not* owed an output — completion predicates must
    /// exempt it.
    pub fn crash_targets(&self) -> Vec<PartyId> {
        let mut targets: Vec<PartyId> = self
            .rules
            .iter()
            .filter_map(|r| match r {
                FaultRule::Crash { party, .. } => Some(*party),
                _ => None,
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        targets
    }

    /// Appends a partition of `side` vs. the rest over `[from, heal)`.
    pub fn partition(mut self, side: Vec<PartyId>, from: Time, heal: Option<Time>) -> Self {
        self.rules.push(FaultRule::Partition { side, from, heal });
        self
    }

    /// Appends a drop burst.
    pub fn drop_burst(
        mut self,
        from: Option<PartyId>,
        to: Option<PartyId>,
        window: (Time, Time),
    ) -> Self {
        self.rules.push(FaultRule::DropBurst { from, to, window });
        self
    }

    /// Appends a duplicate burst with the given re-delivery gap.
    pub fn duplicate_burst(
        mut self,
        from: Option<PartyId>,
        to: Option<PartyId>,
        window: (Time, Time),
        gap: Time,
    ) -> Self {
        self.rules.push(FaultRule::DuplicateBurst {
            from,
            to,
            window,
            gap,
        });
        self
    }

    /// Appends a delay burst adding `extra` ticks.
    pub fn delay_burst(
        mut self,
        from: Option<PartyId>,
        to: Option<PartyId>,
        window: (Time, Time),
        extra: Time,
    ) -> Self {
        self.rules.push(FaultRule::DelayBurst {
            from,
            to,
            window,
            extra,
        });
        self
    }

    /// Decides the fate of one message: `from → to`, sent at `send_tick`,
    /// scheduled (by the link scheduler) to arrive at `deliver_tick`. Pure —
    /// both transports call this with identical coordinates and get
    /// identical answers.
    pub fn resolve(
        &self,
        from: PartyId,
        to: PartyId,
        send_tick: Time,
        deliver_tick: Time,
    ) -> FaultOutcome {
        if to == from {
            return FaultOutcome::Deliver {
                at: deliver_tick,
                duplicate: None,
            };
        }
        let latency = deliver_tick.saturating_sub(send_tick);
        let mut at = deliver_tick;
        let mut duplicate = None;
        for rule in &self.rules {
            match rule {
                FaultRule::Crash {
                    party,
                    at: start,
                    recover,
                } => {
                    if from != *party && to != *party {
                        continue;
                    }
                    let down = match recover {
                        Some(end) => in_window(send_tick, (*start, *end)),
                        None => send_tick >= *start,
                    };
                    if !down {
                        continue;
                    }
                    match recover {
                        None => return FaultOutcome::Drop,
                        // Held until recovery, then re-delivered with the
                        // original link latency on top (strictly later than
                        // the scheduled tick because end > send_tick here).
                        Some(end) => at = at.max(*end + latency),
                    }
                }
                FaultRule::Partition {
                    side,
                    from: start,
                    heal,
                } => {
                    let crosses = side.contains(&from) != side.contains(&to);
                    if !crosses {
                        continue;
                    }
                    let cut = match heal {
                        Some(end) => in_window(send_tick, (*start, *end)),
                        None => send_tick >= *start,
                    };
                    if !cut {
                        continue;
                    }
                    match heal {
                        None => return FaultOutcome::Drop,
                        Some(end) => at = at.max(*end + latency),
                    }
                }
                FaultRule::DropBurst {
                    from: f,
                    to: t,
                    window,
                } => {
                    if filters_match(*f, *t, from, to) && in_window(send_tick, *window) {
                        return FaultOutcome::Drop;
                    }
                }
                FaultRule::DuplicateBurst {
                    from: f,
                    to: t,
                    window,
                    gap,
                } => {
                    if filters_match(*f, *t, from, to) && in_window(send_tick, *window) {
                        duplicate = Some((*gap).max(1));
                    }
                }
                FaultRule::DelayBurst {
                    from: f,
                    to: t,
                    window,
                    extra,
                } => {
                    if filters_match(*f, *t, from, to) && in_window(send_tick, *window) {
                        at += extra;
                    }
                }
            }
        }
        FaultOutcome::Deliver {
            at,
            duplicate: duplicate.map(|g| at + g),
        }
    }

    /// Named plans for the `MPC_FAULT_PLAN` environment knob and the CI
    /// smoke matrix, parameterized on the run's `n` and `Δ` so windows land
    /// inside the protocol's active period. Crash/partition targets pick
    /// high party ids (the default corruption helpers corrupt low ids, so
    /// the fault usually lands on an honest party — the harder case).
    pub fn preset(name: &str, n: usize, delta: Time) -> Option<FaultPlan> {
        let last = n - 1;
        Some(match name {
            "none" | "" => FaultPlan::none(),
            // fail-silent forever from early in the run
            "crash" => FaultPlan::none().crash(last, 2 * delta, None),
            // down for a while, then back: exercises held re-delivery
            "crash-recover" => FaultPlan::none().crash(last, 2 * delta, Some(30 * delta)),
            // minority side cut off, then healed
            "partition-heal" => FaultPlan::none().partition(
                (0..n.div_ceil(4).max(1)).collect(),
                2 * delta,
                Some(30 * delta),
            ),
            // every message sent in the window is delivered twice
            "dup-burst" => FaultPlan::none().duplicate_burst(None, None, (0, 40 * delta), delta),
            // a burst of omissions on one inbound edge
            "drop-burst" => FaultPlan::none().drop_burst(None, Some(last), (2 * delta, 10 * delta)),
            // targeted slow links out of one party
            "delay-burst" => {
                FaultPlan::none().delay_burst(Some(last), None, (0, 40 * delta), 10 * delta)
            }
            _ => return None,
        })
    }

    /// Named *socket-level* chaos plans for the TCP transport's chaos shim
    /// (`MPC_CHAOS_PLAN` / `MpcBuilder::chaos_plan`). Same rule vocabulary
    /// and `(from, to, send_tick, deliver_tick)` coordinates as
    /// [`FaultPlan::preset`], but interpreted on byte streams instead of
    /// logical messages: `Drop` severs the connection mid-record, an extra
    /// delay stalls the write, a duplicate duplicates a byte run and forces
    /// a resync. Chaos applies only to a record's *first* transmission —
    /// replays after a reconnect are written clean — so no plan can
    /// suppress a message, only stretch its wall-clock path; the logical
    /// schedule (and thus the guarantee matrix) is untouched.
    pub fn chaos_preset(name: &str, n: usize, delta: Time) -> Option<FaultPlan> {
        let last = n - 1;
        Some(match name {
            "none" | "" => FaultPlan::none(),
            // every data frame out of one party is torn mid-record, for the
            // whole run: reconnect-with-replay in every protocol phase
            "sever" => FaultPlan::none().drop_burst(Some(last), None, (0, Time::MAX)),
            // writes out of one party sleep past any test-sized wedge
            // deadline during one early tick (each stalled record costs real
            // wall time up to the supervisor's stall cap, so the window is
            // kept to a single tick)
            "stall" => {
                FaultPlan::none().delay_burst(Some(last), None, (2 * delta, 2 * delta + 1), 50_000)
            }
            // frames out of one party grow a duplicated byte run: the
            // receiver's checksum rejects it and resyncs by teardown
            "dup-bytes" => {
                FaultPlan::none().duplicate_burst(Some(last), None, (0, Time::MAX), delta)
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_passes_through() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(
            p.resolve(0, 1, 10, 13),
            FaultOutcome::Deliver {
                at: 13,
                duplicate: None
            }
        );
    }

    #[test]
    fn crash_forever_drops_both_directions() {
        let p = FaultPlan::none().crash(2, 100, None);
        assert_eq!(p.resolve(2, 0, 100, 103), FaultOutcome::Drop);
        assert_eq!(p.resolve(0, 2, 150, 152), FaultOutcome::Drop);
        // before the crash: untouched
        assert_eq!(
            p.resolve(2, 0, 99, 102),
            FaultOutcome::Deliver {
                at: 102,
                duplicate: None
            }
        );
        // unrelated link: untouched
        assert_eq!(
            p.resolve(0, 1, 200, 203),
            FaultOutcome::Deliver {
                at: 203,
                duplicate: None
            }
        );
    }

    #[test]
    fn crash_recover_holds_and_redelivers_later() {
        let p = FaultPlan::none().crash(2, 100, Some(200));
        // held: recovery + original latency, strictly after the schedule
        assert_eq!(
            p.resolve(2, 0, 150, 153),
            FaultOutcome::Deliver {
                at: 203,
                duplicate: None
            }
        );
        // after recovery: untouched
        assert_eq!(
            p.resolve(2, 0, 200, 204),
            FaultOutcome::Deliver {
                at: 204,
                duplicate: None
            }
        );
    }

    #[test]
    fn partition_cuts_only_crossing_traffic() {
        let p = FaultPlan::none().partition(vec![0, 1], 50, Some(90));
        assert_eq!(
            p.resolve(0, 2, 60, 63),
            FaultOutcome::Deliver {
                at: 93,
                duplicate: None
            }
        );
        assert_eq!(
            p.resolve(3, 1, 60, 62),
            FaultOutcome::Deliver {
                at: 92,
                duplicate: None
            }
        );
        // same side: untouched
        assert_eq!(
            p.resolve(0, 1, 60, 61),
            FaultOutcome::Deliver {
                at: 61,
                duplicate: None
            }
        );
        // unhealed partition drops
        let p = FaultPlan::none().partition(vec![0, 1], 50, None);
        assert_eq!(p.resolve(0, 2, 60, 63), FaultOutcome::Drop);
    }

    #[test]
    fn bursts_filter_and_window() {
        let p = FaultPlan::none()
            .drop_burst(Some(1), None, (10, 20))
            .duplicate_burst(None, Some(3), (0, 100), 5)
            .delay_burst(Some(0), Some(2), (0, 100), 7);
        assert_eq!(p.resolve(1, 2, 15, 18), FaultOutcome::Drop);
        assert_eq!(
            p.resolve(1, 2, 20, 23),
            FaultOutcome::Deliver {
                at: 23,
                duplicate: None
            }
        );
        assert_eq!(
            p.resolve(2, 3, 30, 33),
            FaultOutcome::Deliver {
                at: 33,
                duplicate: Some(38)
            }
        );
        assert_eq!(
            p.resolve(0, 2, 30, 33),
            FaultOutcome::Deliver {
                at: 40,
                duplicate: None
            }
        );
    }

    #[test]
    fn self_sends_are_exempt() {
        let p = FaultPlan::none()
            .crash(2, 0, None)
            .drop_burst(None, None, (0, 1000));
        assert_eq!(
            p.resolve(2, 2, 10, 10),
            FaultOutcome::Deliver {
                at: 10,
                duplicate: None
            }
        );
    }

    #[test]
    fn faults_never_reduce_latency() {
        let p = FaultPlan::none()
            .crash(1, 10, Some(40))
            .partition(vec![0], 5, Some(60))
            .delay_burst(None, None, (0, 100), 3);
        for (from, to, s) in [(1usize, 2usize, 15u64), (0, 3, 20), (2, 3, 50)] {
            let d = s + 4;
            match p.resolve(from, to, s, d) {
                FaultOutcome::Deliver { at, duplicate } => {
                    assert!(at >= d, "{from}->{to}@{s}: {at} < {d}");
                    if let Some(dup) = duplicate {
                        assert!(dup > at);
                    }
                }
                FaultOutcome::Drop => {}
            }
        }
    }

    #[test]
    fn presets_resolve_and_unknown_is_none() {
        for name in [
            "none",
            "crash",
            "crash-recover",
            "partition-heal",
            "dup-burst",
            "drop-burst",
            "delay-burst",
        ] {
            assert!(FaultPlan::preset(name, 4, 8).is_some(), "{name}");
        }
        assert!(FaultPlan::preset("no-such-plan", 4, 8).is_none());
        assert!(FaultPlan::preset("none", 4, 8).unwrap().is_empty());
    }
}
