//! Deterministic event-driven simulation of the paper's communication model.
//!
//! The paper (Section 2) assumes a complete network of pairwise private and
//! authentic channels between `n` parties, which is either
//!
//! * **synchronous** — every sent message is delivered within a publicly known
//!   bound `Δ`, and parties share a global clock; or
//! * **asynchronous** — messages are delayed arbitrarily (but finitely) and
//!   delivered in an order chosen by an adversarial scheduler.
//!
//! Crucially the parties do **not** know which of the two they are running in.
//! This crate provides:
//!
//! * [`Simulation`] — a discrete-event simulator over both network kinds with
//!   a pluggable [`scheduler::Scheduler`] (message-delay/ordering adversary);
//! * [`Protocol`] / [`Context`] — the state-machine interface protocol
//!   implementations are written against, with hierarchical instance-path
//!   routing so that sub-protocols compose exactly as in the paper;
//! * [`wire`] — the canonical byte codec every simulated message travels
//!   through, the source of the *exact* bit accounting;
//! * [`adversary`] — the static-corruption model and the pluggable
//!   wire-level [`adversary::ByzantineStrategy`] behaviours (crash,
//!   equivocation, byte garbling);
//! * [`metrics::Metrics`] — honest-party communication accounting used by the
//!   experiment suite;
//! * an ideal common-coin oracle used by the asynchronous Byzantine agreement
//!   substitute (see DESIGN.md, substitution S1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod context;
pub mod faults;
pub mod metrics;
pub mod scheduler;
pub mod simulation;
pub mod transport;
pub mod wire;

pub use adversary::{
    AdversaryStructure, ByzantineStrategy, ChannelDeterministic, CorruptionSet, Crash,
    EquivocateBroadcast, GarbleBytes, GeneralAdversary, Passive, ThresholdAdversary, WireAction,
    WireSend,
};
pub use context::{Context, Effects, Path, PathSlice, Protocol};
pub use faults::{FaultOutcome, FaultPlan, FaultRule};
pub use metrics::Metrics;
pub use scheduler::{
    AsyncScheduler, FixedDelay, LinkDelays, Scheduler, SkewedAsyncScheduler, UniformDelay,
};
pub use simulation::{NetConfig, NetworkKind, Simulation, TranscriptEntry, TranscriptEvent};
pub use transport::{
    party_as, tcp::TcpNet, threaded::ThreadedNet, Backend, PartyId, PartyView, Time, Transport,
    TransportError,
};
pub use wire::{Frame, FrameBuilder, FrameItem, WireDecode, WireEncode, WireError, WireReader};
