//! Communication accounting for the experiment suite.
//!
//! The paper states all its communication-complexity bounds as "bits
//! communicated by the honest parties"; these counters measure exactly that.
//! The struct additionally carries *scheduler observability* counters (event
//! throughput, queue pressure, same-time batch widths, worker threads) used
//! to understand and tune the simulator itself.

use std::collections::BTreeMap;

/// Aggregated communication metrics of one run, on either transport backend.
///
/// Equality (`PartialEq`) compares every *execution* field — everything that
/// must be bit-identical across reruns, across worker-thread counts and
/// across transport backends — and deliberately ignores the harness /
/// wall-clock observability fields ([`Metrics::worker_threads`],
/// [`Metrics::max_queue_depth`], [`Metrics::timeouts_fired`],
/// [`Metrics::held_packets_peak`], [`Metrics::late_packets`]): those describe
/// *how* the run was executed (thread count, real-time pacing, queue
/// pressure), not *what* it computed. A `threads = 4` run must compare equal
/// to the `threads = 1` run it reproduces, and a threaded-backend run must
/// compare equal to its simulator oracle even though its wall-clock-driven
/// timer/queue behaviour is inherently non-reproducible.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Messages sent by honest parties.
    pub honest_messages: u64,
    /// Bits sent by honest parties: the *exact* length of the canonical wire
    /// encoding ([`crate::wire::WireEncode`]) of every message they put on a
    /// channel, ×8. A broadcast counts once per recipient (the network is a
    /// complete graph of pairwise channels), even though the simulator
    /// encodes its payload only once.
    pub honest_bits: u64,
    /// Messages sent by corrupt parties that reached the wire
    /// (informational only; messages their [`crate::adversary::ByzantineStrategy`]
    /// dropped are in [`Metrics::adversary_drops`] instead).
    pub corrupt_messages: u64,
    /// Corrupt-sender messages suppressed by the Byzantine strategy.
    pub adversary_drops: u64,
    /// Corrupt-sender messages whose bytes the Byzantine strategy replaced
    /// (equivocation, garbling).
    pub adversary_tampered: u64,
    /// Deliveries whose bytes failed to decode as a protocol message; they
    /// are treated as Byzantine input and dropped at the boundary.
    pub decode_failures: u64,
    /// Number of events processed.
    pub events_processed: u64,
    /// Wire-frame events dispatched (one per `(sender, destination)` frame;
    /// a broadcast frame counts once per recipient). Always 0 when frame
    /// coalescing is disabled.
    pub frames_sent: u64,
    /// Largest number of pending events observed at a time-slice boundary
    /// (sampled once per slice, including the slice's own events). Queue
    /// *pressure* is scheduler observability, not execution fingerprint —
    /// the threaded backend's equivalent (held-packet depth) depends on
    /// wall-clock arrival timing — so it is excluded from `PartialEq`.
    pub max_queue_depth: u64,
    /// Histogram of same-time batch widths: `batch_width_hist[i]` counts the
    /// batches that processed a number of events in `[2^i, 2^(i+1))` (batch
    /// width includes same-tick cascades such as broadcast self-deliveries).
    /// Empty batches are never recorded. Batch *granularity* is
    /// backend-specific — the simulator records whole time slices (all
    /// parties), the threaded backend per-party tick batches — so this is
    /// engine observability, excluded from `PartialEq`.
    pub batch_width_hist: Vec<u64>,
    /// The worker-thread count the simulation was configured with
    /// (`NetConfig::with_threads` / the `MPC_THREADS` environment knob).
    /// Harness observability only — excluded from `PartialEq`, because the
    /// whole point of the deterministic parallel engine is that this knob
    /// does not change the execution.
    pub worker_threads: u64,
    /// Honest bits broken down by the *top-level path segment* of the sending
    /// instance — lets composite experiments attribute cost to sub-protocols.
    pub honest_bits_by_root_segment: BTreeMap<u32, u64>,
    /// Honest bits broken down by *sending party* (`honest_bits_by_party[i]`
    /// is the exact wire-bit total party `i` put on its channels; corrupt
    /// parties stay 0). Part of the execution fingerprint: the transport
    /// conformance oracle asserts this vector is identical between the
    /// threaded backend and the simulator.
    pub honest_bits_by_party: Vec<u64>,
    /// Timer expiries processed. On the threaded backend these are *real*
    /// wall-clock timeouts (`recv_timeout` deadlines), so the count is kept
    /// out of `PartialEq`; the simulator counts its timer events, letting
    /// the sweep harness assert timeout-driven fallback on either backend.
    pub timeouts_fired: u64,
    /// Threaded backend only: largest number of latency-held inbound packets
    /// observed at any party. Wall-clock observability, excluded from
    /// `PartialEq`.
    pub held_packets_peak: u64,
    /// Threaded backend only: packets that physically arrived after their
    /// delivery deadline had already been processed (their logical delivery
    /// tick was clamped forward). A diagnostic for real-time jitter; 0 in a
    /// healthy run. Excluded from `PartialEq`.
    pub late_packets: u64,
    /// Effective packed-evaluation width `ℓ` of the run (0 = scalar engine).
    /// Protocol *configuration*, injected post-run by the builder — excluded
    /// from `PartialEq` so a run's fingerprint stays defined by what went on
    /// the wire, not by which knob produced it.
    pub packed_width: u64,
    /// Publicly opened values per multiplication layer, as reported by the
    /// first honest party (layer-batched scalar and packed engines; empty on
    /// the per-gate reference path). Builder-injected observability — the
    /// packing experiment's headline statistic — excluded from `PartialEq`
    /// like the other harness fields.
    pub values_opened_by_layer: Vec<u64>,
    /// Messages suppressed by the injected [`crate::faults::FaultPlan`]
    /// (crash/partition/drop-burst rules). Part of the execution fingerprint:
    /// plans are pure functions of the message coordinates, so both backends
    /// must drop the exact same messages.
    pub fault_drops: u64,
    /// Extra message copies injected by [`crate::faults::FaultPlan`]
    /// duplicate-burst rules. Execution fingerprint, like
    /// [`Metrics::fault_drops`].
    pub fault_duplicates: u64,
    /// Threaded backend only: parties whose conservative delivery gate gave
    /// up after the configured wedge timeout (`MpcBuilder::wedge_timeout` /
    /// `MPC_WEDGE_MS`) without progress. Wall-clock observability, excluded
    /// from `PartialEq`; any non-zero count also surfaces as a typed
    /// `TransportError::Wedged`.
    pub wedges: u64,
    /// TCP backend only: connections re-established by a link supervisor
    /// after the initial dial succeeded (a severed or torn-down socket that
    /// was dialed again and resumed via replay). Wall-clock observability,
    /// excluded from `PartialEq`.
    pub reconnects: u64,
    /// TCP backend only: failed dial attempts across all link supervisors
    /// (each entry in an exponential-backoff retry sequence that did not
    /// yield a connection). Wall-clock observability, excluded from
    /// `PartialEq`.
    pub dial_retries: u64,
    /// TCP backend only: sequenced link records retransmitted from a
    /// supervisor's replay buffer after a reconnect (at-least-once delivery;
    /// the receiver dedupes them by sequence number, so replays never reach
    /// the protocol). Wall-clock observability, excluded from `PartialEq`.
    pub frames_replayed: u64,
    /// TCP backend only: bytes discarded by the incremental stream decoder
    /// when it abandoned an unparsable or truncated record and tore the
    /// connection down to resynchronise at a record boundary. Wall-clock
    /// observability, excluded from `PartialEq`.
    pub bytes_resynced: u64,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring (no `..`): adding a field to `Metrics`
        // must fail to compile here, forcing an explicit decision on whether
        // it joins the execution fingerprint or the harness-only set.
        let Metrics {
            honest_messages,
            honest_bits,
            corrupt_messages,
            adversary_drops,
            adversary_tampered,
            decode_failures,
            events_processed,
            frames_sent,
            max_queue_depth: _,  // wall-clock/queue observability: struct docs
            batch_width_hist: _, // backend-specific batch granularity
            worker_threads: _,   // harness observability: see the struct docs
            honest_bits_by_root_segment,
            honest_bits_by_party,
            timeouts_fired: _,         // real-time pacing observability
            held_packets_peak: _,      // real-time pacing observability
            late_packets: _,           // real-time pacing observability
            packed_width: _,           // builder-injected configuration echo
            values_opened_by_layer: _, // builder-injected observability
            fault_drops,
            fault_duplicates,
            wedges: _,          // wall-clock gate observability
            reconnects: _,      // socket supervisor observability
            dial_retries: _,    // socket supervisor observability
            frames_replayed: _, // socket supervisor observability
            bytes_resynced: _,  // socket supervisor observability
        } = self;
        *honest_messages == other.honest_messages
            && *honest_bits == other.honest_bits
            && *corrupt_messages == other.corrupt_messages
            && *adversary_drops == other.adversary_drops
            && *adversary_tampered == other.adversary_tampered
            && *decode_failures == other.decode_failures
            && *events_processed == other.events_processed
            && *frames_sent == other.frames_sent
            && *honest_bits_by_root_segment == other.honest_bits_by_root_segment
            && *honest_bits_by_party == other.honest_bits_by_party
            && *fault_drops == other.fault_drops
            && *fault_duplicates == other.fault_duplicates
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// A zeroed metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one sent message of party `from`.
    pub fn record_send(&mut self, from: usize, honest: bool, bits: u64, root_segment: Option<u32>) {
        if honest {
            self.honest_messages += 1;
            self.honest_bits += bits;
            if let Some(seg) = root_segment {
                *self.honest_bits_by_root_segment.entry(seg).or_insert(0) += bits;
            }
            if self.honest_bits_by_party.len() <= from {
                self.honest_bits_by_party.resize(from + 1, 0);
            }
            self.honest_bits_by_party[from] += bits;
        } else {
            self.corrupt_messages += 1;
        }
    }

    /// Folds another party-local metrics record into this one (used by the
    /// threaded backend to aggregate its per-party accounting).
    pub fn merge(&mut self, other: &Metrics) {
        self.honest_messages += other.honest_messages;
        self.honest_bits += other.honest_bits;
        self.corrupt_messages += other.corrupt_messages;
        self.adversary_drops += other.adversary_drops;
        self.adversary_tampered += other.adversary_tampered;
        self.decode_failures += other.decode_failures;
        self.events_processed += other.events_processed;
        self.frames_sent += other.frames_sent;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        if self.batch_width_hist.len() < other.batch_width_hist.len() {
            self.batch_width_hist
                .resize(other.batch_width_hist.len(), 0);
        }
        for (i, count) in other.batch_width_hist.iter().enumerate() {
            self.batch_width_hist[i] += count;
        }
        self.timeouts_fired += other.timeouts_fired;
        self.fault_drops += other.fault_drops;
        self.fault_duplicates += other.fault_duplicates;
        self.wedges += other.wedges;
        self.reconnects += other.reconnects;
        self.dial_retries += other.dial_retries;
        self.frames_replayed += other.frames_replayed;
        self.bytes_resynced += other.bytes_resynced;
        self.held_packets_peak = self.held_packets_peak.max(other.held_packets_peak);
        self.late_packets += other.late_packets;
        self.packed_width = self.packed_width.max(other.packed_width);
        if self.values_opened_by_layer.len() < other.values_opened_by_layer.len() {
            self.values_opened_by_layer
                .resize(other.values_opened_by_layer.len(), 0);
        }
        for (i, v) in other.values_opened_by_layer.iter().enumerate() {
            self.values_opened_by_layer[i] = self.values_opened_by_layer[i].max(*v);
        }
        for (seg, bits) in &other.honest_bits_by_root_segment {
            *self.honest_bits_by_root_segment.entry(*seg).or_insert(0) += bits;
        }
        if self.honest_bits_by_party.len() < other.honest_bits_by_party.len() {
            self.honest_bits_by_party
                .resize(other.honest_bits_by_party.len(), 0);
        }
        for (i, bits) in other.honest_bits_by_party.iter().enumerate() {
            self.honest_bits_by_party[i] += bits;
        }
    }

    /// Records one processed time slice of `width` events (0 is ignored) and
    /// the pending-event count `depth` observed at its boundary.
    pub fn record_slice(&mut self, width: u64, depth: u64) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
        if width == 0 {
            return;
        }
        let bucket = width.ilog2() as usize;
        if self.batch_width_hist.len() <= bucket {
            self.batch_width_hist.resize(bucket + 1, 0);
        }
        self.batch_width_hist[bucket] += 1;
    }

    /// Total number of (non-empty) time slices recorded in the batch-width
    /// histogram.
    pub fn slices_processed(&self) -> u64 {
        self.batch_width_hist.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_honest_and_corrupt_separately() {
        let mut m = Metrics::new();
        m.record_send(0, true, 100, Some(2));
        m.record_send(0, true, 50, Some(2));
        m.record_send(2, true, 10, None);
        m.record_send(3, false, 9999, Some(1));
        assert_eq!(m.honest_messages, 3);
        assert_eq!(m.honest_bits, 160);
        assert_eq!(m.corrupt_messages, 1);
        assert_eq!(m.honest_bits_by_root_segment.get(&2), Some(&150));
        assert_eq!(m.honest_bits_by_root_segment.get(&1), None);
        assert_eq!(m.honest_bits_by_party, vec![150, 0, 10]);
    }

    #[test]
    fn merge_folds_party_local_records() {
        let mut a = Metrics::new();
        a.record_send(0, true, 100, Some(2));
        a.timeouts_fired = 3;
        a.held_packets_peak = 5;
        let mut b = Metrics::new();
        b.record_send(2, true, 10, Some(2));
        b.record_send(1, false, 7, None);
        b.timeouts_fired = 2;
        b.held_packets_peak = 9;
        a.merge(&b);
        assert_eq!(a.honest_messages, 2);
        assert_eq!(a.honest_bits, 110);
        assert_eq!(a.corrupt_messages, 1);
        assert_eq!(a.honest_bits_by_root_segment.get(&2), Some(&110));
        assert_eq!(a.honest_bits_by_party, vec![100, 0, 10]);
        assert_eq!(a.timeouts_fired, 5);
        assert_eq!(a.held_packets_peak, 9);
    }

    #[test]
    fn slice_histogram_buckets_by_power_of_two() {
        let mut m = Metrics::new();
        m.record_slice(1, 3); // bucket 0
        m.record_slice(3, 10); // bucket 1
        m.record_slice(4, 2); // bucket 2
        m.record_slice(7, 0); // bucket 2
        m.record_slice(0, 99); // ignored width, still samples depth
        assert_eq!(m.batch_width_hist, vec![1, 1, 2]);
        assert_eq!(m.max_queue_depth, 99);
        assert_eq!(m.slices_processed(), 4);
    }

    #[test]
    fn equality_ignores_harness_and_wall_clock_fields() {
        let mut a = Metrics::new();
        a.record_send(0, true, 8, None);
        let mut b = a.clone();
        b.worker_threads = 4;
        b.max_queue_depth = 99;
        b.timeouts_fired = 7;
        b.held_packets_peak = 3;
        b.late_packets = 1;
        b.reconnects = 2;
        b.dial_retries = 11;
        b.frames_replayed = 5;
        b.bytes_resynced = 640;
        b.record_slice(2, 2); // batch granularity is backend-specific
        assert_eq!(a, b, "harness/wall-clock fields are observability only");
        b.record_send(0, true, 8, None);
        assert_ne!(a, b, "execution fields must still discriminate");
        let mut c = a.clone();
        c.honest_bits_by_party = vec![0, 8];
        assert_ne!(a, c, "per-party attribution is part of the fingerprint");
    }
}
