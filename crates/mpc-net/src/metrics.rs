//! Communication accounting for the experiment suite.
//!
//! The paper states all its communication-complexity bounds as "bits
//! communicated by the honest parties"; these counters measure exactly that.
//! The struct additionally carries *scheduler observability* counters (event
//! throughput, queue pressure, same-time batch widths, worker threads) used
//! to understand and tune the simulator itself.

use std::collections::BTreeMap;

/// Aggregated communication metrics of one simulation run.
///
/// Equality (`PartialEq`) compares every *execution* field — everything that
/// must be bit-identical across reruns and across worker-thread counts — and
/// deliberately ignores [`Metrics::worker_threads`], which describes the
/// harness configuration rather than the execution (a `threads = 4` run must
/// compare equal to the `threads = 1` run it reproduces).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Messages sent by honest parties.
    pub honest_messages: u64,
    /// Bits sent by honest parties: the *exact* length of the canonical wire
    /// encoding ([`crate::wire::WireEncode`]) of every message they put on a
    /// channel, ×8. A broadcast counts once per recipient (the network is a
    /// complete graph of pairwise channels), even though the simulator
    /// encodes its payload only once.
    pub honest_bits: u64,
    /// Messages sent by corrupt parties that reached the wire
    /// (informational only; messages their [`crate::adversary::ByzantineStrategy`]
    /// dropped are in [`Metrics::adversary_drops`] instead).
    pub corrupt_messages: u64,
    /// Corrupt-sender messages suppressed by the Byzantine strategy.
    pub adversary_drops: u64,
    /// Corrupt-sender messages whose bytes the Byzantine strategy replaced
    /// (equivocation, garbling).
    pub adversary_tampered: u64,
    /// Deliveries whose bytes failed to decode as a protocol message; they
    /// are treated as Byzantine input and dropped at the boundary.
    pub decode_failures: u64,
    /// Number of events processed.
    pub events_processed: u64,
    /// Wire-frame events dispatched (one per `(sender, destination)` frame;
    /// a broadcast frame counts once per recipient). Always 0 when frame
    /// coalescing is disabled.
    pub frames_sent: u64,
    /// Largest number of pending events observed at a time-slice boundary
    /// (sampled once per slice, including the slice's own events).
    pub max_queue_depth: u64,
    /// Histogram of same-time batch widths: `batch_width_hist[i]` counts the
    /// time slices that processed a number of events in `[2^i, 2^(i+1))`
    /// (slice width includes same-tick cascades such as broadcast
    /// self-deliveries). Empty slices are never recorded.
    pub batch_width_hist: Vec<u64>,
    /// The worker-thread count the simulation was configured with
    /// (`NetConfig::with_threads` / the `MPC_THREADS` environment knob).
    /// Harness observability only — excluded from `PartialEq`, because the
    /// whole point of the deterministic parallel engine is that this knob
    /// does not change the execution.
    pub worker_threads: u64,
    /// Honest bits broken down by the *top-level path segment* of the sending
    /// instance — lets composite experiments attribute cost to sub-protocols.
    pub honest_bits_by_root_segment: BTreeMap<u32, u64>,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring (no `..`): adding a field to `Metrics`
        // must fail to compile here, forcing an explicit decision on whether
        // it joins the execution fingerprint or the harness-only set.
        let Metrics {
            honest_messages,
            honest_bits,
            corrupt_messages,
            adversary_drops,
            adversary_tampered,
            decode_failures,
            events_processed,
            frames_sent,
            max_queue_depth,
            batch_width_hist,
            worker_threads: _, // harness observability: see the struct docs
            honest_bits_by_root_segment,
        } = self;
        *honest_messages == other.honest_messages
            && *honest_bits == other.honest_bits
            && *corrupt_messages == other.corrupt_messages
            && *adversary_drops == other.adversary_drops
            && *adversary_tampered == other.adversary_tampered
            && *decode_failures == other.decode_failures
            && *events_processed == other.events_processed
            && *frames_sent == other.frames_sent
            && *max_queue_depth == other.max_queue_depth
            && *batch_width_hist == other.batch_width_hist
            && *honest_bits_by_root_segment == other.honest_bits_by_root_segment
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// A zeroed metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one sent message.
    pub fn record_send(&mut self, honest: bool, bits: u64, root_segment: Option<u32>) {
        if honest {
            self.honest_messages += 1;
            self.honest_bits += bits;
            if let Some(seg) = root_segment {
                *self.honest_bits_by_root_segment.entry(seg).or_insert(0) += bits;
            }
        } else {
            self.corrupt_messages += 1;
        }
    }

    /// Records one processed time slice of `width` events (0 is ignored) and
    /// the pending-event count `depth` observed at its boundary.
    pub fn record_slice(&mut self, width: u64, depth: u64) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
        if width == 0 {
            return;
        }
        let bucket = width.ilog2() as usize;
        if self.batch_width_hist.len() <= bucket {
            self.batch_width_hist.resize(bucket + 1, 0);
        }
        self.batch_width_hist[bucket] += 1;
    }

    /// Total number of (non-empty) time slices recorded in the batch-width
    /// histogram.
    pub fn slices_processed(&self) -> u64 {
        self.batch_width_hist.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_honest_and_corrupt_separately() {
        let mut m = Metrics::new();
        m.record_send(true, 100, Some(2));
        m.record_send(true, 50, Some(2));
        m.record_send(true, 10, None);
        m.record_send(false, 9999, Some(1));
        assert_eq!(m.honest_messages, 3);
        assert_eq!(m.honest_bits, 160);
        assert_eq!(m.corrupt_messages, 1);
        assert_eq!(m.honest_bits_by_root_segment.get(&2), Some(&150));
        assert_eq!(m.honest_bits_by_root_segment.get(&1), None);
    }

    #[test]
    fn slice_histogram_buckets_by_power_of_two() {
        let mut m = Metrics::new();
        m.record_slice(1, 3); // bucket 0
        m.record_slice(3, 10); // bucket 1
        m.record_slice(4, 2); // bucket 2
        m.record_slice(7, 0); // bucket 2
        m.record_slice(0, 99); // ignored width, still samples depth
        assert_eq!(m.batch_width_hist, vec![1, 1, 2]);
        assert_eq!(m.max_queue_depth, 99);
        assert_eq!(m.slices_processed(), 4);
    }

    #[test]
    fn equality_ignores_worker_threads_only() {
        let mut a = Metrics::new();
        a.record_send(true, 8, None);
        let mut b = a.clone();
        b.worker_threads = 4;
        assert_eq!(a, b, "worker_threads is harness observability");
        b.record_slice(2, 2);
        assert_ne!(a, b, "execution fields must still discriminate");
    }
}
