//! Communication accounting for the experiment suite.
//!
//! The paper states all its communication-complexity bounds as "bits
//! communicated by the honest parties"; these counters measure exactly that.

use std::collections::BTreeMap;

/// Aggregated communication metrics of one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages sent by honest parties.
    pub honest_messages: u64,
    /// Bits sent by honest parties: the *exact* length of the canonical wire
    /// encoding ([`crate::wire::WireEncode`]) of every message they put on a
    /// channel, ×8. A broadcast counts once per recipient (the network is a
    /// complete graph of pairwise channels), even though the simulator
    /// encodes its payload only once.
    pub honest_bits: u64,
    /// Messages sent by corrupt parties that reached the wire
    /// (informational only; messages their [`crate::adversary::ByzantineStrategy`]
    /// dropped are in [`Metrics::adversary_drops`] instead).
    pub corrupt_messages: u64,
    /// Corrupt-sender messages suppressed by the Byzantine strategy.
    pub adversary_drops: u64,
    /// Corrupt-sender messages whose bytes the Byzantine strategy replaced
    /// (equivocation, garbling).
    pub adversary_tampered: u64,
    /// Deliveries whose bytes failed to decode as a protocol message; they
    /// are treated as Byzantine input and dropped at the boundary.
    pub decode_failures: u64,
    /// Number of events processed.
    pub events_processed: u64,
    /// Honest bits broken down by the *top-level path segment* of the sending
    /// instance — lets composite experiments attribute cost to sub-protocols.
    pub honest_bits_by_root_segment: BTreeMap<u32, u64>,
}

impl Metrics {
    /// A zeroed metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one sent message.
    pub fn record_send(&mut self, honest: bool, bits: u64, root_segment: Option<u32>) {
        if honest {
            self.honest_messages += 1;
            self.honest_bits += bits;
            if let Some(seg) = root_segment {
                *self.honest_bits_by_root_segment.entry(seg).or_insert(0) += bits;
            }
        } else {
            self.corrupt_messages += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_honest_and_corrupt_separately() {
        let mut m = Metrics::new();
        m.record_send(true, 100, Some(2));
        m.record_send(true, 50, Some(2));
        m.record_send(true, 10, None);
        m.record_send(false, 9999, Some(1));
        assert_eq!(m.honest_messages, 3);
        assert_eq!(m.honest_bits, 160);
        assert_eq!(m.corrupt_messages, 1);
        assert_eq!(m.honest_bits_by_root_segment.get(&2), Some(&150));
        assert_eq!(m.honest_bits_by_root_segment.get(&1), None);
    }
}
