//! Message-delay scheduling strategies.
//!
//! In the synchronous network every message must be delivered within `Δ`; the
//! scheduler may pick any delay in `[1, Δ]`. In the asynchronous network the
//! adversary controls the delivery schedule entirely, subject only to every
//! message being delivered eventually.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::simulation::NetworkKind;
use crate::transport::{PartyId, Time};

/// Chooses the delivery delay of each message. Implementations model the
/// network together with the adversary's scheduling power.
pub trait Scheduler {
    /// Returns the delay (≥ 0) after which a message sent now from `from` to
    /// `to` is delivered.
    fn delay(&mut self, from: PartyId, to: PartyId, now: Time, rng: &mut StdRng) -> Time;

    /// Upper bound used by the simulator for sanity horizons; must be finite.
    fn max_delay(&self) -> Time;

    /// Lower bound on [`Scheduler::delay`] for *cross-party* messages
    /// (`from != to`). The simulator only enables parallel same-time-slice
    /// pre-execution when this is ≥ 1: it guarantees that every event a
    /// party handles at time `T` can only spawn further time-`T` events for
    /// that *same* party (self-sends and zero-delay timers), which is what
    /// makes per-party pre-execution order-independent. The conservative
    /// default of 0 keeps custom schedulers correct (they simply run on the
    /// sequential path).
    fn min_delay(&self) -> Time {
        0
    }
}

/// Synchronous worst case: every message takes exactly `Δ`.
#[derive(Clone, Debug)]
pub struct FixedDelay(pub Time);

impl Scheduler for FixedDelay {
    fn delay(&mut self, _from: PartyId, _to: PartyId, _now: Time, _rng: &mut StdRng) -> Time {
        self.0
    }
    fn max_delay(&self) -> Time {
        self.0
    }
    fn min_delay(&self) -> Time {
        self.0
    }
}

/// Delays drawn uniformly from `[min, max]` — a benign network. With
/// `max ≤ Δ` this is a valid synchronous schedule; with small values it
/// models the fast asynchronous network of the paper's introduction
/// (`δ ≪ Δ`).
#[derive(Clone, Debug)]
pub struct UniformDelay {
    /// Minimum delivery delay.
    pub min: Time,
    /// Maximum delivery delay.
    pub max: Time,
}

impl Scheduler for UniformDelay {
    fn delay(&mut self, _from: PartyId, _to: PartyId, _now: Time, rng: &mut StdRng) -> Time {
        if self.min >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
    fn max_delay(&self) -> Time {
        self.max
    }
    fn min_delay(&self) -> Time {
        self.min.min(self.max)
    }
}

/// A generic asynchronous adversarial scheduler: most messages are delivered
/// quickly (within `fast`), but each message is independently delayed to
/// `slow` with probability `slow_prob_percent`%. This violates any `Δ ≤ slow`
/// bound and models an asynchronous network where time-outs expire before
/// messages arrive.
#[derive(Clone, Debug)]
pub struct AsyncScheduler {
    /// Delay bound for "fast" messages.
    pub fast: Time,
    /// Delay applied to adversarially slowed messages.
    pub slow: Time,
    /// Percentage (0–100) of messages that are slowed.
    pub slow_prob_percent: u32,
}

impl Scheduler for AsyncScheduler {
    fn delay(&mut self, _from: PartyId, _to: PartyId, _now: Time, rng: &mut StdRng) -> Time {
        if rng.gen_range(0..100) < self.slow_prob_percent {
            rng.gen_range(self.fast.max(1)..=self.slow)
        } else {
            rng.gen_range(1..=self.fast.max(1))
        }
    }
    fn max_delay(&self) -> Time {
        self.slow
    }
    fn min_delay(&self) -> Time {
        1
    }
}

/// A targeted asynchronous adversary: every message **from** a party in
/// `slowed_senders` is delayed by exactly `lag`, all other messages are
/// delivered within `fast`. This is the classic attack that breaks purely
/// synchronous protocols (it makes up to `t_a` honest parties look corrupt).
#[derive(Clone, Debug)]
pub struct SkewedAsyncScheduler {
    /// Parties whose outgoing messages are delayed.
    pub slowed_senders: Vec<PartyId>,
    /// Delay applied to the slowed senders' messages.
    pub lag: Time,
    /// Delay bound for everyone else.
    pub fast: Time,
}

impl Scheduler for SkewedAsyncScheduler {
    fn delay(&mut self, from: PartyId, _to: PartyId, _now: Time, rng: &mut StdRng) -> Time {
        if self.slowed_senders.contains(&from) {
            self.lag
        } else {
            rng.gen_range(1..=self.fast.max(1))
        }
    }
    fn max_delay(&self) -> Time {
        self.lag.max(self.fast)
    }
    fn min_delay(&self) -> Time {
        if self.slowed_senders.is_empty() {
            1
        } else {
            self.lag.min(1)
        }
    }
}

/// A static per-link delay matrix: every ordered pair `(from, to)` has one
/// fixed delivery delay, drawn once (deterministically from a seed) at
/// construction. This is the delay model shared by the two transport
/// backends — the simulator consumes it as a [`Scheduler`], the threaded
/// backend reads the matrix directly to pace its real-time holds — and it is
/// what makes cross-backend conformance provable:
///
/// * **rng-free at query time** — the delay of a message depends only on its
///   link, never on global draw order, so backends that consult the matrix
///   in different orders still agree on every delay;
/// * **per-link FIFO** — a constant delay per link means a channel never
///   reorders, matching real TCP-like transports;
/// * **column-distinct** — for every receiver `j` the delays `d(i, j)` are
///   pairwise distinct over senders `i`, so two frames sent at the same tick
///   by different senders never arrive at `j` in the same tick. Within-tick
///   arrival order at any receiver is then totally determined by
///   `(send tick, sender)`, which is exactly the order the simulator's
///   global sequence numbers induce — see DESIGN.md, "Transport abstraction
///   & conformance oracle".
#[derive(Clone, Debug)]
pub struct LinkDelays {
    n: usize,
    /// Row-major `delays[from * n + to]`; the diagonal is 0 (self-delivery
    /// is always same-tick).
    delays: Vec<Time>,
}

impl LinkDelays {
    /// Builds a matrix from an explicit delay function (the diagonal is
    /// forced to 0 regardless of `f`).
    pub fn from_fn(n: usize, mut f: impl FnMut(PartyId, PartyId) -> Time) -> Self {
        let mut delays = vec![0; n * n];
        for from in 0..n {
            for to in 0..n {
                delays[from * n + to] = if from == to { 0 } else { f(from, to).max(1) };
            }
        }
        LinkDelays { n, delays }
    }

    /// The default matrix for a network kind: a benign sub-`Δ` schedule when
    /// synchronous, per-link delays frozen from the simulator's default
    /// asynchronous distribution (uniform `[1, 20·Δ]`, the
    /// [`crate::UniformDelay`] that [`crate::Simulation::new`] installs) when
    /// asynchronous — so a run that only picks a backend sees the same
    /// *flavour* of schedule on both. The targeted slow-sender attack stays
    /// available as [`LinkDelays::asynchronous`].
    pub fn for_kind(n: usize, kind: NetworkKind, delta: Time, seed: u64) -> Self {
        match kind {
            NetworkKind::Synchronous => Self::synchronous(n, delta, seed),
            NetworkKind::Asynchronous => Self::sampled_from(
                n,
                seed,
                &mut crate::UniformDelay {
                    min: 2,
                    max: delta * 20,
                },
            ),
        }
    }

    /// A valid synchronous schedule: cross-party delays drawn column-distinct
    /// from `[2, Δ−1]` (all within the bound `Δ`; ≥ 2 gives the threaded
    /// backend a full tick of real-time slack between a send and its
    /// earliest delivery).
    ///
    /// # Panics
    ///
    /// Panics if the range cannot hold `n − 1` distinct values
    /// (`Δ − 2 < n − 1`); pick a larger `Δ` for larger `n`.
    pub fn synchronous(n: usize, delta: Time, seed: u64) -> Self {
        let lo = 2;
        let hi = delta.saturating_sub(1);
        Self::column_distinct(n, lo, hi, seed, None, 0)
    }

    /// An asynchronous schedule in the style of [`SkewedAsyncScheduler`]:
    /// one seed-chosen party's outgoing links all lag ≈ `20·Δ` (so every
    /// `Δ`-based timeout at the receivers genuinely expires before its
    /// messages arrive — the classic attack the paper's fallback handles),
    /// while all other links are fast (`[2, Δ−1]`, column-distinct).
    pub fn asynchronous(n: usize, delta: Time, seed: u64) -> Self {
        let slowed = (seed as usize) % n;
        let lo = 2;
        let hi = delta.saturating_sub(1);
        Self::column_distinct(n, lo, hi, seed, Some(slowed), 20 * delta)
    }

    /// Column-distinct sampling from `[lo, hi]` via a per-column partial
    /// shuffle; the optional `slowed` sender's links get `lag` added (their
    /// values stay distinct from the fast range because `lag ≫ hi`).
    fn column_distinct(
        n: usize,
        lo: Time,
        hi: Time,
        seed: u64,
        slowed: Option<PartyId>,
        lag: Time,
    ) -> Self {
        let width = (hi.saturating_sub(lo) + 1) as usize;
        assert!(
            width >= n.saturating_sub(1),
            "delay range [{lo}, {hi}] cannot hold {} distinct per-column values; \
             increase delta relative to n",
            n.saturating_sub(1)
        );
        let mut delays = vec![0; n * n];
        for to in 0..n {
            let mut pool: Vec<Time> = (lo..=hi).collect();
            let mut rng = StdRng::seed_from_u64(
                seed ^ (to as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x11AE_D43D,
            );
            // Partial Fisher–Yates: the first n−1 slots are a uniform draw of
            // distinct values.
            let mut k = 0usize;
            for from in 0..n {
                if from == to {
                    continue;
                }
                let j = rng.gen_range(k..pool.len());
                pool.swap(k, j);
                let mut d = pool[k];
                if slowed == Some(from) {
                    d += lag;
                }
                delays[from * n + to] = d;
                k += 1;
            }
        }
        LinkDelays { n, delays }
    }

    /// Freezes an arbitrary [`Scheduler`] into a static matrix by sampling
    /// each link once (with the scheduler's usual seed-derived RNG). Used by
    /// the threaded backend to approximate custom schedulers, which are
    /// consulted per *message* and therefore have no static per-link
    /// equivalent; senders a scheduler slows stay slow here, but per-message
    /// jitter is lost. No distinctness is enforced.
    pub fn sampled_from(n: usize, seed: u64, scheduler: &mut dyn Scheduler) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        Self::from_fn(n, |from, to| scheduler.delay(from, to, 0, &mut rng))
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The delay of link `from → to` (0 iff `from == to`).
    pub fn get(&self, from: PartyId, to: PartyId) -> Time {
        self.delays[from * self.n + to]
    }

    /// Smallest cross-party delay.
    pub fn min_cross(&self) -> Time {
        (0..self.n)
            .flat_map(|f| (0..self.n).filter(move |&t| t != f).map(move |t| (f, t)))
            .map(|(f, t)| self.get(f, t))
            .min()
            .unwrap_or(1)
    }

    /// Largest delay in the matrix.
    pub fn max_cross(&self) -> Time {
        self.delays.iter().copied().max().unwrap_or(0)
    }
}

impl Scheduler for LinkDelays {
    fn delay(&mut self, from: PartyId, to: PartyId, _now: Time, _rng: &mut StdRng) -> Time {
        self.get(from, to)
    }
    fn max_delay(&self) -> Time {
        self.max_cross()
    }
    fn min_delay(&self) -> Time {
        self.min_cross()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_delay_is_constant() {
        let mut s = FixedDelay(10);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.delay(0, 1, 0, &mut rng), 10);
        assert_eq!(s.max_delay(), 10);
    }

    #[test]
    fn uniform_delay_stays_in_range() {
        let mut s = UniformDelay { min: 2, max: 9 };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let d = s.delay(0, 1, 0, &mut rng);
            assert!((2..=9).contains(&d));
        }
    }

    #[test]
    fn skewed_scheduler_targets_senders() {
        let mut s = SkewedAsyncScheduler {
            slowed_senders: vec![3],
            lag: 1000,
            fast: 5,
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.delay(3, 0, 0, &mut rng), 1000);
        assert!(s.delay(1, 0, 0, &mut rng) <= 5);
    }

    #[test]
    fn async_scheduler_produces_both_fast_and_slow() {
        let mut s = AsyncScheduler {
            fast: 5,
            slow: 500,
            slow_prob_percent: 50,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let delays: Vec<Time> = (0..200).map(|_| s.delay(0, 1, 0, &mut rng)).collect();
        assert!(delays.iter().any(|&d| d <= 5));
        assert!(delays.iter().any(|&d| d > 5));
        assert!(delays.iter().all(|&d| d <= 500));
    }

    #[test]
    fn link_delays_sync_is_column_distinct_and_within_bound() {
        for n in [4usize, 5, 7] {
            for seed in [0u64, 1, 0xB0B5] {
                let links = LinkDelays::synchronous(n, 10, seed);
                for to in 0..n {
                    let col: Vec<Time> = (0..n)
                        .filter(|&f| f != to)
                        .map(|f| links.get(f, to))
                        .collect();
                    let mut sorted = col.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), col.len(), "column {to} must be distinct");
                    assert!(col.iter().all(|&d| (2..=9).contains(&d)));
                }
                for p in 0..n {
                    assert_eq!(links.get(p, p), 0, "self-delivery is same-tick");
                }
                assert!(links.min_cross() >= 2);
                assert!(links.max_cross() <= 10);
            }
        }
    }

    #[test]
    fn link_delays_async_slows_exactly_one_sender_beyond_delta() {
        let n = 5;
        let delta = 10;
        let links = LinkDelays::asynchronous(n, delta, 7);
        let slowed = 7 % n;
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let d = links.get(from, to);
                if from == slowed {
                    assert!(d > delta, "slowed sender must violate the bound");
                } else {
                    assert!(d < delta, "fast links stay within the bound");
                }
            }
        }
        // still column-distinct across the fast/slow mix
        for to in 0..n {
            let mut col: Vec<Time> = (0..n)
                .filter(|&f| f != to)
                .map(|f| links.get(f, to))
                .collect();
            col.sort_unstable();
            col.dedup();
            assert_eq!(col.len(), n - 1);
        }
    }

    #[test]
    fn link_delays_acts_as_a_deterministic_scheduler() {
        let mut links = LinkDelays::synchronous(4, 10, 3);
        let frozen = links.clone();
        let mut rng = StdRng::seed_from_u64(9);
        for from in 0..4 {
            for to in 0..4 {
                assert_eq!(links.delay(from, to, 17, &mut rng), frozen.get(from, to));
            }
        }
        assert!(links.min_delay() >= 1, "framed engine eligibility");
    }

    #[test]
    fn link_delays_sampled_from_freezes_a_skewed_scheduler() {
        let mut s = SkewedAsyncScheduler {
            slowed_senders: vec![2],
            lag: 100,
            fast: 5,
        };
        let links = LinkDelays::sampled_from(4, 42, &mut s);
        for to in 0..4 {
            if to != 2 {
                assert_eq!(links.get(2, to), 100, "slowed sender stays slow");
            }
        }
        assert!((0..4)
            .flat_map(|f| (0..4).map(move |t| (f, t)))
            .filter(|&(f, t)| f != t && f != 2)
            .all(|(f, t)| links.get(f, t) <= 5));
    }
}
