//! Message-delay scheduling strategies.
//!
//! In the synchronous network every message must be delivered within `Δ`; the
//! scheduler may pick any delay in `[1, Δ]`. In the asynchronous network the
//! adversary controls the delivery schedule entirely, subject only to every
//! message being delivered eventually.

use rand::rngs::StdRng;
use rand::Rng;

use crate::simulation::{PartyId, Time};

/// Chooses the delivery delay of each message. Implementations model the
/// network together with the adversary's scheduling power.
pub trait Scheduler {
    /// Returns the delay (≥ 0) after which a message sent now from `from` to
    /// `to` is delivered.
    fn delay(&mut self, from: PartyId, to: PartyId, now: Time, rng: &mut StdRng) -> Time;

    /// Upper bound used by the simulator for sanity horizons; must be finite.
    fn max_delay(&self) -> Time;

    /// Lower bound on [`Scheduler::delay`] for *cross-party* messages
    /// (`from != to`). The simulator only enables parallel same-time-slice
    /// pre-execution when this is ≥ 1: it guarantees that every event a
    /// party handles at time `T` can only spawn further time-`T` events for
    /// that *same* party (self-sends and zero-delay timers), which is what
    /// makes per-party pre-execution order-independent. The conservative
    /// default of 0 keeps custom schedulers correct (they simply run on the
    /// sequential path).
    fn min_delay(&self) -> Time {
        0
    }
}

/// Synchronous worst case: every message takes exactly `Δ`.
#[derive(Clone, Debug)]
pub struct FixedDelay(pub Time);

impl Scheduler for FixedDelay {
    fn delay(&mut self, _from: PartyId, _to: PartyId, _now: Time, _rng: &mut StdRng) -> Time {
        self.0
    }
    fn max_delay(&self) -> Time {
        self.0
    }
    fn min_delay(&self) -> Time {
        self.0
    }
}

/// Delays drawn uniformly from `[min, max]` — a benign network. With
/// `max ≤ Δ` this is a valid synchronous schedule; with small values it
/// models the fast asynchronous network of the paper's introduction
/// (`δ ≪ Δ`).
#[derive(Clone, Debug)]
pub struct UniformDelay {
    /// Minimum delivery delay.
    pub min: Time,
    /// Maximum delivery delay.
    pub max: Time,
}

impl Scheduler for UniformDelay {
    fn delay(&mut self, _from: PartyId, _to: PartyId, _now: Time, rng: &mut StdRng) -> Time {
        if self.min >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
    fn max_delay(&self) -> Time {
        self.max
    }
    fn min_delay(&self) -> Time {
        self.min.min(self.max)
    }
}

/// A generic asynchronous adversarial scheduler: most messages are delivered
/// quickly (within `fast`), but each message is independently delayed to
/// `slow` with probability `slow_prob_percent`%. This violates any `Δ ≤ slow`
/// bound and models an asynchronous network where time-outs expire before
/// messages arrive.
#[derive(Clone, Debug)]
pub struct AsyncScheduler {
    /// Delay bound for "fast" messages.
    pub fast: Time,
    /// Delay applied to adversarially slowed messages.
    pub slow: Time,
    /// Percentage (0–100) of messages that are slowed.
    pub slow_prob_percent: u32,
}

impl Scheduler for AsyncScheduler {
    fn delay(&mut self, _from: PartyId, _to: PartyId, _now: Time, rng: &mut StdRng) -> Time {
        if rng.gen_range(0..100) < self.slow_prob_percent {
            rng.gen_range(self.fast.max(1)..=self.slow)
        } else {
            rng.gen_range(1..=self.fast.max(1))
        }
    }
    fn max_delay(&self) -> Time {
        self.slow
    }
    fn min_delay(&self) -> Time {
        1
    }
}

/// A targeted asynchronous adversary: every message **from** a party in
/// `slowed_senders` is delayed by exactly `lag`, all other messages are
/// delivered within `fast`. This is the classic attack that breaks purely
/// synchronous protocols (it makes up to `t_a` honest parties look corrupt).
#[derive(Clone, Debug)]
pub struct SkewedAsyncScheduler {
    /// Parties whose outgoing messages are delayed.
    pub slowed_senders: Vec<PartyId>,
    /// Delay applied to the slowed senders' messages.
    pub lag: Time,
    /// Delay bound for everyone else.
    pub fast: Time,
}

impl Scheduler for SkewedAsyncScheduler {
    fn delay(&mut self, from: PartyId, _to: PartyId, _now: Time, rng: &mut StdRng) -> Time {
        if self.slowed_senders.contains(&from) {
            self.lag
        } else {
            rng.gen_range(1..=self.fast.max(1))
        }
    }
    fn max_delay(&self) -> Time {
        self.lag.max(self.fast)
    }
    fn min_delay(&self) -> Time {
        if self.slowed_senders.is_empty() {
            1
        } else {
            self.lag.min(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_delay_is_constant() {
        let mut s = FixedDelay(10);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.delay(0, 1, 0, &mut rng), 10);
        assert_eq!(s.max_delay(), 10);
    }

    #[test]
    fn uniform_delay_stays_in_range() {
        let mut s = UniformDelay { min: 2, max: 9 };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let d = s.delay(0, 1, 0, &mut rng);
            assert!((2..=9).contains(&d));
        }
    }

    #[test]
    fn skewed_scheduler_targets_senders() {
        let mut s = SkewedAsyncScheduler {
            slowed_senders: vec![3],
            lag: 1000,
            fast: 5,
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.delay(3, 0, 0, &mut rng), 1000);
        assert!(s.delay(1, 0, 0, &mut rng) <= 5);
    }

    #[test]
    fn async_scheduler_produces_both_fast_and_slow() {
        let mut s = AsyncScheduler {
            fast: 5,
            slow: 500,
            slow_prob_percent: 50,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let delays: Vec<Time> = (0..200).map(|_| s.delay(0, 1, 0, &mut rng)).collect();
        assert!(delays.iter().any(|&d| d <= 5));
        assert!(delays.iter().any(|&d| d > 5));
        assert!(delays.iter().all(|&d| d <= 500));
    }
}
