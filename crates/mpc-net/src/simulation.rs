//! The discrete-event simulator driving all protocol executions.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adversary::{ByzantineStrategy, CorruptionSet, Passive, WireAction, WireSend};
use crate::context::{Context, Effects, Path, Protocol};
use crate::metrics::Metrics;
use crate::scheduler::{FixedDelay, Scheduler, UniformDelay};
use crate::wire::{WireDecode, WireEncode};

/// A party identifier in `0..n` (the paper's `P_{i+1}`).
pub type PartyId = usize;

/// Simulated local/global time in abstract ticks. The synchronous bound `Δ`
/// is expressed in the same unit.
pub type Time = u64;

/// Size accounting for message payloads, in bits.
///
/// Historically implemented by hand-written estimates; the simulator now
/// derives all bit counts from the exact length of the canonical encoding,
/// and this trait survives only as a thin adapter over
/// [`WireEncode::encoded_bits`].
#[deprecated(
    since = "0.1.0",
    note = "bit accounting is exact now — use `WireEncode::encoded_bits`"
)]
pub trait MessageSize {
    /// The number of bits this payload occupies on the wire.
    fn size_bits(&self) -> u64;
}

#[allow(deprecated)]
impl<T: WireEncode> MessageSize for T {
    fn size_bits(&self) -> u64 {
        self.encoded_bits()
    }
}

/// Which of the paper's two network models the execution runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Every message delivered within the publicly known bound `Δ`.
    Synchronous,
    /// Arbitrary finite, adversarially scheduled delays.
    Asynchronous,
}

/// Static configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Number of parties `n`.
    pub n: usize,
    /// The publicly known synchronous delivery bound `Δ` (in ticks).
    pub delta: Time,
    /// Network model.
    pub kind: NetworkKind,
    /// Master seed: party RNGs, the scheduler RNG and the common-coin oracle
    /// are all derived from it, making runs fully reproducible.
    pub seed: u64,
}

impl NetConfig {
    /// The default synchronous delivery bound `Δ`, in ticks.
    pub const DEFAULT_DELTA: Time = 10;
    /// The default master seed of a run.
    pub const DEFAULT_SEED: u64 = 0xB0B5;

    /// A network of `n` parties of the given kind with the default `Δ` and
    /// seed (override via [`NetConfig::with_delta`] / [`NetConfig::with_seed`]).
    pub fn for_kind(n: usize, kind: NetworkKind) -> Self {
        NetConfig {
            n,
            delta: Self::DEFAULT_DELTA,
            kind,
            seed: Self::DEFAULT_SEED,
        }
    }

    /// A synchronous network of `n` parties with `Δ = 10` ticks.
    pub fn synchronous(n: usize) -> Self {
        Self::for_kind(n, NetworkKind::Synchronous)
    }

    /// An asynchronous network of `n` parties (the protocol still believes
    /// `Δ = 10` when computing its time-outs — that belief is simply wrong).
    pub fn asynchronous(n: usize) -> Self {
        Self::for_kind(n, NetworkKind::Asynchronous)
    }

    /// Replaces the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces `Δ`.
    pub fn with_delta(mut self, delta: Time) -> Self {
        self.delta = delta;
        self
    }
}

#[derive(Debug)]
enum EventKind {
    Deliver {
        to: PartyId,
        from: PartyId,
        path: Path,
        /// The canonical encoding of the payload. A broadcast is encoded
        /// once and this `Arc` is shared across all `n` delivery events.
        payload: Arc<Vec<u8>>,
    },
    Timer {
        party: PartyId,
        path: Path,
        id: u64,
    },
}

/// One processed event, as recorded by [`Simulation::record_transcript`].
///
/// Message payloads are summarised by their wire size; together with the
/// delivery order, times and instance paths this fingerprints an execution
/// tightly enough to assert replay determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranscriptEntry {
    /// Simulated time at which the event was processed.
    pub at: Time,
    /// The party that handled the event.
    pub party: PartyId,
    /// What happened.
    pub event: TranscriptEvent,
}

/// The observable payload of a [`TranscriptEntry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranscriptEvent {
    /// A message delivery.
    Deliver {
        /// Sending party.
        from: PartyId,
        /// Instance path the message was routed to.
        path: Path,
        /// Exact wire size of the payload: encoded byte length ×8.
        bits: u64,
    },
    /// A delivery whose bytes failed to decode as a protocol message and
    /// were dropped at the boundary as Byzantine input (see
    /// [`crate::Metrics::decode_failures`]).
    DroppedDeliver {
        /// Sending party.
        from: PartyId,
        /// Instance path the undecodable message was addressed to.
        path: Path,
        /// Exact wire size of the dropped payload: encoded byte length ×8.
        bits: u64,
    },
    /// A timer expiry.
    Timer {
        /// Instance path owning the timer.
        path: Path,
        /// Timer id within that instance.
        id: u64,
    },
}

#[derive(Debug)]
struct Event {
    at: Time,
    rank: u8,
    /// Instance-path depth; deeper timers fire first at equal times so that a
    /// parent's deadline observes the state its sub-protocols finalise at that
    /// same instant (e.g. `Π_BC` reading the SBA output at `T_BC`).
    depth: usize,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.rank, self.seq) == (other.at, other.rank, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.rank, std::cmp::Reverse(self.depth), self.seq).cmp(&(
            other.at,
            other.rank,
            std::cmp::Reverse(other.depth),
            other.seq,
        ))
    }
}

/// A deterministic discrete-event simulation of `n` parties running one root
/// [`Protocol`] instance each over the configured network.
///
/// Messages travel as their canonical byte encoding ([`crate::wire`]): the
/// simulator encodes each payload once at the send boundary (a broadcast is
/// encoded *once* and the bytes shared across all `n` deliveries), derives
/// the exact bit accounting from the encoded length, passes corrupt senders'
/// bytes through the configured
/// [`ByzantineStrategy`], and decodes at
/// the delivery boundary — bytes that fail to decode are dropped as
/// Byzantine input and counted in [`Metrics::decode_failures`].
///
/// Messages are delivered and timers fired in `(time, kind, sequence)` order;
/// at equal times, message deliveries precede timer expiries so that a party
/// whose timer is set to the network bound `Δ` observes every message that
/// was guaranteed to arrive by then — exactly the paper's synchronous round
/// abstraction.
pub struct Simulation<M> {
    config: NetConfig,
    parties: Vec<Box<dyn Protocol<M>>>,
    rngs: Vec<StdRng>,
    corruption: CorruptionSet,
    strategy: Box<dyn ByzantineStrategy>,
    scheduler: Box<dyn Scheduler>,
    sched_rng: StdRng,
    adv_rng: StdRng,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: Time,
    metrics: Metrics,
    coin_seed: u64,
    initialized: bool,
    transcript: Option<Vec<TranscriptEntry>>,
    /// Reusable effects buffer: drained after every event instead of
    /// allocating a fresh `Effects` per [`Simulation::step`].
    scratch: Effects<M>,
}

impl<M: WireEncode + WireDecode + 'static> Simulation<M> {
    /// Creates a simulation with the default scheduler for the configured
    /// network kind: worst-case `Δ` delays when synchronous, uniform
    /// `[1, 20·Δ]` delays when asynchronous.
    pub fn new(
        config: NetConfig,
        corruption: CorruptionSet,
        parties: Vec<Box<dyn Protocol<M>>>,
    ) -> Self {
        let scheduler: Box<dyn Scheduler> = match config.kind {
            NetworkKind::Synchronous => Box::new(FixedDelay(config.delta)),
            NetworkKind::Asynchronous => Box::new(UniformDelay {
                min: 1,
                max: config.delta * 20,
            }),
        };
        Self::with_scheduler(config, corruption, scheduler, parties)
    }

    /// Creates a simulation with an explicit (possibly adversarial) scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `parties.len() != config.n`.
    pub fn with_scheduler(
        config: NetConfig,
        corruption: CorruptionSet,
        scheduler: Box<dyn Scheduler>,
        parties: Vec<Box<dyn Protocol<M>>>,
    ) -> Self {
        assert_eq!(
            parties.len(),
            config.n,
            "need exactly one root protocol per party"
        );
        let rngs = (0..config.n)
            .map(|i| StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37).wrapping_add(i as u64)))
            .collect();
        let sched_rng = StdRng::seed_from_u64(config.seed ^ 0xDEAD_BEEF);
        let adv_rng = StdRng::seed_from_u64(config.seed ^ 0xBADA_D0E5);
        let coin_seed = config.seed ^ 0x5EED_C011;
        Simulation {
            config,
            parties,
            rngs,
            corruption,
            strategy: Box::new(Passive),
            scheduler,
            sched_rng,
            adv_rng,
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            metrics: Metrics::new(),
            coin_seed,
            initialized: false,
            transcript: None,
            scratch: Effects::new(),
        }
    }

    /// Installs the wire-level Byzantine behaviour applied to every message
    /// sent by a corrupt party (default: [`Passive`], i.e. pass-through).
    /// Call before running.
    pub fn set_strategy(&mut self, strategy: Box<dyn ByzantineStrategy>) {
        self.strategy = strategy;
    }

    /// Starts recording every processed event; call before running. Off by
    /// default because full transcripts of large runs are memory-heavy.
    pub fn record_transcript(&mut self) {
        self.transcript.get_or_insert_with(Vec::new);
    }

    /// The recorded transcript (empty unless [`Simulation::record_transcript`]
    /// was called before running).
    pub fn transcript(&self) -> &[TranscriptEntry] {
        self.transcript.as_deref().unwrap_or(&[])
    }

    /// The configuration the simulation was built with.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Communication metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The corruption set.
    pub fn corruption(&self) -> &CorruptionSet {
        &self.corruption
    }

    /// Immutable access to party `i`'s root protocol instance.
    pub fn party(&self, i: PartyId) -> &dyn Protocol<M> {
        self.parties[i].as_ref()
    }

    /// Downcasts party `i`'s root protocol to a concrete type for inspecting
    /// outputs after (or during) the run.
    pub fn party_as<T: 'static>(&self, i: PartyId) -> Option<&T> {
        self.parties[i].as_any().downcast_ref::<T>()
    }

    /// Calls `init` on every party at time 0. Invoked automatically by the
    /// `run_*` methods if not done explicitly.
    pub fn init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for p in 0..self.config.n {
            let mut effects = std::mem::replace(&mut self.scratch, Effects::new());
            {
                let mut ctx = Context::new(
                    p,
                    self.config.n,
                    0,
                    self.config.delta,
                    &mut effects,
                    &mut self.rngs[p],
                    self.coin_seed,
                );
                self.parties[p].init(&mut ctx);
            }
            self.apply_effects(p, &mut effects);
            self.scratch = effects;
        }
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.init();
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time must be monotone");
        self.now = ev.at;
        self.metrics.events_processed += 1;
        let (party, mut effects) = match ev.kind {
            EventKind::Deliver {
                to,
                from,
                path,
                payload,
            } => {
                // The delivery boundary: bytes that do not decode as a
                // protocol message are Byzantine input — drop and count,
                // never panic, never reach the protocol.
                let Ok(msg) = M::decode(&payload) else {
                    self.metrics.decode_failures += 1;
                    if let Some(transcript) = &mut self.transcript {
                        transcript.push(TranscriptEntry {
                            at: ev.at,
                            party: to,
                            event: TranscriptEvent::DroppedDeliver {
                                from,
                                path,
                                bits: payload.len() as u64 * 8,
                            },
                        });
                    }
                    return true;
                };
                if let Some(transcript) = &mut self.transcript {
                    transcript.push(TranscriptEntry {
                        at: ev.at,
                        party: to,
                        event: TranscriptEvent::Deliver {
                            from,
                            path: path.clone(),
                            bits: payload.len() as u64 * 8,
                        },
                    });
                }
                let mut effects = std::mem::replace(&mut self.scratch, Effects::new());
                {
                    let mut ctx = Context::new(
                        to,
                        self.config.n,
                        self.now,
                        self.config.delta,
                        &mut effects,
                        &mut self.rngs[to],
                        self.coin_seed,
                    );
                    self.parties[to].on_message(&mut ctx, from, &path, msg);
                }
                (to, effects)
            }
            EventKind::Timer { party, path, id } => {
                if let Some(transcript) = &mut self.transcript {
                    transcript.push(TranscriptEntry {
                        at: ev.at,
                        party,
                        event: TranscriptEvent::Timer {
                            path: path.clone(),
                            id,
                        },
                    });
                }
                let mut effects = std::mem::replace(&mut self.scratch, Effects::new());
                {
                    let mut ctx = Context::new(
                        party,
                        self.config.n,
                        self.now,
                        self.config.delta,
                        &mut effects,
                        &mut self.rngs[party],
                        self.coin_seed,
                    );
                    self.parties[party].on_timer(&mut ctx, &path, id);
                }
                (party, effects)
            }
        };
        self.apply_effects(party, &mut effects);
        self.scratch = effects;
        true
    }

    /// Runs until `pred` returns `true` (checked after every event), the
    /// event queue drains, or simulated time exceeds `horizon`. Returns
    /// whether `pred` became true.
    pub fn run_until(&mut self, horizon: Time, mut pred: impl FnMut(&Self) -> bool) -> bool {
        self.init();
        if pred(self) {
            return true;
        }
        loop {
            if let Some(Reverse(ev)) = self.queue.peek() {
                if ev.at > horizon {
                    return false;
                }
            }
            if !self.step() {
                return pred(self);
            }
            if pred(self) {
                return true;
            }
        }
    }

    /// Runs until the event queue is empty or `horizon` is exceeded.
    pub fn run_to_quiescence(&mut self, horizon: Time) {
        let _ = self.run_until(horizon, |_| false);
    }

    /// Drains the effects buffer into the event queue (the buffer's
    /// allocations are kept alive for reuse by the next event).
    fn apply_effects(&mut self, sender: PartyId, effects: &mut Effects<M>) {
        let honest = self.corruption.is_honest(sender);
        for (to, path, msg) in effects.sends.drain(..) {
            let payload = Arc::new(msg.encode());
            self.dispatch(sender, honest, to, path, payload, false);
        }
        for (path, msg) in effects.broadcasts.drain(..) {
            // One encoding for the whole broadcast; every delivery event
            // shares the same bytes (and the same interned path) through
            // `Arc`s.
            let payload = Arc::new(msg.encode());
            for to in 0..self.config.n {
                self.dispatch(sender, honest, to, path.clone(), Arc::clone(&payload), true);
            }
        }
        for (delay, path, id) in effects.timers.drain(..) {
            self.seq += 1;
            self.queue.push(Reverse(Event {
                at: self.now + delay,
                rank: 1,
                depth: path.len(),
                seq: self.seq,
                kind: EventKind::Timer {
                    party: sender,
                    path,
                    id,
                },
            }));
        }
    }

    /// Puts one already-encoded message on the wire: consults the Byzantine
    /// strategy for corrupt senders, records the exact bit accounting, and
    /// schedules the delivery event.
    fn dispatch(
        &mut self,
        from: PartyId,
        honest: bool,
        to: PartyId,
        path: Path,
        payload: Arc<Vec<u8>>,
        broadcast: bool,
    ) {
        let payload = if honest {
            payload
        } else {
            let send = WireSend {
                from,
                to,
                n: self.config.n,
                path: &path,
                bytes: &payload,
                broadcast,
            };
            match self.strategy.on_send(&send, &mut self.adv_rng) {
                WireAction::Deliver => payload,
                WireAction::Replace(bytes) => {
                    self.metrics.adversary_tampered += 1;
                    Arc::new(bytes)
                }
                WireAction::Drop => {
                    self.metrics.adversary_drops += 1;
                    return;
                }
            }
        };
        let bits = payload.len() as u64 * 8;
        self.metrics
            .record_send(honest, bits, path.first().copied());
        let delay = if to == from {
            0
        } else {
            self.scheduler
                .delay(from, to, self.now, &mut self.sched_rng)
        };
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at: self.now + delay,
            rank: 0,
            depth: path.len(),
            seq: self.seq,
            kind: EventKind::Deliver {
                to,
                from,
                path,
                payload,
            },
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// A toy protocol: party 0 sends "ping" to everyone at init; everyone who
    /// receives a ping replies "pong" to the sender; party 0 counts pongs.
    #[derive(Debug, Default)]
    struct PingPong {
        pongs: usize,
        got_ping_at: Option<Time>,
    }

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    impl WireEncode for Msg {
        fn encode_into(&self, out: &mut Vec<u8>) {
            out.push(match self {
                Msg::Ping => 0,
                Msg::Pong => 1,
            });
        }
    }

    impl WireDecode for Msg {
        fn decode_from(
            r: &mut crate::wire::WireReader<'_>,
        ) -> Result<Self, crate::wire::WireError> {
            match r.u8()? {
                0 => Ok(Msg::Ping),
                1 => Ok(Msg::Pong),
                tag => Err(crate::wire::WireError::InvalidTag {
                    tag,
                    context: "test Msg",
                }),
            }
        }
    }

    impl Protocol<Msg> for PingPong {
        fn init(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.me == 0 {
                ctx.broadcast(Msg::Ping);
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Msg>,
            from: PartyId,
            _path: &[u32],
            msg: Msg,
        ) {
            match msg {
                Msg::Ping => {
                    self.got_ping_at = Some(ctx.now);
                    ctx.send(from, Msg::Pong);
                }
                Msg::Pong => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _path: &[u32], _id: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn parties(n: usize) -> Vec<Box<dyn Protocol<Msg>>> {
        (0..n)
            .map(|_| Box::new(PingPong::default()) as Box<dyn Protocol<Msg>>)
            .collect()
    }

    #[test]
    fn ping_pong_completes_in_sync_network() {
        let n = 5;
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties(n));
        let done = sim.run_until(1000, |s| s.party_as::<PingPong>(0).unwrap().pongs == n);
        assert!(done);
        // all pings delivered within Δ
        for i in 1..n {
            let p = sim.party_as::<PingPong>(i).unwrap();
            assert!(p.got_ping_at.unwrap() <= sim.config().delta);
        }
    }

    #[test]
    fn sync_network_respects_delta_bound() {
        let n = 4;
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties(n));
        sim.run_to_quiescence(10_000);
        // ping at 0 → delivered by Δ; pong → by 2Δ; nothing after that.
        assert!(sim.now() <= 2 * sim.config().delta);
    }

    #[test]
    fn async_network_can_exceed_delta() {
        let n = 4;
        let cfg = NetConfig::asynchronous(n).with_seed(3);
        let delta = cfg.delta;
        let mut sim = Simulation::new(cfg, CorruptionSet::none(), parties(n));
        sim.run_to_quiescence(100_000);
        let late =
            (1..n).any(|i| sim.party_as::<PingPong>(i).unwrap().got_ping_at.unwrap() > delta);
        assert!(
            late,
            "with the async scheduler some delivery should exceed Δ"
        );
    }

    #[test]
    fn metrics_count_honest_messages() {
        let n = 4;
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties(n));
        sim.run_to_quiescence(10_000);
        // n pings + (n-1) pongs + self-ping answered by self pong = n + n
        assert_eq!(sim.metrics().honest_messages, (n + n) as u64);
        assert_eq!(sim.metrics().honest_bits, (n + n) as u64 * 8);
    }

    #[test]
    fn corrupt_sender_messages_not_counted_as_honest() {
        let n = 4;
        let mut sim = Simulation::new(
            NetConfig::synchronous(n),
            CorruptionSet::new(vec![0]),
            parties(n),
        );
        sim.run_to_quiescence(10_000);
        // party 0 sends n pings plus the pong answering its own ping
        assert_eq!(sim.metrics().corrupt_messages, (n + 1) as u64);
        assert_eq!(sim.metrics().honest_messages, (n - 1) as u64); // the other pongs
    }

    #[test]
    fn crash_strategy_suppresses_all_corrupt_sends() {
        let n = 4;
        let mut sim = Simulation::new(
            NetConfig::synchronous(n),
            CorruptionSet::new(vec![0]),
            parties(n),
        );
        sim.set_strategy(Box::new(crate::adversary::Crash));
        sim.run_to_quiescence(10_000);
        // party 0's n-recipient ping broadcast is dropped on the wire, so no
        // pings arrive and nobody ever replies
        assert_eq!(sim.metrics().adversary_drops, n as u64);
        assert_eq!(sim.metrics().honest_messages, 0);
        assert_eq!(sim.metrics().corrupt_messages, 0);
    }

    #[test]
    fn garbling_corrupt_sender_never_panics() {
        let n = 4;
        let mut sim = Simulation::new(
            NetConfig::synchronous(n),
            CorruptionSet::new(vec![0]),
            parties(n),
        );
        sim.set_strategy(Box::new(crate::adversary::GarbleBytes));
        sim.run_to_quiescence(10_000);
        // every wire copy of party 0's broadcast was tampered with, and each
        // delivery either decoded to *some* message or was dropped cleanly
        assert!(sim.metrics().adversary_tampered >= n as u64);
        let answered: u64 = (0..n)
            .map(|i| sim.party_as::<PingPong>(i).unwrap().got_ping_at.is_some() as u64)
            .sum();
        assert!(answered + sim.metrics().decode_failures >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 6;
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                NetConfig::asynchronous(n).with_seed(seed),
                CorruptionSet::none(),
                parties(n),
            );
            sim.run_to_quiescence(100_000);
            (sim.now(), sim.metrics().clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn timer_fires_after_messages_at_same_time() {
        // A protocol that sends itself a message with delay 0 and sets a timer
        // with delay 0; the message must be handled first.
        #[derive(Debug, Default)]
        struct Order {
            log: Vec<&'static str>,
        }
        impl Protocol<Msg> for Order {
            fn init(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(0, 1);
                ctx.send(ctx.me, Msg::Ping);
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: PartyId, _p: &[u32], _m: Msg) {
                self.log.push("msg");
            }
            fn on_timer(&mut self, _c: &mut Context<'_, Msg>, _p: &[u32], _id: u64) {
                self.log.push("timer");
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulation::new(
            NetConfig::synchronous(1),
            CorruptionSet::none(),
            vec![Box::new(Order::default()) as Box<dyn Protocol<Msg>>],
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.party_as::<Order>(0).unwrap().log, vec!["msg", "timer"]);
    }
}
