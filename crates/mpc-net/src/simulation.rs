//! The discrete-event simulator driving all protocol executions.
//!
//! Since PR 4 the simulator executes in deterministic *time slices*: all
//! events scheduled at the same simulated tick form one batch, the batch is
//! (optionally) pre-executed on worker threads grouped by destination party,
//! and the results are merged back in the exact canonical event order the
//! purely sequential engine would have produced — transcripts, [`Metrics`]
//! and bit accounting are bit-identical for every worker-thread count. See
//! the "Deterministic parallel execution" section of DESIGN.md for the
//! correctness argument.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adversary::{
    AdversaryStructure, ByzantineStrategy, CorruptionSet, Passive, WireAction, WireSend,
};
use crate::context::{Context, Effects, Path, Protocol};
use crate::faults::{FaultOutcome, FaultPlan};
use crate::metrics::Metrics;
use crate::scheduler::{FixedDelay, Scheduler, UniformDelay};
use crate::wire::{Frame, FrameBuilder, WireDecode, WireEncode};

pub use crate::transport::{PartyId, Time};

/// Which of the paper's two network models the execution runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Every message delivered within the publicly known bound `Δ`.
    Synchronous,
    /// Arbitrary finite, adversarially scheduled delays.
    Asynchronous,
}

/// The process-wide default worker-thread count, read once from the
/// `MPC_THREADS` environment variable (unset, empty or unparsable → 1).
fn env_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("MPC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1)
    })
}

/// The process-wide default for wire-frame coalescing, read once from the
/// `MPC_FRAMES` environment variable (`0`, `false` or `off` disable it;
/// anything else — including unset — enables it).
fn env_frames() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("MPC_FRAMES") {
        Ok(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off"))
        }
        Err(_) => true,
    })
}

/// Static configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Number of parties `n`.
    pub n: usize,
    /// The publicly known synchronous delivery bound `Δ` (in ticks).
    pub delta: Time,
    /// Network model.
    pub kind: NetworkKind,
    /// Master seed: party RNGs, the scheduler RNG and the common-coin oracle
    /// are all derived from it, making runs fully reproducible.
    pub seed: u64,
    /// Worker threads for same-time-slice pre-execution: `None` defers to
    /// the `MPC_THREADS` environment variable (default 1 = sequential).
    /// The thread count never changes the execution — only its wall-clock
    /// time — so this is purely a performance knob.
    pub threads: Option<usize>,
    /// Wire-frame coalescing: every honest party's sends/broadcasts of one
    /// time-slice activation travel as per-destination [`Frame`]s (one
    /// simulator event each) instead of one event per message. `None` defers
    /// to the `MPC_FRAMES` environment variable (default on). Framing keeps
    /// the paper-level bit accounting and all security-relevant behaviour
    /// intact but changes the event schedule, so the two modes produce
    /// different (individually deterministic) transcripts.
    pub frames: Option<bool>,
}

impl NetConfig {
    /// The default synchronous delivery bound `Δ`, in ticks.
    pub const DEFAULT_DELTA: Time = 10;
    /// The default master seed of a run.
    pub const DEFAULT_SEED: u64 = 0xB0B5;

    /// A network of `n` parties of the given kind with the default `Δ` and
    /// seed (override via [`NetConfig::with_delta`] / [`NetConfig::with_seed`]).
    pub fn for_kind(n: usize, kind: NetworkKind) -> Self {
        NetConfig {
            n,
            delta: Self::DEFAULT_DELTA,
            kind,
            seed: Self::DEFAULT_SEED,
            threads: None,
            frames: None,
        }
    }

    /// A synchronous network of `n` parties with `Δ = 10` ticks.
    pub fn synchronous(n: usize) -> Self {
        Self::for_kind(n, NetworkKind::Synchronous)
    }

    /// An asynchronous network of `n` parties (the protocol still believes
    /// `Δ = 10` when computing its time-outs — that belief is simply wrong).
    pub fn asynchronous(n: usize) -> Self {
        Self::for_kind(n, NetworkKind::Asynchronous)
    }

    /// Replaces the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces `Δ`.
    pub fn with_delta(mut self, delta: Time) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the worker-thread count for same-time-slice pre-execution
    /// (values < 1 are clamped to 1). Overrides the `MPC_THREADS`
    /// environment variable.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The effective worker-thread count: the explicit
    /// [`NetConfig::with_threads`] value if set, else `MPC_THREADS`, else 1.
    pub fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(env_threads).max(1)
    }

    /// Enables or disables wire-frame coalescing explicitly, overriding the
    /// `MPC_FRAMES` environment variable. Golden-transcript tests pin this so
    /// their fingerprints are environment-independent.
    pub fn with_frames(mut self, frames: bool) -> Self {
        self.frames = Some(frames);
        self
    }

    /// The effective frame-coalescing setting: the explicit
    /// [`NetConfig::with_frames`] value if set, else `MPC_FRAMES`, else on.
    pub fn resolved_frames(&self) -> bool {
        self.frames.unwrap_or_else(env_frames)
    }

    /// Seed of party `i`'s deterministic RNG. Shared by every
    /// [`crate::transport::Transport`] backend: the conformance oracle
    /// (threaded backend vs simulator) depends on both deriving identical
    /// per-party randomness from the master seed.
    pub fn party_rng_seed(&self, i: PartyId) -> u64 {
        self.seed.wrapping_mul(0x9E37).wrapping_add(i as u64)
    }

    /// Seed of the ideal common-coin oracle (shared across backends).
    pub fn coin_seed(&self) -> u64 {
        self.seed ^ 0x5EED_C011
    }

    /// Seed of the adversary RNG handed to [`ByzantineStrategy`] consults
    /// (shared across backends).
    pub fn adversary_seed(&self) -> u64 {
        self.seed ^ 0xBADA_D0E5
    }
}

#[derive(Clone, Debug)]
pub(crate) enum EventKind {
    Deliver {
        to: PartyId,
        from: PartyId,
        path: Path,
        /// The canonical encoding of the payload. A broadcast is encoded
        /// once and this `Arc` is shared across all `n` delivery events.
        payload: Arc<Vec<u8>>,
    },
    /// A coalesced [`Frame`] of messages from one honest sender: all the
    /// sends/broadcasts it emitted towards `to` during one time-slice
    /// activation, travelling as a *single* simulator event and unpacked at
    /// the delivery boundary. A broadcast frame's bytes are encoded once and
    /// this `Arc` is shared across all recipients.
    DeliverFrame {
        to: PartyId,
        from: PartyId,
        payload: Arc<Vec<u8>>,
    },
    Timer {
        party: PartyId,
        path: Path,
        id: u64,
    },
}

impl EventKind {
    /// The party that will handle this event.
    fn party(&self) -> PartyId {
        match self {
            EventKind::Deliver { to, .. } | EventKind::DeliverFrame { to, .. } => *to,
            EventKind::Timer { party, .. } => *party,
        }
    }
}

/// One processed event, as recorded by [`Simulation::record_transcript`].
///
/// Message payloads are summarised by their wire size; together with the
/// delivery order, times and instance paths this fingerprints an execution
/// tightly enough to assert replay determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranscriptEntry {
    /// Simulated time at which the event was processed.
    pub at: Time,
    /// The party that handled the event.
    pub party: PartyId,
    /// What happened.
    pub event: TranscriptEvent,
}

/// The observable payload of a [`TranscriptEntry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranscriptEvent {
    /// A message delivery.
    Deliver {
        /// Sending party.
        from: PartyId,
        /// Instance path the message was routed to.
        path: Path,
        /// Exact wire size of the payload: encoded byte length ×8.
        bits: u64,
    },
    /// A delivery whose bytes failed to decode as a protocol message and
    /// were dropped at the boundary as Byzantine input (see
    /// [`crate::Metrics::decode_failures`]).
    DroppedDeliver {
        /// Sending party.
        from: PartyId,
        /// Instance path the undecodable message was addressed to.
        path: Path,
        /// Exact wire size of the dropped payload: encoded byte length ×8.
        bits: u64,
    },
    /// A timer expiry.
    Timer {
        /// Instance path owning the timer.
        path: Path,
        /// Timer id within that instance.
        id: u64,
    },
}

#[derive(Debug)]
struct Event {
    at: Time,
    rank: u8,
    /// Instance-path depth; deeper timers fire first at equal times so that a
    /// parent's deadline observes the state its sub-protocols finalise at that
    /// same instant (e.g. `Π_BC` reading the SBA output at `T_BC`).
    depth: usize,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.rank, self.seq) == (other.at, other.rank, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.rank, std::cmp::Reverse(self.depth), self.seq).cmp(&(
            other.at,
            other.rank,
            std::cmp::Reverse(other.depth),
            other.seq,
        ))
    }
}

/// Calendar-queue event store: a ring of per-tick buckets spanning `Δ` ticks
/// from the current time plus an overflow heap for farther-out events.
///
/// The paper's protocols generate heavily clustered schedules (synchronous
/// rounds put *every* delivery of a round at the same tick), which makes the
/// classic binary-heap queue pay `O(log k)` per event for no benefit: within
/// one tick the (rank, depth, seq) order is what matters, and across ticks
/// the calendar ring finds the next non-empty tick in `O(Δ)`. Each bucket is
/// itself a small heap ordered by the canonical event order, so draining a
/// bucket yields exactly the sequence the old global heap produced.
struct EventQueue {
    /// `ring[(cursor + (t - base)) % ring.len()]` holds the events of tick
    /// `t` for `t ∈ [base, base + ring.len())`.
    ring: Vec<BinaryHeap<Reverse<Event>>>,
    /// Tick represented by `ring[cursor]`.
    base: Time,
    cursor: usize,
    /// Events at ticks `≥ base + ring.len()`.
    overflow: BinaryHeap<Reverse<Event>>,
    len: usize,
}

impl EventQueue {
    /// Ring width is `Δ` ticks, clamped to a sane range: correctness does
    /// not depend on the width (farther events overflow), only constant
    /// factors do.
    fn new(delta: Time) -> Self {
        let width = delta.clamp(1, 256) as usize;
        EventQueue {
            ring: (0..width).map(|_| BinaryHeap::new()).collect(),
            base: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, ev: Event) {
        debug_assert!(ev.at >= self.base, "events cannot be scheduled in the past");
        self.len += 1;
        let width = self.ring.len() as Time;
        if ev.at < self.base + width {
            let slot = (self.cursor + (ev.at - self.base) as usize) % self.ring.len();
            self.ring[slot].push(Reverse(ev));
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    /// Moves overflow events that now fall inside the ring window into their
    /// buckets. Called whenever `base` advances.
    fn migrate_overflow(&mut self) {
        let width = self.ring.len() as Time;
        while let Some(Reverse(ev)) = self.overflow.peek() {
            if ev.at >= self.base + width {
                break;
            }
            let Some(Reverse(ev)) = self.overflow.pop() else {
                unreachable!("peeked above")
            };
            let slot = (self.cursor + (ev.at - self.base) as usize) % self.ring.len();
            self.ring[slot].push(Reverse(ev));
        }
    }

    /// Advances to and returns the earliest tick holding any event, or
    /// `None` when the queue is empty. Afterwards [`EventQueue::pop_current`]
    /// pops that tick's events in canonical order.
    fn next_time(&mut self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        let width = self.ring.len();
        for off in 0..width {
            let slot = (self.cursor + off) % width;
            if !self.ring[slot].is_empty() {
                self.cursor = slot;
                self.base += off as Time;
                if off > 0 {
                    self.migrate_overflow();
                }
                return Some(self.base);
            }
        }
        // The ring is empty: jump straight to the earliest overflow tick.
        let t = self
            .overflow
            .peek()
            .map(|Reverse(ev)| ev.at)
            .expect("len > 0 but no events anywhere");
        self.base = t;
        self.migrate_overflow();
        Some(t)
    }

    /// Pops the canonically-next event of the *current* tick (the one the
    /// last [`EventQueue::next_time`] returned), if any remains.
    fn pop_current(&mut self) -> Option<Event> {
        let Reverse(ev) = self.ring[self.cursor].pop()?;
        self.len -= 1;
        Some(ev)
    }

    /// Iterates the *current* tick's pending events in arbitrary order
    /// (cheap pre-inspection without popping).
    fn current_events(&self) -> impl Iterator<Item = &Event> {
        self.ring[self.cursor].iter().map(|Reverse(ev)| ev)
    }
}

/// One pre-executed event of a party's same-time batch: the transcript entry
/// it produced plus its side effects with payloads already encoded. Produced
/// on worker threads, consumed by the canonical serial merge.
struct Step {
    /// 0 = delivery, 1 = timer — validated against the merged event.
    kind_tag: u8,
    transcript: Option<TranscriptEntry>,
    decode_failed: bool,
    /// `(to, path, canonical bytes)` unicasts, in emission order.
    sends: Vec<(PartyId, Path, Arc<Vec<u8>>)>,
    /// `(path, canonical bytes)` broadcasts, in emission order.
    broadcasts: Vec<(Path, Arc<Vec<u8>>)>,
    /// `(delay, path, id)` timer requests, in emission order.
    timers: Vec<(Time, Path, u64)>,
}

/// A worker-local event: same ordering key as [`Event`] restricted to one
/// tick and one party, with a local sequence surrogate whose relative order
/// matches the global sequence numbers the merge will assign.
struct LocalEv {
    rank: u8,
    depth: usize,
    lseq: u64,
    kind: LocalKind,
}

enum LocalKind {
    Deliver {
        from: PartyId,
        path: Path,
        payload: Arc<Vec<u8>>,
    },
    Frame {
        from: PartyId,
        payload: Arc<Vec<u8>>,
    },
    Timer {
        path: Path,
        id: u64,
    },
}

impl PartialEq for LocalEv {
    fn eq(&self, other: &Self) -> bool {
        (self.rank, self.depth, self.lseq) == (other.rank, other.depth, other.lseq)
    }
}
impl Eq for LocalEv {}
impl PartialOrd for LocalEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LocalEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.rank, Reverse(self.depth), self.lseq).cmp(&(
            other.rank,
            Reverse(other.depth),
            other.lseq,
        ))
    }
}

/// One party's work for one time slice, carved out of the simulation for a
/// worker thread: exclusive access to the party's state machine and RNG plus
/// its batch events in canonical order. Also the unit of work of the
/// threaded transport backend, which reuses [`run_party_batch`] verbatim —
/// that shared engine is what makes the two backends bit-conformant.
pub(crate) struct WorkerParty<'a, M> {
    pub(crate) party: PartyId,
    pub(crate) protocol: &'a mut Box<dyn Protocol<M>>,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) events: Vec<EventKind>,
}

/// Pre-executes one party's full time-`t` batch — including the same-tick
/// cascades its own handlers spawn (self-sends, broadcast self-copies,
/// zero-delay timers) — and returns one [`Step`] per processed event, in the
/// party's canonical processing order.
///
/// This runs on a worker thread and touches nothing but the party's own
/// state and RNG, which is exactly why per-party pre-execution commutes: see
/// DESIGN.md, "Deterministic parallel execution".
fn run_party_slice<M: WireEncode + WireDecode + 'static>(
    wp: WorkerParty<'_, M>,
    t: Time,
    n: usize,
    delta: Time,
    coin_seed: u64,
    record: bool,
) -> (PartyId, VecDeque<Step>) {
    let WorkerParty {
        party,
        protocol,
        rng,
        events,
    } = wp;
    let mut queue: BinaryHeap<Reverse<LocalEv>> = BinaryHeap::with_capacity(events.len());
    let mut lseq = 0u64;
    for kind in events {
        debug_assert_eq!(kind.party(), party);
        let local = match kind {
            EventKind::Deliver {
                from,
                path,
                payload,
                ..
            } => LocalEv {
                rank: 0,
                depth: path.len(),
                lseq,
                kind: LocalKind::Deliver {
                    from,
                    path,
                    payload,
                },
            },
            EventKind::DeliverFrame { .. } => {
                unreachable!("frame events are only scheduled by the framed slice engine")
            }
            EventKind::Timer { path, id, .. } => LocalEv {
                rank: 1,
                depth: path.len(),
                lseq,
                kind: LocalKind::Timer { path, id },
            },
        };
        lseq += 1;
        queue.push(Reverse(local));
    }
    let mut steps = VecDeque::new();
    let mut scratch: Effects<M> = Effects::new();
    while let Some(Reverse(ev)) = queue.pop() {
        let mut step = Step {
            kind_tag: 0,
            transcript: None,
            decode_failed: false,
            sends: Vec::new(),
            broadcasts: Vec::new(),
            timers: Vec::new(),
        };
        match ev.kind {
            LocalKind::Deliver {
                from,
                path,
                payload,
            } => match M::decode(&payload) {
                Err(_) => {
                    step.decode_failed = true;
                    if record {
                        step.transcript = Some(TranscriptEntry {
                            at: t,
                            party,
                            event: TranscriptEvent::DroppedDeliver {
                                from,
                                path,
                                bits: payload.len() as u64 * 8,
                            },
                        });
                    }
                }
                Ok(msg) => {
                    if record {
                        step.transcript = Some(TranscriptEntry {
                            at: t,
                            party,
                            event: TranscriptEvent::Deliver {
                                from,
                                path: path.clone(),
                                bits: payload.len() as u64 * 8,
                            },
                        });
                    }
                    let mut ctx = Context::new(party, n, t, delta, &mut scratch, rng, coin_seed);
                    protocol.on_message(&mut ctx, from, &path, msg);
                }
            },
            LocalKind::Frame { .. } => {
                unreachable!("frame events are only scheduled by the framed slice engine")
            }
            LocalKind::Timer { path, id } => {
                step.kind_tag = 1;
                if record {
                    step.transcript = Some(TranscriptEntry {
                        at: t,
                        party,
                        event: TranscriptEvent::Timer {
                            path: path.clone(),
                            id,
                        },
                    });
                }
                let mut ctx = Context::new(party, n, t, delta, &mut scratch, rng, coin_seed);
                protocol.on_timer(&mut ctx, &path, id);
            }
        }
        // Resolve the effects: encode payloads here (off the serial merge
        // path) and feed the party's own same-tick cascades back into the
        // local queue, in the same relative order the merge's global
        // sequence numbers will induce (sends, then broadcast self-copies,
        // then timers — each in emission order).
        for (to, path, msg) in scratch.sends.drain(..) {
            let bytes = Arc::new(msg.encode());
            if to == party {
                lseq += 1;
                queue.push(Reverse(LocalEv {
                    rank: 0,
                    depth: path.len(),
                    lseq,
                    kind: LocalKind::Deliver {
                        from: party,
                        path: path.clone(),
                        payload: Arc::clone(&bytes),
                    },
                }));
            }
            step.sends.push((to, path, bytes));
        }
        for (path, msg) in scratch.broadcasts.drain(..) {
            let bytes = Arc::new(msg.encode());
            lseq += 1;
            queue.push(Reverse(LocalEv {
                rank: 0,
                depth: path.len(),
                lseq,
                kind: LocalKind::Deliver {
                    from: party,
                    path: path.clone(),
                    payload: Arc::clone(&bytes),
                },
            }));
            step.broadcasts.push((path, bytes));
        }
        for (delay, path, id) in scratch.timers.drain(..) {
            if delay == 0 {
                lseq += 1;
                queue.push(Reverse(LocalEv {
                    rank: 1,
                    depth: path.len(),
                    lseq,
                    kind: LocalKind::Timer {
                        path: path.clone(),
                        id,
                    },
                }));
            }
            step.timers.push((delay, path, id));
        }
        steps.push_back(step);
    }
    (party, steps)
}

/// Per-message accounting for one honest send: the exact wire size of the
/// message's canonical encoding (in bits) and the top-level path segment the
/// sending instance belongs to (for [`Metrics::honest_bits_by_root_segment`]).
pub(crate) type SendRecord = (u64, Option<u32>);

/// The outgoing wire frames of one honest party's activation: at most one
/// unicast frame per destination plus one broadcast frame whose encoding is
/// shared across all recipients. Accounting stays *per contained message* —
/// frames change the event schedule, never the paper-level bit counting.
pub(crate) struct FrameSet {
    /// Per-destination unicast frames with their per-message accounting,
    /// flushed in ascending destination order.
    pub(crate) unicast: BTreeMap<PartyId, (FrameBuilder, Vec<SendRecord>)>,
    /// The single broadcast frame (empty = no broadcasts this activation).
    pub(crate) broadcast: FrameBuilder,
    /// Per-message accounting of the broadcast frame, applied once per
    /// recipient at flush time.
    pub(crate) broadcast_meta: Vec<SendRecord>,
}

impl FrameSet {
    pub(crate) fn new() -> Self {
        FrameSet {
            unicast: BTreeMap::new(),
            broadcast: FrameBuilder::new(),
            broadcast_meta: Vec::new(),
        }
    }

    /// Appends one unicast to the destination's frame.
    pub(crate) fn add_send<M: WireEncode>(&mut self, to: PartyId, path: &Path, msg: &M) {
        let (builder, meta) = self
            .unicast
            .entry(to)
            .or_insert_with(|| (FrameBuilder::new(), Vec::new()));
        let span = builder.push(path, msg);
        meta.push((span.len() as u64 * 8, path.first().copied()));
    }

    /// Appends one broadcast message to the shared broadcast frame and
    /// returns its exact wire size plus a standalone copy of its encoding
    /// (for the sender's own same-tick delivery), without encoding twice.
    pub(crate) fn add_broadcast<M: WireEncode>(&mut self, path: &Path, msg: &M) -> (u64, Vec<u8>) {
        let span = self.broadcast.push(path, msg);
        let bits = span.len() as u64 * 8;
        self.broadcast_meta.push((bits, path.first().copied()));
        (bits, self.broadcast.message_bytes(span).to_vec())
    }
}

/// Everything one honest party's pre-executed time-slice batch produced under
/// the framed engine: event/transcript/decode accounting plus the coalesced
/// outgoing frames and future timers. Self-addressed messages and zero-delay
/// timers were already handled *inside* the batch (they can only concern the
/// batch's own party) and appear here only as accounting records.
pub(crate) struct BatchOutcome {
    pub(crate) party: PartyId,
    /// Events processed: initial batch events (a frame counts as one) plus
    /// every internal same-tick cascade step.
    pub(crate) events: u64,
    /// Timer expiries among the processed events (see
    /// [`crate::Metrics::timeouts_fired`]).
    pub(crate) timers_fired: u64,
    pub(crate) decode_failures: u64,
    pub(crate) transcript: Vec<TranscriptEntry>,
    /// Accounting for the sends delivered internally (self-sends and the
    /// sender's own copy of each broadcast).
    pub(crate) self_records: Vec<SendRecord>,
    pub(crate) frames: FrameSet,
    /// Timer requests with delay ≥ 1, in emission order.
    pub(crate) timers: Vec<(Time, Path, u64)>,
}

/// Feeds one handler invocation's effects back into a framed batch: unicasts
/// and broadcasts join the outgoing [`FrameSet`], the party's own same-tick
/// copies and zero-delay timers re-enter the local queue, and future timers
/// are recorded for the merge.
fn resolve_framed_effects<M: WireEncode>(
    party: PartyId,
    scratch: &mut Effects<M>,
    out: &mut BatchOutcome,
    queue: &mut BinaryHeap<Reverse<LocalEv>>,
    lseq: &mut u64,
) {
    for (to, path, msg) in scratch.sends.drain(..) {
        if to == party {
            let bytes = Arc::new(msg.encode());
            out.self_records
                .push((bytes.len() as u64 * 8, path.first().copied()));
            *lseq += 1;
            queue.push(Reverse(LocalEv {
                rank: 0,
                depth: path.len(),
                lseq: *lseq,
                kind: LocalKind::Deliver {
                    from: party,
                    path,
                    payload: bytes,
                },
            }));
        } else {
            out.frames.add_send(to, &path, &msg);
        }
    }
    for (path, msg) in scratch.broadcasts.drain(..) {
        let (bits, self_copy) = out.frames.add_broadcast(&path, &msg);
        out.self_records.push((bits, path.first().copied()));
        *lseq += 1;
        queue.push(Reverse(LocalEv {
            rank: 0,
            depth: path.len(),
            lseq: *lseq,
            kind: LocalKind::Deliver {
                from: party,
                path,
                payload: Arc::new(self_copy),
            },
        }));
    }
    for (delay, path, id) in scratch.timers.drain(..) {
        if delay == 0 {
            *lseq += 1;
            queue.push(Reverse(LocalEv {
                rank: 1,
                depth: path.len(),
                lseq: *lseq,
                kind: LocalKind::Timer { path, id },
            }));
        } else {
            out.timers.push((delay, path, id));
        }
    }
}

/// Pre-executes one honest party's full time-`t` batch under the framed
/// engine: frames are unpacked at the delivery boundary, same-tick cascades
/// run locally, and all outgoing cross-party traffic is coalesced into the
/// returned [`BatchOutcome`]'s frame set. Runs either inline (sequential
/// framed engine) or on a worker thread — the outcome is identical, which is
/// what keeps `threads = k` runs bit-identical to `threads = 1`.
pub(crate) fn run_party_batch<M: WireEncode + WireDecode + 'static>(
    wp: WorkerParty<'_, M>,
    t: Time,
    n: usize,
    delta: Time,
    coin_seed: u64,
    record: bool,
) -> BatchOutcome {
    let WorkerParty {
        party,
        protocol,
        rng,
        events,
    } = wp;
    let mut queue: BinaryHeap<Reverse<LocalEv>> = BinaryHeap::with_capacity(events.len());
    let mut lseq = 0u64;
    for kind in events {
        debug_assert_eq!(kind.party(), party);
        let local = match kind {
            EventKind::Deliver {
                from,
                path,
                payload,
                ..
            } => LocalEv {
                rank: 0,
                depth: path.len(),
                lseq,
                kind: LocalKind::Deliver {
                    from,
                    path,
                    payload,
                },
            },
            EventKind::DeliverFrame { from, payload, .. } => LocalEv {
                rank: 0,
                depth: 0,
                lseq,
                kind: LocalKind::Frame { from, payload },
            },
            EventKind::Timer { path, id, .. } => LocalEv {
                rank: 1,
                depth: path.len(),
                lseq,
                kind: LocalKind::Timer { path, id },
            },
        };
        lseq += 1;
        queue.push(Reverse(local));
    }
    let mut out = BatchOutcome {
        party,
        events: 0,
        timers_fired: 0,
        decode_failures: 0,
        transcript: Vec::new(),
        self_records: Vec::new(),
        frames: FrameSet::new(),
        timers: Vec::new(),
    };
    let mut scratch: Effects<M> = Effects::new();
    while let Some(Reverse(ev)) = queue.pop() {
        out.events += 1;
        match ev.kind {
            LocalKind::Deliver {
                from,
                path,
                payload,
            } => match M::decode(&payload) {
                Err(_) => {
                    out.decode_failures += 1;
                    if record {
                        out.transcript.push(TranscriptEntry {
                            at: t,
                            party,
                            event: TranscriptEvent::DroppedDeliver {
                                from,
                                path,
                                bits: payload.len() as u64 * 8,
                            },
                        });
                    }
                }
                Ok(msg) => {
                    if record {
                        out.transcript.push(TranscriptEntry {
                            at: t,
                            party,
                            event: TranscriptEvent::Deliver {
                                from,
                                path: path.clone(),
                                bits: payload.len() as u64 * 8,
                            },
                        });
                    }
                    let mut ctx = Context::new(party, n, t, delta, &mut scratch, rng, coin_seed);
                    protocol.on_message(&mut ctx, from, &path, msg);
                    resolve_framed_effects(party, &mut scratch, &mut out, &mut queue, &mut lseq);
                }
            },
            LocalKind::Frame { from, payload } => match Frame::decode::<M>(&payload) {
                Err(_) => {
                    // Frames only come from honest senders, whose channels the
                    // adversary cannot touch — defensively drop, never panic.
                    out.decode_failures += 1;
                    if record {
                        out.transcript.push(TranscriptEntry {
                            at: t,
                            party,
                            event: TranscriptEvent::DroppedDeliver {
                                from,
                                path: Path::from(&[][..]),
                                bits: payload.len() as u64 * 8,
                            },
                        });
                    }
                }
                Ok(items) => {
                    for item in items {
                        if record {
                            out.transcript.push(TranscriptEntry {
                                at: t,
                                party,
                                event: TranscriptEvent::Deliver {
                                    from,
                                    path: item.path.clone(),
                                    bits: item.msg_bits,
                                },
                            });
                        }
                        let mut ctx =
                            Context::new(party, n, t, delta, &mut scratch, rng, coin_seed);
                        protocol.on_message(&mut ctx, from, &item.path, item.msg);
                        resolve_framed_effects(
                            party,
                            &mut scratch,
                            &mut out,
                            &mut queue,
                            &mut lseq,
                        );
                    }
                }
            },
            LocalKind::Timer { path, id } => {
                out.timers_fired += 1;
                if record {
                    out.transcript.push(TranscriptEntry {
                        at: t,
                        party,
                        event: TranscriptEvent::Timer {
                            path: path.clone(),
                            id,
                        },
                    });
                }
                let mut ctx = Context::new(party, n, t, delta, &mut scratch, rng, coin_seed);
                protocol.on_timer(&mut ctx, &path, id);
                resolve_framed_effects(party, &mut scratch, &mut out, &mut queue, &mut lseq);
            }
        }
    }
    out
}

/// One cross-party wire message a corrupt party's batch put on the wire
/// (after its [`ByzantineStrategy`] was consulted), in consult order.
pub(crate) struct CorruptSend {
    pub(crate) to: PartyId,
    pub(crate) path: Path,
    pub(crate) payload: Arc<Vec<u8>>,
}

/// Everything one *corrupt* party's pre-executed time-`t` batch produced for
/// the threaded transport backend. Corrupt traffic is never framed — the
/// Byzantine strategy keeps its exact per-message view of the wire, matching
/// the simulator's corrupt dispatch path message for message.
pub(crate) struct CorruptOutcome {
    pub(crate) party: PartyId,
    pub(crate) events: u64,
    pub(crate) decode_failures: u64,
    pub(crate) transcript: Vec<TranscriptEntry>,
    /// Post-strategy cross-party messages, in consult order.
    pub(crate) sends: Vec<CorruptSend>,
    /// Strategy decisions, mirroring [`Metrics::adversary_drops`] /
    /// [`Metrics::adversary_tampered`] / [`Metrics::corrupt_messages`].
    pub(crate) drops: u64,
    pub(crate) tampered: u64,
    pub(crate) wire_messages: u64,
    /// Timer requests with delay ≥ 1, in emission order.
    pub(crate) timers: Vec<(Time, Path, u64)>,
}

/// Pre-executes one *corrupt* party's full time-`t` batch for the threaded
/// backend, mirroring the framed simulator engine's corrupt path exactly:
/// the initial batch events are processed to completion in canonical
/// `(rank, depth, lseq)` order first, then the same-tick cascades they
/// spawned (self-sends, broadcast self-copies, zero-delay timers) are
/// processed canonically among themselves — the same main-then-cascade order
/// `process_slice_framed` produces by routing corrupt cascades through the
/// global queue. Every send (including self-addressed copies) consults the
/// Byzantine strategy in emission order, as [`Simulation`]'s `dispatch` does.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_corrupt_batch<M: WireEncode + WireDecode + 'static>(
    wp: WorkerParty<'_, M>,
    t: Time,
    n: usize,
    delta: Time,
    coin_seed: u64,
    record: bool,
    strategy: &mut dyn ByzantineStrategy,
    adv_rng: &mut StdRng,
) -> CorruptOutcome {
    let WorkerParty {
        party,
        protocol,
        rng,
        events,
    } = wp;
    let mut main: BinaryHeap<Reverse<LocalEv>> = BinaryHeap::with_capacity(events.len());
    let mut lseq = 0u64;
    for kind in events {
        debug_assert_eq!(kind.party(), party);
        let local = match kind {
            EventKind::Deliver {
                from,
                path,
                payload,
                ..
            } => LocalEv {
                rank: 0,
                depth: path.len(),
                lseq,
                kind: LocalKind::Deliver {
                    from,
                    path,
                    payload,
                },
            },
            EventKind::DeliverFrame { from, payload, .. } => LocalEv {
                rank: 0,
                depth: 0,
                lseq,
                kind: LocalKind::Frame { from, payload },
            },
            EventKind::Timer { path, id, .. } => LocalEv {
                rank: 1,
                depth: path.len(),
                lseq,
                kind: LocalKind::Timer { path, id },
            },
        };
        lseq += 1;
        main.push(Reverse(local));
    }
    let mut out = CorruptOutcome {
        party,
        events: 0,
        decode_failures: 0,
        transcript: Vec::new(),
        sends: Vec::new(),
        drops: 0,
        tampered: 0,
        wire_messages: 0,
        timers: Vec::new(),
    };
    let mut cascades: BinaryHeap<Reverse<LocalEv>> = BinaryHeap::new();
    let mut scratch: Effects<M> = Effects::new();
    // Routes one handler invocation's effects through the strategy: self
    // copies join the cascade queue, cross-party survivors join the wire.
    let apply = |scratch: &mut Effects<M>,
                 out: &mut CorruptOutcome,
                 cascades: &mut BinaryHeap<Reverse<LocalEv>>,
                 lseq: &mut u64,
                 strategy: &mut dyn ByzantineStrategy,
                 adv_rng: &mut StdRng| {
        let put = |to: PartyId,
                   path: &Path,
                   payload: &Arc<Vec<u8>>,
                   broadcast: bool,
                   out: &mut CorruptOutcome,
                   cascades: &mut BinaryHeap<Reverse<LocalEv>>,
                   lseq: &mut u64,
                   strategy: &mut dyn ByzantineStrategy,
                   adv_rng: &mut StdRng| {
            let send = WireSend {
                from: party,
                to,
                n,
                path,
                bytes: payload,
                broadcast,
            };
            let payload = match strategy.on_send(&send, adv_rng) {
                WireAction::Deliver => Arc::clone(payload),
                WireAction::Replace(bytes) => {
                    out.tampered += 1;
                    Arc::new(bytes)
                }
                WireAction::Drop => {
                    out.drops += 1;
                    return;
                }
            };
            out.wire_messages += 1;
            if to == party {
                *lseq += 1;
                cascades.push(Reverse(LocalEv {
                    rank: 0,
                    depth: path.len(),
                    lseq: *lseq,
                    kind: LocalKind::Deliver {
                        from: party,
                        path: path.clone(),
                        payload,
                    },
                }));
            } else {
                out.sends.push(CorruptSend {
                    to,
                    path: path.clone(),
                    payload,
                });
            }
        };
        for (to, path, msg) in scratch.sends.drain(..) {
            let payload = Arc::new(msg.encode());
            put(
                to, &path, &payload, false, out, cascades, lseq, strategy, adv_rng,
            );
        }
        for (path, msg) in scratch.broadcasts.drain(..) {
            let payload = Arc::new(msg.encode());
            for to in 0..n {
                put(
                    to, &path, &payload, true, out, cascades, lseq, strategy, adv_rng,
                );
            }
        }
        for (delay, path, id) in scratch.timers.drain(..) {
            if delay == 0 {
                *lseq += 1;
                cascades.push(Reverse(LocalEv {
                    rank: 1,
                    depth: path.len(),
                    lseq: *lseq,
                    kind: LocalKind::Timer { path, id },
                }));
            } else {
                out.timers.push((delay, path, id));
            }
        }
    };
    // Phase 1: the initial batch, then phase 2: its same-tick cascades (which
    // may spawn further cascades, merged canonically into the same queue).
    for phase in 0..2 {
        loop {
            let popped = if phase == 0 {
                main.pop()
            } else {
                cascades.pop()
            };
            let Some(Reverse(ev)) = popped else { break };
            out.events += 1;
            match ev.kind {
                LocalKind::Deliver {
                    from,
                    path,
                    payload,
                } => match M::decode(&payload) {
                    Err(_) => {
                        out.decode_failures += 1;
                        if record {
                            out.transcript.push(TranscriptEntry {
                                at: t,
                                party,
                                event: TranscriptEvent::DroppedDeliver {
                                    from,
                                    path,
                                    bits: payload.len() as u64 * 8,
                                },
                            });
                        }
                    }
                    Ok(msg) => {
                        if record {
                            out.transcript.push(TranscriptEntry {
                                at: t,
                                party,
                                event: TranscriptEvent::Deliver {
                                    from,
                                    path: path.clone(),
                                    bits: payload.len() as u64 * 8,
                                },
                            });
                        }
                        let mut ctx =
                            Context::new(party, n, t, delta, &mut scratch, rng, coin_seed);
                        protocol.on_message(&mut ctx, from, &path, msg);
                        apply(
                            &mut scratch,
                            &mut out,
                            &mut cascades,
                            &mut lseq,
                            strategy,
                            adv_rng,
                        );
                    }
                },
                LocalKind::Frame { from, payload } => match Frame::decode::<M>(&payload) {
                    Err(_) => {
                        out.decode_failures += 1;
                        if record {
                            out.transcript.push(TranscriptEntry {
                                at: t,
                                party,
                                event: TranscriptEvent::DroppedDeliver {
                                    from,
                                    path: Path::from(&[][..]),
                                    bits: payload.len() as u64 * 8,
                                },
                            });
                        }
                    }
                    Ok(items) => {
                        // Effects are applied per item, exactly as the
                        // simulator's inline frame delivery does.
                        for item in items {
                            if record {
                                out.transcript.push(TranscriptEntry {
                                    at: t,
                                    party,
                                    event: TranscriptEvent::Deliver {
                                        from,
                                        path: item.path.clone(),
                                        bits: item.msg_bits,
                                    },
                                });
                            }
                            let mut ctx =
                                Context::new(party, n, t, delta, &mut scratch, rng, coin_seed);
                            protocol.on_message(&mut ctx, from, &item.path, item.msg);
                            apply(
                                &mut scratch,
                                &mut out,
                                &mut cascades,
                                &mut lseq,
                                strategy,
                                adv_rng,
                            );
                        }
                    }
                },
                LocalKind::Timer { path, id } => {
                    if record {
                        out.transcript.push(TranscriptEntry {
                            at: t,
                            party,
                            event: TranscriptEvent::Timer {
                                path: path.clone(),
                                id,
                            },
                        });
                    }
                    let mut ctx = Context::new(party, n, t, delta, &mut scratch, rng, coin_seed);
                    protocol.on_timer(&mut ctx, &path, id);
                    apply(
                        &mut scratch,
                        &mut out,
                        &mut cascades,
                        &mut lseq,
                        strategy,
                        adv_rng,
                    );
                }
            }
        }
    }
    out
}

/// Minimum same-tick events before the parallel path spawns workers; below
/// this the per-slice thread overhead outweighs any win and the slice runs
/// inline (the results are identical either way). At least two distinct
/// honest parties must also have work — see
/// [`Simulation::slice_worth_parallelising`].
const MIN_PARALLEL_EVENTS: usize = 4;

/// A deterministic discrete-event simulation of `n` parties running one root
/// [`Protocol`] instance each over the configured network.
///
/// Messages travel as their canonical byte encoding ([`crate::wire`]): the
/// simulator encodes each payload once at the send boundary (a broadcast is
/// encoded *once* and the bytes shared across all `n` deliveries), derives
/// the exact bit accounting from the encoded length, passes corrupt senders'
/// bytes through the configured
/// [`ByzantineStrategy`], and decodes at
/// the delivery boundary — bytes that fail to decode are dropped as
/// Byzantine input and counted in [`Metrics::decode_failures`].
///
/// Messages are delivered and timers fired in `(time, kind, sequence)` order;
/// at equal times, message deliveries precede timer expiries so that a party
/// whose timer is set to the network bound `Δ` observes every message that
/// was guaranteed to arrive by then — exactly the paper's synchronous round
/// abstraction.
///
/// With [`NetConfig::with_threads`] (or `MPC_THREADS`) > 1, each same-time
/// batch is pre-executed concurrently grouped by destination party and
/// merged back serially in canonical order; the execution — transcript,
/// metrics, bit accounting, outputs — is bit-identical to the sequential
/// one for every seed, network kind and Byzantine strategy.
pub struct Simulation<M> {
    config: NetConfig,
    threads: usize,
    /// Whether the framed slice engine is active: frame coalescing resolved
    /// from the config, gated on `Scheduler::min_delay() ≥ 1` (cross-party
    /// zero-delay schedulers fall back to the per-message engine, which is
    /// correct for them).
    framed: bool,
    parties: Vec<Box<dyn Protocol<M>>>,
    rngs: Vec<StdRng>,
    corruption: CorruptionSet,
    structure: Option<Arc<dyn AdversaryStructure>>,
    strategy: Box<dyn ByzantineStrategy>,
    scheduler: Box<dyn Scheduler>,
    faults: FaultPlan,
    sched_rng: StdRng,
    adv_rng: StdRng,
    queue: EventQueue,
    seq: u64,
    now: Time,
    metrics: Metrics,
    coin_seed: u64,
    initialized: bool,
    transcript: Option<Vec<TranscriptEntry>>,
    /// Reusable effects buffer: drained after every event instead of
    /// allocating a fresh `Effects` per [`Simulation::step`].
    scratch: Effects<M>,
}

impl<M: WireEncode + WireDecode + 'static> Simulation<M> {
    /// Creates a simulation with the default scheduler for the configured
    /// network kind: worst-case `Δ` delays when synchronous, uniform
    /// `[1, 20·Δ]` delays when asynchronous.
    pub fn new(
        config: NetConfig,
        corruption: CorruptionSet,
        parties: Vec<Box<dyn Protocol<M>>>,
    ) -> Self {
        let scheduler: Box<dyn Scheduler> = match config.kind {
            NetworkKind::Synchronous => Box::new(FixedDelay(config.delta)),
            NetworkKind::Asynchronous => Box::new(UniformDelay {
                min: 1,
                max: config.delta * 20,
            }),
        };
        Self::with_scheduler(config, corruption, scheduler, parties)
    }

    /// Creates a simulation with an explicit (possibly adversarial) scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `parties.len() != config.n`.
    pub fn with_scheduler(
        config: NetConfig,
        corruption: CorruptionSet,
        scheduler: Box<dyn Scheduler>,
        parties: Vec<Box<dyn Protocol<M>>>,
    ) -> Self {
        assert_eq!(
            parties.len(),
            config.n,
            "need exactly one root protocol per party"
        );
        let rngs = (0..config.n)
            .map(|i| StdRng::seed_from_u64(config.party_rng_seed(i)))
            .collect();
        let sched_rng = StdRng::seed_from_u64(config.seed ^ 0xDEAD_BEEF);
        let adv_rng = StdRng::seed_from_u64(config.adversary_seed());
        let coin_seed = config.coin_seed();
        let threads = config.resolved_threads();
        let framed = config.resolved_frames() && scheduler.min_delay() >= 1;
        let queue = EventQueue::new(config.delta);
        let mut metrics = Metrics::new();
        metrics.worker_threads = threads as u64;
        Simulation {
            config,
            threads,
            framed,
            parties,
            rngs,
            corruption,
            structure: None,
            strategy: Box::new(Passive),
            scheduler,
            faults: FaultPlan::none(),
            sched_rng,
            adv_rng,
            queue,
            seq: 0,
            now: 0,
            metrics,
            coin_seed,
            initialized: false,
            transcript: None,
            scratch: Effects::new(),
        }
    }

    /// Installs the wire-level Byzantine behaviour applied to every message
    /// sent by a corrupt party (default: [`Passive`], i.e. pass-through).
    /// Call before running.
    pub fn set_strategy(&mut self, strategy: Box<dyn ByzantineStrategy>) {
        self.strategy = strategy;
    }

    /// Installs an injected [`FaultPlan`] applied on top of the scheduler's
    /// link delays (default: the empty plan). Call before running. The same
    /// plan on the threaded backend yields the same per-message decisions —
    /// see the determinism contract in [`crate::faults`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The injected fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Attaches the [`AdversaryStructure`] the corruption set was validated
    /// against (descriptive only — see `Transport::set_adversary_structure`).
    pub fn set_adversary_structure(&mut self, structure: Arc<dyn AdversaryStructure>) {
        self.structure = Some(structure);
    }

    /// The attached adversary structure, if any.
    pub fn adversary_structure(&self) -> Option<&Arc<dyn AdversaryStructure>> {
        self.structure.as_ref()
    }

    /// Starts recording every processed event; call before running. Off by
    /// default because full transcripts of large runs are memory-heavy.
    pub fn record_transcript(&mut self) {
        self.transcript.get_or_insert_with(Vec::new);
    }

    /// The recorded transcript (empty unless [`Simulation::record_transcript`]
    /// was called before running).
    pub fn transcript(&self) -> &[TranscriptEntry] {
        self.transcript.as_deref().unwrap_or(&[])
    }

    /// The configuration the simulation was built with.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The effective worker-thread count of this run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the framed slice engine is active for this run (frame
    /// coalescing enabled *and* the scheduler guarantees cross-party delays
    /// of at least one tick).
    pub fn framed(&self) -> bool {
        self.framed
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Communication metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The corruption set.
    pub fn corruption(&self) -> &CorruptionSet {
        &self.corruption
    }

    /// Immutable access to party `i`'s root protocol instance.
    pub fn party(&self, i: PartyId) -> &dyn Protocol<M> {
        self.parties[i].as_ref()
    }

    /// Downcasts party `i`'s root protocol to a concrete type for inspecting
    /// outputs after (or during) the run.
    pub fn party_as<T: 'static>(&self, i: PartyId) -> Option<&T> {
        self.parties[i].as_any().downcast_ref::<T>()
    }

    /// Calls `init` on every party at time 0. Invoked automatically by the
    /// `run_*` methods if not done explicitly.
    pub fn init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for p in 0..self.config.n {
            let mut effects = std::mem::replace(&mut self.scratch, Effects::new());
            {
                let mut ctx = Context::new(
                    p,
                    self.config.n,
                    0,
                    self.config.delta,
                    &mut effects,
                    &mut self.rngs[p],
                    self.coin_seed,
                );
                self.parties[p].init(&mut ctx);
            }
            if self.framed && self.corruption.is_honest(p) {
                self.flush_framed_effects(p, &mut effects);
            } else {
                self.apply_effects(p, &mut effects);
            }
            self.scratch = effects;
        }
    }

    /// Processes the next single event. Returns `false` when the queue is
    /// empty. Always sequential — the parallel *and* framed engines operate
    /// on whole time slices via the `run_*` methods, so a single-stepped run
    /// delivers frames (unpacking them at the boundary) but dispatches its
    /// own output per message.
    pub fn step(&mut self) -> bool {
        self.init();
        let Some(t) = self.queue.next_time() else {
            return false;
        };
        let Some(ev) = self.queue.pop_current() else {
            unreachable!("next_time returned a tick without events")
        };
        debug_assert!(t >= self.now, "time must be monotone");
        self.now = t;
        self.metrics.events_processed += 1;
        self.execute_event(ev);
        true
    }

    /// Runs until `pred` returns `true`, the event queue drains, or the next
    /// pending event lies beyond `horizon`. Returns whether `pred` became
    /// true.
    ///
    /// `pred` is evaluated at *time-slice boundaries*: all events scheduled
    /// at the same simulated tick (including the same-tick cascades they
    /// spawn) are processed as one atomic batch before the predicate sees
    /// the state. A tick is the paper's indivisible unit of simultaneity —
    /// and slice atomicity is what lets the batch be pre-executed on worker
    /// threads without ever exposing a state the sequential engine would
    /// not also reach.
    pub fn run_until(&mut self, horizon: Time, mut pred: impl FnMut(&Self) -> bool) -> bool {
        self.init();
        if pred(self) {
            return true;
        }
        while let Some(t) = self.queue.next_time() {
            if t > horizon {
                return false;
            }
            self.process_slice(t);
            if pred(self) {
                return true;
            }
        }
        false
    }

    /// Runs until the event queue is empty or `horizon` is exceeded.
    pub fn run_to_quiescence(&mut self, horizon: Time) {
        let _ = self.run_until(horizon, |_| false);
    }

    /// Processes the complete batch of events scheduled at tick `t` — the
    /// events already queued for `t` plus every same-tick cascade they
    /// spawn. The caller must have positioned the queue via
    /// [`EventQueue::next_time`].
    fn process_slice(&mut self, t: Time) {
        self.now = t;
        let depth = self.queue.len() as u64;
        let before = self.metrics.events_processed;
        // Parallel pre-execution is sound only when cross-party messages
        // cannot be delivered within the same tick they are sent (see
        // `Scheduler::min_delay`): then every same-tick cascade stays on the
        // party that spawned it, and per-party batches commute. The framed
        // engine rests on the same property (it is gated on it at
        // construction) and exploits it twice: per-party batches *and*
        // per-destination frame coalescing of each batch's output. Whether
        // parallelism is *worth it* is decided by inspecting the live
        // bucket, so thin slices pay a single pop each rather than a
        // drain-and-reinsert.
        if self.framed {
            self.process_slice_framed(t);
        } else if self.threads > 1
            && self.scheduler.min_delay() >= 1
            && self.slice_worth_parallelising()
        {
            self.process_slice_parallel(t);
        } else {
            while let Some(ev) = self.queue.pop_current() {
                self.metrics.events_processed += 1;
                self.execute_event(ev);
            }
        }
        self.metrics
            .record_slice(self.metrics.events_processed - before, depth);
    }

    /// Cheap pre-check on the current bucket: spawn workers only for slices
    /// with at least [`MIN_PARALLEL_EVENTS`] initially queued events spread
    /// over at least two distinct honest parties. Purely a
    /// wall-clock heuristic — either engine produces identical results.
    fn slice_worth_parallelising(&self) -> bool {
        let mut events = 0usize;
        let mut first_honest: Option<PartyId> = None;
        let mut two_honest = false;
        for ev in self.queue.current_events() {
            events += 1;
            if !two_honest {
                let p = ev.kind.party();
                if self.corruption.is_honest(p) {
                    match first_honest {
                        None => first_honest = Some(p),
                        Some(q) => two_honest = q != p,
                    }
                }
            }
            if events >= MIN_PARALLEL_EVENTS && two_honest {
                return true;
            }
        }
        false
    }

    /// The parallel slice engine: drain the batch, pre-execute honest
    /// parties' events on worker threads grouped by party, then merge the
    /// pre-computed steps back by replaying the queue in canonical order
    /// (corrupt parties execute inline during the merge, because their
    /// sends consult the shared adversary RNG and strategy).
    fn process_slice_parallel(&mut self, t: Time) {
        let mut initial: Vec<Event> = Vec::new();
        while let Some(ev) = self.queue.pop_current() {
            initial.push(ev);
        }
        // Group the honest parties' events (canonical order per party; the
        // kind clones are cheap `Arc` bumps).
        let mut per_party: BTreeMap<PartyId, Vec<EventKind>> = BTreeMap::new();
        for ev in &initial {
            let p = ev.kind.party();
            if self.corruption.is_honest(p) {
                per_party.entry(p).or_default().push(ev.kind.clone());
            }
        }
        let workers = self.threads.min(per_party.len());
        let n = self.config.n;
        let delta = self.config.delta;
        let coin_seed = self.coin_seed;
        let record = self.transcript.is_some();
        // Carve disjoint `&mut` party/rng slots out of the simulation,
        // round-robin across workers (party ids ascend, so repeated
        // `split_at_mut` walks suffice — no unsafe).
        let mut groups: Vec<Vec<WorkerParty<'_, M>>> = (0..workers).map(|_| Vec::new()).collect();
        let mut parties_tail = self.parties.as_mut_slice();
        let mut rngs_tail = self.rngs.as_mut_slice();
        let mut offset = 0usize;
        for (i, (party, events)) in per_party.into_iter().enumerate() {
            let (_, rest) = parties_tail.split_at_mut(party - offset);
            let Some((protocol, rest)) = rest.split_first_mut() else {
                unreachable!("party id within range")
            };
            parties_tail = rest;
            let (_, rest) = rngs_tail.split_at_mut(party - offset);
            let Some((rng, rest)) = rest.split_first_mut() else {
                unreachable!("party id within range")
            };
            rngs_tail = rest;
            offset = party + 1;
            groups[i % workers].push(WorkerParty {
                party,
                protocol,
                rng,
                events,
            });
        }
        let mut traces: Vec<Option<VecDeque<Step>>> = (0..n).map(|_| None).collect();
        let results: Vec<Vec<(PartyId, VecDeque<Step>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .into_iter()
                            .map(|wp| run_party_slice(wp, t, n, delta, coin_seed, record))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulation worker thread panicked"))
                .collect()
        });
        for (party, steps) in results.into_iter().flatten() {
            traces[party] = Some(steps);
        }
        // Canonical serial merge: replay the slice through the queue so the
        // global order — including cross-party interleavings of same-tick
        // cascades — is exactly what the sequential engine produces.
        for ev in initial {
            self.queue.push(ev);
        }
        while let Some(ev) = self.queue.pop_current() {
            self.metrics.events_processed += 1;
            let p = ev.kind.party();
            match traces.get_mut(p).and_then(Option::as_mut) {
                Some(steps) => {
                    let step = steps.pop_front().unwrap_or_else(|| {
                        panic!(
                            "parallel slice out of sync: party {p} received an unplanned \
                             same-tick event (is a cross-party delay-0 scheduler in use?)"
                        )
                    });
                    let tag = matches!(ev.kind, EventKind::Timer { .. }) as u8;
                    assert_eq!(
                        tag, step.kind_tag,
                        "parallel slice out of sync for party {p}: event kind mismatch"
                    );
                    self.metrics.timeouts_fired += u64::from(tag);
                    self.consume_step(p, step);
                }
                None => self.execute_event(ev),
            }
        }
        debug_assert!(
            traces
                .iter()
                .all(|t| t.as_ref().is_none_or(VecDeque::is_empty)),
            "every pre-executed step must be consumed by the merge"
        );
    }

    /// Applies one pre-executed step on the serial merge path: transcript,
    /// decode accounting and effect dispatch happen here, in canonical
    /// order, exactly as the sequential engine interleaves them.
    fn consume_step(&mut self, party: PartyId, step: Step) {
        if step.decode_failed {
            self.metrics.decode_failures += 1;
        }
        if let Some(transcript) = &mut self.transcript {
            if let Some(entry) = step.transcript {
                transcript.push(entry);
            }
        }
        for (to, path, bytes) in step.sends {
            self.dispatch(party, true, to, path, bytes, false);
        }
        for (path, bytes) in step.broadcasts {
            for to in 0..self.config.n {
                self.dispatch(party, true, to, path.clone(), Arc::clone(&bytes), true);
            }
        }
        for (delay, path, id) in step.timers {
            self.push_timer(party, delay, path, id);
        }
    }

    /// The framed slice engine: drain the tick, group events by party, run
    /// every honest party's batch through [`run_party_batch`] (inline, or on
    /// worker threads when the slice is wide enough), and merge the outcomes
    /// in ascending party order — flushing each batch's coalesced frames with
    /// one scheduler draw per frame event. Corrupt parties execute inline
    /// with per-message dispatch so Byzantine strategies keep their exact
    /// per-message semantics (and their shared adversary RNG draw order).
    fn process_slice_framed(&mut self, t: Time) {
        let mut per_party: BTreeMap<PartyId, Vec<Event>> = BTreeMap::new();
        let mut total = 0usize;
        while let Some(ev) = self.queue.pop_current() {
            total += 1;
            per_party.entry(ev.kind.party()).or_default().push(ev);
        }
        let record = self.transcript.is_some();
        let n = self.config.n;
        let delta = self.config.delta;
        let coin_seed = self.coin_seed;
        let mut outcomes: Vec<Option<BatchOutcome>> = (0..n).map(|_| None).collect();
        let honest_with_work = per_party
            .keys()
            .filter(|&&p| self.corruption.is_honest(p))
            .count();
        if self.threads > 1 && total >= MIN_PARALLEL_EVENTS && honest_with_work >= 2 {
            // Carve disjoint `&mut` party/rng slots for the honest parties
            // (ascending ids ⇒ repeated `split_at_mut` walks, no unsafe).
            let workers = self.threads.min(honest_with_work);
            let mut groups: Vec<Vec<WorkerParty<'_, M>>> =
                (0..workers).map(|_| Vec::new()).collect();
            let mut parties_tail = self.parties.as_mut_slice();
            let mut rngs_tail = self.rngs.as_mut_slice();
            let mut offset = 0usize;
            let mut slot = 0usize;
            for (&party, events) in &per_party {
                if !self.corruption.is_honest(party) {
                    continue;
                }
                let (_, rest) = parties_tail.split_at_mut(party - offset);
                let Some((protocol, rest)) = rest.split_first_mut() else {
                    unreachable!("party id within range")
                };
                parties_tail = rest;
                let (_, rest) = rngs_tail.split_at_mut(party - offset);
                let Some((rng, rest)) = rest.split_first_mut() else {
                    unreachable!("party id within range")
                };
                rngs_tail = rest;
                offset = party + 1;
                groups[slot % workers].push(WorkerParty {
                    party,
                    protocol,
                    rng,
                    events: events.iter().map(|ev| ev.kind.clone()).collect(),
                });
                slot += 1;
            }
            let results: Vec<Vec<BatchOutcome>> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|group| {
                        scope.spawn(move || {
                            group
                                .into_iter()
                                .map(|wp| run_party_batch(wp, t, n, delta, coin_seed, record))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("simulation worker thread panicked"))
                    .collect()
            });
            for outcome in results.into_iter().flatten() {
                let party = outcome.party;
                outcomes[party] = Some(outcome);
            }
        }
        for (party, events) in per_party {
            if self.corruption.is_honest(party) {
                let outcome = match outcomes[party].take() {
                    Some(outcome) => outcome,
                    None => {
                        let kinds: Vec<EventKind> = events.into_iter().map(|ev| ev.kind).collect();
                        run_party_batch(
                            WorkerParty {
                                party,
                                protocol: &mut self.parties[party],
                                rng: &mut self.rngs[party],
                                events: kinds,
                            },
                            t,
                            n,
                            delta,
                            coin_seed,
                            record,
                        )
                    }
                };
                self.apply_outcome(outcome);
            } else {
                for ev in events {
                    self.metrics.events_processed += 1;
                    self.execute_event(ev);
                }
            }
        }
        // Same-tick cascades of corrupt parties (their self-sends and
        // zero-delay timers go through the global queue); `min_delay ≥ 1`
        // keeps everything else out of the current tick.
        while let Some(ev) = self.queue.pop_current() {
            self.metrics.events_processed += 1;
            self.execute_event(ev);
        }
    }

    /// Applies one pre-executed framed batch on the merge path: accounting,
    /// transcript, frame dispatch (one scheduler draw per frame event) and
    /// timer scheduling, in the engine's canonical ascending-party order.
    fn apply_outcome(&mut self, outcome: BatchOutcome) {
        let BatchOutcome {
            party,
            events,
            timers_fired,
            decode_failures,
            transcript,
            self_records,
            frames,
            timers,
        } = outcome;
        self.metrics.events_processed += events;
        self.metrics.timeouts_fired += timers_fired;
        self.metrics.decode_failures += decode_failures;
        if let Some(recorded) = &mut self.transcript {
            recorded.extend(transcript);
        }
        for (bits, seg) in self_records {
            self.metrics.record_send(party, true, bits, seg);
        }
        self.flush_frame_set(party, frames);
        for (delay, path, id) in timers {
            self.push_timer(party, delay, path, id);
        }
    }

    /// Dispatches a [`FrameSet`]'s frames: unicast frames in ascending
    /// destination order, then the broadcast frame to every other party with
    /// its encoding `Arc`-shared. Per-message bit accounting is applied here
    /// (once per recipient channel), exactly as the unframed engine would.
    fn flush_frame_set(&mut self, sender: PartyId, frames: FrameSet) {
        let FrameSet {
            unicast,
            broadcast,
            broadcast_meta,
        } = frames;
        for (to, (builder, meta)) in unicast {
            for (bits, seg) in meta {
                self.metrics.record_send(sender, true, bits, seg);
            }
            self.dispatch_frame(sender, to, Arc::new(builder.finish()));
        }
        if !broadcast.is_empty() {
            let payload = Arc::new(broadcast.finish());
            for to in 0..self.config.n {
                if to == sender {
                    continue;
                }
                for &(bits, seg) in &broadcast_meta {
                    self.metrics.record_send(sender, true, bits, seg);
                }
                self.dispatch_frame(sender, to, Arc::clone(&payload));
            }
        }
    }

    /// Coalesces an *honest* party's out-of-slice effects (currently: its
    /// `init` effects) into frames and dispatches them. Self-addressed
    /// messages have no running batch to join, so they travel as plain
    /// zero-delay events instead.
    fn flush_framed_effects(&mut self, sender: PartyId, effects: &mut Effects<M>) {
        let mut frames = FrameSet::new();
        for (to, path, msg) in effects.sends.drain(..) {
            if to == sender {
                let payload = Arc::new(msg.encode());
                self.dispatch(sender, true, to, path, payload, false);
            } else {
                frames.add_send(to, &path, &msg);
            }
        }
        for (path, msg) in effects.broadcasts.drain(..) {
            let (_, self_copy) = frames.add_broadcast(&path, &msg);
            self.dispatch(sender, true, sender, path, Arc::new(self_copy), true);
        }
        self.flush_frame_set(sender, frames);
        for (delay, path, id) in effects.timers.drain(..) {
            self.push_timer(sender, delay, path, id);
        }
    }

    /// Schedules one frame event (honest senders only — corrupt parties'
    /// traffic is never framed, so Byzantine strategies keep their
    /// per-message view of the wire).
    fn dispatch_frame(&mut self, from: PartyId, to: PartyId, payload: Arc<Vec<u8>>) {
        debug_assert_ne!(to, from, "self-addressed traffic is delivered in-batch");
        self.metrics.frames_sent += 1;
        let delay = self
            .scheduler
            .delay(from, to, self.now, &mut self.sched_rng);
        // The fault plan acts on the network, after the sender's bit
        // accounting: a dropped frame was still sent.
        let (at, duplicate) = match self.faults.resolve(from, to, self.now, self.now + delay) {
            FaultOutcome::Drop => {
                self.metrics.fault_drops += 1;
                return;
            }
            FaultOutcome::Deliver { at, duplicate } => (at, duplicate),
        };
        self.seq += 1;
        self.queue.push(Event {
            at,
            rank: 0,
            depth: 0,
            seq: self.seq,
            kind: EventKind::DeliverFrame {
                to,
                from,
                payload: payload.clone(),
            },
        });
        if let Some(dup_at) = duplicate {
            self.metrics.fault_duplicates += 1;
            self.seq += 1;
            self.queue.push(Event {
                at: dup_at,
                rank: 0,
                depth: 0,
                seq: self.seq,
                kind: EventKind::DeliverFrame { to, from, payload },
            });
        }
    }

    /// Executes one event inline (sequential path and corrupt parties):
    /// decode boundary, transcript, handler, effect application.
    fn execute_event(&mut self, ev: Event) {
        if matches!(ev.kind, EventKind::Timer { .. }) {
            self.metrics.timeouts_fired += 1;
        }
        let (party, mut effects) = match ev.kind {
            EventKind::DeliverFrame { to, from, payload } => {
                // Frame delivery outside a framed batch: corrupt recipients
                // during a framed slice, and single-stepped runs. Unpack at
                // the boundary and handle the items back to back; effects are
                // applied per item with the unframed per-message dispatch.
                match Frame::decode::<M>(&payload) {
                    Err(_) => {
                        self.metrics.decode_failures += 1;
                        if let Some(transcript) = &mut self.transcript {
                            transcript.push(TranscriptEntry {
                                at: ev.at,
                                party: to,
                                event: TranscriptEvent::DroppedDeliver {
                                    from,
                                    path: Path::from(&[][..]),
                                    bits: payload.len() as u64 * 8,
                                },
                            });
                        }
                    }
                    Ok(items) => {
                        for item in items {
                            if let Some(transcript) = &mut self.transcript {
                                transcript.push(TranscriptEntry {
                                    at: ev.at,
                                    party: to,
                                    event: TranscriptEvent::Deliver {
                                        from,
                                        path: item.path.clone(),
                                        bits: item.msg_bits,
                                    },
                                });
                            }
                            let mut effects = std::mem::replace(&mut self.scratch, Effects::new());
                            {
                                let mut ctx = Context::new(
                                    to,
                                    self.config.n,
                                    self.now,
                                    self.config.delta,
                                    &mut effects,
                                    &mut self.rngs[to],
                                    self.coin_seed,
                                );
                                self.parties[to].on_message(&mut ctx, from, &item.path, item.msg);
                            }
                            self.apply_effects(to, &mut effects);
                            self.scratch = effects;
                        }
                    }
                }
                return;
            }
            EventKind::Deliver {
                to,
                from,
                path,
                payload,
            } => {
                // The delivery boundary: bytes that do not decode as a
                // protocol message are Byzantine input — drop and count,
                // never panic, never reach the protocol.
                let Ok(msg) = M::decode(&payload) else {
                    self.metrics.decode_failures += 1;
                    if let Some(transcript) = &mut self.transcript {
                        transcript.push(TranscriptEntry {
                            at: ev.at,
                            party: to,
                            event: TranscriptEvent::DroppedDeliver {
                                from,
                                path,
                                bits: payload.len() as u64 * 8,
                            },
                        });
                    }
                    return;
                };
                if let Some(transcript) = &mut self.transcript {
                    transcript.push(TranscriptEntry {
                        at: ev.at,
                        party: to,
                        event: TranscriptEvent::Deliver {
                            from,
                            path: path.clone(),
                            bits: payload.len() as u64 * 8,
                        },
                    });
                }
                let mut effects = std::mem::replace(&mut self.scratch, Effects::new());
                {
                    let mut ctx = Context::new(
                        to,
                        self.config.n,
                        self.now,
                        self.config.delta,
                        &mut effects,
                        &mut self.rngs[to],
                        self.coin_seed,
                    );
                    self.parties[to].on_message(&mut ctx, from, &path, msg);
                }
                (to, effects)
            }
            EventKind::Timer { party, path, id } => {
                if let Some(transcript) = &mut self.transcript {
                    transcript.push(TranscriptEntry {
                        at: ev.at,
                        party,
                        event: TranscriptEvent::Timer {
                            path: path.clone(),
                            id,
                        },
                    });
                }
                let mut effects = std::mem::replace(&mut self.scratch, Effects::new());
                {
                    let mut ctx = Context::new(
                        party,
                        self.config.n,
                        self.now,
                        self.config.delta,
                        &mut effects,
                        &mut self.rngs[party],
                        self.coin_seed,
                    );
                    self.parties[party].on_timer(&mut ctx, &path, id);
                }
                (party, effects)
            }
        };
        self.apply_effects(party, &mut effects);
        self.scratch = effects;
    }

    /// Drains the effects buffer into the event queue (the buffer's
    /// allocations are kept alive for reuse by the next event).
    fn apply_effects(&mut self, sender: PartyId, effects: &mut Effects<M>) {
        let honest = self.corruption.is_honest(sender);
        for (to, path, msg) in effects.sends.drain(..) {
            let payload = Arc::new(msg.encode());
            self.dispatch(sender, honest, to, path, payload, false);
        }
        for (path, msg) in effects.broadcasts.drain(..) {
            // One encoding for the whole broadcast; every delivery event
            // shares the same bytes (and the same interned path) through
            // `Arc`s.
            let payload = Arc::new(msg.encode());
            for to in 0..self.config.n {
                self.dispatch(sender, honest, to, path.clone(), Arc::clone(&payload), true);
            }
        }
        for (delay, path, id) in effects.timers.drain(..) {
            self.push_timer(sender, delay, path, id);
        }
    }

    /// Schedules one timer expiry.
    fn push_timer(&mut self, party: PartyId, delay: Time, path: Path, id: u64) {
        self.seq += 1;
        self.queue.push(Event {
            at: self.now + delay,
            rank: 1,
            depth: path.len(),
            seq: self.seq,
            kind: EventKind::Timer { party, path, id },
        });
    }

    /// Puts one already-encoded message on the wire: consults the Byzantine
    /// strategy for corrupt senders, records the exact bit accounting, and
    /// schedules the delivery event.
    fn dispatch(
        &mut self,
        from: PartyId,
        honest: bool,
        to: PartyId,
        path: Path,
        payload: Arc<Vec<u8>>,
        broadcast: bool,
    ) {
        let payload = if honest {
            payload
        } else {
            let send = WireSend {
                from,
                to,
                n: self.config.n,
                path: &path,
                bytes: &payload,
                broadcast,
            };
            match self.strategy.on_send(&send, &mut self.adv_rng) {
                WireAction::Deliver => payload,
                WireAction::Replace(bytes) => {
                    self.metrics.adversary_tampered += 1;
                    Arc::new(bytes)
                }
                WireAction::Drop => {
                    self.metrics.adversary_drops += 1;
                    return;
                }
            }
        };
        let bits = payload.len() as u64 * 8;
        self.metrics
            .record_send(from, honest, bits, path.first().copied());
        let delay = if to == from {
            0
        } else {
            self.scheduler
                .delay(from, to, self.now, &mut self.sched_rng)
        };
        // Fault plan after the sender's accounting: sent bits count even
        // when the network then drops the message. Self-sends are exempt by
        // the plan's contract.
        let (at, duplicate) = match self.faults.resolve(from, to, self.now, self.now + delay) {
            FaultOutcome::Drop => {
                self.metrics.fault_drops += 1;
                return;
            }
            FaultOutcome::Deliver { at, duplicate } => (at, duplicate),
        };
        self.seq += 1;
        self.queue.push(Event {
            at,
            rank: 0,
            depth: path.len(),
            seq: self.seq,
            kind: EventKind::Deliver {
                to,
                from,
                path: path.clone(),
                payload: payload.clone(),
            },
        });
        if let Some(dup_at) = duplicate {
            self.metrics.fault_duplicates += 1;
            self.seq += 1;
            self.queue.push(Event {
                at: dup_at,
                rank: 0,
                depth: path.len(),
                seq: self.seq,
                kind: EventKind::Deliver {
                    to,
                    from,
                    path,
                    payload,
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// A toy protocol: party 0 sends "ping" to everyone at init; everyone who
    /// receives a ping replies "pong" to the sender; party 0 counts pongs.
    #[derive(Debug, Default)]
    struct PingPong {
        pongs: usize,
        got_ping_at: Option<Time>,
    }

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    impl WireEncode for Msg {
        fn encode_into(&self, out: &mut Vec<u8>) {
            out.push(match self {
                Msg::Ping => 0,
                Msg::Pong => 1,
            });
        }
    }

    impl WireDecode for Msg {
        fn decode_from(
            r: &mut crate::wire::WireReader<'_>,
        ) -> Result<Self, crate::wire::WireError> {
            match r.u8()? {
                0 => Ok(Msg::Ping),
                1 => Ok(Msg::Pong),
                tag => Err(crate::wire::WireError::InvalidTag {
                    tag,
                    context: "test Msg",
                }),
            }
        }
    }

    impl Protocol<Msg> for PingPong {
        fn init(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.me == 0 {
                ctx.broadcast(Msg::Ping);
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Msg>,
            from: PartyId,
            _path: &[u32],
            msg: Msg,
        ) {
            match msg {
                Msg::Ping => {
                    self.got_ping_at = Some(ctx.now);
                    ctx.send(from, Msg::Pong);
                }
                Msg::Pong => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _path: &[u32], _id: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn parties(n: usize) -> Vec<Box<dyn Protocol<Msg>>> {
        (0..n)
            .map(|_| Box::new(PingPong::default()) as Box<dyn Protocol<Msg>>)
            .collect()
    }

    #[test]
    fn ping_pong_completes_in_sync_network() {
        let n = 5;
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties(n));
        let done = sim.run_until(1000, |s| s.party_as::<PingPong>(0).unwrap().pongs == n);
        assert!(done);
        // all pings delivered within Δ
        for i in 1..n {
            let p = sim.party_as::<PingPong>(i).unwrap();
            assert!(p.got_ping_at.unwrap() <= sim.config().delta);
        }
    }

    #[test]
    fn sync_network_respects_delta_bound() {
        let n = 4;
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties(n));
        sim.run_to_quiescence(10_000);
        // ping at 0 → delivered by Δ; pong → by 2Δ; nothing after that.
        assert!(sim.now() <= 2 * sim.config().delta);
    }

    #[test]
    fn async_network_can_exceed_delta() {
        let n = 4;
        let cfg = NetConfig::asynchronous(n).with_seed(3);
        let delta = cfg.delta;
        let mut sim = Simulation::new(cfg, CorruptionSet::none(), parties(n));
        sim.run_to_quiescence(100_000);
        let late =
            (1..n).any(|i| sim.party_as::<PingPong>(i).unwrap().got_ping_at.unwrap() > delta);
        assert!(
            late,
            "with the async scheduler some delivery should exceed Δ"
        );
    }

    #[test]
    fn metrics_count_honest_messages() {
        let n = 4;
        let mut sim = Simulation::new(NetConfig::synchronous(n), CorruptionSet::none(), parties(n));
        sim.run_to_quiescence(10_000);
        // n pings + (n-1) pongs + self-ping answered by self pong = n + n
        assert_eq!(sim.metrics().honest_messages, (n + n) as u64);
        assert_eq!(sim.metrics().honest_bits, (n + n) as u64 * 8);
    }

    #[test]
    fn corrupt_sender_messages_not_counted_as_honest() {
        let n = 4;
        let mut sim = Simulation::new(
            NetConfig::synchronous(n),
            CorruptionSet::new(vec![0]),
            parties(n),
        );
        sim.run_to_quiescence(10_000);
        // party 0 sends n pings plus the pong answering its own ping
        assert_eq!(sim.metrics().corrupt_messages, (n + 1) as u64);
        assert_eq!(sim.metrics().honest_messages, (n - 1) as u64); // the other pongs
    }

    #[test]
    fn crash_strategy_suppresses_all_corrupt_sends() {
        let n = 4;
        let mut sim = Simulation::new(
            NetConfig::synchronous(n),
            CorruptionSet::new(vec![0]),
            parties(n),
        );
        sim.set_strategy(Box::new(crate::adversary::Crash));
        sim.run_to_quiescence(10_000);
        // party 0's n-recipient ping broadcast is dropped on the wire, so no
        // pings arrive and nobody ever replies
        assert_eq!(sim.metrics().adversary_drops, n as u64);
        assert_eq!(sim.metrics().honest_messages, 0);
        assert_eq!(sim.metrics().corrupt_messages, 0);
    }

    #[test]
    fn garbling_corrupt_sender_never_panics() {
        let n = 4;
        let mut sim = Simulation::new(
            NetConfig::synchronous(n),
            CorruptionSet::new(vec![0]),
            parties(n),
        );
        sim.set_strategy(Box::new(crate::adversary::GarbleBytes));
        sim.run_to_quiescence(10_000);
        // every wire copy of party 0's broadcast was tampered with, and each
        // delivery either decoded to *some* message or was dropped cleanly
        assert!(sim.metrics().adversary_tampered >= n as u64);
        let answered: u64 = (0..n)
            .map(|i| sim.party_as::<PingPong>(i).unwrap().got_ping_at.is_some() as u64)
            .sum();
        assert!(answered + sim.metrics().decode_failures >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 6;
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                NetConfig::asynchronous(n).with_seed(seed),
                CorruptionSet::none(),
                parties(n),
            );
            sim.run_to_quiescence(100_000);
            (sim.now(), sim.metrics().clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn timer_fires_after_messages_at_same_time() {
        // A protocol that sends itself a message with delay 0 and sets a timer
        // with delay 0; the message must be handled first.
        #[derive(Debug, Default)]
        struct Order {
            log: Vec<&'static str>,
        }
        impl Protocol<Msg> for Order {
            fn init(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(0, 1);
                ctx.send(ctx.me, Msg::Ping);
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: PartyId, _p: &[u32], _m: Msg) {
                self.log.push("msg");
            }
            fn on_timer(&mut self, _c: &mut Context<'_, Msg>, _p: &[u32], _id: u64) {
                self.log.push("timer");
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulation::new(
            NetConfig::synchronous(1),
            CorruptionSet::none(),
            vec![Box::new(Order::default()) as Box<dyn Protocol<Msg>>],
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.party_as::<Order>(0).unwrap().log, vec!["msg", "timer"]);
    }

    /// The core tentpole guarantee at unit scale: a multi-threaded run is
    /// bit-identical to the sequential one — transcript, metrics, times.
    #[test]
    fn parallel_run_bit_identical_to_sequential() {
        let n = 8;
        let run = |threads: usize, kind: NetworkKind| {
            let cfg = NetConfig::for_kind(n, kind)
                .with_seed(5)
                .with_threads(threads);
            let mut sim = Simulation::new(cfg, CorruptionSet::none(), parties(n));
            sim.record_transcript();
            sim.run_to_quiescence(100_000);
            (sim.transcript().to_vec(), sim.metrics().clone(), sim.now())
        };
        for kind in [NetworkKind::Synchronous, NetworkKind::Asynchronous] {
            let seq = run(1, kind);
            for threads in [2, 4, 7] {
                let par = run(threads, kind);
                assert_eq!(seq.0, par.0, "{kind:?} transcript, threads={threads}");
                assert_eq!(seq.1, par.1, "{kind:?} metrics, threads={threads}");
                assert_eq!(seq.2, par.2, "{kind:?} end time, threads={threads}");
            }
        }
    }

    /// Same-tick cascade ordering (self-sends before timers, then deeper
    /// paths first) must survive parallel pre-execution.
    #[test]
    fn parallel_preserves_same_tick_cascade_order() {
        #[derive(Debug, Default)]
        struct Cascade {
            log: Vec<String>,
        }
        impl Protocol<Msg> for Cascade {
            fn init(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.broadcast(Msg::Ping);
                ctx.set_timer(0, 7);
            }
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, Msg>,
                from: PartyId,
                _p: &[u32],
                m: Msg,
            ) {
                self.log.push(format!("msg{from}:{m:?}"));
                if matches!(m, Msg::Ping) && from == ctx.me {
                    // same-tick self-cascade, one level deeper
                    ctx.scoped(3, |c| c.send(c.me, Msg::Pong));
                }
            }
            fn on_timer(&mut self, _c: &mut Context<'_, Msg>, _p: &[u32], id: u64) {
                self.log.push(format!("timer{id}"));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let n = 6;
        let run = |threads: usize| {
            let cfg = NetConfig::synchronous(n).with_seed(9).with_threads(threads);
            let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
                .map(|_| Box::new(Cascade::default()) as Box<dyn Protocol<Msg>>)
                .collect();
            let mut sim = Simulation::new(cfg, CorruptionSet::none(), parties);
            sim.record_transcript();
            sim.run_to_quiescence(10_000);
            let logs: Vec<Vec<String>> = (0..n)
                .map(|i| sim.party_as::<Cascade>(i).unwrap().log.clone())
                .collect();
            (sim.transcript().to_vec(), logs)
        };
        assert_eq!(run(1), run(4));
    }

    /// The calendar queue must behave exactly like the old global heap:
    /// strictly non-decreasing times, canonical order within a tick, and no
    /// lost events across the ring/overflow boundary.
    #[test]
    fn event_queue_orders_events_canonically() {
        let mk = |at: Time, rank: u8, depth: usize, seq: u64| Event {
            at,
            rank,
            depth,
            seq,
            kind: EventKind::Timer {
                party: 0,
                path: Path::from(vec![0u32; depth].as_slice()),
                id: seq,
            },
        };
        let mut q = EventQueue::new(10);
        // deliberately scattered times: in-ring, far overflow, same tick
        let mut expect: Vec<(Time, u8, Reverse<usize>, u64)> = Vec::new();
        let mut seq = 0;
        for &(at, rank, depth) in &[
            (5u64, 1u8, 0usize),
            (5, 0, 2),
            (5, 0, 0),
            (123, 0, 1),
            (42, 1, 3),
            (42, 1, 1),
            (7, 0, 0),
            (400, 0, 0),
            (42, 0, 0),
        ] {
            seq += 1;
            q.push(mk(at, rank, depth, seq));
            expect.push((at, rank, Reverse(depth), seq));
        }
        expect.sort();
        let mut got = Vec::new();
        while let Some(t) = q.next_time() {
            while let Some(ev) = q.pop_current() {
                assert_eq!(ev.at, t);
                got.push((ev.at, ev.rank, Reverse(ev.depth), ev.seq));
            }
        }
        assert_eq!(got, expect);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn event_queue_supports_same_tick_cascades() {
        let mut q = EventQueue::new(10);
        let mk = |at: Time, seq: u64| Event {
            at,
            rank: 0,
            depth: 0,
            seq,
            kind: EventKind::Timer {
                party: 0,
                path: Path::from(&[][..]),
                id: seq,
            },
        };
        q.push(mk(3, 1));
        assert_eq!(q.next_time(), Some(3));
        let first = q.pop_current().unwrap();
        assert_eq!(first.seq, 1);
        // cascade lands on the same tick and must be drainable immediately
        q.push(mk(3, 2));
        let second = q.pop_current().unwrap();
        assert_eq!(second.seq, 2);
        assert!(q.pop_current().is_none());
        // and the next tick still works after the in-slice push
        q.push(mk(4, 3));
        assert_eq!(q.next_time(), Some(4));
        assert_eq!(q.pop_current().unwrap().seq, 3);
    }

    #[test]
    fn threads_knob_resolution() {
        // explicit beats env; clamped to ≥ 1
        assert_eq!(
            NetConfig::synchronous(4).with_threads(0).resolved_threads(),
            1
        );
        assert_eq!(
            NetConfig::synchronous(4).with_threads(6).resolved_threads(),
            6
        );
        let sim = Simulation::new(
            NetConfig::synchronous(3).with_threads(2),
            CorruptionSet::none(),
            parties(3),
        );
        assert_eq!(sim.threads(), 2);
        assert_eq!(sim.metrics().worker_threads, 2);
    }
}
