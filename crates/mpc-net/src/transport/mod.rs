//! Transport abstraction: the party runtime behind [`crate::Simulation`],
//! factored into a trait so the deterministic discrete-event simulator is
//! *one* backend and the real threaded runtime
//! ([`threaded::ThreadedNet`]) is a second, conformant one.
//!
//! Both backends execute the same protocol state machines over the same
//! canonical wire bytes ([`crate::wire`]) with the same per-party seeded
//! randomness ([`crate::NetConfig::party_rng_seed`]); the simulator advances
//! a virtual clock event by event, while the threaded backend runs each
//! party as an OS thread exchanging bytes over in-memory channels, paced
//! against the *wall clock* — its timers are real `recv_timeout` deadlines,
//! so the synchronous→asynchronous fallback path is driven by genuine
//! timeouts rather than simulated `Δ` ticks.
//!
//! The conformance contract (see DESIGN.md, "Transport abstraction &
//! conformance oracle", and `tests/transport_conformance.rs`): for any seed
//! and any [`crate::scheduler::LinkDelays`] latency matrix, the two backends
//! produce byte-identical per-party outputs and identical per-party
//! honest-bit accounting. The simulator — bit-exact, replayable, adversarially
//! schedulable — thereby serves as a golden oracle for the real runtime.

pub mod supervisor;
pub mod tcp;
pub mod threaded;

use std::sync::Arc;

use crate::adversary::{AdversaryStructure, ByzantineStrategy, CorruptionSet};
use crate::context::Protocol;
use crate::metrics::Metrics;
use crate::simulation::{Simulation, TranscriptEntry};
use crate::wire::{WireDecode, WireEncode};

/// Identifies one of the `n` parties (their indices are `0..n`).
pub type PartyId = usize;

/// Logical network time in ticks. On the simulator this is the virtual
/// event-queue clock; on the threaded backend one tick is a fixed wall-clock
/// duration (`MPC_TICK_US`) and the value reported is the highest tick a
/// party actually processed.
pub type Time = u64;

/// Which party runtime executes a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic discrete-event simulator ([`Simulation`]):
    /// virtual time, bit-exact replay, adversarial schedulers.
    Simulator,
    /// The real threaded runtime ([`threaded::ThreadedNet`]): one OS thread
    /// per party, in-memory duplex channels carrying TCP-ready frame bytes,
    /// wall-clock timeouts.
    Threaded,
    /// The socket runtime ([`tcp::TcpNet`]): the threaded party runtime with
    /// every inter-party channel replaced by a supervised loopback
    /// `TcpStream` — retry/backoff dialing, reconnect-with-replay, and an
    /// incremental decoder that resyncs after torn frames.
    Tcp,
}

impl Backend {
    /// Parses a backend name: `"sim"`/`"simulator"`, `"threaded"`, or
    /// `"tcp"` (ASCII case-insensitive). `None` on anything else.
    pub fn parse(name: &str) -> Option<Backend> {
        let name = name.trim();
        if name.eq_ignore_ascii_case("sim") || name.eq_ignore_ascii_case("simulator") {
            Some(Backend::Simulator)
        } else if name.eq_ignore_ascii_case("threaded") {
            Some(Backend::Threaded)
        } else if name.eq_ignore_ascii_case("tcp") {
            Some(Backend::Tcp)
        } else {
            None
        }
    }

    /// Resolves the backend from the `MPC_TRANSPORT` environment variable
    /// via [`Backend::parse`]. Unset or empty selects
    /// [`Backend::Simulator`]; a set-but-unparsable value panics with the
    /// offending text rather than silently falling back.
    pub fn from_env() -> Backend {
        match std::env::var("MPC_TRANSPORT") {
            Ok(v) if v.trim().is_empty() => Backend::Simulator,
            Ok(v) => Backend::parse(&v).unwrap_or_else(|| {
                panic!("MPC_TRANSPORT={v:?}: unknown backend (expected sim|threaded|tcp)")
            }),
            Err(_) => Backend::Simulator,
        }
    }
}

/// A typed, non-fatal failure a transport diagnosed during a run. Kept out
/// of the run methods' signatures (which stay `()`/`bool` for
/// object-safety and API stability) and surfaced post-run through
/// [`Transport::last_error`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The threaded backend's conservative delivery gate saw zero progress
    /// on a lagging link for the configured wedge timeout
    /// (`ThreadedNet::with_wedge_millis` / `MPC_WEDGE_MS`) and processed
    /// anyway. Counted in [`Metrics::wedges`].
    Wedged {
        /// The peer whose link clock stopped advancing.
        party: PartyId,
        /// The last tick that peer's link clock had cleared when the gate
        /// gave up.
        last_progress_tick: Time,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Wedged {
                party,
                last_progress_tick,
            } => write!(
                f,
                "party {party} wedged (no progress past tick {last_progress_tick})"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

/// The read-only view of a run a [`Transport`] hands to completion
/// predicates and post-run inspection: party count, clock, and the party
/// state machines themselves.
pub trait PartyView<M> {
    /// Number of parties.
    fn n(&self) -> usize;
    /// Current logical time (see [`Time`] for the per-backend meaning).
    fn now(&self) -> Time;
    /// Immutable access to party `i`'s root protocol instance.
    fn party(&self, i: PartyId) -> &dyn Protocol<M>;
}

/// Downcasts party `i`'s root protocol to a concrete type — the typed lens
/// drivers use to read outputs out of a [`PartyView`].
pub fn party_as<T: 'static, M: 'static>(view: &dyn PartyView<M>, i: PartyId) -> Option<&T> {
    view.party(i).as_any().downcast_ref::<T>()
}

/// A party runtime: owns `n` protocol state machines, moves their canonical
/// wire bytes between them under some clock, and accounts the traffic.
///
/// Object-safe by design — drivers like `mpc-core`'s `MpcBuilder` hold a
/// `Box<dyn Transport<M>>` and stay agnostic of which backend runs the
/// protocol.
pub trait Transport<M>: PartyView<M> {
    /// Which backend this is.
    fn backend(&self) -> Backend;

    /// Installs the wire-level Byzantine behaviour applied to every message
    /// sent by a corrupt party. Call before running.
    fn set_strategy(&mut self, strategy: Box<dyn ByzantineStrategy>);

    /// Starts recording every processed event; call before running.
    fn record_transcript(&mut self);

    /// The recorded transcript. The *order* of entries is backend-specific
    /// (the threaded backend merges per-party logs), but each party's
    /// subsequence is part of the conformance contract.
    fn transcript(&self) -> &[TranscriptEntry];

    /// Runs until `pred` holds or no work at time ≤ `horizon` remains;
    /// returns whether the predicate held.
    ///
    /// The simulator evaluates the predicate after every processed time
    /// slice and can stop early. The threaded backend has no global barrier
    /// at which all party threads are simultaneously observable, so it runs
    /// to quiescence and evaluates the predicate once at the end.
    fn run_until_done(
        &mut self,
        horizon: Time,
        pred: &mut dyn FnMut(&dyn PartyView<M>) -> bool,
    ) -> bool;

    /// Runs until no event at time ≤ `horizon` remains. Used by the
    /// conformance harness to compare *complete* executions.
    fn run_to_quiescence(&mut self, horizon: Time);

    /// Communication metrics accumulated so far.
    fn metrics(&self) -> &Metrics;

    /// The corruption set.
    fn corruption(&self) -> &CorruptionSet;

    /// Attaches the [`AdversaryStructure`] the run's corruption set was
    /// validated against, so post-run analysis (the sweep harness) can ask
    /// which guarantee regime a placement falls under. Purely descriptive —
    /// the wire behaviour is fixed by the corruption set and strategy.
    fn set_adversary_structure(&mut self, structure: Arc<dyn AdversaryStructure>) {
        let _ = structure;
    }

    /// The attached adversary structure, if any.
    fn adversary_structure(&self) -> Option<&Arc<dyn AdversaryStructure>> {
        None
    }

    /// The first typed failure the backend diagnosed during the run, if any
    /// (e.g. [`TransportError::Wedged`] on the threaded backend). `None` on
    /// backends that cannot wedge (the simulator) and on clean runs.
    fn last_error(&self) -> Option<&TransportError> {
        None
    }
}

impl<M: WireEncode + WireDecode + 'static> PartyView<M> for Simulation<M> {
    fn n(&self) -> usize {
        self.config().n
    }
    fn now(&self) -> Time {
        Simulation::now(self)
    }
    fn party(&self, i: PartyId) -> &dyn Protocol<M> {
        Simulation::party(self, i)
    }
}

impl<M: WireEncode + WireDecode + 'static> Transport<M> for Simulation<M> {
    fn backend(&self) -> Backend {
        Backend::Simulator
    }
    fn set_strategy(&mut self, strategy: Box<dyn ByzantineStrategy>) {
        Simulation::set_strategy(self, strategy)
    }
    fn record_transcript(&mut self) {
        Simulation::record_transcript(self)
    }
    fn transcript(&self) -> &[TranscriptEntry] {
        Simulation::transcript(self)
    }
    fn run_until_done(
        &mut self,
        horizon: Time,
        pred: &mut dyn FnMut(&dyn PartyView<M>) -> bool,
    ) -> bool {
        self.run_until(horizon, |sim| pred(sim))
    }
    fn run_to_quiescence(&mut self, horizon: Time) {
        Simulation::run_to_quiescence(self, horizon)
    }
    fn metrics(&self) -> &Metrics {
        Simulation::metrics(self)
    }
    fn corruption(&self) -> &CorruptionSet {
        Simulation::corruption(self)
    }
    fn set_adversary_structure(&mut self, structure: Arc<dyn AdversaryStructure>) {
        Simulation::set_adversary_structure(self, structure)
    }
    fn adversary_structure(&self) -> Option<&Arc<dyn AdversaryStructure>> {
        Simulation::adversary_structure(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_env_resolution_defaults_to_simulator() {
        // Can't mutate the process environment safely in a threaded test
        // runner; assert the pure parsing contract instead.
        match std::env::var("MPC_TRANSPORT") {
            Ok(v) if !v.trim().is_empty() => {
                assert_eq!(Backend::from_env(), Backend::parse(&v).unwrap())
            }
            _ => assert_eq!(Backend::from_env(), Backend::Simulator),
        }
    }

    #[test]
    fn backend_parse_accepts_all_names_and_rejects_typos() {
        assert_eq!(Backend::parse("sim"), Some(Backend::Simulator));
        assert_eq!(Backend::parse("Simulator"), Some(Backend::Simulator));
        assert_eq!(Backend::parse("THREADED"), Some(Backend::Threaded));
        assert_eq!(Backend::parse(" tcp "), Some(Backend::Tcp));
        assert_eq!(Backend::parse("tpc"), None);
        assert_eq!(Backend::parse(""), None);
    }
}
