//! Connection supervision for the TCP transport ([`crate::transport::tcp`]):
//! the per-link stream codec, the exponential-backoff dial policy, the
//! bounded replay buffer behind reconnect-with-replay, and the chaos shim
//! that maps [`FaultPlan`] coordinates onto raw byte streams.
//!
//! # Stream protocol
//!
//! A directed link `i → r` is one dialed `TcpStream`: party `i` connects to
//! party `r`'s listener, writes a 12-byte handshake (`MAGIC`, `from`, `to`),
//! and from then on the stream carries length-prefixed *records*, each
//! `u32` body length followed by the body: a tag byte, tag-specific fields
//! in the canonical little-endian layout of [`crate::wire`], and a trailing
//! FNV-1a checksum over everything before it. Data and floor records carry
//! a per-link monotone sequence number assigned by the sender; the receiver
//! accepts exactly the next expected sequence, drops anything below it
//! (replay duplicates), and answers with cumulative acks. The sequence is
//! the stream-level realisation of the canonical `(from, send_tick, order)`
//! packet key: per link, records are emitted in exactly that order, so
//! dedup-by-sequence keeps the receiver's held-packet heap bit-identical to
//! the simulator oracle even under at-least-once redelivery.
//!
//! Any malformed body — bad tag, bad length, checksum mismatch, or a
//! truncated record at EOF — is *not* repaired in place: the decoder
//! reports a [`DecodeFault`], the receiver counts the abandoned bytes in
//! [`crate::Metrics::bytes_resynced`] and tears the connection down, and the
//! dialer re-establishes it and replays every unacked record from the start
//! of a record boundary. Teardown-and-replay *is* the resync mechanism.

use std::collections::VecDeque;
use std::time::Duration;

use crate::faults::{FaultOutcome, FaultPlan};
use crate::transport::{PartyId, Time};
use crate::wire::{WireError, WireReader};

/// Handshake magic: `"BoBW"` little-endian.
pub const MAGIC: u32 = 0x5742_6F42;

/// Hard cap on one record body (sanity bound against garbage lengths).
pub const MAX_RECORD_BYTES: usize = 1 << 26;

/// One record on a supervised link stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkRecord {
    /// A protocol packet: the PR 2 canonical frame (or path-prefixed single
    /// message) bytes plus the scheduling coordinates the receiver's heap
    /// orders by.
    Data {
        /// Per-link monotone sequence number (dedup key across replays).
        seq: u64,
        /// Sender-side emission tick.
        send_tick: Time,
        /// Emission index among the sender's packets of `send_tick`.
        order: u32,
        /// The tick the packet is stamped to arrive at.
        deliver_tick: Time,
        /// Whether `payload` is a complete wire frame (else a single
        /// path-prefixed message).
        framed: bool,
        /// The canonical wire bytes.
        payload: Vec<u8>,
    },
    /// A link-clock promise (Chandy–Misra null message) in transit.
    Floor {
        /// Per-link monotone sequence number, shared with data records.
        seq: u64,
        /// Nothing from this sender can arrive on this link before `floor`.
        floor: Time,
    },
    /// An idle-link liveness probe: re-announces the last promised floor
    /// (receiver-side a no-op, floors are max-monotonic) so a dead peer is
    /// detected by the write failing. Not sequenced, never replayed.
    Probe {
        /// The last floor promised on this link.
        floor: Time,
    },
    /// Cumulative acknowledgement, sent by the receiver back up the same
    /// stream: every sequence below `next_seq` has been processed, so the
    /// dialer can trim its replay buffer.
    Ack {
        /// The next sequence number the receiver expects.
        next_seq: u64,
    },
}

const TAG_DATA: u8 = 1;
const TAG_FLOOR: u8 = 2;
const TAG_PROBE: u8 = 3;
const TAG_ACK: u8 = 4;

/// FNV-1a over `bytes` — the per-record integrity check. Not cryptographic:
/// it guards against torn/duplicated byte runs, not an adversary (Byzantine
/// behaviour is modelled *above* the transport, by the wire strategies).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes the 12-byte connection handshake.
pub fn encode_handshake(from: PartyId, to: PartyId) -> [u8; 12] {
    let mut hs = [0u8; 12];
    hs[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    hs[4..8].copy_from_slice(&(from as u32).to_le_bytes());
    hs[8..12].copy_from_slice(&(to as u32).to_le_bytes());
    hs
}

/// Decodes and validates a connection handshake; returns `(from, to)`.
pub fn decode_handshake(bytes: &[u8; 12]) -> Option<(PartyId, PartyId)> {
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC {
        return None;
    }
    let from = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as PartyId;
    let to = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as PartyId;
    Some((from, to))
}

/// Encodes one record as its stream bytes: `u32` body length, body, with
/// the trailing FNV-1a checksum inside the body.
pub fn encode_record(rec: &LinkRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    match rec {
        LinkRecord::Data {
            seq,
            send_tick,
            order,
            deliver_tick,
            framed,
            payload,
        } => {
            body.push(TAG_DATA);
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&send_tick.to_le_bytes());
            body.extend_from_slice(&order.to_le_bytes());
            body.extend_from_slice(&deliver_tick.to_le_bytes());
            body.push(u8::from(*framed));
            body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            body.extend_from_slice(payload);
        }
        LinkRecord::Floor { seq, floor } => {
            body.push(TAG_FLOOR);
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&floor.to_le_bytes());
        }
        LinkRecord::Probe { floor } => {
            body.push(TAG_PROBE);
            body.extend_from_slice(&floor.to_le_bytes());
        }
        LinkRecord::Ack { next_seq } => {
            body.push(TAG_ACK);
            body.extend_from_slice(&next_seq.to_le_bytes());
        }
    }
    let sum = fnv1a(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Why the incremental decoder gave up on a stream. Any fault means the
/// connection must be torn down and re-established at a record boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeFault {
    /// The body length prefix is below the minimum or above
    /// [`MAX_RECORD_BYTES`].
    BadLength(u32),
    /// The trailing FNV-1a checksum does not match the body.
    BadChecksum,
    /// The body failed to parse as any record (bad tag, short field,
    /// trailing bytes).
    Malformed,
}

impl std::fmt::Display for DecodeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeFault::BadLength(l) => write!(f, "record length {l} out of bounds"),
            DecodeFault::BadChecksum => write!(f, "record checksum mismatch"),
            DecodeFault::Malformed => write!(f, "record body failed to parse"),
        }
    }
}

impl From<WireError> for DecodeFault {
    fn from(_: WireError) -> Self {
        DecodeFault::Malformed
    }
}

/// Incremental record decoder over a byte stream delivered in arbitrary
/// chunks ([`crate::wire::WireReader`] does the body parsing). Partial reads
/// buffer until a record completes; a malformed record is a [`DecodeFault`]
/// and poisons the stream — the caller must tear the connection down, since
/// a byte stream with garbage in it has no in-band record boundary to skip
/// to. Never panics on any input.
#[derive(Debug, Default)]
pub struct RecordDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl RecordDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily so the buffer doesn't grow with the whole stream.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a successfully decoded record
    /// — what a teardown abandons (counted in
    /// [`crate::Metrics::bytes_resynced`]).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete record, `Ok(None)` if more bytes are
    /// needed, or a [`DecodeFault`] if the stream is poisoned.
    pub fn next_record(&mut self) -> Result<Option<LinkRecord>, DecodeFault> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().unwrap());
        // Minimum body: tag + 8-byte checksum.
        if (len as usize) < 9 || len as usize > MAX_RECORD_BYTES {
            return Err(DecodeFault::BadLength(len));
        }
        if avail.len() < 4 + len as usize {
            return Ok(None);
        }
        let body = &avail[4..4 + len as usize];
        let (fields, sum_bytes) = body.split_at(body.len() - 8);
        let sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        if fnv1a(fields) != sum {
            return Err(DecodeFault::BadChecksum);
        }
        let rec = Self::parse_fields(fields)?;
        self.pos += 4 + len as usize;
        Ok(Some(rec))
    }

    fn parse_fields(fields: &[u8]) -> Result<LinkRecord, DecodeFault> {
        let mut r = WireReader::new(fields);
        let rec = match r.u8()? {
            TAG_DATA => {
                let seq = r.u64()?;
                let send_tick = r.u64()?;
                let order = r.u32()?;
                let deliver_tick = r.u64()?;
                let framed = r.bool()?;
                let len = r.u32()? as usize;
                if len > r.remaining() {
                    return Err(DecodeFault::Malformed);
                }
                let payload = r.bytes(len)?.to_vec();
                LinkRecord::Data {
                    seq,
                    send_tick,
                    order,
                    deliver_tick,
                    framed,
                    payload,
                }
            }
            TAG_FLOOR => LinkRecord::Floor {
                seq: r.u64()?,
                floor: r.u64()?,
            },
            TAG_PROBE => LinkRecord::Probe { floor: r.u64()? },
            TAG_ACK => LinkRecord::Ack { next_seq: r.u64()? },
            _ => return Err(DecodeFault::Malformed),
        };
        if r.remaining() != 0 {
            return Err(DecodeFault::Malformed);
        }
        Ok(rec)
    }
}

/// Exponential backoff with deterministic jitter for dial retries. The
/// jitter is a pure function of `(seed, attempt)` — no wall-clock
/// randomness, so a failing dial schedule replays identically run to run.
#[derive(Clone, Debug)]
pub struct Backoff {
    seed: u64,
    attempt: u32,
}

/// First retry delay (doubles per attempt).
const BACKOFF_BASE_US: u64 = 200;
/// Retry delay ceiling.
const BACKOFF_CAP_US: u64 = 50_000;

impl Backoff {
    /// A fresh backoff sequence for one dial episode of one link.
    pub fn new(seed: u64) -> Self {
        Backoff { seed, attempt: 0 }
    }

    /// The next delay: `min(base · 2^attempt, cap)` plus up to 25%
    /// deterministic jitter (splitmix of `(seed, attempt)`).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(
            BACKOFF_CAP_US
                .ilog2()
                .saturating_sub(BACKOFF_BASE_US.ilog2()),
        );
        let base = (BACKOFF_BASE_US << exp).min(BACKOFF_CAP_US);
        let jitter = splitmix(self.seed ^ u64::from(self.attempt)) % (base / 4 + 1);
        self.attempt += 1;
        Duration::from_micros(base + jitter)
    }

    /// How many delays have been handed out.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The bounded resend buffer behind reconnect-with-replay: every sequenced
/// record written to a link stays here until the receiver's cumulative ack
/// covers it; on reconnect the whole buffer is retransmitted in sequence
/// order. The byte bound is enforced by *back-pressure* (the supervisor
/// waits for acks before buffering more), never by dropping — dropping an
/// unacked record would break at-least-once delivery.
#[derive(Debug)]
pub(super) struct ReplayBuffer {
    entries: VecDeque<(u64, Vec<u8>)>,
    bytes: usize,
    next_seq: u64,
}

impl ReplayBuffer {
    pub(super) fn new() -> Self {
        ReplayBuffer {
            entries: VecDeque::new(),
            bytes: 0,
            next_seq: 0,
        }
    }

    /// Assigns the next link sequence number (call exactly once per
    /// sequenced record, immediately before [`ReplayBuffer::push`]).
    pub(super) fn assign_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Buffers the encoded stream bytes of record `seq`.
    pub(super) fn push(&mut self, seq: u64, encoded: Vec<u8>) {
        self.bytes += encoded.len();
        self.entries.push_back((seq, encoded));
    }

    /// Drops every record the cumulative ack `next_seq` covers.
    pub(super) fn trim(&mut self, next_seq: u64) {
        while let Some((seq, bytes)) = self.entries.front() {
            if *seq >= next_seq {
                break;
            }
            self.bytes -= bytes.len();
            self.entries.pop_front();
        }
    }

    /// Buffered (unacked) bytes.
    pub(super) fn bytes(&self) -> usize {
        self.bytes
    }

    /// Unacked records in sequence order, for replay after a reconnect.
    pub(super) fn unacked(&self) -> impl Iterator<Item = &(u64, Vec<u8>)> {
        self.entries.iter()
    }

    /// Number of unacked records.
    #[cfg(test)]
    pub(super) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// What the chaos shim does to one data record's first transmission. The
/// shim sits on the dialer's write path and translates the *logical* fault
/// vocabulary of a [`FaultPlan`] into byte-stream pathology; replays are
/// always written clean, so every action is survivable by
/// teardown-and-replay and chaos never changes the logical schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum ChaosAction {
    /// Write the record untouched.
    Clean,
    /// Write only the first `prefix` bytes, then sever the connection —
    /// a frame torn in half on the wire.
    Sever {
        /// Bytes actually written before the teardown.
        prefix: usize,
    },
    /// Sleep before writing — a stalled peer; long enough stalls push the
    /// receiver's conservative gate past its wedge deadline.
    Stall {
        /// Wall-clock write delay.
        dur: Duration,
    },
    /// Write the record, then duplicate its first bytes onto the stream and
    /// sever — the duplicated run is garbage at the receiver, which must
    /// resync by teardown.
    DuplicateRun,
}

/// Longest stall the shim will sleep for one record, whatever the plan's
/// extra delay says — keeps pathological cells bounded in wall time while
/// still overshooting any test-sized wedge deadline.
pub(super) const STALL_CAP: Duration = Duration::from_millis(300);

/// Maps the chaos plan's verdict for one data record onto a byte-stream
/// action. The plan speaks the same `(from, to, send_tick, deliver_tick)`
/// coordinates as the logical fault plan; `record_len` is the encoded
/// stream length of the record being written.
pub(super) fn chaos_action(
    plan: &FaultPlan,
    from: PartyId,
    to: PartyId,
    send_tick: Time,
    deliver_tick: Time,
    tick_us: u64,
    record_len: usize,
) -> ChaosAction {
    match plan.resolve(from, to, send_tick, deliver_tick) {
        FaultOutcome::Drop => ChaosAction::Sever {
            // Tear mid-record: past the length prefix, short of the
            // checksum, so the receiver is left holding a half frame.
            prefix: (record_len / 2).max(4).min(record_len.saturating_sub(1)),
        },
        FaultOutcome::Deliver {
            duplicate: Some(_), ..
        } => ChaosAction::DuplicateRun,
        FaultOutcome::Deliver { at, .. } if at > deliver_tick => {
            let extra_ticks = at - deliver_tick;
            let dur = Duration::from_micros(extra_ticks.saturating_mul(tick_us));
            ChaosAction::Stall {
                dur: dur.min(STALL_CAP),
            }
        }
        FaultOutcome::Deliver { .. } => ChaosAction::Clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LinkRecord> {
        vec![
            LinkRecord::Data {
                seq: 0,
                send_tick: 3,
                order: 2,
                deliver_tick: 13,
                framed: true,
                payload: vec![1, 2, 3, 4, 5],
            },
            LinkRecord::Floor { seq: 1, floor: 40 },
            LinkRecord::Probe { floor: 41 },
            LinkRecord::Ack { next_seq: 2 },
            LinkRecord::Data {
                seq: 2,
                send_tick: 9,
                order: 0,
                deliver_tick: 11,
                framed: false,
                payload: vec![],
            },
        ]
    }

    #[test]
    fn records_roundtrip_across_arbitrary_chunking() {
        let recs = sample_records();
        let stream: Vec<u8> = recs.iter().flat_map(encode_record).collect();
        // Feed one byte at a time — the worst-case partial read.
        let mut dec = RecordDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.extend(std::slice::from_ref(b));
            while let Some(rec) = dec.next_record().expect("clean stream decodes") {
                got.push(rec);
            }
        }
        assert_eq!(got, recs);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn truncated_record_stays_pending_and_is_abandoned_on_teardown() {
        let bytes = encode_record(&sample_records()[0]);
        let mut dec = RecordDecoder::new();
        dec.extend(&bytes[..bytes.len() - 3]);
        assert_eq!(dec.next_record().expect("needs more bytes"), None);
        assert_eq!(dec.pending_bytes(), bytes.len() - 3);
    }

    #[test]
    fn corrupt_byte_is_a_decode_fault_not_a_panic() {
        let bytes = encode_record(&sample_records()[0]);
        for i in 4..bytes.len() {
            let mut garbled = bytes.clone();
            garbled[i] ^= 0x40;
            let mut dec = RecordDecoder::new();
            dec.extend(&garbled);
            assert!(
                dec.next_record().is_err(),
                "flipping body byte {i} must poison the stream"
            );
        }
    }

    #[test]
    fn duplicated_byte_run_poisons_the_stream() {
        // What the chaos shim's DuplicateRun writes: a full record followed
        // by a copy of its first bytes.
        let bytes = encode_record(&sample_records()[1]);
        let mut stream = bytes.clone();
        stream.extend_from_slice(&bytes[..bytes.len() / 2]);
        let mut dec = RecordDecoder::new();
        dec.extend(&stream);
        assert!(
            dec.next_record().unwrap().is_some(),
            "the real record decodes"
        );
        // The dup run is either an incomplete record (pending at EOF) or a
        // decode fault; both trigger resync-by-teardown, never a bogus
        // record.
        match dec.next_record() {
            Ok(Some(rec)) => panic!("dup run must not decode to {rec:?}"),
            Ok(None) => assert!(dec.pending_bytes() > 0),
            Err(_) => {}
        }
    }

    #[test]
    fn handshake_roundtrips_and_rejects_bad_magic() {
        let hs = encode_handshake(3, 1);
        assert_eq!(decode_handshake(&hs), Some((3, 1)));
        let mut bad = hs;
        bad[0] ^= 1;
        assert_eq!(decode_handshake(&bad), None);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let mut a = Backoff::new(7);
        let mut b = Backoff::new(7);
        let da: Vec<_> = (0..12).map(|_| a.next_delay()).collect();
        let db: Vec<_> = (0..12).map(|_| b.next_delay()).collect();
        assert_eq!(da, db, "same seed, same schedule");
        assert!(da[0] >= Duration::from_micros(BACKOFF_BASE_US));
        for w in da.windows(2) {
            assert!(
                w[1] >= w[0].min(Duration::from_micros(BACKOFF_CAP_US)),
                "delays grow until the cap"
            );
        }
        assert!(da[11] <= Duration::from_micros(BACKOFF_CAP_US + BACKOFF_CAP_US / 4));
        let mut c = Backoff::new(8);
        let dc: Vec<_> = (0..12).map(|_| c.next_delay()).collect();
        assert_ne!(da, dc, "different links jitter differently");
    }

    #[test]
    fn replay_buffer_trims_on_cumulative_ack() {
        let mut buf = ReplayBuffer::new();
        for _ in 0..5 {
            let seq = buf.assign_seq();
            buf.push(seq, vec![0u8; 10]);
        }
        assert_eq!((buf.len(), buf.bytes()), (5, 50));
        buf.trim(3);
        assert_eq!((buf.len(), buf.bytes()), (2, 20));
        let seqs: Vec<u64> = buf.unacked().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![3, 4]);
        buf.trim(100);
        assert_eq!((buf.len(), buf.bytes()), (0, 0));
    }

    #[test]
    fn chaos_mapping_covers_sever_stall_and_dup() {
        use crate::faults::FaultPlan;
        let sever = FaultPlan::none().drop_burst(Some(0), None, (0, 100));
        assert!(matches!(
            chaos_action(&sever, 0, 1, 5, 15, 1000, 40),
            ChaosAction::Sever { prefix } if (4..40).contains(&prefix)
        ));
        let stall = FaultPlan::none().delay_burst(Some(0), None, (0, 100), 50);
        match chaos_action(&stall, 0, 1, 5, 15, 1000, 40) {
            ChaosAction::Stall { dur } => {
                assert_eq!(dur, Duration::from_micros(50_000).min(STALL_CAP))
            }
            other => panic!("expected stall, got {other:?}"),
        }
        let dup = FaultPlan::none().duplicate_burst(Some(0), None, (0, 100), 2);
        assert_eq!(
            chaos_action(&dup, 0, 1, 5, 15, 1000, 40),
            ChaosAction::DuplicateRun
        );
        let none = FaultPlan::none();
        assert_eq!(
            chaos_action(&none, 0, 1, 5, 15, 1000, 40),
            ChaosAction::Clean
        );
        // Out-of-window coordinates are clean even under an active plan.
        assert_eq!(
            chaos_action(&sever, 0, 1, 500, 510, 1000, 40),
            ChaosAction::Clean
        );
    }
}
