//! The TCP socket transport backend: the threaded party runtime of
//! [`super::threaded`] with every inter-party channel replaced by a
//! *supervised* loopback `TcpStream`.
//!
//! # Execution model
//!
//! Party threads are byte-for-byte the threaded backend's
//! `PartyRuntime` — same wall-clock tick pacing, same conservative
//! link-clock gate, same batch engines — so every conformance property the
//! threaded backend inherits from the simulator oracle carries over
//! unchanged. What this module replaces is the medium: a party's outbound
//! channel to peer `r` now feeds a per-link *supervisor* (an outbox thread
//! owning one dialed socket), and inbound packets arrive through a
//! listener/reader pair that decodes the stream incrementally and forwards
//! into the party's local inbox.
//!
//! The supervisor absorbs real connection failure (see
//! [`super::supervisor`] for the stream protocol):
//!
//! * **Dial**: exponential backoff with deterministic jitter; failed
//!   attempts count [`crate::Metrics::dial_retries`].
//! * **Reconnect-with-replay**: every sequenced record stays in a bounded
//!   replay buffer until cumulatively acked; a torn connection is re-dialed
//!   ([`crate::Metrics::reconnects`]) and the unacked tail retransmitted in
//!   order ([`crate::Metrics::frames_replayed`]). Delivery is
//!   at-least-once; the receiver dedupes by link sequence — the stream
//!   ordinal of the canonical `(from, send_tick, order)` key — so the
//!   party-side held heap stays bit-identical to the simulator oracle.
//! * **Liveness**: an idle link re-announces its last promised floor as a
//!   probe record, piggybacking heartbeat on the Chandy–Misra null
//!   messages; a dead peer surfaces as a failed write or an ack-stream EOF.
//! * **Resync**: any undecodable bytes (torn or duplicated runs) poison the
//!   stream; the receiver abandons them ([`crate::Metrics::bytes_resynced`])
//!   and tears the connection down — the replay path restarts the stream at
//!   a record boundary.
//!
//! Because a lost packet is replayed rather than dropped, and because
//! link-clock floors queue *behind* it in the same FIFO stream, a
//! receiver's gate can never clear a tick that a lost-but-replayable packet
//! belongs to: connection failure is converted into bounded back-pressure
//! (at worst a wedge diagnosis), never into logical divergence.
//!
//! # Chaos shim
//!
//! [`TcpNet::set_chaos_plan`] installs a second [`FaultPlan`], interpreted
//! at the socket layer by `supervisor::chaos_action`: `Drop`
//! severs the connection mid-record, an extra delay stalls the write past
//! the wedge deadline, a duplicate writes a garbled byte run that forces a
//! resync. Chaos acts only on a record's first transmission — replays are
//! clean — so the logical schedule (and the guarantee matrix verdict) is
//! untouched; only the wall-clock path stretches.

use std::collections::BinaryHeap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adversary::{AdversaryStructure, ByzantineStrategy, CorruptionSet, Passive};
use crate::context::Protocol;
use crate::faults::FaultPlan;
use crate::metrics::Metrics;
use crate::scheduler::LinkDelays;
use crate::simulation::{NetConfig, TranscriptEntry};
use crate::transport::supervisor::{
    chaos_action, decode_handshake, encode_handshake, encode_record, Backoff, ChaosAction,
    LinkRecord, RecordDecoder, ReplayBuffer,
};
use crate::transport::threaded::{
    tick_micros_from_env, wedge_millis_from_env, AdvState, Inbound, Packet, PartyDone,
    PartyRuntime, Shared,
};
use crate::transport::{Backend, PartyId, PartyView, Time, Transport, TransportError};
use crate::wire::{WireDecode, WireEncode};

/// Resolves the replay-buffer byte bound from `MPC_TCP_REPLAY_CAP`
/// (default 8 MiB). A set-but-unparsable value panics instead of silently
/// falling back.
pub fn replay_cap_from_env() -> usize {
    const DEFAULT: usize = 8 << 20;
    match std::env::var("MPC_TCP_REPLAY_CAP") {
        Err(_) => DEFAULT,
        Ok(v) if v.trim().is_empty() => DEFAULT,
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            panic!("MPC_TCP_REPLAY_CAP={v:?}: expected a byte count (unsigned integer)")
        }),
    }
}

/// Resolves the idle-link probe interval from `MPC_TCP_PROBE_MS`
/// (milliseconds, default 25). A set-but-unparsable or zero value panics
/// instead of silently falling back.
pub fn probe_millis_from_env() -> u64 {
    const DEFAULT: u64 = 25;
    match std::env::var("MPC_TCP_PROBE_MS") {
        Err(_) => DEFAULT,
        Ok(v) if v.trim().is_empty() => DEFAULT,
        Ok(v) => match v.trim().parse() {
            Ok(ms) if ms > 0 => ms,
            _ => panic!("MPC_TCP_PROBE_MS={v:?}: expected a positive millisecond count"),
        },
    }
}

/// Supervisor counters shared by every link thread of one run, folded into
/// the merged [`Metrics`] afterwards.
#[derive(Default)]
struct SupStats {
    reconnects: AtomicU64,
    dial_retries: AtomicU64,
    frames_replayed: AtomicU64,
    bytes_resynced: AtomicU64,
}

/// One established connection, dialer side.
struct Conn {
    stream: TcpStream,
    /// Cumulative ack watermark, advanced by the detached ack-reader.
    acked: Arc<AtomicU64>,
    /// Set by the ack-reader when the peer closed or the ack stream broke.
    dead: Arc<AtomicBool>,
}

/// Static configuration of one directed link's supervisor.
struct LinkCtx<'a> {
    from: PartyId,
    to: PartyId,
    addr: SocketAddr,
    chaos: &'a FaultPlan,
    tick_us: u64,
    probe: Duration,
    replay_cap: usize,
    stats: &'a Arc<SupStats>,
    closing: &'a Arc<AtomicBool>,
    backoff_seed: u64,
}

fn io_severed() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::ConnectionAborted, "chaos sever")
}

/// Writes one record under a chaos verdict. `Err` means the connection is
/// gone (really or by chaos) and must be re-established.
fn transmit(stream: &mut TcpStream, bytes: &[u8], act: ChaosAction) -> std::io::Result<()> {
    match act {
        ChaosAction::Clean => stream.write_all(bytes),
        ChaosAction::Stall { dur } => {
            std::thread::sleep(dur);
            stream.write_all(bytes)
        }
        ChaosAction::Sever { prefix } => {
            let _ = stream.write_all(&bytes[..prefix.min(bytes.len())]);
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            Err(io_severed())
        }
        ChaosAction::DuplicateRun => {
            stream.write_all(bytes)?;
            let run = bytes.len().clamp(1, 24);
            let _ = stream.write_all(&bytes[..run]);
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            Err(io_severed())
        }
    }
}

/// Dials until connected (or the run is closing), with deterministic
/// exponential backoff. Returns the connection with its ack-reader spawned.
fn establish(ctx: &LinkCtx<'_>, generation: u64) -> Option<Conn> {
    let mut backoff = Backoff::new(ctx.backoff_seed ^ generation.wrapping_mul(0x9E37));
    loop {
        if ctx.closing.load(Ordering::Relaxed) {
            return None;
        }
        if let Ok(mut stream) = TcpStream::connect(ctx.addr) {
            let _ = stream.set_nodelay(true);
            if stream
                .write_all(&encode_handshake(ctx.from, ctx.to))
                .is_ok()
            {
                let acked = Arc::new(AtomicU64::new(0));
                let dead = Arc::new(AtomicBool::new(false));
                // Without an ack stream the link still works — the replay
                // buffer just never trims until reconnect.
                if let Ok(clone) = stream.try_clone() {
                    let (acked2, dead2) = (acked.clone(), dead.clone());
                    let closing2 = ctx.closing.clone();
                    std::thread::spawn(move || ack_loop(clone, acked2, dead2, closing2));
                }
                return Some(Conn {
                    stream,
                    acked,
                    dead,
                });
            }
        }
        ctx.stats.dial_retries.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(backoff.next_delay());
    }
}

/// Dialer-side reader of the ack back-channel of one connection.
fn ack_loop(
    mut stream: TcpStream,
    acked: Arc<AtomicU64>,
    dead: Arc<AtomicBool>,
    closing: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut dec = RecordDecoder::new();
    let mut chunk = [0u8; 1024];
    loop {
        if closing.load(Ordering::Relaxed) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(k) => {
                dec.extend(&chunk[..k]);
                loop {
                    match dec.next_record() {
                        Ok(Some(LinkRecord::Ack { next_seq })) => {
                            acked.fetch_max(next_seq, Ordering::Relaxed);
                        }
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => {
                            dead.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    dead.store(true, Ordering::Relaxed);
}

/// The per-link supervisor loop (outbox): owns the dialer side of one
/// directed link, converts [`Inbound`] values into stream records, and
/// survives connection loss by reconnect-with-replay.
fn outbox_loop(ctx: LinkCtx<'_>, rx: Receiver<Inbound>) {
    let mut buf = ReplayBuffer::new();
    let mut conn: Option<Conn> = None;
    let mut generation: u64 = 0;
    // Highest data sequence the chaos shim has already ruled on: replays
    // (seq ≤ this) are always written clean, guaranteeing progress.
    let mut chaos_done: Option<u64> = None;
    let mut last_floor: Time = 0;
    loop {
        if ctx.closing.load(Ordering::Relaxed) {
            if let Some(c) = conn.take() {
                let _ = c.stream.shutdown(Shutdown::Both);
            }
            return;
        }
        // (Re-)establish and replay the unacked tail in sequence order.
        if conn.is_none() {
            let Some(c) = establish(&ctx, generation) else {
                return; // closing
            };
            generation += 1;
            if generation > 1 {
                ctx.stats.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            conn = Some(c);
            let c = conn.as_mut().expect("just established");
            let mut replayed = 0u64;
            let mut ok = true;
            for (_, bytes) in buf.unacked() {
                if c.stream.write_all(bytes).is_err() {
                    ok = false;
                    break;
                }
                replayed += 1;
            }
            ctx.stats
                .frames_replayed
                .fetch_add(replayed, Ordering::Relaxed);
            if !ok {
                conn = None;
                continue;
            }
        }
        match rx.recv_timeout(ctx.probe) {
            Ok(Inbound::Packet(p)) => {
                let seq = buf.assign_seq();
                let rec = LinkRecord::Data {
                    seq,
                    send_tick: p.send_tick,
                    order: p.order,
                    deliver_tick: p.deliver_tick,
                    framed: p.framed,
                    payload: (*p.bytes).clone(),
                };
                let bytes = encode_record(&rec);
                // First transmission only: the shim never touches replays.
                let act = if chaos_done.is_none_or(|d| seq > d) {
                    chaos_done = Some(seq);
                    chaos_action(
                        ctx.chaos,
                        ctx.from,
                        ctx.to,
                        p.send_tick,
                        p.deliver_tick,
                        ctx.tick_us,
                        bytes.len(),
                    )
                } else {
                    ChaosAction::Clean
                };
                let c = conn.as_mut().expect("connected above");
                let res = transmit(&mut c.stream, &bytes, act);
                buf.push(seq, bytes);
                if res.is_err() {
                    conn = None;
                    continue;
                }
            }
            Ok(Inbound::Past { floor, .. }) => {
                let seq = buf.assign_seq();
                last_floor = last_floor.max(floor);
                let bytes = encode_record(&LinkRecord::Floor { seq, floor });
                let c = conn.as_mut().expect("connected above");
                let res = c.stream.write_all(&bytes);
                buf.push(seq, bytes);
                if res.is_err() {
                    conn = None;
                    continue;
                }
            }
            // Shutdown is an in-process control signal; it never crosses the
            // wire (and the coordinator only ever sends it to inboxes).
            Ok(Inbound::Stop) => {}
            Err(RecvTimeoutError::Timeout) => {
                let c = conn.as_mut().expect("connected above");
                if c.dead.load(Ordering::Relaxed) {
                    conn = None;
                    continue;
                }
                // Idle heartbeat: re-announce the latest promised floor (a
                // receiver-side no-op — floors are max-monotonic) purely so
                // a dead peer shows up as a failed write.
                let probe = encode_record(&LinkRecord::Probe { floor: last_floor });
                if c.stream.write_all(&probe).is_err() {
                    conn = None;
                    continue;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // The party thread is gone and the queue fully drained:
                // quiescence guarantees nothing here is still undelivered.
                if let Some(c) = conn.take() {
                    let _ = c.stream.shutdown(Shutdown::Both);
                }
                return;
            }
        }
        // Trim by the cumulative ack; enforce the byte bound by bounded
        // back-pressure (never by dropping — that would break at-least-once
        // delivery).
        if let Some(c) = conn.as_ref() {
            buf.trim(c.acked.load(Ordering::Relaxed));
            let wait_start = Instant::now();
            while buf.bytes() > ctx.replay_cap
                && wait_start.elapsed() < Duration::from_millis(200)
                && !c.dead.load(Ordering::Relaxed)
                && !ctx.closing.load(Ordering::Relaxed)
            {
                std::thread::sleep(Duration::from_micros(500));
                buf.trim(c.acked.load(Ordering::Relaxed));
            }
        }
    }
}

/// Reads exactly `buf.len()` bytes despite read timeouts; bails on EOF,
/// error, or the run closing.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], closing: &AtomicBool) -> bool {
    let mut got = 0;
    while got < buf.len() {
        if closing.load(Ordering::Relaxed) {
            return false;
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => return false,
            Ok(k) => got += k,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return false,
        }
    }
    true
}

/// Listener-side reader of one accepted connection: incremental decode,
/// sequence dedup, forward into the party inbox, cumulative acks back.
fn reader_loop(
    me: PartyId,
    n: usize,
    mut stream: TcpStream,
    inbox: Sender<Inbound>,
    ingress: Arc<Vec<Mutex<u64>>>,
    stats: Arc<SupStats>,
    closing: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut hs = [0u8; 12];
    if !read_full(&mut stream, &mut hs, &closing) {
        return;
    }
    let Some((from, to)) = decode_handshake(&hs) else {
        return;
    };
    if to != me || from >= n || from == me {
        return;
    }
    let expected = &ingress[from * n + me];
    let mut dec = RecordDecoder::new();
    let mut chunk = vec![0u8; 16 << 10];
    loop {
        if closing.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF mid-record: the truncated tail is abandoned — the
                // dialer replays the whole record on its next connection.
                let pending = dec.pending_bytes() as u64;
                if pending > 0 {
                    stats.bytes_resynced.fetch_add(pending, Ordering::Relaxed);
                }
                return;
            }
            Ok(k) => {
                dec.extend(&chunk[..k]);
                let mut progressed = false;
                let poisoned = loop {
                    match dec.next_record() {
                        Ok(Some(rec)) => {
                            if !deliver(rec, from, expected, &inbox, &mut progressed) {
                                break true;
                            }
                        }
                        Ok(None) => break false,
                        Err(_) => {
                            // Garbage has no in-band record boundary to skip
                            // to: abandon the buffered bytes and resync by
                            // teardown (the dialer reconnects and replays).
                            stats
                                .bytes_resynced
                                .fetch_add(dec.pending_bytes() as u64, Ordering::Relaxed);
                            break true;
                        }
                    }
                };
                if poisoned {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                if progressed {
                    let next_seq = *expected.lock().expect("ingress slot poisoned");
                    let ack = encode_record(&LinkRecord::Ack { next_seq });
                    if stream.write_all(&ack).is_err() {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

/// Applies one decoded record at the receiver. Returns `false` if the
/// stream must be torn down (sequence gap or a record that does not belong
/// on this direction).
fn deliver(
    rec: LinkRecord,
    from: PartyId,
    expected: &Mutex<u64>,
    inbox: &Sender<Inbound>,
    progressed: &mut bool,
) -> bool {
    let (seq, inbound) = match rec {
        LinkRecord::Data {
            seq,
            send_tick,
            order,
            deliver_tick,
            framed,
            payload,
        } => (
            seq,
            Inbound::Packet(Packet {
                from,
                send_tick,
                order,
                deliver_tick,
                framed,
                bytes: Arc::new(payload),
            }),
        ),
        LinkRecord::Floor { seq, floor } => (seq, Inbound::Past { from, floor }),
        LinkRecord::Probe { floor } => {
            // Unsequenced liveness: floors are max-monotonic, re-delivery
            // is harmless. A send error just means the party already left.
            let _ = inbox.send(Inbound::Past { from, floor });
            return true;
        }
        // Acks flow receiver → dialer; one on this direction means the
        // stream is scrambled.
        LinkRecord::Ack { .. } => return false,
    };
    // Check-and-forward under the link lock: replay duplicates from an old
    // and a new connection of the same link may race here, and exactly one
    // copy may cross into the inbox (a double delivery would corrupt the
    // in-flight accounting and the held heap).
    let mut exp = expected.lock().expect("ingress slot poisoned");
    if seq < *exp {
        return true; // replay duplicate — already delivered
    }
    if seq > *exp {
        return false; // gap: impossible on a clean stream, resync
    }
    *exp += 1;
    let _ = inbox.send(inbound);
    *progressed = true;
    true
}

/// Accept loop of one party's listener: polls non-blockingly (so shutdown
/// needs no wake-up connection) and spawns a detached reader per accepted
/// connection.
fn acceptor_loop(
    me: PartyId,
    n: usize,
    listener: TcpListener,
    inbox: Sender<Inbound>,
    ingress: Arc<Vec<Mutex<u64>>>,
    stats: Arc<SupStats>,
    closing: Arc<AtomicBool>,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    loop {
        if closing.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let (inbox, ingress) = (inbox.clone(), ingress.clone());
                let (stats, closing) = (stats.clone(), closing.clone());
                std::thread::spawn(move || {
                    reader_loop(me, n, stream, inbox, ingress, stats, closing)
                });
            }
            Err(_) => std::thread::sleep(Duration::from_micros(500)),
        }
    }
}

/// The socket transport: drop-in third [`Transport`] backend
/// ([`Backend::Tcp`]). Construct like [`super::threaded::ThreadedNet`]
/// (same conformance contract against the simulator oracle), optionally
/// install a socket-level chaos plan, then drive it through the trait.
pub struct TcpNet<M> {
    config: NetConfig,
    corruption: CorruptionSet,
    structure: Option<Arc<dyn AdversaryStructure>>,
    links: LinkDelays,
    faults: FaultPlan,
    chaos: FaultPlan,
    tick_us: u64,
    wedge_ms: u64,
    replay_cap: usize,
    probe_ms: u64,
    parties: Vec<Option<Box<dyn Protocol<M>>>>,
    strategy: Option<Box<dyn ByzantineStrategy>>,
    record: bool,
    transcript: Vec<TranscriptEntry>,
    metrics: Metrics,
    now: Time,
    ran: bool,
    last_error: Option<TransportError>,
}

impl<M: WireEncode + WireDecode + 'static> TcpNet<M> {
    /// Creates a TCP network with the default latency matrix for the
    /// configured network kind ([`LinkDelays::for_kind`]).
    pub fn new(
        config: NetConfig,
        corruption: CorruptionSet,
        parties: Vec<Box<dyn Protocol<M>>>,
    ) -> Self {
        let links = LinkDelays::for_kind(config.n, config.kind, config.delta, config.seed);
        Self::with_links(config, corruption, links, parties)
    }

    /// Creates a TCP network with an explicit latency matrix.
    ///
    /// # Panics
    ///
    /// Panics if `parties.len() != config.n` or `links.n() != config.n`.
    pub fn with_links(
        config: NetConfig,
        corruption: CorruptionSet,
        links: LinkDelays,
        parties: Vec<Box<dyn Protocol<M>>>,
    ) -> Self {
        assert_eq!(
            parties.len(),
            config.n,
            "need exactly one root protocol per party"
        );
        assert_eq!(links.n(), config.n, "latency matrix size must match n");
        let mut metrics = Metrics::new();
        metrics.worker_threads = config.n as u64;
        TcpNet {
            tick_us: tick_micros_from_env(),
            wedge_ms: wedge_millis_from_env(),
            replay_cap: replay_cap_from_env(),
            probe_ms: probe_millis_from_env(),
            config,
            corruption,
            structure: None,
            links,
            faults: FaultPlan::none(),
            chaos: FaultPlan::none(),
            parties: parties.into_iter().map(Some).collect(),
            strategy: None,
            record: false,
            transcript: Vec::new(),
            metrics,
            now: 0,
            ran: false,
            last_error: None,
        }
    }

    /// Overrides the real duration of one logical tick (microseconds; `0`
    /// keeps the `MPC_TICK_US` default). Call before running.
    pub fn with_tick_micros(mut self, micros: u64) -> Self {
        if micros > 0 {
            self.tick_us = micros;
        }
        self
    }

    /// Overrides the conservative gate's zero-progress grace (milliseconds;
    /// `0` keeps the `MPC_WEDGE_MS` / 30 s default). Call before running.
    pub fn with_wedge_millis(mut self, millis: u64) -> Self {
        if millis > 0 {
            self.wedge_ms = millis;
        }
        self
    }

    /// Overrides the replay-buffer byte bound (`0` keeps the
    /// `MPC_TCP_REPLAY_CAP` / 8 MiB default).
    pub fn with_replay_cap(mut self, bytes: usize) -> Self {
        if bytes > 0 {
            self.replay_cap = bytes;
        }
        self
    }

    /// Installs the *logical* [`FaultPlan`] (same semantics as on the other
    /// backends: drops, crashes, partitions at the message layer).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Installs the *socket-level* chaos plan interpreted by the supervisor
    /// shim (sever / stall / duplicate byte runs). Independent of
    /// [`TcpNet::set_fault_plan`] — the logical plan decides what is
    /// dropped, the chaos plan only how rough the wire is.
    pub fn set_chaos_plan(&mut self, plan: FaultPlan) {
        self.chaos = plan;
    }

    /// The installed chaos plan.
    pub fn chaos_plan(&self) -> &FaultPlan {
        &self.chaos
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Downcasts party `i`'s root protocol to a concrete type for
    /// inspecting outputs after the run.
    pub fn party_as<T: 'static>(&self, i: PartyId) -> Option<&T> {
        PartyView::party(self, i).as_any().downcast_ref::<T>()
    }

    /// Binds the listeners, spawns party threads, link supervisors and
    /// acceptors, runs to quiescence, joins, and folds the per-party and
    /// supervisor accounting. Subsequent calls are no-ops.
    pub fn run_net_to_quiescence(&mut self, horizon: Time) {
        if self.ran {
            return;
        }
        self.ran = true;
        let n = self.config.n;
        let tick_us = self.tick_us.max(1);
        let guard = Duration::from_micros((tick_us / 4).max(50));
        let record = self.record;
        // More generous than the threaded cap: reconnect cycles and stalled
        // writes legitimately stretch a chaotic run's wall clock.
        let horizon_cap = Duration::from_micros(tick_us.saturating_mul(horizon.saturating_add(16)))
            + Duration::from_secs(5);
        let shared = Shared {
            in_flight: AtomicI64::new(0),
            idle: (0..n).map(|_| AtomicBool::new(false)).collect(),
            activity: AtomicU64::new(0),
        };
        let adv = Mutex::new(AdvState {
            strategy: self.strategy.take().unwrap_or_else(|| Box::new(Passive)),
            rng: StdRng::seed_from_u64(self.config.adversary_seed()),
        });
        let barrier = Barrier::new(n);
        let epoch: OnceLock<Instant> = OnceLock::new();
        let stats = Arc::new(SupStats::default());
        let closing = Arc::new(AtomicBool::new(false));
        let probe = Duration::from_millis(self.probe_ms.max(1));

        // Listeners first: every dial target exists before any thread runs.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
            addrs.push(l.local_addr().expect("listener addr"));
            listeners.push(l);
        }

        // Party inboxes (coordinator keeps the senders for Stop) and one
        // channel per directed link feeding its supervisor.
        let mut inbox_txs = Vec::with_capacity(n);
        let mut inbox_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel::<Inbound>();
            inbox_txs.push(tx);
            inbox_rxs.push(rx);
        }
        let mut link_txs: Vec<Vec<Option<Sender<Inbound>>>> = Vec::with_capacity(n);
        let mut link_rxs: Vec<(PartyId, PartyId, Receiver<Inbound>)> = Vec::new();
        for i in 0..n {
            let mut row = Vec::with_capacity(n);
            for r in 0..n {
                if r == i {
                    row.push(None);
                } else {
                    let (tx, rx) = mpsc::channel::<Inbound>();
                    row.push(Some(tx));
                    link_rxs.push((i, r, rx));
                }
            }
            link_txs.push(row);
        }
        let ingress: Arc<Vec<Mutex<u64>>> = Arc::new((0..n * n).map(|_| Mutex::new(0)).collect());

        let protocols: Vec<Box<dyn Protocol<M>>> = self
            .parties
            .iter_mut()
            .map(|slot| slot.take().expect("party state present outside a run"))
            .collect();
        let links = &self.links;
        let faults = &self.faults;
        let chaos = &self.chaos;
        let corruption = &self.corruption;
        let config = &self.config;
        let replay_cap = self.replay_cap;
        let wedge_timeout = Duration::from_millis(self.wedge_ms.max(1));
        let results: Vec<PartyDone<M>> = std::thread::scope(|scope| {
            let shared = &shared;
            let adv = &adv;
            let barrier = &barrier;
            let epoch = &epoch;
            let stats_ref = &stats;
            let closing_ref = &closing;
            // Acceptors.
            for (i, listener) in listeners.into_iter().enumerate() {
                let inbox = inbox_txs[i].clone();
                let (ingress, stats, closing) = (ingress.clone(), stats.clone(), closing.clone());
                scope.spawn(move || acceptor_loop(i, n, listener, inbox, ingress, stats, closing));
            }
            // Link supervisors (outboxes).
            for (from, to, rx) in link_rxs {
                let addr = addrs[to];
                scope.spawn(move || {
                    outbox_loop(
                        LinkCtx {
                            from,
                            to,
                            addr,
                            chaos,
                            tick_us,
                            probe,
                            replay_cap,
                            stats: stats_ref,
                            closing: closing_ref,
                            backoff_seed: config
                                .seed
                                .wrapping_mul(0x0100_0000_01b3)
                                .wrapping_add((from * n + to) as u64),
                        },
                        rx,
                    )
                });
            }
            // Party threads: the threaded backend's runtime, verbatim.
            let mut link_txs = link_txs;
            let handles: Vec<_> = protocols
                .into_iter()
                .zip(inbox_rxs)
                .enumerate()
                .map(|(i, (protocol, rx))| {
                    let txs: Vec<Sender<Inbound>> = (0..n)
                        .map(|r| {
                            if r == i {
                                inbox_txs[i].clone()
                            } else {
                                link_txs[i][r].take().expect("link sender unclaimed")
                            }
                        })
                        .collect();
                    let rng = StdRng::seed_from_u64(config.party_rng_seed(i));
                    let honest = corruption.is_honest(i);
                    let (delta, coin_seed) = (config.delta, config.coin_seed());
                    scope.spawn(move || {
                        let runtime = PartyRuntime {
                            me: i,
                            n,
                            delta,
                            coin_seed,
                            horizon,
                            record,
                            honest,
                            tick_us,
                            guard,
                            start: Instant::now(), // re-stamped after the barrier
                            links,
                            faults,
                            protocol,
                            rng,
                            rx,
                            txs,
                            shared,
                            adv,
                            held: BinaryHeap::new(),
                            timers: BinaryHeap::new(),
                            tseq: 0,
                            metrics: Metrics::new(),
                            transcript: Vec::new(),
                            next_unprocessed: 0,
                            last_tick: 0,
                            processed_any: false,
                            order_tick: 0,
                            order_counter: 0,
                            stopping: false,
                            chan_floor: (0..n)
                                .map(|s| if s == i { Time::MAX } else { links.get(s, i) })
                                .collect(),
                            promised: 0,
                            wedge_timeout,
                            wedged: None,
                        };
                        runtime.run(barrier, epoch)
                    })
                })
                .collect();
            // Coordinator: poll for quiescence (packets in TCP transit keep
            // `in_flight` claimed, so the scan is sound across the wire),
            // then Stop the parties and close down the supervisor mesh.
            let poll = Duration::from_micros((tick_us / 2).clamp(100, 2000));
            let wall_start = Instant::now();
            loop {
                std::thread::sleep(poll);
                let a1 = shared.activity.load(Ordering::SeqCst);
                let quiet = shared.in_flight.load(Ordering::SeqCst) == 0
                    && shared.idle.iter().all(|f| f.load(Ordering::SeqCst));
                let a2 = shared.activity.load(Ordering::SeqCst);
                if (quiet && a1 == a2) || wall_start.elapsed() > horizon_cap {
                    break;
                }
            }
            for tx in &inbox_txs {
                let _ = tx.send(Inbound::Stop);
            }
            let results: Vec<PartyDone<M>> = handles
                .into_iter()
                .map(|h| h.join().expect("party thread panicked"))
                .collect();
            // Parties are gone (their link senders dropped, so outboxes
            // drain and exit); the flag releases acceptors, stuck dials,
            // and any outbox still waiting on a timeout.
            closing.store(true, Ordering::SeqCst);
            results
        });
        let mut merged = Metrics::new();
        merged.worker_threads = n as u64;
        let mut now = 0;
        let mut transcript: Vec<TranscriptEntry> = Vec::new();
        for done in results {
            self.parties[done.party] = Some(done.protocol);
            merged.merge(&done.metrics);
            if done.processed_any {
                now = now.max(done.last_tick);
            }
            if self.last_error.is_none() {
                if let Some((party, last_progress_tick)) = done.wedged {
                    self.last_error = Some(TransportError::Wedged {
                        party,
                        last_progress_tick,
                    });
                }
            }
            transcript.extend(done.transcript);
        }
        merged.reconnects = stats.reconnects.load(Ordering::Relaxed);
        merged.dial_retries = stats.dial_retries.load(Ordering::Relaxed);
        merged.frames_replayed = stats.frames_replayed.load(Ordering::Relaxed);
        merged.bytes_resynced = stats.bytes_resynced.load(Ordering::Relaxed);
        transcript.sort_by_key(|e| e.at);
        self.metrics = merged;
        self.now = now;
        self.transcript = transcript;
        self.strategy = Some(adv.into_inner().expect("adversary state poisoned").strategy);
    }
}

impl<M: WireEncode + WireDecode + 'static> PartyView<M> for TcpNet<M> {
    fn n(&self) -> usize {
        self.config.n
    }
    fn now(&self) -> Time {
        self.now
    }
    fn party(&self, i: PartyId) -> &dyn Protocol<M> {
        self.parties[i]
            .as_deref()
            .expect("party state present outside a run")
    }
}

impl<M: WireEncode + WireDecode + 'static> Transport<M> for TcpNet<M> {
    fn backend(&self) -> Backend {
        Backend::Tcp
    }
    fn set_strategy(&mut self, strategy: Box<dyn ByzantineStrategy>) {
        self.strategy = Some(strategy);
    }
    fn record_transcript(&mut self) {
        self.record = true;
    }
    fn transcript(&self) -> &[TranscriptEntry] {
        &self.transcript
    }
    fn run_until_done(
        &mut self,
        horizon: Time,
        pred: &mut dyn FnMut(&dyn PartyView<M>) -> bool,
    ) -> bool {
        self.run_net_to_quiescence(horizon);
        pred(self)
    }
    fn run_to_quiescence(&mut self, horizon: Time) {
        self.run_net_to_quiescence(horizon);
    }
    fn metrics(&self) -> &Metrics {
        &self.metrics
    }
    fn corruption(&self) -> &CorruptionSet {
        &self.corruption
    }
    fn set_adversary_structure(&mut self, structure: Arc<dyn AdversaryStructure>) {
        self.structure = Some(structure);
    }
    fn adversary_structure(&self) -> Option<&Arc<dyn AdversaryStructure>> {
        self.structure.as_ref()
    }
    fn last_error(&self) -> Option<&TransportError> {
        self.last_error.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_have_sane_defaults() {
        if std::env::var_os("MPC_TCP_REPLAY_CAP").is_none() {
            assert_eq!(replay_cap_from_env(), 8 << 20);
        }
        if std::env::var_os("MPC_TCP_PROBE_MS").is_none() {
            assert_eq!(probe_millis_from_env(), 25);
        }
    }
}
