//! The real threaded transport backend: one OS thread per party, canonical
//! wire bytes over in-memory duplex channels, wall-clock timeouts.
//!
//! # Execution model
//!
//! Each party runs `PartyRuntime::run` on its own thread. Outbound traffic
//! leaves a party as TCP-ready byte strings — the same per-destination
//! [`crate::wire::Frame`] encodings the framed simulator engine produces for
//! honest senders, and path-prefixed single-message packets for corrupt
//! senders (whose [`ByzantineStrategy`] keeps its exact per-message view of
//! the wire) — and travels over `std::sync::mpsc` channels.
//!
//! Time is paced against the wall clock: one logical tick is a fixed real
//! duration (`MPC_TICK_US`, default 1000 µs), and a party processes the work
//! due at tick `t` when `recv_timeout` reaches the tick's real deadline —
//! every timer expiry on this backend is a genuine timeout, not a simulated
//! event. Link latency comes from a [`LinkDelays`] matrix: a packet sent at
//! tick `t` over a link of `d` ticks is *stamped* `deliver_tick = t + d` by
//! the sender and held by the receiver until that tick's wall deadline.
//! Logical "now" therefore flows in-band with the packets, never from the
//! wall clock — what the wall clock decides is *which event wins a race*:
//! a party whose `Δ`-timer deadline arrives before a slow sender's bytes
//! fires the timeout and takes the synchronous→asynchronous fallback path,
//! exactly as it would against a real slow network.
//!
//! On an oversubscribed host (debug builds, single core) a party can overrun
//! its tick budget, and a fixed wall schedule would then misdeliver its
//! packets as *late*. The runtime therefore layers a conservative link-clock
//! gate (Chandy–Misra null messages, `Inbound::Past`) on top of the wall
//! pacing: a due tick only fires once every incoming link promises nothing
//! earlier is still in flight. On a healthy schedule the promises run ahead
//! of the deadlines and the gate never waits; under load it converts
//! would-be lateness into back-pressure, bounded by `GATE_GRACE`.
//!
//! # Conformance
//!
//! Party batches are executed by the *same* engines the simulator uses
//! (`run_party_batch` / `run_corrupt_batch`), and the per-receiver
//! packet order `(deliver_tick, send_tick, from, order)` reproduces the
//! simulator's canonical event order whenever the latency matrix is
//! column-distinct (which [`LinkDelays`] constructions guarantee): for any
//! seed, this backend and the simulator produce byte-identical per-party
//! outputs and identical per-party bit accounting. See
//! `tests/transport_conformance.rs` and DESIGN.md, "Transport abstraction &
//! conformance oracle".

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adversary::{
    AdversaryStructure, ByzantineStrategy, CorruptionSet, Passive, WireAction, WireSend,
};
use crate::context::{Context, Effects, Path, Protocol};
use crate::faults::{FaultOutcome, FaultPlan};
use crate::metrics::Metrics;
use crate::scheduler::LinkDelays;
use crate::simulation::{
    run_corrupt_batch, run_party_batch, BatchOutcome, CorruptOutcome, CorruptSend, EventKind,
    FrameSet, NetConfig, TranscriptEntry, WorkerParty,
};
use crate::transport::{Backend, PartyId, PartyView, Time, Transport, TransportError};
use crate::wire::{WireDecode, WireEncode, WireReader};

/// Resolves the real duration of one logical tick from the `MPC_TICK_US`
/// environment variable (microseconds, default 1000). Larger ticks give
/// party threads more wall-clock slack per tick (fewer late packets under
/// load); smaller ticks make runs faster.
pub fn tick_micros_from_env() -> u64 {
    std::env::var("MPC_TICK_US")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(1000)
}

/// What travels between party threads.
pub(super) enum Inbound {
    Packet(Packet),
    /// A link-clock promise (a Chandy–Misra null message): nothing the sender
    /// emits from here on can arrive on this link before `floor`. Channels
    /// are FIFO and per-link delays fixed, so once a receiver has read this
    /// it has also already received every packet of the link due earlier.
    Past {
        from: PartyId,
        floor: Time,
    },
    /// Global shutdown, sent by the coordinator at quiescence (or at the
    /// hard wall-clock cap).
    Stop,
}

/// One byte string on a channel. `bytes` is a complete [`crate::wire::Frame`]
/// when `framed`, else a path-prefixed single message (see
/// [`encode_single`]).
pub(super) struct Packet {
    pub(super) from: PartyId,
    pub(super) send_tick: Time,
    /// Emission index among the sender's packets of `send_tick` — the
    /// receiver-side tiebreaker that reproduces the simulator's scheduling
    /// order for same-link packets.
    pub(super) order: u32,
    pub(super) deliver_tick: Time,
    pub(super) framed: bool,
    pub(super) bytes: Arc<Vec<u8>>,
}

/// A latency-held inbound event, ordered by the canonical receiver key.
pub(super) struct HeldEv {
    deliver_tick: Time,
    send_tick: Time,
    from: PartyId,
    order: u32,
    kind: EventKind,
}

impl HeldEv {
    fn key(&self) -> (Time, Time, PartyId, u32) {
        (self.deliver_tick, self.send_tick, self.from, self.order)
    }
}

impl PartialEq for HeldEv {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeldEv {}
impl PartialOrd for HeldEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeldEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A pending timer, ordered by `(fire, tseq)` — `tseq` is the party's timer
/// scheduling order, matching the simulator's per-party seq order.
pub(super) struct HeldTimer {
    fire: Time,
    tseq: u64,
    path: Path,
    id: u64,
}

impl HeldTimer {
    fn key(&self) -> (Time, u64) {
        (self.fire, self.tseq)
    }
}

impl PartialEq for HeldTimer {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeldTimer {}
impl PartialOrd for HeldTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeldTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Coordination state shared by all party threads and the coordinator.
pub(super) struct Shared {
    /// Packets sent but not yet taken off their channel. Quiescence needs
    /// this at 0.
    pub(super) in_flight: AtomicI64,
    /// Per-party "blocked with nothing pending" flags.
    pub(super) idle: Vec<AtomicBool>,
    /// Bumped on every send, receive and processed tick; the coordinator's
    /// double-read of this counter makes its idle scan race-free.
    pub(super) activity: AtomicU64,
}

/// The wire-level adversary, shared by all corrupt parties' threads. With a
/// single corrupt party the lock is uncontended and the consult order equals
/// the simulator's; with several, strategies that draw from the shared RNG
/// stream should be wrapped in [`crate::ChannelDeterministic`] to stay
/// order-independent.
pub(super) struct AdvState {
    pub(super) strategy: Box<dyn ByzantineStrategy>,
    pub(super) rng: StdRng,
}

/// What a party thread hands back when it stops.
pub(super) struct PartyDone<M> {
    pub(super) party: PartyId,
    pub(super) protocol: Box<dyn Protocol<M>>,
    pub(super) metrics: Metrics,
    pub(super) transcript: Vec<TranscriptEntry>,
    pub(super) last_tick: Time,
    pub(super) processed_any: bool,
    /// First wedge this party's conservative gate diagnosed: the lagging
    /// peer and the last tick its link clock had cleared.
    pub(super) wedged: Option<(PartyId, Time)>,
}

/// Encodes a single (non-framed) message for the wire: `u32` path length,
/// path segments as little-endian `u32`s, then the payload bytes verbatim.
/// The prefix layout matches the per-item layout inside a [`crate::Frame`].
pub(super) fn encode_single(path: &[u32], payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + path.len() * 4 + payload.len());
    buf.extend_from_slice(&(path.len() as u32).to_le_bytes());
    for &seg in path {
        buf.extend_from_slice(&seg.to_le_bytes());
    }
    buf.extend_from_slice(payload);
    buf
}

/// Splits a single-message packet back into its path and payload bytes. The
/// prefix is always well-formed (this backend wrote it *after* the Byzantine
/// strategy acted — only the payload tail can be garbled, exactly like the
/// simulator's `(path, payload)` events).
pub(super) fn decode_single(bytes: &[u8]) -> (Path, Arc<Vec<u8>>) {
    let mut r = WireReader::new(bytes);
    let len = r.u32().expect("single-packet path prefix") as usize;
    let mut segs = Vec::with_capacity(len);
    for _ in 0..len {
        segs.push(r.u32().expect("single-packet path segment"));
    }
    let consumed = bytes.len() - r.remaining();
    (
        Path::from(segs.as_slice()),
        Arc::new(bytes[consumed..].to_vec()),
    )
}

/// The per-thread party runtime. See the module docs for the model.
pub(super) struct PartyRuntime<'s, M> {
    pub(super) me: PartyId,
    pub(super) n: usize,
    pub(super) delta: Time,
    pub(super) coin_seed: u64,
    pub(super) horizon: Time,
    pub(super) record: bool,
    pub(super) honest: bool,
    pub(super) tick_us: u64,
    pub(super) guard: Duration,
    /// Wall-clock epoch: tick `t`'s deadline is `start + t·tick + guard`.
    /// Stamped after the post-init barrier so thread-spawn latency never
    /// eats into tick 0's budget.
    pub(super) start: Instant,
    pub(super) links: &'s LinkDelays,
    pub(super) faults: &'s FaultPlan,
    pub(super) protocol: Box<dyn Protocol<M>>,
    pub(super) rng: StdRng,
    pub(super) rx: Receiver<Inbound>,
    pub(super) txs: Vec<Sender<Inbound>>,
    pub(super) shared: &'s Shared,
    pub(super) adv: &'s Mutex<AdvState>,
    pub(super) held: BinaryHeap<Reverse<HeldEv>>,
    pub(super) timers: BinaryHeap<Reverse<HeldTimer>>,
    pub(super) tseq: u64,
    pub(super) metrics: Metrics,
    pub(super) transcript: Vec<TranscriptEntry>,
    /// Every tick below this has been processed; late packets clamp here.
    pub(super) next_unprocessed: Time,
    pub(super) last_tick: Time,
    pub(super) processed_any: bool,
    pub(super) order_tick: Time,
    pub(super) order_counter: u32,
    pub(super) stopping: bool,
    /// Per-sender link clock: the earliest tick at which a not-yet-received
    /// packet from that sender could still arrive (own slot unused). Raised
    /// by [`Inbound::Past`] promises; processing tick `t` waits until every
    /// slot exceeds `t`, so an overrun party (debug compute on an
    /// oversubscribed host) back-pressures its receivers instead of being
    /// ruled late — the wall clock still decides *when* a due tick fires,
    /// the floors only guarantee no link has earlier bytes in flight.
    pub(super) chan_floor: Vec<Time>,
    /// Highest promise broadcast so far (the basis tick, before per-link
    /// delay is added); deduplicates [`Inbound::Past`] chatter.
    pub(super) promised: Time,
    /// How long the conservative gate tolerates *zero* progress (no packet,
    /// no advancing link clock) on a lagging link before processing anyway —
    /// see [`default_wedge_timeout`]. Configurable via
    /// `ThreadedNet::with_wedge_millis` / the `MPC_WEDGE_MS` knob.
    pub(super) wedge_timeout: Duration,
    /// First wedge diagnosed by the gate (lagging peer, its last cleared
    /// tick); surfaced post-run as `TransportError::Wedged`.
    pub(super) wedged: Option<(PartyId, Time)>,
}

/// The default zero-progress grace of the conservative gate (30 s). This is
/// a pathology net for a wedged peer, not a pacing knob: a single
/// debug-build batch on an oversubscribed single-core host can legitimately
/// compute for hundreds of milliseconds while emitting nothing, and bailing
/// on it surfaces as `late_packets` plus oracle divergence. The
/// coordinator's hard wall-clock cap remains the final backstop. Unlike the
/// pre-PR-9 hard-coded constant, expiry is no longer silent: it increments
/// [`Metrics::wedges`] and surfaces a typed
/// [`TransportError::Wedged`] through `Transport::last_error`.
pub const fn default_wedge_timeout() -> Duration {
    Duration::from_secs(30)
}

/// Resolves the gate's zero-progress grace from the `MPC_WEDGE_MS`
/// environment variable (milliseconds; unset, empty, unparsable or 0 → the
/// 30 s default).
pub fn wedge_millis_from_env() -> u64 {
    std::env::var("MPC_WEDGE_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default_wedge_timeout().as_millis() as u64)
}

impl<M: WireEncode + WireDecode + 'static> PartyRuntime<'_, M> {
    /// Next emission index among this party's packets of `tick`.
    fn next_order(&mut self, tick: Time) -> u32 {
        if self.order_tick != tick {
            self.order_tick = tick;
            self.order_counter = 0;
        }
        let o = self.order_counter;
        self.order_counter += 1;
        o
    }

    fn deadline_of(&self, tick: Time) -> Instant {
        self.start + Duration::from_micros(self.tick_us.saturating_mul(tick)) + self.guard
    }

    /// The earliest tick with pending work (held packet or timer), if any.
    fn next_work(&self) -> Option<Time> {
        let next_held = self.held.peek().map(|Reverse(ev)| ev.deliver_tick);
        let next_timer = self.timers.peek().map(|Reverse(tm)| tm.fire);
        match (next_held, next_timer) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(Time::MAX).min(b.unwrap_or(Time::MAX))),
        }
    }

    /// Records a link-clock promise from `from`; true if the clock advanced.
    fn note_past(&mut self, from: PartyId, floor: Time) -> bool {
        if floor > self.chan_floor[from] {
            self.chan_floor[from] = floor;
            return true;
        }
        false
    }

    /// A sender whose link clock does not yet clear tick `t`, if any.
    fn lagging_link(&self, t: Time) -> Option<PartyId> {
        (0..self.n).find(|&s| s != self.me && self.chan_floor[s] <= t)
    }

    /// Recomputes this party's output clock — the earliest tick it could
    /// still process, hence the earliest `send_tick` it could still stamp —
    /// and broadcasts the promise when it has advanced. The clock is the
    /// Chandy–Misra recurrence: own pending work, capped below by incoming
    /// link clocks (a future packet can reactivate an otherwise idle party),
    /// and never below what is already processed. Promises beyond the
    /// horizon are pointless (that work is discarded), so the basis is
    /// capped there — this also bounds the null-message chatter.
    fn update_promise(&mut self, next: Option<Time>) {
        let cap = self.horizon.saturating_add(1);
        let mut basis = next.unwrap_or(cap).min(cap);
        for s in 0..self.n {
            if s != self.me {
                basis = basis.min(self.chan_floor[s]);
            }
        }
        basis = basis.max(self.next_unprocessed).min(cap);
        if basis > self.promised {
            self.promised = basis;
            for r in 0..self.n {
                if r != self.me {
                    let _ = self.txs[r].send(Inbound::Past {
                        from: self.me,
                        floor: basis.saturating_add(self.links.get(self.me, r)),
                    });
                }
            }
        }
    }

    fn push_timer(&mut self, fire: Time, path: Path, id: u64) {
        self.tseq += 1;
        self.timers.push(Reverse(HeldTimer {
            fire,
            tseq: self.tseq,
            path,
            id,
        }));
    }

    fn hold(
        &mut self,
        deliver_tick: Time,
        send_tick: Time,
        from: PartyId,
        order: u32,
        kind: EventKind,
    ) {
        self.held.push(Reverse(HeldEv {
            deliver_tick,
            send_tick,
            from,
            order,
            kind,
        }));
        let depth = self.held.len() as u64;
        if depth > self.metrics.held_packets_peak {
            self.metrics.held_packets_peak = depth;
        }
    }

    /// Takes one packet off the channel into the held heap.
    fn receive(&mut self, p: Packet) {
        self.shared.activity.fetch_add(1, Ordering::SeqCst);
        let mut deliver = p.deliver_tick;
        if deliver < self.next_unprocessed {
            // Physically late: its logical tick is already processed. Clamp
            // forward (and diagnose) rather than lose or reorder it.
            self.metrics.late_packets += 1;
            if std::env::var_os("MPC_TRACE_LATE").is_some() {
                eprintln!(
                    "late: to={} from={} deliver={} send={} next_unprocessed={} floor[from]={}",
                    self.me,
                    p.from,
                    deliver,
                    p.send_tick,
                    self.next_unprocessed,
                    self.chan_floor[p.from]
                );
            }
            deliver = self.next_unprocessed;
        }
        let kind = if p.framed {
            EventKind::DeliverFrame {
                to: self.me,
                from: p.from,
                payload: p.bytes,
            }
        } else {
            let (path, payload) = decode_single(&p.bytes);
            EventKind::Deliver {
                to: self.me,
                from: p.from,
                path,
                payload,
            }
        };
        self.hold(deliver, p.send_tick, p.from, p.order, kind);
        self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    fn send_packet(&mut self, to: PartyId, send_tick: Time, framed: bool, bytes: Arc<Vec<u8>>) {
        debug_assert_ne!(to, self.me, "self-addressed traffic is delivered in-batch");
        // The injected fault plan acts on the network, after the sender's
        // bit accounting (callers record sends before calling here) — the
        // exact decision the simulator's dispatch makes for the same
        // coordinates, because the plan is a pure function of them.
        let scheduled = send_tick + self.links.get(self.me, to);
        let (deliver_tick, duplicate) = match self.faults.resolve(self.me, to, send_tick, scheduled)
        {
            FaultOutcome::Drop => {
                self.metrics.fault_drops += 1;
                return;
            }
            FaultOutcome::Deliver { at, duplicate } => (at, duplicate),
        };
        let order = self.next_order(send_tick);
        self.shared.activity.fetch_add(1, Ordering::SeqCst);
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let packet = Packet {
            from: self.me,
            send_tick,
            order,
            deliver_tick,
            framed,
            bytes: Arc::clone(&bytes),
        };
        if self.txs[to].send(Inbound::Packet(packet)).is_err() {
            // Receiver already gone (forced stop): retract the claim.
            self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        if let Some(dup_tick) = duplicate {
            // The duplicate copy mirrors the simulator's second queue push:
            // its own emission index, the adjusted later delivery tick.
            self.metrics.fault_duplicates += 1;
            let order = self.next_order(send_tick);
            self.shared.activity.fetch_add(1, Ordering::SeqCst);
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let packet = Packet {
                from: self.me,
                send_tick,
                order,
                deliver_tick: dup_tick,
                framed,
                bytes,
            };
            if self.txs[to].send(Inbound::Packet(packet)).is_err() {
                self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Dispatches an honest activation's coalesced frames: unicast frames in
    /// ascending destination order, then the broadcast frame to every other
    /// party — the simulator's flush order, reproduced in the packet `order`
    /// stamps.
    fn flush_frames(&mut self, frames: FrameSet, send_tick: Time) {
        let FrameSet {
            unicast,
            broadcast,
            broadcast_meta,
        } = frames;
        for (to, (builder, meta)) in unicast {
            for (bits, seg) in meta {
                self.metrics.record_send(self.me, true, bits, seg);
            }
            self.metrics.frames_sent += 1;
            self.send_packet(to, send_tick, true, Arc::new(builder.finish()));
        }
        if !broadcast.is_empty() {
            let payload = Arc::new(broadcast.finish());
            for to in 0..self.n {
                if to == self.me {
                    continue;
                }
                for &(bits, seg) in &broadcast_meta {
                    self.metrics.record_send(self.me, true, bits, seg);
                }
                self.metrics.frames_sent += 1;
                self.send_packet(to, send_tick, true, Arc::clone(&payload));
            }
        }
    }

    /// Routes one corrupt-sender message through the Byzantine strategy (the
    /// simulator's `dispatch` order of operations) at init time.
    fn route_corrupt(
        &mut self,
        adv: &mut AdvState,
        to: PartyId,
        path: Path,
        payload: Arc<Vec<u8>>,
        broadcast: bool,
        batch0: &mut Vec<EventKind>,
    ) {
        let send = WireSend {
            from: self.me,
            to,
            n: self.n,
            path: &path,
            bytes: &payload,
            broadcast,
        };
        let payload = match adv.strategy.on_send(&send, &mut adv.rng) {
            WireAction::Deliver => payload,
            WireAction::Replace(bytes) => {
                self.metrics.adversary_tampered += 1;
                Arc::new(bytes)
            }
            WireAction::Drop => {
                self.metrics.adversary_drops += 1;
                return;
            }
        };
        self.metrics.record_send(
            self.me,
            false,
            payload.len() as u64 * 8,
            path.first().copied(),
        );
        if to == self.me {
            batch0.push(EventKind::Deliver {
                to,
                from: self.me,
                path,
                payload,
            });
        } else {
            let bytes = Arc::new(encode_single(&path, &payload));
            self.send_packet(to, 0, false, bytes);
        }
    }

    /// Runs the party's `init` at tick 0 and converts its effects into the
    /// tick-0 pending batch plus outbound packets — mirroring the simulator's
    /// init flush (self-sends and broadcast self-copies as same-tick events,
    /// cross-party honest traffic framed, corrupt traffic per message).
    pub(super) fn init(&mut self) {
        let mut effects: Effects<M> = Effects::new();
        {
            let mut ctx = Context::new(
                self.me,
                self.n,
                0,
                self.delta,
                &mut effects,
                &mut self.rng,
                self.coin_seed,
            );
            self.protocol.init(&mut ctx);
        }
        let mut batch0: Vec<EventKind> = Vec::new();
        if self.honest {
            let mut frames = FrameSet::new();
            for (to, path, msg) in effects.sends.drain(..) {
                if to == self.me {
                    let payload = Arc::new(msg.encode());
                    self.metrics.record_send(
                        self.me,
                        true,
                        payload.len() as u64 * 8,
                        path.first().copied(),
                    );
                    batch0.push(EventKind::Deliver {
                        to,
                        from: self.me,
                        path,
                        payload,
                    });
                } else {
                    frames.add_send(to, &path, &msg);
                }
            }
            for (path, msg) in effects.broadcasts.drain(..) {
                let (bits, self_copy) = frames.add_broadcast(&path, &msg);
                self.metrics
                    .record_send(self.me, true, bits, path.first().copied());
                batch0.push(EventKind::Deliver {
                    to: self.me,
                    from: self.me,
                    path,
                    payload: Arc::new(self_copy),
                });
            }
            self.flush_frames(frames, 0);
        } else {
            let sends: Vec<_> = effects.sends.drain(..).collect();
            let broadcasts: Vec<_> = effects.broadcasts.drain(..).collect();
            if !sends.is_empty() || !broadcasts.is_empty() {
                let adv_mutex = self.adv;
                let mut adv = adv_mutex.lock().expect("adversary state poisoned");
                for (to, path, msg) in sends {
                    let payload = Arc::new(msg.encode());
                    self.route_corrupt(&mut adv, to, path, payload, false, &mut batch0);
                }
                for (path, msg) in broadcasts {
                    let payload = Arc::new(msg.encode());
                    for to in 0..self.n {
                        self.route_corrupt(
                            &mut adv,
                            to,
                            path.clone(),
                            Arc::clone(&payload),
                            true,
                            &mut batch0,
                        );
                    }
                }
            }
        }
        for (delay, path, id) in effects.timers.drain(..) {
            if delay == 0 {
                batch0.push(EventKind::Timer {
                    party: self.me,
                    path,
                    id,
                });
            } else {
                self.push_timer(delay, path, id);
            }
        }
        for kind in batch0 {
            let order = self.next_order(0);
            self.hold(0, 0, self.me, order, kind);
        }
    }

    /// Processes everything due at tick `t` as one batch through the shared
    /// slice engines.
    fn process_tick(&mut self, t: Time) {
        self.shared.activity.fetch_add(1, Ordering::SeqCst);
        let mut events: Vec<EventKind> = Vec::new();
        while self
            .held
            .peek()
            .is_some_and(|Reverse(ev)| ev.deliver_tick <= t)
        {
            let Some(Reverse(ev)) = self.held.pop() else {
                unreachable!("peeked event vanished")
            };
            debug_assert_eq!(ev.deliver_tick, t, "ticks are processed in order");
            events.push(ev.kind);
        }
        let mut timer_events = 0u64;
        while self.timers.peek().is_some_and(|Reverse(tm)| tm.fire <= t) {
            let Some(Reverse(tm)) = self.timers.pop() else {
                unreachable!("peeked timer vanished")
            };
            events.push(EventKind::Timer {
                party: self.me,
                path: tm.path,
                id: tm.id,
            });
            timer_events += 1;
        }
        // Every timer expiry on this backend is a real `recv_timeout`
        // deadline that elapsed.
        self.metrics.timeouts_fired += timer_events;
        self.metrics
            .record_slice(events.len() as u64, (self.held.len() + events.len()) as u64);
        let (n, delta, coin_seed, record) = (self.n, self.delta, self.coin_seed, self.record);
        let wp = WorkerParty {
            party: self.me,
            protocol: &mut self.protocol,
            rng: &mut self.rng,
            events,
        };
        if self.honest {
            let outcome = run_party_batch(wp, t, n, delta, coin_seed, record);
            self.apply_honest(outcome, t);
        } else {
            let adv_mutex = self.adv;
            let mut adv = adv_mutex.lock().expect("adversary state poisoned");
            let AdvState { strategy, rng } = &mut *adv;
            let outcome =
                run_corrupt_batch(wp, t, n, delta, coin_seed, record, strategy.as_mut(), rng);
            drop(adv);
            self.apply_corrupt(outcome, t);
        }
        self.next_unprocessed = t + 1;
        self.last_tick = t;
        self.processed_any = true;
    }

    fn apply_honest(&mut self, outcome: BatchOutcome, t: Time) {
        let BatchOutcome {
            party,
            events,
            // The threaded loop already counted this batch's timer expiries
            // when it popped them from its timer wheel.
            timers_fired: _,
            decode_failures,
            transcript,
            self_records,
            frames,
            timers,
        } = outcome;
        debug_assert_eq!(party, self.me);
        self.metrics.events_processed += events;
        self.metrics.decode_failures += decode_failures;
        if self.record {
            self.transcript.extend(transcript);
        }
        for (bits, seg) in self_records {
            self.metrics.record_send(self.me, true, bits, seg);
        }
        self.flush_frames(frames, t);
        for (delay, path, id) in timers {
            self.push_timer(t + delay, path, id);
        }
    }

    fn apply_corrupt(&mut self, outcome: CorruptOutcome, t: Time) {
        let CorruptOutcome {
            party,
            events,
            decode_failures,
            transcript,
            sends,
            drops,
            tampered,
            wire_messages,
            timers,
        } = outcome;
        debug_assert_eq!(party, self.me);
        self.metrics.events_processed += events;
        self.metrics.decode_failures += decode_failures;
        if self.record {
            self.transcript.extend(transcript);
        }
        self.metrics.adversary_drops += drops;
        self.metrics.adversary_tampered += tampered;
        self.metrics.corrupt_messages += wire_messages;
        for CorruptSend { to, path, payload } in sends {
            let bytes = Arc::new(encode_single(&path, &payload));
            self.send_packet(to, t, false, bytes);
        }
        for (delay, path, id) in timers {
            self.push_timer(t + delay, path, id);
        }
    }

    /// The party thread body: init, epoch barrier, then the paced event loop
    /// until the coordinator's `Stop`.
    pub(super) fn run(mut self, barrier: &Barrier, epoch: &OnceLock<Instant>) -> PartyDone<M> {
        self.init();
        barrier.wait();
        if self.me == 0 {
            // One tick of lead so tick 0's deadline is comfortably ahead.
            let _ = epoch.set(Instant::now() + Duration::from_micros(self.tick_us));
        }
        barrier.wait();
        self.start = *epoch.get().expect("epoch stamped by party 0");
        loop {
            loop {
                match self.rx.try_recv() {
                    Ok(Inbound::Packet(p)) => {
                        // Clear the idle flag *before* folding the packet in
                        // (which releases its in-flight claim): a party woken
                        // from the blocking branch by a promise keeps a
                        // stale idle=true through this drain, and a window
                        // where the flag is true while the packet is neither
                        // in flight nor processed lets the coordinator
                        // declare quiescence mid-run and truncate the tail
                        // of a healthy schedule.
                        self.shared.idle[self.me].store(false, Ordering::SeqCst);
                        self.receive(p);
                    }
                    Ok(Inbound::Past { from, floor }) => {
                        self.note_past(from, floor);
                    }
                    Ok(Inbound::Stop) => self.stopping = true,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.stopping = true;
                        break;
                    }
                }
            }
            if self.stopping {
                break;
            }
            let next = self.next_work();
            self.update_promise(next);
            // Keep the invariant local and self-evident: the flag is true
            // exactly while this party is blocked below with no work.
            self.shared.idle[self.me].store(next.is_none(), Ordering::SeqCst);
            match next {
                None => {
                    match self.rx.recv() {
                        Ok(Inbound::Packet(p)) => {
                            self.shared.idle[self.me].store(false, Ordering::SeqCst);
                            self.receive(p);
                        }
                        // A promise creates no work: stay marked idle so the
                        // coordinator can declare quiescence through the
                        // end-of-run promise exchange (floors creeping toward
                        // the horizon cap) instead of waiting it out.
                        Ok(Inbound::Past { from, floor }) => {
                            self.note_past(from, floor);
                        }
                        Ok(Inbound::Stop) | Err(_) => {
                            self.shared.idle[self.me].store(false, Ordering::SeqCst);
                            break;
                        }
                    }
                }
                Some(t) if t > self.horizon => {
                    // Mirror `Simulation::run_until`: work beyond the horizon
                    // stays unprocessed.
                    self.held.clear();
                    self.timers.clear();
                }
                Some(t) => {
                    let deadline = self.deadline_of(t);
                    let now = Instant::now();
                    if now < deadline {
                        match self.rx.recv_timeout(deadline - now) {
                            Ok(Inbound::Packet(p)) => self.receive(p),
                            Ok(Inbound::Past { from, floor }) => {
                                self.note_past(from, floor);
                            }
                            Ok(Inbound::Stop) => self.stopping = true,
                            // The real timeout: tick `t`'s deadline elapsed
                            // with no earlier-due bytes on the wire.
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => self.stopping = true,
                        }
                        continue;
                    }
                    // Conservative gate: tick `t` is due by the wall clock,
                    // but only fires once every incoming link clock clears it
                    // — i.e. no sender can still produce a packet that the
                    // simulator would have scheduled at or before `t`. On a
                    // healthy schedule floors run ahead of deadlines and this
                    // costs nothing; under load it converts would-be late
                    // packets into bounded back-pressure.
                    // The grace clock measures *stalled* time: a laggard
                    // grinding through a long compute burst keeps resetting
                    // it with every promise it emits, so the gate only bails
                    // on a genuinely dead peer, not on slow progress.
                    let mut stalled_since = Instant::now();
                    let trace_gate = std::env::var_os("MPC_TRACE_GATE").is_some();
                    let mut traced = Instant::now();
                    let quantum = Duration::from_micros((self.tick_us / 2).clamp(100, 1000));
                    while self.lagging_link(t).is_some() && !self.stopping {
                        if trace_gate && traced.elapsed() > Duration::from_secs(1) {
                            traced = Instant::now();
                            eprintln!(
                                "gate: me={} t={} floors={:?} promised={} nup={} held={} timers={}",
                                self.me,
                                t,
                                self.chan_floor,
                                self.promised,
                                self.next_unprocessed,
                                self.held.len(),
                                self.timers.len()
                            );
                        }
                        if stalled_since.elapsed() > self.wedge_timeout {
                            // Zero progress for the whole grace: diagnose the
                            // wedged peer, then process anyway (liveness) —
                            // the run surfaces the wedge as a typed error.
                            if let Some(peer) = self.lagging_link(t) {
                                self.metrics.wedges += 1;
                                if self.wedged.is_none() {
                                    self.wedged = Some((peer, self.chan_floor[peer]));
                                }
                            }
                            break;
                        }
                        let progressed = match self.rx.recv_timeout(quantum) {
                            Ok(Inbound::Packet(p)) => {
                                self.receive(p);
                                true
                            }
                            Ok(Inbound::Past { from, floor }) => self.note_past(from, floor),
                            Ok(Inbound::Stop) => {
                                self.stopping = true;
                                false
                            }
                            Err(RecvTimeoutError::Timeout) => false,
                            Err(RecvTimeoutError::Disconnected) => {
                                self.stopping = true;
                                false
                            }
                        };
                        if progressed {
                            stalled_since = Instant::now();
                        }
                        // A risen incoming clock can raise our own promise,
                        // which a peer's gate may in turn be waiting on —
                        // re-broadcast from inside the gate or mutually
                        // gating parties would stall until the grace bail.
                        let nw = self.next_work();
                        self.update_promise(nw);
                        // A packet taken during the gate may carry work due
                        // *before* `t`. Keep gating on the stale `t` and the
                        // promise basis pins at that earlier tick — which a
                        // peer's own gate may be waiting to see cleared:
                        // mutual deadlock until the grace bail. Re-enter the
                        // outer loop so the gate re-forms on the true
                        // earliest tick.
                        if nw != Some(t) {
                            break;
                        }
                    }
                    // A packet taken during the gate may be due before `t`;
                    // recompute rather than process out of order.
                    if self.stopping || self.next_work() != Some(t) {
                        continue;
                    }
                    self.process_tick(t);
                }
            }
        }
        PartyDone {
            party: self.me,
            protocol: self.protocol,
            metrics: self.metrics,
            transcript: self.transcript,
            last_tick: self.last_tick,
            processed_any: self.processed_any,
            wedged: self.wedged,
        }
    }
}

/// The threaded [`Transport`] backend. Construct with [`ThreadedNet::new`]
/// (latency matrix derived from the [`NetConfig`]'s network kind and seed) or
/// [`ThreadedNet::with_links`] (explicit matrix, e.g. the exact one handed to
/// the simulator oracle), then drive it through the [`Transport`] trait.
pub struct ThreadedNet<M> {
    config: NetConfig,
    corruption: CorruptionSet,
    structure: Option<Arc<dyn AdversaryStructure>>,
    links: LinkDelays,
    faults: FaultPlan,
    tick_us: u64,
    wedge_ms: u64,
    parties: Vec<Option<Box<dyn Protocol<M>>>>,
    strategy: Option<Box<dyn ByzantineStrategy>>,
    record: bool,
    transcript: Vec<TranscriptEntry>,
    metrics: Metrics,
    now: Time,
    ran: bool,
    last_error: Option<TransportError>,
}

impl<M: WireEncode + WireDecode + 'static> ThreadedNet<M> {
    /// Creates a threaded network with the default latency matrix for the
    /// configured network kind ([`LinkDelays::for_kind`]).
    pub fn new(
        config: NetConfig,
        corruption: CorruptionSet,
        parties: Vec<Box<dyn Protocol<M>>>,
    ) -> Self {
        let links = LinkDelays::for_kind(config.n, config.kind, config.delta, config.seed);
        Self::with_links(config, corruption, links, parties)
    }

    /// Creates a threaded network with an explicit latency matrix.
    ///
    /// # Panics
    ///
    /// Panics if `parties.len() != config.n` or `links.n() != config.n`.
    pub fn with_links(
        config: NetConfig,
        corruption: CorruptionSet,
        links: LinkDelays,
        parties: Vec<Box<dyn Protocol<M>>>,
    ) -> Self {
        assert_eq!(
            parties.len(),
            config.n,
            "need exactly one root protocol per party"
        );
        assert_eq!(links.n(), config.n, "latency matrix size must match n");
        let mut metrics = Metrics::new();
        // One OS thread per party — the honest analogue of the simulator's
        // worker-thread knob.
        metrics.worker_threads = config.n as u64;
        ThreadedNet {
            tick_us: tick_micros_from_env(),
            wedge_ms: wedge_millis_from_env(),
            config,
            corruption,
            structure: None,
            links,
            faults: FaultPlan::none(),
            parties: parties.into_iter().map(Some).collect(),
            strategy: None,
            record: false,
            transcript: Vec::new(),
            metrics,
            now: 0,
            ran: false,
            last_error: None,
        }
    }

    /// Overrides the real duration of one logical tick (microseconds; `0`
    /// keeps the `MPC_TICK_US` default). Call before running.
    pub fn with_tick_micros(mut self, micros: u64) -> Self {
        if micros > 0 {
            self.tick_us = micros;
        }
        self
    }

    /// Overrides the conservative gate's zero-progress grace (milliseconds;
    /// `0` keeps the `MPC_WEDGE_MS` / 30 s default). Call before running. A
    /// gate that waits this long without any progress on a lagging link
    /// counts a wedge in [`Metrics::wedges`] and surfaces
    /// [`TransportError::Wedged`] through [`Transport::last_error`] instead
    /// of silently stalling.
    pub fn with_wedge_millis(mut self, millis: u64) -> Self {
        if millis > 0 {
            self.wedge_ms = millis;
        }
        self
    }

    /// Installs an injected [`FaultPlan`] applied on top of the link-latency
    /// matrix (default: the empty plan). Call before running — the same plan
    /// yields the same per-message decisions on the simulator.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The injected fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The latency matrix this network runs with.
    pub fn links(&self) -> &LinkDelays {
        &self.links
    }

    /// The real duration of one logical tick, in microseconds.
    pub fn tick_micros(&self) -> u64 {
        self.tick_us
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Downcasts party `i`'s root protocol to a concrete type for inspecting
    /// outputs after the run.
    pub fn party_as<T: 'static>(&self, i: PartyId) -> Option<&T> {
        PartyView::party(self, i).as_any().downcast_ref::<T>()
    }

    /// Spawns the party threads, runs to quiescence (no held packet, no
    /// pending timer, nothing in flight at any party, bounded by `horizon`
    /// logical ticks and a hard wall-clock cap), joins, and folds the
    /// per-party accounting. Subsequent calls are no-ops — a quiesced
    /// threaded run has nothing left to resume.
    pub fn run_net_to_quiescence(&mut self, horizon: Time) {
        if self.ran {
            return;
        }
        self.ran = true;
        let n = self.config.n;
        let tick_us = self.tick_us.max(1);
        // Absorbs scheduling jitter between a sender's batch and the
        // receivers' tick deadlines without eating a whole tick.
        let guard = Duration::from_micros((tick_us / 4).max(50));
        let record = self.record;
        let horizon_cap = Duration::from_micros(tick_us.saturating_mul(horizon.saturating_add(16)))
            + Duration::from_secs(2);
        let shared = Shared {
            in_flight: AtomicI64::new(0),
            idle: (0..n).map(|_| AtomicBool::new(false)).collect(),
            activity: AtomicU64::new(0),
        };
        let adv = Mutex::new(AdvState {
            strategy: self.strategy.take().unwrap_or_else(|| Box::new(Passive)),
            rng: StdRng::seed_from_u64(self.config.adversary_seed()),
        });
        let barrier = Barrier::new(n);
        let epoch: OnceLock<Instant> = OnceLock::new();
        let mut txs: Vec<Sender<Inbound>> = Vec::with_capacity(n);
        let mut rxs: Vec<Receiver<Inbound>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let protocols: Vec<Box<dyn Protocol<M>>> = self
            .parties
            .iter_mut()
            .map(|slot| slot.take().expect("party state present outside a run"))
            .collect();
        let links = &self.links;
        let faults = &self.faults;
        let corruption = &self.corruption;
        let config = &self.config;
        let wedge_timeout = Duration::from_millis(self.wedge_ms.max(1));
        let results: Vec<PartyDone<M>> = std::thread::scope(|scope| {
            let shared = &shared;
            let adv = &adv;
            let barrier = &barrier;
            let epoch = &epoch;
            let handles: Vec<_> = protocols
                .into_iter()
                .zip(rxs)
                .enumerate()
                .map(|(i, (protocol, rx))| {
                    let txs = txs.clone();
                    let rng = StdRng::seed_from_u64(config.party_rng_seed(i));
                    let honest = corruption.is_honest(i);
                    let (delta, coin_seed) = (config.delta, config.coin_seed());
                    scope.spawn(move || {
                        let runtime = PartyRuntime {
                            me: i,
                            n,
                            delta,
                            coin_seed,
                            horizon,
                            record,
                            honest,
                            tick_us,
                            guard,
                            start: Instant::now(), // re-stamped after the barrier
                            links,
                            faults,
                            protocol,
                            rng,
                            rx,
                            txs,
                            shared,
                            adv,
                            held: BinaryHeap::new(),
                            timers: BinaryHeap::new(),
                            tseq: 0,
                            metrics: Metrics::new(),
                            transcript: Vec::new(),
                            next_unprocessed: 0,
                            last_tick: 0,
                            processed_any: false,
                            order_tick: 0,
                            order_counter: 0,
                            stopping: false,
                            // Initial link clocks: every peer starts at tick
                            // 0, so nothing can arrive on a link before its
                            // delay (init-time sends land exactly there).
                            chan_floor: (0..n)
                                .map(|s| if s == i { Time::MAX } else { links.get(s, i) })
                                .collect(),
                            promised: 0,
                            wedge_timeout,
                            wedged: None,
                        };
                        runtime.run(barrier, epoch)
                    })
                })
                .collect();
            // Coordinator: poll for quiescence, then broadcast Stop.
            let poll = Duration::from_micros((tick_us / 2).clamp(100, 2000));
            let wall_start = Instant::now();
            loop {
                std::thread::sleep(poll);
                let a1 = shared.activity.load(Ordering::SeqCst);
                let quiet = shared.in_flight.load(Ordering::SeqCst) == 0
                    && shared.idle.iter().all(|f| f.load(Ordering::SeqCst));
                let a2 = shared.activity.load(Ordering::SeqCst);
                if (quiet && a1 == a2) || wall_start.elapsed() > horizon_cap {
                    break;
                }
            }
            for tx in &txs {
                let _ = tx.send(Inbound::Stop);
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("party thread panicked"))
                .collect()
        });
        let mut merged = Metrics::new();
        merged.worker_threads = n as u64;
        let mut now = 0;
        let mut transcript: Vec<TranscriptEntry> = Vec::new();
        for done in results {
            self.parties[done.party] = Some(done.protocol);
            merged.merge(&done.metrics);
            if done.processed_any {
                now = now.max(done.last_tick);
            }
            if self.last_error.is_none() {
                if let Some((party, last_progress_tick)) = done.wedged {
                    self.last_error = Some(TransportError::Wedged {
                        party,
                        last_progress_tick,
                    });
                }
            }
            transcript.extend(done.transcript);
        }
        // Stable by-tick sort over the party-ascending concatenation: each
        // party's subsequence is exactly its processing order.
        transcript.sort_by_key(|e| e.at);
        self.metrics = merged;
        self.now = now;
        self.transcript = transcript;
        self.strategy = Some(adv.into_inner().expect("adversary state poisoned").strategy);
    }
}

impl<M: WireEncode + WireDecode + 'static> PartyView<M> for ThreadedNet<M> {
    fn n(&self) -> usize {
        self.config.n
    }
    fn now(&self) -> Time {
        self.now
    }
    fn party(&self, i: PartyId) -> &dyn Protocol<M> {
        self.parties[i]
            .as_deref()
            .expect("party state present outside a run")
    }
}

impl<M: WireEncode + WireDecode + 'static> Transport<M> for ThreadedNet<M> {
    fn backend(&self) -> Backend {
        Backend::Threaded
    }
    fn set_strategy(&mut self, strategy: Box<dyn ByzantineStrategy>) {
        self.strategy = Some(strategy);
    }
    fn record_transcript(&mut self) {
        self.record = true;
    }
    fn transcript(&self) -> &[TranscriptEntry] {
        &self.transcript
    }
    fn run_until_done(
        &mut self,
        horizon: Time,
        pred: &mut dyn FnMut(&dyn PartyView<M>) -> bool,
    ) -> bool {
        self.run_net_to_quiescence(horizon);
        pred(self)
    }
    fn run_to_quiescence(&mut self, horizon: Time) {
        self.run_net_to_quiescence(horizon);
    }
    fn metrics(&self) -> &Metrics {
        &self.metrics
    }
    fn corruption(&self) -> &CorruptionSet {
        &self.corruption
    }
    fn set_adversary_structure(&mut self, structure: Arc<dyn AdversaryStructure>) {
        self.structure = Some(structure);
    }
    fn adversary_structure(&self) -> Option<&Arc<dyn AdversaryStructure>> {
        self.structure.as_ref()
    }
    fn last_error(&self) -> Option<&TransportError> {
        self.last_error.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::GarbleBytes;
    use crate::simulation::{NetworkKind, Simulation};
    use crate::wire::WireError;
    use std::any::Any;

    /// Ping-pong with a deadline: party 0 broadcasts `Ping` at init and arms
    /// a `2Δ` timer; everyone answers `Pong` to the sender; when the timer
    /// fires, party 0 freezes the count of pongs that beat the deadline —
    /// the toy analogue of the sync→async fallback decision.
    #[derive(Debug, Default)]
    struct DeadlinePing {
        pongs: usize,
        at_deadline: Option<usize>,
    }

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    impl WireEncode for Msg {
        fn encode_into(&self, out: &mut Vec<u8>) {
            out.push(match self {
                Msg::Ping => 0,
                Msg::Pong => 1,
            });
        }
    }

    impl WireDecode for Msg {
        fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            match r.u8()? {
                0 => Ok(Msg::Ping),
                1 => Ok(Msg::Pong),
                tag => Err(WireError::InvalidTag {
                    tag,
                    context: "threaded test Msg",
                }),
            }
        }
    }

    impl Protocol<Msg> for DeadlinePing {
        fn init(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.me == 0 {
                ctx.broadcast(Msg::Ping);
                ctx.set_timer(2 * ctx.delta, 7);
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Msg>,
            from: PartyId,
            _path: &[u32],
            msg: Msg,
        ) {
            match msg {
                Msg::Ping => ctx.send(from, Msg::Pong),
                Msg::Pong => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _path: &[u32], _id: u64) {
            self.at_deadline = Some(self.pongs);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn parties(n: usize) -> Vec<Box<dyn Protocol<Msg>>> {
        (0..n)
            .map(|_| Box::new(DeadlinePing::default()) as Box<dyn Protocol<Msg>>)
            .collect()
    }

    /// Runs the same configuration on the simulator oracle and the threaded
    /// backend and asserts output, metric, and per-party transcript
    /// conformance.
    fn assert_conformance(
        kind: NetworkKind,
        seed: u64,
        corruption: CorruptionSet,
        strategy: impl Fn() -> Box<dyn ByzantineStrategy>,
    ) {
        assert_conformance_with_plan(kind, seed, corruption, strategy, FaultPlan::none());
    }

    fn assert_conformance_with_plan(
        kind: NetworkKind,
        seed: u64,
        corruption: CorruptionSet,
        strategy: impl Fn() -> Box<dyn ByzantineStrategy>,
        plan: FaultPlan,
    ) {
        let n = 4;
        let horizon = 10_000;
        let cfg = NetConfig::for_kind(n, kind)
            .with_seed(seed)
            .with_frames(true);
        let links = LinkDelays::for_kind(n, kind, cfg.delta, seed);

        let mut sim = Simulation::with_scheduler(
            cfg.clone(),
            corruption.clone(),
            Box::new(links.clone()),
            parties(n),
        );
        sim.set_strategy(strategy());
        sim.set_fault_plan(plan.clone());
        sim.record_transcript();
        sim.run_to_quiescence(horizon);

        let mut th = ThreadedNet::with_links(cfg, corruption.clone(), links, parties(n))
            .with_tick_micros(300);
        Transport::set_strategy(&mut th, strategy());
        th.set_fault_plan(plan);
        Transport::record_transcript(&mut th);
        th.run_net_to_quiescence(horizon);

        for i in 0..n {
            let s = sim.party_as::<DeadlinePing>(i).unwrap();
            let t = th.party_as::<DeadlinePing>(i).unwrap();
            assert_eq!(s.pongs, t.pongs, "party {i} pong count (seed {seed})");
            assert_eq!(
                s.at_deadline, t.at_deadline,
                "party {i} deadline snapshot (seed {seed})"
            );
        }
        assert_eq!(
            sim.metrics(),
            Transport::metrics(&th),
            "metrics fingerprint (seed {seed})"
        );
        for i in 0..n {
            let s: Vec<_> = sim.transcript().iter().filter(|e| e.party == i).collect();
            let t: Vec<_> = Transport::transcript(&th)
                .iter()
                .filter(|e| e.party == i)
                .collect();
            assert_eq!(s, t, "party {i} transcript projection (seed {seed})");
        }
    }

    #[test]
    fn threaded_matches_simulator_sync_honest() {
        for seed in [1, 7] {
            assert_conformance(
                NetworkKind::Synchronous,
                seed,
                CorruptionSet::none(),
                || Box::new(Passive),
            );
        }
    }

    #[test]
    fn threaded_matches_simulator_async_honest() {
        assert_conformance(NetworkKind::Asynchronous, 11, CorruptionSet::none(), || {
            Box::new(Passive)
        });
    }

    #[test]
    fn threaded_matches_simulator_with_garbling_corrupt_sender() {
        assert_conformance(
            NetworkKind::Synchronous,
            3,
            CorruptionSet::new(vec![3]),
            || Box::new(GarbleBytes),
        );
    }

    #[test]
    fn threaded_matches_simulator_under_crash_fault() {
        // Party 2 fail-silent at the wire from tick 1: both backends must
        // drop the exact same messages (fault_drops is fingerprint) and
        // reach the same outputs.
        assert_conformance_with_plan(
            NetworkKind::Synchronous,
            5,
            CorruptionSet::none(),
            || Box::new(Passive),
            FaultPlan::none().crash(2, 1, None),
        );
    }

    #[test]
    fn threaded_matches_simulator_under_duplicate_and_delay_bursts() {
        assert_conformance_with_plan(
            NetworkKind::Synchronous,
            9,
            CorruptionSet::none(),
            || Box::new(Passive),
            FaultPlan::none()
                .duplicate_burst(None, None, (0, 64), 3)
                .delay_burst(Some(1), None, (0, 64), 5),
        );
    }

    #[test]
    fn threaded_matches_simulator_under_partition_heal() {
        assert_conformance_with_plan(
            NetworkKind::Asynchronous,
            13,
            CorruptionSet::none(),
            || Box::new(Passive),
            FaultPlan::none().partition(vec![0, 1], 2, Some(120)),
        );
    }

    #[test]
    fn wedge_timeout_is_configurable_and_typed() {
        let n = 4;
        let cfg = NetConfig::synchronous(n).with_seed(5).with_frames(true);
        let links = LinkDelays::for_kind(n, cfg.kind, cfg.delta, cfg.seed);
        let th = ThreadedNet::<Msg>::with_links(cfg, CorruptionSet::none(), links, parties(n))
            .with_wedge_millis(250);
        assert_eq!(th.wedge_ms, 250);
        assert!(Transport::<Msg>::last_error(&th).is_none());
        let err = TransportError::Wedged {
            party: 2,
            last_progress_tick: 17,
        };
        assert_eq!(err.to_string(), "party 2 wedged (no progress past tick 17)");
    }

    #[test]
    fn threaded_timers_are_real_timeouts() {
        let n = 4;
        let cfg = NetConfig::synchronous(n).with_seed(5).with_frames(true);
        let links = LinkDelays::for_kind(n, cfg.kind, cfg.delta, cfg.seed);
        let mut th = ThreadedNet::with_links(cfg, CorruptionSet::none(), links, parties(n))
            .with_tick_micros(300);
        th.run_net_to_quiescence(10_000);
        // Party 0's 2Δ deadline fired via a real recv_timeout expiry.
        assert_eq!(Transport::<Msg>::metrics(&th).timeouts_fired, 1);
        assert_eq!(th.party_as::<DeadlinePing>(0).unwrap().at_deadline, Some(n));
    }
}
