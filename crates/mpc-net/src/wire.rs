//! The canonical byte codec every simulated message travels through.
//!
//! The paper states all its communication-complexity bounds as *bits
//! communicated by the honest parties*. To make those measurements exact
//! (rather than hand-estimated), every payload handed to the simulator is
//! serialised through this codec: the simulator encodes once per send (once
//! per *broadcast*, shared across all `n` deliveries), counts the encoded
//! length, and decodes at the delivery boundary. Byte-level adversaries
//! ([`crate::adversary::ByzantineStrategy`]) tamper with exactly these bytes.
//!
//! # Encoding rules
//!
//! The format is canonical: every value has exactly one valid encoding, and
//! [`WireDecode::decode`] rejects anything else (non-canonical booleans,
//! unknown enum tags, trailing bytes). Concretely:
//!
//! * `u8` — one byte; `u32`/`u64` — fixed-width little-endian;
//! * `bool` — one byte, `0` or `1` (any other value is a decode error);
//! * sequences — a `u32` little-endian length prefix followed by the
//!   elements;
//! * `Option<T>` — a presence byte (`0`/`1`) followed by the payload;
//! * enums — a one-byte variant tag followed by the variant's fields.
//!
//! Decoding is infallible-in, fallible-out: `decode(encode(m)) == m` for
//! every message (see `tests/codec_roundtrip.rs`), while arbitrary bytes
//! decode to a [`WireError`] that the simulator treats as Byzantine input
//! (the message is dropped and counted, never a panic).

use core::fmt;
use std::sync::Arc;

/// Why a byte string failed to decode as a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// An enum tag (or presence byte) had no corresponding variant.
    InvalidTag {
        /// The offending tag byte.
        tag: u8,
        /// The type being decoded, for diagnostics.
        context: &'static str,
    },
    /// A value was syntactically valid but not in canonical form (e.g. a
    /// boolean byte other than 0/1, or a field element `≥ p`).
    NonCanonical {
        /// The type being decoded, for diagnostics.
        context: &'static str,
    },
    /// A length prefix would require more bytes than the input holds
    /// (rejected early so corrupt prefixes cannot trigger huge allocations).
    LengthOverflow {
        /// The claimed element count.
        claimed: u64,
    },
    /// Decoding succeeded but bytes were left over; canonical encodings
    /// consume their input exactly.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remaining"
                )
            }
            WireError::InvalidTag { tag, context } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            WireError::NonCanonical { context } => {
                write!(f, "non-canonical encoding of {context}")
            }
            WireError::LengthOverflow { claimed } => {
                write!(f, "length prefix {claimed} exceeds the remaining input")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over a received byte string, used by [`WireDecode`]
/// implementations.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads `n` raw bytes (an opaque payload run whose length the caller
    /// already decoded — the TCP stream codec's record payloads).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a canonical boolean (`0` or `1`; anything else is an error).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::NonCanonical { context: "bool" }),
        }
    }

    /// Reads a sequence length prefix, rejecting prefixes that claim more
    /// elements than the remaining input could possibly hold (each element
    /// occupies at least `min_elem_bytes` bytes).
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let claimed = self.u32()? as u64;
        if claimed * min_elem_bytes.max(1) as u64 > self.remaining() as u64 {
            return Err(WireError::LengthOverflow { claimed });
        }
        Ok(claimed as usize)
    }

    /// Asserts that the input was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// Serialisation into the canonical wire format.
///
/// Implementations append bytes to a caller-provided buffer so composite
/// messages encode without intermediate allocations.
pub trait WireEncode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Size of the canonical encoding in bytes, used by
    /// [`WireEncode::encode`] to reserve the output buffer up front so large
    /// payloads (e.g. `ℓ`-element share batches) are written without
    /// re-growing it. Implementations should return the exact size when it
    /// is cheap to compute; any lower bound (including the default `0`) is
    /// correct.
    fn encoded_len_hint(&self) -> usize {
        0
    }

    /// The canonical encoding as a fresh byte vector, pre-reserved from
    /// [`WireEncode::encoded_len_hint`].
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len_hint());
        self.encode_into(&mut out);
        out
    }

    /// Exact size of the canonical encoding, in bits. This is what the
    /// simulator's [`crate::Metrics::honest_bits`] accounting measures.
    fn encoded_bits(&self) -> u64 {
        self.encode().len() as u64 * 8
    }
}

/// Deserialisation from the canonical wire format.
pub trait WireDecode: Sized {
    /// Reads one value from the cursor (may leave trailing input for the
    /// caller — used when this value is a field of a larger message).
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Decodes a complete message: the whole input must be consumed.
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl WireEncode for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    fn encoded_len_hint(&self) -> usize {
        1
    }
}

impl WireDecode for bool {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.bool()
    }
}

impl WireEncode for u8 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn encoded_len_hint(&self) -> usize {
        1
    }
}

impl WireDecode for u8 {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl WireEncode for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn encoded_len_hint(&self) -> usize {
        4
    }
}

impl WireDecode for u32 {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl WireEncode for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn encoded_len_hint(&self) -> usize {
        8
    }
}

impl WireDecode for u64 {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for item in self {
            item.encode_into(out);
        }
    }

    fn encoded_len_hint(&self) -> usize {
        4 + self.iter().map(WireEncode::encoded_len_hint).sum::<usize>()
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // Every element encoding is at least one byte, which bounds a corrupt
        // length prefix before any allocation happens.
        let len = r.seq_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode_from(r)?);
        }
        Ok(out)
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }

    fn encoded_len_hint(&self) -> usize {
        1 + self.as_ref().map_or(0, WireEncode::encoded_len_hint)
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            tag => Err(WireError::InvalidTag {
                tag,
                context: "Option",
            }),
        }
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }

    fn encoded_len_hint(&self) -> usize {
        self.0.encoded_len_hint() + self.1.encoded_len_hint()
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
}

// ---------------------------------------------------------------------------
// Wire frames
// ---------------------------------------------------------------------------

/// One message unpacked from a [`Frame`]: the instance path it is addressed
/// to, the decoded payload, and the exact wire size of the payload encoding
/// (path and frame framing excluded — the same per-message size the unframed
/// engine accounts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameItem<M> {
    /// Instance path the message is addressed to.
    pub path: Arc<[u32]>,
    /// The decoded payload.
    pub msg: M,
    /// Exact size of the payload's canonical encoding, in bits.
    pub msg_bits: u64,
}

/// A coalesced batch of `(path, message)` pairs travelling from one sender to
/// one destination as a *single* simulator event.
///
/// The frame format is canonical like everything else in this module: a
/// `u32` item count, then per item a `u32`-length-prefixed path (segments as
/// little-endian `u32`s) followed by the message's canonical encoding (which
/// is self-delimiting). Frames are a *transport* construct of the simulator:
/// the paper-level bit accounting ([`crate::Metrics::honest_bits`]) counts
/// the contained messages exactly as if they had been sent individually, and
/// the frame header/path bytes are treated as scheduling metadata.
#[derive(Debug)]
pub struct Frame;

impl Frame {
    /// Decodes a complete frame, returning its items in emission order.
    /// The whole input must be consumed.
    pub fn decode<M: WireDecode>(bytes: &[u8]) -> Result<Vec<FrameItem<M>>, WireError> {
        let mut r = WireReader::new(bytes);
        // Every item needs at least a path length prefix and one payload byte.
        let count = r.seq_len(5)?;
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            let path: Vec<u32> = Vec::decode_from(&mut r)?;
            let before = r.remaining();
            let msg = M::decode_from(&mut r)?;
            let msg_bits = (before - r.remaining()) as u64 * 8;
            items.push(FrameItem {
                path: Arc::from(path.as_slice()),
                msg,
                msg_bits,
            });
        }
        r.finish()?;
        Ok(items)
    }
}

/// Incremental encoder for a [`Frame`]: messages are appended (and encoded)
/// one by one as a party's activation emits them, and [`FrameBuilder::finish`]
/// yields the canonical frame bytes without re-walking the messages.
#[derive(Debug)]
pub struct FrameBuilder {
    buf: Vec<u8>,
    count: u32,
}

impl FrameBuilder {
    /// An empty frame under construction.
    pub fn new() -> Self {
        FrameBuilder {
            // Placeholder for the item count, patched by `finish`.
            buf: vec![0; 4],
            count: 0,
        }
    }

    /// Number of messages appended so far.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no message has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends one `(path, message)` item and returns the byte range the
    /// message's canonical encoding occupies inside the growing frame — its
    /// length is the message's exact wire size, and the range lets a caller
    /// extract the standalone encoding (e.g. for a broadcast's self-copy)
    /// without encoding the message twice.
    pub fn push<M: WireEncode>(&mut self, path: &[u32], msg: &M) -> std::ops::Range<usize> {
        self.count += 1;
        self.buf
            .extend_from_slice(&(path.len() as u32).to_le_bytes());
        for &seg in path {
            self.buf.extend_from_slice(&seg.to_le_bytes());
        }
        let start = self.buf.len();
        self.buf.reserve(msg.encoded_len_hint());
        msg.encode_into(&mut self.buf);
        start..self.buf.len()
    }

    /// The bytes of a previously pushed message (range returned by
    /// [`FrameBuilder::push`]).
    pub fn message_bytes(&self, range: std::ops::Range<usize>) -> &[u8] {
        &self.buf[range]
    }

    /// Finalises the frame into its canonical byte encoding.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[..4].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

impl Default for FrameBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.encode();
        assert_eq!(T::decode(&bytes).unwrap(), v);
        assert_eq!(v.encoded_bits(), bytes.len() as u64 * 8);
    }

    #[test]
    fn primitives_round_trip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(0xABu8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u64));
        roundtrip(Option::<u32>::None);
        roundtrip((3u32, vec![true, false]));
    }

    #[test]
    fn non_canonical_bool_rejected() {
        assert_eq!(
            bool::decode(&[2]),
            Err(WireError::NonCanonical { context: "bool" })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        assert_eq!(
            u8::decode(&[1, 2]),
            Err(WireError::TrailingBytes { count: 1 })
        );
    }

    #[test]
    fn truncated_input_rejected() {
        assert!(matches!(
            u64::decode(&[1, 2, 3]),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // Claims u32::MAX elements with a 5-byte body.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.push(0);
        assert!(matches!(
            Vec::<u64>::decode(&bytes),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn option_tag_must_be_zero_or_one() {
        assert!(matches!(
            Option::<bool>::decode(&[9]),
            Err(WireError::InvalidTag { .. })
        ));
    }

    #[test]
    fn frame_round_trips_paths_and_messages() {
        let mut b = FrameBuilder::new();
        assert!(b.is_empty());
        let r1 = b.push(&[1, 2], &7u64);
        let r2 = b.push(&[], &true);
        let r3 = b.push(&[9], &vec![3u32, 4]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.message_bytes(r1.clone()), 7u64.encode().as_slice());
        let bytes = b.finish();
        let items = Frame::decode::<u64>(&bytes[..]).err();
        assert!(items.is_some(), "mixed types must not decode as one type");
        // Homogeneous frame decodes exactly.
        let mut b = FrameBuilder::new();
        b.push(&[1, 2], &7u64);
        b.push(&[], &8u64);
        let bytes = b.finish();
        let items = Frame::decode::<u64>(&bytes).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(&items[0].path[..], &[1, 2]);
        assert_eq!(items[0].msg, 7);
        assert_eq!(items[0].msg_bits, 64);
        assert_eq!(&items[1].path[..], &[] as &[u32]);
        assert_eq!(items[1].msg, 8);
        let _ = (r2, r3);
    }

    #[test]
    fn frame_rejects_trailing_and_truncated_input() {
        let mut b = FrameBuilder::new();
        b.push(&[3], &1u8);
        let mut bytes = b.finish();
        bytes.push(0);
        assert!(matches!(
            Frame::decode::<u8>(&bytes),
            Err(WireError::TrailingBytes { .. })
        ));
        bytes.truncate(bytes.len() - 3);
        assert!(Frame::decode::<u8>(&bytes).is_err());
    }

    #[test]
    fn frame_count_prefix_bounded_before_allocation() {
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0, 0]);
        assert!(matches!(
            Frame::decode::<u8>(&bytes),
            Err(WireError::LengthOverflow { .. })
        ));
    }
}
