//! Asynchronous Byzantine agreement `Π_ABA` with an ideal common coin.
//!
//! The paper (Lemma 3.3) uses the perfectly-secure ABA protocols of \[3, 7\] as
//! a black box. We provide the same interface with the
//! Mostéfaoui–Moumen–Raynal signature-free round structure driven by the
//! simulator's ideal common coin (DESIGN.md, substitution S1):
//!
//! * validity and consistency under `t < n/3` corruptions, in both network
//!   types;
//! * guaranteed liveness (within a constant number of rounds) when all honest
//!   parties hold the same input — the coins of the first two rounds are
//!   fixed to `1` and `0`, so a unanimous input `v` decides by round 2 at the
//!   latest;
//! * almost-sure liveness otherwise (random coins from round 3 on);
//! * a Bracha-style termination gadget (`Finish` messages) so that every
//!   honest party obtains the output once any honest party decides.

use std::any::Any;
use std::collections::{HashMap, HashSet};

use mpc_net::{Context, PartyId, PathSlice, Protocol, Time};

use crate::msg::{AbaMsg, Msg};

/// One instance of the common-coin ABA.
#[derive(Debug)]
pub struct Aba {
    n: usize,
    t: usize,
    est: Option<bool>,
    round: u32,
    est_senders: HashMap<(u32, bool), HashSet<PartyId>>,
    sent_est: HashSet<(u32, bool)>,
    bin_values: HashMap<u32, [bool; 2]>,
    aux_received: HashMap<u32, HashMap<PartyId, bool>>,
    sent_aux: HashSet<u32>,
    finish_senders: [HashSet<PartyId>; 2],
    sent_finish: bool,
    /// The value this party decided (before termination).
    pub decided: Option<bool>,
    /// Round in which the decision was made.
    pub decided_round: Option<u32>,
    /// The terminated output (set once `2t+1` `Finish` messages arrive).
    pub output: Option<bool>,
    /// Local time the output was set.
    pub output_at: Option<Time>,
}

impl Aba {
    /// Creates an instance; `input` may be `None` and supplied later via
    /// [`Aba::provide_input`] (the party buffers incoming messages meanwhile).
    pub fn new(n: usize, t: usize, input: Option<bool>) -> Self {
        Aba {
            n,
            t,
            est: input,
            round: 0,
            est_senders: HashMap::new(),
            sent_est: HashSet::new(),
            bin_values: HashMap::new(),
            aux_received: HashMap::new(),
            sent_aux: HashSet::new(),
            finish_senders: [HashSet::new(), HashSet::new()],
            sent_finish: false,
            decided: None,
            decided_round: None,
            output: None,
            output_at: None,
        }
    }

    /// Supplies the input estimate if not yet set and drives the round logic.
    pub fn provide_input(&mut self, ctx: &mut Context<'_, Msg>, input: bool) {
        if self.est.is_none() {
            self.est = Some(input);
        }
        self.try_progress(ctx);
    }

    /// Whether this party has already been given an input.
    pub fn has_input(&self) -> bool {
        self.est.is_some()
    }

    /// The round coin: fixed for the first two rounds (guaranteed liveness
    /// under unanimous inputs), ideal common coin afterwards.
    fn coin(&self, ctx: &Context<'_, Msg>, round: u32) -> bool {
        match round {
            0 => true,
            1 => false,
            r => ctx.common_coin(r as u64),
        }
    }

    fn bin(&self, round: u32) -> [bool; 2] {
        self.bin_values
            .get(&round)
            .copied()
            .unwrap_or([false, false])
    }

    fn send_est(&mut self, ctx: &mut Context<'_, Msg>, round: u32, value: bool) {
        if self.sent_est.insert((round, value)) {
            ctx.broadcast(Msg::Aba(AbaMsg::Est { round, value }));
        }
    }

    fn send_finish(&mut self, ctx: &mut Context<'_, Msg>, value: bool) {
        if !self.sent_finish {
            self.sent_finish = true;
            ctx.broadcast(Msg::Aba(AbaMsg::Finish { value }));
        }
    }

    /// Drives the state machine as far as received messages allow.
    fn try_progress(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.output.is_some() {
            return;
        }
        // termination gadget (independent of rounds)
        for v in [false, true] {
            let idx = v as usize;
            if self.finish_senders[idx].len() > self.t {
                self.send_finish(ctx, v);
            }
            if self.finish_senders[idx].len() > 2 * self.t {
                self.output = Some(v);
                self.output_at = Some(ctx.now);
                return;
            }
        }
        let Some(_) = self.est else { return };
        // bounded loop: each iteration either advances the round or stops
        for _ in 0..10_000 {
            let r = self.round;
            let est = self.est.expect("checked above");
            self.send_est(ctx, r, est);
            // echo amplification and bin_values
            for v in [false, true] {
                let count = self.est_senders.get(&(r, v)).map_or(0, HashSet::len);
                if count > self.t {
                    self.send_est(ctx, r, v);
                }
                if count > 2 * self.t {
                    self.bin_values.entry(r).or_insert([false, false])[v as usize] = true;
                }
            }
            let bin = self.bin(r);
            if (bin[0] || bin[1]) && !self.sent_aux.contains(&r) {
                self.sent_aux.insert(r);
                let value = bin[1];
                ctx.broadcast(Msg::Aba(AbaMsg::Aux { round: r, value }));
            }
            // try to close the round
            let valid_aux: Vec<bool> = self
                .aux_received
                .get(&r)
                .map(|m| m.values().copied().filter(|&v| bin[v as usize]).collect())
                .unwrap_or_default();
            if valid_aux.len() < self.n - self.t {
                return;
            }
            let has_true = valid_aux.iter().any(|&v| v);
            let has_false = valid_aux.iter().any(|&v| !v);
            let coin = self.coin(ctx, r);
            if has_true ^ has_false {
                let v = has_true;
                self.est = Some(v);
                if v == coin && self.decided.is_none() {
                    self.decided = Some(v);
                    self.decided_round = Some(r);
                    self.send_finish(ctx, v);
                }
            } else {
                self.est = Some(coin);
            }
            self.round += 1;
        }
    }
}

impl Protocol<Msg> for Aba {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        self.try_progress(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: PartyId,
        _path: PathSlice<'_>,
        msg: Msg,
    ) {
        let Msg::Aba(am) = msg else { return };
        match am {
            AbaMsg::Est { round, value } => {
                self.est_senders
                    .entry((round, value))
                    .or_default()
                    .insert(from);
            }
            AbaMsg::Aux { round, value } => {
                self.aux_received
                    .entry(round)
                    .or_default()
                    .entry(from)
                    .or_insert(value);
            }
            AbaMsg::Finish { value } => {
                self.finish_senders[value as usize].insert(from);
            }
        }
        self.try_progress(ctx);
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _path: PathSlice<'_>, _id: u64) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_net::{party_as, CorruptionSet, NetConfig, NetworkKind, PartyView};

    fn run(
        n: usize,
        t: usize,
        inputs: Vec<Option<bool>>,
        corrupt: CorruptionSet,
        kind: NetworkKind,
        seed: u64,
    ) -> (Vec<bool>, Time) {
        let parties: Vec<Box<dyn Protocol<Msg>>> = inputs
            .into_iter()
            .map(|v| Box::new(Aba::new(n, t, v)) as Box<dyn Protocol<Msg>>)
            .collect();
        let cfg = match kind {
            NetworkKind::Synchronous => NetConfig::synchronous(n),
            NetworkKind::Asynchronous => NetConfig::asynchronous(n),
        }
        .with_seed(seed);
        let mut net = crate::testnet::transport_for(cfg, corrupt.clone(), parties);
        let done = net.run_until_done(10_000_000, &mut |view| {
            (0..n)
                .filter(|&i| corrupt.is_honest(i))
                .all(|i| party_as::<Aba, Msg>(view, i).unwrap().output.is_some())
        });
        assert!(done, "ABA did not terminate");
        let view: &dyn PartyView<Msg> = net.as_ref();
        let outs = (0..n)
            .filter(|&i| corrupt.is_honest(i))
            .map(|i| party_as::<Aba, Msg>(view, i).unwrap().output.unwrap())
            .collect();
        (outs, view.now())
    }

    #[test]
    fn validity_unanimous_true_sync() {
        let (outs, _) = run(
            4,
            1,
            vec![Some(true); 4],
            CorruptionSet::none(),
            NetworkKind::Synchronous,
            1,
        );
        assert!(outs.iter().all(|&o| o));
    }

    #[test]
    fn validity_unanimous_false_sync() {
        let (outs, _) = run(
            7,
            2,
            vec![Some(false); 7],
            CorruptionSet::none(),
            NetworkKind::Synchronous,
            2,
        );
        assert!(outs.iter().all(|&o| !o));
    }

    #[test]
    fn consistency_mixed_inputs_sync_and_async() {
        for (kind, seed) in [
            (NetworkKind::Synchronous, 3),
            (NetworkKind::Asynchronous, 4),
        ] {
            let inputs = vec![
                Some(true),
                Some(false),
                Some(true),
                Some(false),
                Some(true),
                Some(false),
                Some(true),
            ];
            let (outs, _) = run(7, 2, inputs, CorruptionSet::none(), kind, seed);
            assert!(outs.windows(2).all(|w| w[0] == w[1]), "{kind:?}");
        }
    }

    #[test]
    fn validity_unanimous_async_with_corrupt_silent_parties() {
        // the corrupt parties never get an input (silent)
        let mut inputs = vec![Some(true); 5];
        inputs.extend(vec![None; 2]);
        let (outs, _) = run(
            7,
            2,
            inputs,
            CorruptionSet::new(vec![5, 6]),
            NetworkKind::Asynchronous,
            5,
        );
        assert!(outs.iter().all(|&o| o));
    }

    #[test]
    fn unanimous_inputs_terminate_quickly_in_sync_network() {
        // Lemma 3.3: guaranteed liveness within T_ABA = k·Δ when unanimous.
        let n = 7;
        let (_, finish_time) = run(
            n,
            2,
            vec![Some(false); n],
            CorruptionSet::none(),
            NetworkKind::Synchronous,
            6,
        );
        let delta = 10;
        assert!(
            finish_time <= 10 * delta,
            "unanimous ABA should finish within T_ABA, took {finish_time}"
        );
    }

    #[test]
    fn late_input_still_terminates() {
        // One honest party receives its input only via provide_input after
        // other parties have started: modelled by starting it with None and
        // letting a wrapper protocol inject the input — here we simply check
        // that a party with None input still terminates thanks to the
        // termination gadget driven by the others (5 unanimous parties out of
        // 7 with t = 2 suffice to decide and finish).
        let mut inputs = vec![Some(true); 6];
        inputs.push(None);
        let (outs, _) = run(
            7,
            2,
            inputs,
            CorruptionSet::none(),
            NetworkKind::Synchronous,
            7,
        );
        assert!(outs.iter().all(|&o| o));
    }
}
