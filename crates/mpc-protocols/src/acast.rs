//! Bracha's asynchronous reliable broadcast `Π_ACast` (Section 2.1,
//! Lemma 2.4).
//!
//! A designated sender `S` distributes a value identically to all parties
//! despite `t < n/3` corruptions. In an asynchronous network the protocol
//! provides liveness/validity for an honest `S` and consistency for a corrupt
//! one; in a synchronous network an honest sender's value is output by every
//! honest party within `3Δ`, and for a corrupt sender any two honest outputs
//! are equal and appear within `2Δ` of each other.

use std::any::Any;
use std::collections::{HashMap, HashSet};

use mpc_net::{Context, PartyId, PathSlice, Protocol, Time};

use crate::msg::{AcastMsg, BcValue, Msg};

/// One instance of Bracha's A-cast.
#[derive(Debug)]
pub struct Acast {
    sender: PartyId,
    n: usize,
    t: usize,
    input: Option<BcValue>,
    sent_send: bool,
    sent_echo: bool,
    sent_ready: bool,
    accepted_send: Option<BcValue>,
    echoes: HashMap<BcValue, HashSet<PartyId>>,
    readies: HashMap<BcValue, HashSet<PartyId>>,
    /// The delivered value, if any.
    pub output: Option<BcValue>,
    /// Local time at which the value was delivered.
    pub output_at: Option<Time>,
}

impl Acast {
    /// Creates a participant instance. The designated `sender` must be given
    /// its input via [`Acast::new_sender`] or [`Acast::provide_input`].
    pub fn new(sender: PartyId, n: usize, t: usize) -> Self {
        Acast {
            sender,
            n,
            t,
            input: None,
            sent_send: false,
            sent_echo: false,
            sent_ready: false,
            accepted_send: None,
            echoes: HashMap::new(),
            readies: HashMap::new(),
            output: None,
            output_at: None,
        }
    }

    /// Creates the sender-side instance with its input value.
    pub fn new_sender(sender: PartyId, n: usize, t: usize, input: BcValue) -> Self {
        let mut a = Self::new(sender, n, t);
        a.input = Some(input);
        a
    }

    /// Supplies the sender's input after construction (starts the broadcast
    /// immediately). Has no effect on non-sender parties or if already begun.
    pub fn provide_input(&mut self, ctx: &mut Context<'_, Msg>, input: BcValue) {
        if ctx.me == self.sender && !self.sent_send {
            self.input = Some(input);
            self.start(ctx);
        }
    }

    /// The echo threshold `⌈(n + t + 1) / 2⌉`.
    fn echo_threshold(&self) -> usize {
        (self.n + self.t + 2) / 2
    }

    fn start(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(v) = self.input.clone() {
            self.sent_send = true;
            ctx.broadcast(Msg::Acast(AcastMsg::Send(v)));
        }
    }

    fn maybe_send_ready(&mut self, ctx: &mut Context<'_, Msg>, value: &BcValue) {
        if !self.sent_ready {
            self.sent_ready = true;
            ctx.broadcast(Msg::Acast(AcastMsg::Ready(value.clone())));
        }
    }

    fn check_thresholds(&mut self, ctx: &mut Context<'_, Msg>, value: &BcValue) {
        let echo_count = self.echoes.get(value).map_or(0, HashSet::len);
        if echo_count >= self.echo_threshold() {
            self.maybe_send_ready(ctx, value);
        }
        let ready_count = self.readies.get(value).map_or(0, HashSet::len);
        if ready_count > self.t {
            self.maybe_send_ready(ctx, value);
        }
        if ready_count > 2 * self.t && self.output.is_none() {
            self.output = Some(value.clone());
            self.output_at = Some(ctx.now);
        }
    }
}

impl Protocol<Msg> for Acast {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        if ctx.me == self.sender {
            self.start(ctx);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: PartyId,
        _path: PathSlice<'_>,
        msg: Msg,
    ) {
        let Msg::Acast(am) = msg else { return };
        match am {
            AcastMsg::Send(v) => {
                if from == self.sender && self.accepted_send.is_none() {
                    self.accepted_send = Some(v.clone());
                    if !self.sent_echo {
                        self.sent_echo = true;
                        ctx.broadcast(Msg::Acast(AcastMsg::Echo(v)));
                    }
                }
            }
            AcastMsg::Echo(v) => {
                self.echoes.entry(v.clone()).or_default().insert(from);
                self.check_thresholds(ctx, &v);
            }
            AcastMsg::Ready(v) => {
                self.readies.entry(v.clone()).or_default().insert(from);
                self.check_thresholds(ctx, &v);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _path: PathSlice<'_>, _id: u64) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_algebra::Fp;
    use mpc_net::{CorruptionSet, NetConfig, Simulation};

    fn value(x: u64) -> BcValue {
        BcValue::Value(vec![Fp::from_u64(x)])
    }

    fn make_parties(
        n: usize,
        t: usize,
        sender: PartyId,
        input: BcValue,
    ) -> Vec<Box<dyn Protocol<Msg>>> {
        (0..n)
            .map(|i| {
                let a = if i == sender {
                    Acast::new_sender(sender, n, t, input.clone())
                } else {
                    Acast::new(sender, n, t)
                };
                Box::new(a) as Box<dyn Protocol<Msg>>
            })
            .collect()
    }

    fn all_output(sim: &Simulation<Msg>, n: usize) -> bool {
        (0..n).all(|i| sim.party_as::<Acast>(i).unwrap().output.is_some())
    }

    #[test]
    fn honest_sender_sync_delivers_within_3_delta() {
        let n = 7;
        let t = 2;
        let cfg = NetConfig::synchronous(n);
        let delta = cfg.delta;
        let mut sim = Simulation::new(cfg, CorruptionSet::none(), make_parties(n, t, 0, value(9)));
        assert!(sim.run_until(1000, |s| all_output(s, n)));
        for i in 0..n {
            let p = sim.party_as::<Acast>(i).unwrap();
            assert_eq!(p.output, Some(value(9)));
            assert!(
                p.output_at.unwrap() <= 3 * delta,
                "Lemma 2.4: liveness within 3Δ"
            );
        }
    }

    #[test]
    fn honest_sender_async_eventually_delivers() {
        let n = 7;
        let t = 2;
        let mut sim = Simulation::new(
            NetConfig::asynchronous(n).with_seed(5),
            CorruptionSet::none(),
            make_parties(n, t, 2, value(11)),
        );
        assert!(sim.run_until(1_000_000, |s| all_output(s, n)));
        for i in 0..n {
            assert_eq!(sim.party_as::<Acast>(i).unwrap().output, Some(value(11)));
        }
    }

    #[test]
    fn silent_sender_produces_no_output() {
        let n = 4;
        let t = 1;
        // sender is "corrupt" by never being given an input
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|_| Box::new(Acast::new(0, n, t)) as Box<dyn Protocol<Msg>>)
            .collect();
        let mut sim = Simulation::new(
            NetConfig::synchronous(n),
            CorruptionSet::new(vec![0]),
            parties,
        );
        sim.run_to_quiescence(10_000);
        assert!((0..n).all(|i| sim.party_as::<Acast>(i).unwrap().output.is_none()));
    }

    #[test]
    fn communication_is_order_n_squared_messages() {
        let n = 7;
        let t = 2;
        let mut sim = Simulation::new(
            NetConfig::synchronous(n),
            CorruptionSet::none(),
            make_parties(n, t, 0, value(1)),
        );
        sim.run_to_quiescence(10_000);
        // send (n) + echo (n^2) + ready (n^2)
        let msgs = sim.metrics().honest_messages;
        assert!(msgs as usize <= n + 2 * n * n);
        assert!(msgs as usize >= 2 * n * (n - t));
    }
}
