//! `Π_ACS` — agreement on a common subset (Fig 5, Lemma 5.1).
//!
//! Every party shares `L` polynomials of degree `t_s` through its own `Π_VSS`
//! instance; `n` `Π_BA` instances then decide which dealers make it into the
//! common subset `CS` (`|CS| ≥ n − t_s`, containing every honest party in a
//! synchronous network). Every honest party eventually holds its points on
//! the polynomials of every party in `CS`.

use std::any::Any;

use mpc_algebra::{Fp, Polynomial};
use mpc_net::{Context, PartyId, PathSlice, Protocol, Time};

use crate::ba::Ba;
use crate::msg::Msg;
use crate::params::Params;
use crate::vss::Vss;

const TIMER_START_BAS: u64 = 10;

/// One instance of `Π_ACS` where every party inputs `L` polynomials.
#[derive(Debug)]
pub struct Acs {
    params: Params,
    l_count: usize,
    my_polys: Vec<Polynomial>,
    vss: Vec<Vss>,
    bas: Vec<Ba>,
    bas_started: bool,
    pending_ba: Vec<(u32, PartyId, Msg)>,
    voted_zero_rest: bool,
    /// The agreed common subset of dealers, once all `n` BA instances decided.
    pub common_subset: Option<Vec<PartyId>>,
    /// Local time at which `CS` was fixed.
    pub output_at: Option<Time>,
}

impl Acs {
    /// Creates an instance with this party's own input polynomials (each of
    /// degree ≤ `t_s`).
    pub fn new(params: Params, my_polys: Vec<Polynomial>) -> Self {
        let l_count = my_polys.len();
        Acs {
            params,
            l_count,
            my_polys,
            vss: Vec::new(),
            bas: Vec::new(),
            bas_started: false,
            pending_ba: Vec::new(),
            voted_zero_rest: false,
            common_subset: None,
            output_at: None,
        }
    }

    fn seg_vss(j: PartyId) -> u32 {
        j as u32
    }
    fn seg_ba(&self, j: PartyId) -> u32 {
        (self.params.n + j) as u32
    }

    /// The shares this party holds of dealer `j`'s polynomials (available for
    /// every `j ∈ CS`, eventually).
    pub fn shares_from(&self, j: PartyId) -> Option<&Vec<Fp>> {
        self.vss.get(j).and_then(|v| v.shares.as_ref())
    }

    /// `true` once `CS` is agreed *and* this party holds shares from every
    /// member of `CS`.
    pub fn ready(&self) -> bool {
        match &self.common_subset {
            Some(cs) => cs.iter().all(|&j| self.shares_from(j).is_some()),
            None => false,
        }
    }

    fn drive(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.bas_started {
            return;
        }
        // provide input 1 to the BA of every dealer whose VSS has delivered
        for j in 0..self.params.n {
            if self.vss[j].shares.is_some() && !self.bas[j].has_input() {
                let seg = self.seg_ba(j);
                let ba = &mut self.bas[j];
                ctx.scoped(seg, |ctx| ba.provide_input(ctx, true));
            }
        }
        // once n - t_s BA instances output 1, vote 0 in all remaining ones
        let ones = self.bas.iter().filter(|b| b.output == Some(true)).count();
        if ones >= self.params.n - self.params.ts && !self.voted_zero_rest {
            self.voted_zero_rest = true;
            for j in 0..self.params.n {
                if !self.bas[j].has_input() {
                    let seg = self.seg_ba(j);
                    let ba = &mut self.bas[j];
                    ctx.scoped(seg, |ctx| ba.provide_input(ctx, false));
                }
            }
        }
        // all BAs decided → CS is fixed
        if self.common_subset.is_none() && self.bas.iter().all(|b| b.output.is_some()) {
            let cs: Vec<PartyId> = (0..self.params.n)
                .filter(|&j| self.bas[j].output == Some(true))
                .collect();
            self.common_subset = Some(cs);
            self.output_at = Some(ctx.now);
        }
    }
}

impl Protocol<Msg> for Acs {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = ctx.me;
        for j in 0..self.params.n {
            let mut v = if j == me {
                Vss::new_dealer(j, self.params, self.my_polys.clone())
            } else {
                Vss::new(j, self.params, self.l_count)
            };
            ctx.scoped(Self::seg_vss(j), |ctx| v.init(ctx));
            self.vss.push(v);
        }
        ctx.set_timer(self.params.t_vss(), TIMER_START_BAS);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: PartyId,
        path: PathSlice<'_>,
        msg: Msg,
    ) {
        let n = self.params.n;
        let Some(&seg) = path.first() else { return };
        if (seg as usize) < n {
            let vss = &mut self.vss[seg as usize];
            ctx.scoped(seg, |ctx| vss.on_message(ctx, from, &path[1..], msg));
        } else if (seg as usize) < 2 * n {
            if self.bas_started {
                let ba = &mut self.bas[seg as usize - n];
                ctx.scoped(seg, |ctx| ba.on_message(ctx, from, &path[1..], msg));
            } else {
                self.pending_ba.push((seg, from, msg));
            }
        }
        self.drive(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, path: PathSlice<'_>, id: u64) {
        let n = self.params.n;
        match path.first() {
            None if id == TIMER_START_BAS => {
                for j in 0..n {
                    let mut ba = Ba::new(self.params.ts, self.params, None);
                    let seg = self.seg_ba(j);
                    ctx.scoped(seg, |ctx| ba.init(ctx));
                    self.bas.push(ba);
                }
                self.bas_started = true;
                for (seg, from, msg) in std::mem::take(&mut self.pending_ba) {
                    let ba = &mut self.bas[seg as usize - n];
                    ctx.scoped(seg, |ctx| ba.on_message(ctx, from, &[], msg));
                }
                self.drive(ctx);
            }
            Some(&seg) if (seg as usize) < n => {
                let vss = &mut self.vss[seg as usize];
                ctx.scoped(seg, |ctx| vss.on_timer(ctx, &path[1..], id));
                self.drive(ctx);
            }
            Some(&seg) if (seg as usize) < 2 * n => {
                if self.bas_started {
                    let ba = &mut self.bas[seg as usize - n];
                    ctx.scoped(seg, |ctx| ba.on_timer(ctx, &path[1..], id));
                }
                self.drive(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_algebra::evaluation_points::alpha;
    use mpc_net::{CorruptionSet, NetConfig, Simulation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_parties(
        params: Params,
        rng: &mut StdRng,
    ) -> (Vec<Box<dyn Protocol<Msg>>>, Vec<Polynomial>) {
        let mut polys = Vec::new();
        let mut parties: Vec<Box<dyn Protocol<Msg>>> = Vec::new();
        for i in 0..params.n {
            let p =
                Polynomial::random_with_constant_term(rng, params.ts, Fp::from_u64(100 + i as u64));
            polys.push(p.clone());
            parties.push(Box::new(Acs::new(params, vec![p])));
        }
        (parties, polys)
    }

    #[test]
    fn sync_all_honest_dealers_in_cs() {
        let params = Params::new(4, 1, 0, 10);
        let mut rng = StdRng::seed_from_u64(77);
        let (parties, polys) = make_parties(params, &mut rng);
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::none(),
            parties,
        );
        let done = sim.run_until(params.t_acs() * 4, |s| {
            (0..params.n).all(|i| s.party_as::<Acs>(i).unwrap().ready())
        });
        assert!(done, "ACS must complete in a synchronous network");
        let cs0 = sim
            .party_as::<Acs>(0)
            .unwrap()
            .common_subset
            .clone()
            .unwrap();
        assert!(cs0.len() >= params.n - params.ts);
        // all honest parties (everyone here) must be in CS in a sync network
        assert_eq!(cs0, (0..params.n).collect::<Vec<_>>());
        for i in 0..params.n {
            let acs = sim.party_as::<Acs>(i).unwrap();
            assert_eq!(acs.common_subset.clone().unwrap(), cs0, "common CS");
            for &j in &cs0 {
                assert_eq!(acs.shares_from(j).unwrap()[0], polys[j].evaluate(alpha(i)));
            }
        }
    }

    #[test]
    fn async_common_subset_is_agreed_despite_silent_party() {
        let params = Params::new(5, 1, 1, 10);
        let mut rng = StdRng::seed_from_u64(78);
        let (mut parties, polys) = make_parties(params, &mut rng);
        // party 4 is corrupt and silent: replace with a do-nothing protocol
        parties[4] = Box::new(crate::byzantine::SilentParty);
        let corrupt = CorruptionSet::new(vec![4]);
        let mut sim = Simulation::new(
            NetConfig::asynchronous(params.n).with_seed(3),
            corrupt.clone(),
            parties,
        );
        let done = sim.run_until(200_000_000, |s| {
            (0..4).all(|i| s.party_as::<Acs>(i).unwrap().ready())
        });
        assert!(
            done,
            "ACS must eventually complete in an asynchronous network"
        );
        let cs0 = sim
            .party_as::<Acs>(0)
            .unwrap()
            .common_subset
            .clone()
            .unwrap();
        assert!(cs0.len() >= params.n - params.ts);
        assert!(!cs0.contains(&4), "a silent dealer cannot enter CS");
        for i in 0..4 {
            let acs = sim.party_as::<Acs>(i).unwrap();
            assert_eq!(acs.common_subset.clone().unwrap(), cs0);
            for &j in &cs0 {
                assert_eq!(acs.shares_from(j).unwrap()[0], polys[j].evaluate(alpha(i)));
            }
        }
    }
}
