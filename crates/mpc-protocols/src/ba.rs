//! `Π_BA` — the best-of-both-worlds Byzantine agreement (Fig 2, Theorem 3.6).
//!
//! Every party broadcasts its input bit through `Π_BC`; at local time `T_BC`
//! the regular-mode outputs of the `n` broadcasts determine the input to a
//! single `Π_ABA` instance (majority of a set `R` of at least `n − t` non-`⊥`
//! outputs if such a set exists, the party's own input otherwise); the `Π_ABA`
//! output is the overall output. The combination is a perfectly-secure SBA in
//! a synchronous network and a perfectly-secure ABA in an asynchronous one.

use std::any::Any;

use mpc_net::{Context, PartyId, PathSlice, Protocol, Time};

use crate::aba::Aba;
use crate::bc::Bc;
use crate::msg::{BcValue, Msg};
use crate::params::Params;

const TIMER_START_ABA: u64 = 1;

/// One instance of `Π_BA` over a single input bit.
#[derive(Debug)]
pub struct Ba {
    t: usize,
    params: Params,
    my_input: Option<bool>,
    bcs: Vec<Bc>,
    aba: Option<Aba>,
    pending_aba: Vec<(PartyId, Msg)>,
    r_majority: Option<bool>,
    aba_started: bool,
    aba_input_given: bool,
    /// The agreed output bit.
    pub output: Option<bool>,
    /// Local time the output was obtained.
    pub output_at: Option<Time>,
}

impl Ba {
    /// Creates an instance; `input` may be supplied later via
    /// [`Ba::provide_input`] (as `Π_ACS` does for its deferred votes).
    pub fn new(t: usize, params: Params, input: Option<bool>) -> Self {
        Ba {
            t,
            params,
            my_input: input,
            bcs: Vec::new(),
            aba: None,
            pending_aba: Vec::new(),
            r_majority: None,
            aba_started: false,
            aba_input_given: false,
            output: None,
            output_at: None,
        }
    }

    fn aba_segment(&self) -> u32 {
        self.params.n as u32
    }

    /// Supplies the party's input bit if not yet set, broadcasting it and (if
    /// the ABA phase has already started) feeding the derived value into it.
    pub fn provide_input(&mut self, ctx: &mut Context<'_, Msg>, input: bool) {
        if self.my_input.is_none() {
            self.my_input = Some(input);
            let me = ctx.me;
            let bc = &mut self.bcs[me];
            ctx.scoped(me as u32, |ctx| bc.provide_input(ctx, BcValue::Bit(input)));
        }
        self.maybe_feed_aba(ctx);
    }

    /// Whether an input has been supplied.
    pub fn has_input(&self) -> bool {
        self.my_input.is_some()
    }

    fn maybe_feed_aba(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.aba_started || self.aba_input_given {
            return;
        }
        let v_star = self.r_majority.or(self.my_input);
        if let Some(v) = v_star {
            self.aba_input_given = true;
            let seg = self.aba_segment();
            let aba = self.aba.as_mut().expect("aba exists when started");
            ctx.scoped(seg, |ctx| aba.provide_input(ctx, v));
            self.check_output(ctx.now);
        }
    }

    fn check_output(&mut self, now: Time) {
        if self.output.is_none() {
            if let Some(out) = self.aba.as_ref().and_then(|a| a.output) {
                self.output = Some(out);
                self.output_at = Some(now);
            }
        }
    }
}

impl Protocol<Msg> for Ba {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = ctx.me;
        for j in 0..self.params.n {
            let mut bc = if j == me {
                match self.my_input {
                    Some(b) => Bc::new_sender(j, self.t, self.params, BcValue::Bit(b)),
                    None => Bc::new(j, self.t, self.params),
                }
            } else {
                Bc::new(j, self.t, self.params)
            };
            ctx.scoped(j as u32, |ctx| bc.init(ctx));
            self.bcs.push(bc);
        }
        ctx.set_timer(self.params.t_bc(), TIMER_START_ABA);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: PartyId,
        path: PathSlice<'_>,
        msg: Msg,
    ) {
        let Some(&seg) = path.first() else { return };
        if (seg as usize) < self.params.n {
            let bc = &mut self.bcs[seg as usize];
            ctx.scoped(seg, |ctx| bc.on_message(ctx, from, &path[1..], msg));
        } else if seg == self.aba_segment() {
            if let Some(aba) = self.aba.as_mut() {
                ctx.scoped(seg, |ctx| aba.on_message(ctx, from, &path[1..], msg));
                self.check_output(ctx.now);
            } else {
                self.pending_aba.push((from, msg));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, path: PathSlice<'_>, id: u64) {
        match path.first() {
            Some(&seg) if (seg as usize) < self.params.n => {
                let bc = &mut self.bcs[seg as usize];
                ctx.scoped(seg, |ctx| bc.on_timer(ctx, &path[1..], id));
            }
            Some(&seg) if seg == self.aba_segment() => {
                if let Some(aba) = self.aba.as_mut() {
                    ctx.scoped(seg, |ctx| aba.on_timer(ctx, &path[1..], id));
                    self.check_output(ctx.now);
                }
            }
            None if id == TIMER_START_ABA => {
                // Determine the set R of senders whose broadcast produced a
                // bit through regular mode, and the derived ABA input.
                let r_bits: Vec<bool> = self
                    .bcs
                    .iter()
                    .filter_map(|bc| match bc.regular_value() {
                        Some(BcValue::Bit(b)) => Some(*b),
                        _ => None,
                    })
                    .collect();
                if r_bits.len() >= self.params.n - self.t {
                    let ones = r_bits.iter().filter(|&&b| b).count();
                    let zeros = r_bits.len() - ones;
                    self.r_majority = Some(ones >= zeros); // ties broken towards 1
                }
                let mut aba = Aba::new(self.params.n, self.t, None);
                let seg = self.aba_segment();
                ctx.scoped(seg, |ctx| aba.init(ctx));
                for (from, msg) in std::mem::take(&mut self.pending_aba) {
                    ctx.scoped(seg, |ctx| aba.on_message(ctx, from, &[], msg));
                }
                self.aba = Some(aba);
                self.aba_started = true;
                self.maybe_feed_aba(ctx);
                self.check_output(ctx.now);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_net::{CorruptionSet, NetConfig, NetworkKind, Simulation};

    fn run(
        params: Params,
        inputs: Vec<Option<bool>>,
        corrupt: CorruptionSet,
        kind: NetworkKind,
        seed: u64,
    ) -> (Vec<bool>, Time) {
        let parties: Vec<Box<dyn Protocol<Msg>>> = inputs
            .into_iter()
            .map(|v| Box::new(Ba::new(params.ts, params, v)) as Box<dyn Protocol<Msg>>)
            .collect();
        let cfg = match kind {
            NetworkKind::Synchronous => NetConfig::synchronous(params.n),
            NetworkKind::Asynchronous => NetConfig::asynchronous(params.n),
        }
        .with_seed(seed);
        let mut sim = Simulation::new(cfg, corrupt.clone(), parties);
        let done = sim.run_until(10_000_000, |s| {
            (0..params.n)
                .filter(|&i| corrupt.is_honest(i))
                .all(|i| s.party_as::<Ba>(i).unwrap().output.is_some())
        });
        assert!(done, "BA did not produce outputs");
        let outs = (0..params.n)
            .filter(|&i| corrupt.is_honest(i))
            .map(|i| sim.party_as::<Ba>(i).unwrap().output.unwrap())
            .collect();
        let latest = (0..params.n)
            .filter(|&i| corrupt.is_honest(i))
            .map(|i| sim.party_as::<Ba>(i).unwrap().output_at.unwrap())
            .max()
            .unwrap();
        (outs, latest)
    }

    #[test]
    fn validity_and_time_bound_in_sync_network() {
        let params = Params::new(4, 1, 0, 10);
        let (outs, latest) = run(
            params,
            vec![Some(true); 4],
            CorruptionSet::none(),
            NetworkKind::Synchronous,
            1,
        );
        assert!(outs.iter().all(|&o| o));
        assert!(
            latest <= params.t_ba(),
            "Theorem 3.6: output within T_BA = T_BC + T_ABA, got {latest}"
        );
    }

    #[test]
    fn validity_false_in_sync_network() {
        let params = Params::new(7, 2, 0, 10);
        let (outs, _) = run(
            params,
            vec![Some(false); 7],
            CorruptionSet::none(),
            NetworkKind::Synchronous,
            2,
        );
        assert!(outs.iter().all(|&o| !o));
    }

    #[test]
    fn consistency_with_mixed_inputs_sync() {
        let params = Params::new(7, 2, 0, 10);
        let inputs = vec![
            Some(true),
            Some(false),
            Some(false),
            Some(true),
            Some(true),
            Some(false),
            Some(true),
        ];
        let (outs, _) = run(
            params,
            inputs,
            CorruptionSet::none(),
            NetworkKind::Synchronous,
            3,
        );
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn validity_in_async_network() {
        let params = Params::new(7, 2, 0, 10);
        let (outs, _) = run(
            params,
            vec![Some(true); 7],
            CorruptionSet::none(),
            NetworkKind::Asynchronous,
            4,
        );
        assert!(outs.iter().all(|&o| o));
    }

    #[test]
    fn consistency_with_silent_corrupt_parties_async() {
        let params = Params::new(7, 2, 0, 10);
        let mut inputs = vec![Some(false); 6];
        inputs.push(None); // corrupt party never participates
        let (outs, _) = run(
            params,
            inputs,
            CorruptionSet::new(vec![6]),
            NetworkKind::Asynchronous,
            5,
        );
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        assert!(
            outs.iter().all(|&o| !o),
            "validity with 6 unanimous honest parties"
        );
    }
}
