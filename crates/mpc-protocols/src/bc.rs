//! `Π_BC` — synchronous broadcast with asynchronous guarantees (Fig 1,
//! Theorem 3.5).
//!
//! The sender A-casts its value; at local time `3Δ` every party feeds the
//! value it has (or `⊥`) into an SBA instance; at local time
//! `T_BC = 3Δ + T_BGP` the *regular-mode* output is fixed: the value `m⋆` if
//! it was both received from the sender's A-cast and agreed by the SBA,
//! otherwise `⊥`. Parties keep participating afterwards; a party whose
//! regular-mode output was `⊥` switches to `m⋆` if the A-cast later delivers
//! it (*fallback mode*), which is what gives the protocol its asynchronous
//! validity/consistency guarantees.

use std::any::Any;

use mpc_net::{Context, PartyId, PathSlice, Protocol, Time};

use crate::acast::Acast;
use crate::msg::{BcValue, Msg};
use crate::params::Params;
use crate::sba::Sba;

const SEG_ACAST: u32 = 0;
const SEG_SBA: u32 = 1;
const TIMER_START_SBA: u64 = 1;
const TIMER_REGULAR: u64 = 2;

/// How a `Π_BC` output was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcMode {
    /// Fixed at the `T_BC` time-out.
    Regular,
    /// Adopted later from the sender's A-cast.
    Fallback,
}

/// One instance of `Π_BC`.
#[derive(Debug)]
pub struct Bc {
    sender: PartyId,
    t: usize,
    params: Params,
    start: Option<Time>,
    acast: Acast,
    sba: Option<Sba>,
    pending_sba: Vec<(PartyId, Msg)>,
    /// The output: `None` until the regular-mode time-out, then
    /// `Some(None)` for `⊥` or `Some(Some(v))` for a value.
    pub output: Option<Option<BcValue>>,
    /// The regular-mode output as fixed at `T_BC` (never changes afterwards).
    pub regular_output: Option<Option<BcValue>>,
    /// How the current output was obtained.
    pub mode: Option<BcMode>,
    /// Local time the current output was (last) set.
    pub output_at: Option<Time>,
}

impl Bc {
    /// Creates a participant instance for the given designated sender.
    pub fn new(sender: PartyId, t: usize, params: Params) -> Self {
        Bc {
            sender,
            t,
            params,
            start: None,
            acast: Acast::new(sender, params.n, t),
            sba: None,
            pending_sba: Vec::new(),
            output: None,
            regular_output: None,
            mode: None,
            output_at: None,
        }
    }

    /// Creates the sender-side instance with its input.
    pub fn new_sender(sender: PartyId, t: usize, params: Params, input: BcValue) -> Self {
        let mut bc = Self::new(sender, t, params);
        bc.acast = Acast::new_sender(sender, params.n, t, input);
        bc
    }

    /// Supplies the sender's input after creation (a late sender misses the
    /// regular-mode deadline, exactly as a corrupt sender would).
    pub fn provide_input(&mut self, ctx: &mut Context<'_, Msg>, input: BcValue) {
        ctx.scoped(SEG_ACAST, |ctx| self.acast.provide_input(ctx, input));
    }

    /// The designated sender of this broadcast instance.
    pub fn sender(&self) -> PartyId {
        self.sender
    }

    /// The current output value regardless of mode, flattened
    /// (`None` = no output yet or `⊥`).
    pub fn value(&self) -> Option<&BcValue> {
        self.output.as_ref().and_then(|o| o.as_ref())
    }

    /// The value fixed through regular mode at `T_BC`, if it was not `⊥`.
    pub fn regular_value(&self) -> Option<&BcValue> {
        self.regular_output.as_ref().and_then(|o| o.as_ref())
    }

    fn check_fallback(&mut self, now: Time) {
        // Only parties whose regular-mode output was ⊥ ever switch.
        if matches!(self.regular_output, Some(None))
            && matches!(self.output, Some(None))
            && self.acast.output.is_some()
        {
            self.output = Some(self.acast.output.clone());
            self.mode = Some(BcMode::Fallback);
            self.output_at = Some(now);
        }
    }
}

impl Protocol<Msg> for Bc {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        self.start = Some(ctx.now);
        ctx.scoped(SEG_ACAST, |ctx| self.acast.init(ctx));
        ctx.set_timer(3 * ctx.delta, TIMER_START_SBA);
        ctx.set_timer(3 * ctx.delta + self.params.t_bgp(), TIMER_REGULAR);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: PartyId,
        path: PathSlice<'_>,
        msg: Msg,
    ) {
        match path.first() {
            Some(&SEG_ACAST) => {
                ctx.scoped(SEG_ACAST, |ctx| {
                    self.acast.on_message(ctx, from, &path[1..], msg)
                });
                self.check_fallback(ctx.now);
            }
            Some(&SEG_SBA) => {
                if let Some(sba) = self.sba.as_mut() {
                    ctx.scoped(SEG_SBA, |ctx| sba.on_message(ctx, from, &path[1..], msg));
                } else {
                    self.pending_sba.push((from, msg));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, path: PathSlice<'_>, id: u64) {
        match path.first() {
            Some(&SEG_ACAST) => {
                ctx.scoped(SEG_ACAST, |ctx| self.acast.on_timer(ctx, &path[1..], id));
            }
            Some(&SEG_SBA) => {
                if let Some(sba) = self.sba.as_mut() {
                    ctx.scoped(SEG_SBA, |ctx| sba.on_timer(ctx, &path[1..], id));
                }
            }
            None => match id {
                TIMER_START_SBA => {
                    let input = self.acast.output.clone();
                    let mut sba = Sba::new(self.params.n, self.t, input);
                    ctx.scoped(SEG_SBA, |ctx| sba.init(ctx));
                    for (from, msg) in std::mem::take(&mut self.pending_sba) {
                        ctx.scoped(SEG_SBA, |ctx| sba.on_message(ctx, from, &[], msg));
                    }
                    self.sba = Some(sba);
                }
                TIMER_REGULAR => {
                    let sba_out = self.sba.as_ref().and_then(|s| s.output.clone()).flatten();
                    let regular = match (&self.acast.output, &sba_out) {
                        (Some(a), Some(s)) if a == s => Some(a.clone()),
                        _ => None,
                    };
                    self.regular_output = Some(regular.clone());
                    self.output = Some(regular);
                    self.mode = Some(BcMode::Regular);
                    self.output_at = Some(ctx.now);
                    self.check_fallback(ctx.now);
                }
                _ => {}
            },
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_algebra::Fp;
    use mpc_net::{CorruptionSet, NetConfig, Simulation, SkewedAsyncScheduler};

    fn value(x: u64) -> BcValue {
        BcValue::Value(vec![Fp::from_u64(x)])
    }

    fn make_parties(
        params: Params,
        sender: PartyId,
        input: Option<BcValue>,
    ) -> Vec<Box<dyn Protocol<Msg>>> {
        (0..params.n)
            .map(|i| {
                let bc = match (&input, i == sender) {
                    (Some(v), true) => Bc::new_sender(sender, params.ts, params, v.clone()),
                    _ => Bc::new(sender, params.ts, params),
                };
                Box::new(bc) as Box<dyn Protocol<Msg>>
            })
            .collect()
    }

    #[test]
    fn validity_in_sync_network_at_t_bc() {
        let params = Params::new(7, 2, 0, 10);
        let cfg = NetConfig::synchronous(params.n);
        let mut sim = Simulation::new(
            cfg,
            CorruptionSet::none(),
            make_parties(params, 0, Some(value(5))),
        );
        sim.run_until(params.t_bc() + 1, |s| {
            (0..params.n).all(|i| s.party_as::<Bc>(i).unwrap().output.is_some())
        });
        for i in 0..params.n {
            let p = sim.party_as::<Bc>(i).unwrap();
            assert_eq!(p.output, Some(Some(value(5))));
            assert_eq!(p.mode, Some(BcMode::Regular));
            assert_eq!(
                p.output_at.unwrap(),
                params.t_bc(),
                "Theorem 3.5: output exactly at T_BC"
            );
        }
    }

    #[test]
    fn liveness_with_silent_sender_outputs_bottom() {
        let params = Params::new(4, 1, 0, 10);
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::new(vec![2]),
            make_parties(params, 2, None), // sender never provides input
        );
        sim.run_to_quiescence(params.t_bc() * 3);
        for i in [0, 1, 3] {
            let p = sim.party_as::<Bc>(i).unwrap();
            assert_eq!(
                p.output,
                Some(None),
                "liveness: ⊥ output even for a silent sender"
            );
        }
    }

    #[test]
    fn async_network_weak_validity_and_fallback() {
        // Delay all of the sender's messages so far beyond the timeout that
        // regular mode outputs ⊥, then check the fallback mode kicks in.
        let params = Params::new(4, 1, 0, 10);
        let lag = params.t_bc() * 2;
        let scheduler = SkewedAsyncScheduler {
            slowed_senders: vec![0],
            lag,
            fast: 2,
        };
        let cfg = NetConfig::asynchronous(params.n).with_seed(11);
        let mut sim = Simulation::with_scheduler(
            cfg,
            CorruptionSet::none(),
            Box::new(scheduler),
            make_parties(params, 0, Some(value(8))),
        );
        sim.run_to_quiescence(lag * 20);
        for i in 0..params.n {
            let p = sim.party_as::<Bc>(i).unwrap();
            // weak validity: regular-mode output is m or ⊥ ...
            assert!(p.regular_output == Some(None) || p.regular_output == Some(Some(value(8))));
            // ... and fallback validity: everyone eventually holds m.
            assert_eq!(p.value(), Some(&value(8)));
        }
        // at least one party must have needed the fallback for this test to be meaningful
        assert!(
            (0..params.n).any(|i| sim.party_as::<Bc>(i).unwrap().mode == Some(BcMode::Fallback))
        );
    }

    #[test]
    fn communication_scales_as_n_squared() {
        let mut bits = Vec::new();
        for n in [4usize, 7, 10] {
            let params = Params::max_thresholds(n, 10);
            let mut sim = Simulation::new(
                NetConfig::synchronous(n),
                CorruptionSet::none(),
                make_parties(params, 0, Some(value(1))),
            );
            sim.run_to_quiescence(params.t_bc() * 3);
            bits.push(sim.metrics().honest_bits as f64);
        }
        // growing but sub-cubic in n per honest bit count (loose sanity bound
        // for the O(n^2 ℓ + n^3)-ish scaling of the substituted SBA)
        assert!(bits[2] > bits[0]);
        let ratio = bits[2] / bits[0];
        assert!(
            ratio < ((10.0f64 / 4.0).powi(4)),
            "ratio {ratio} grows too fast"
        );
    }
}
