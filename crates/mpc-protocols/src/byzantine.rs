//! Adversarial party implementations used by tests and experiments.
//!
//! The simulator's corruption model is *behavioural*: a corrupt party simply
//! runs a different root protocol. This module collects the misbehaviours the
//! test-suite and the experiments inject.

use std::any::Any;

use mpc_algebra::evaluation_points::alpha;
use mpc_algebra::{Fp, SymmetricBivariate};
use mpc_net::{Context, PartyId, PathSlice, Protocol};

use crate::msg::{AcastMsg, BcValue, Msg};

/// A crashed party: never sends anything, ignores everything.
#[derive(Debug, Default)]
pub struct SilentParty;

impl<M: 'static> Protocol<M> for SilentParty {
    fn init(&mut self, _ctx: &mut Context<'_, M>) {}
    fn on_message(
        &mut self,
        _ctx: &mut Context<'_, M>,
        _from: PartyId,
        _path: PathSlice<'_>,
        _msg: M,
    ) {
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _path: PathSlice<'_>, _id: u64) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An A-cast sender that equivocates: it sends `value_a` to the first half of
/// the parties and `value_b` to the rest, then goes silent. Bracha's protocol
/// must prevent two honest parties from delivering different values.
#[derive(Debug)]
pub struct EquivocatingAcastSender {
    /// Value sent to the lower-indexed half.
    pub value_a: BcValue,
    /// Value sent to the higher-indexed half.
    pub value_b: BcValue,
}

impl Protocol<Msg> for EquivocatingAcastSender {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        let n = ctx.n;
        for i in 0..n {
            let v = if i < n / 2 {
                self.value_a.clone()
            } else {
                self.value_b.clone()
            };
            ctx.send(i, Msg::Acast(AcastMsg::Send(v)));
        }
    }
    fn on_message(
        &mut self,
        _ctx: &mut Context<'_, Msg>,
        _from: PartyId,
        _path: PathSlice<'_>,
        _msg: Msg,
    ) {
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _path: PathSlice<'_>, _id: u64) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A WPS/VSS dealer that distributes row polynomials drawn from *two
/// different* symmetric bivariate polynomials (one half of the parties gets
/// rows of the first, the other half rows of the second) and otherwise stays
/// silent. Honest parties must either produce no output at all or outputs
/// that lie on a single degree-`t_s` polynomial.
#[derive(Debug)]
pub struct InconsistentRowsDealer {
    /// Degree of the sharing polynomials (`t_s`).
    pub degree: usize,
    /// Number of polynomials to pretend to share.
    pub l_count: usize,
}

impl Protocol<Msg> for InconsistentRowsDealer {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        let n = ctx.n;
        let a: Vec<SymmetricBivariate> = (0..self.l_count)
            .map(|_| SymmetricBivariate::random(ctx.rng(), self.degree))
            .collect();
        let b: Vec<SymmetricBivariate> = (0..self.l_count)
            .map(|_| SymmetricBivariate::random(ctx.rng(), self.degree))
            .collect();
        for i in 0..n {
            let source = if i < n / 2 { &a } else { &b };
            let rows: Vec<Vec<Fp>> = source
                .iter()
                .map(|f| f.row(alpha(i)).coeffs().to_vec())
                .collect();
            ctx.send(i, Msg::RowPolys(rows));
        }
    }
    fn on_message(
        &mut self,
        _ctx: &mut Context<'_, Msg>,
        _from: PartyId,
        _path: PathSlice<'_>,
        _msg: Msg,
    ) {
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _path: PathSlice<'_>, _id: u64) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acast::Acast;
    use crate::params::Params;
    use crate::vss::Vss;
    use mpc_algebra::Polynomial;
    use mpc_net::{CorruptionSet, NetConfig, Simulation};

    #[test]
    fn equivocating_acast_sender_cannot_split_honest_parties() {
        let n = 7;
        let t = 2;
        let mut parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|_| Box::new(Acast::new(0, n, t)) as Box<dyn Protocol<Msg>>)
            .collect();
        parties[0] = Box::new(EquivocatingAcastSender {
            value_a: BcValue::Bit(false),
            value_b: BcValue::Bit(true),
        });
        let mut sim = Simulation::new(
            NetConfig::synchronous(n),
            CorruptionSet::new(vec![0]),
            parties,
        );
        sim.run_to_quiescence(100_000);
        let outputs: Vec<Option<BcValue>> = (1..n)
            .map(|i| sim.party_as::<Acast>(i).unwrap().output.clone())
            .collect();
        let delivered: Vec<&BcValue> = outputs.iter().flatten().collect();
        // consistency: no two honest parties deliver different values
        assert!(delivered.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn equivocating_sender_cannot_split_bc_outputs() {
        // Π_BC consistency for a corrupt sender: at T_BC all honest parties
        // hold the same regular-mode output (a common value or ⊥), and any
        // fallback switches only ever converge on one value.
        let params = Params::new(7, 2, 0, 10);
        let mut parties: Vec<Box<dyn Protocol<Msg>>> = (0..params.n)
            .map(|_| Box::new(crate::bc::Bc::new(0, params.ts, params)) as Box<dyn Protocol<Msg>>)
            .collect();
        parties[0] = Box::new(EquivocatingAcastSender {
            value_a: BcValue::Bit(false),
            value_b: BcValue::Bit(true),
        });
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::new(vec![0]),
            parties,
        );
        sim.run_to_quiescence(params.t_bc() * 4);
        let regular: Vec<Option<Option<BcValue>>> = (1..params.n)
            .map(|i| {
                sim.party_as::<crate::bc::Bc>(i)
                    .unwrap()
                    .regular_output
                    .clone()
            })
            .collect();
        assert!(regular.iter().all(|o| o.is_some()), "liveness at T_BC");
        assert!(
            regular.windows(2).all(|w| w[0] == w[1]),
            "t-consistency for a corrupt sender"
        );
        let final_values: Vec<&BcValue> = (1..params.n)
            .filter_map(|i| sim.party_as::<crate::bc::Bc>(i).unwrap().value())
            .collect();
        assert!(
            final_values.windows(2).all(|w| w[0] == w[1]),
            "fallback consistency"
        );
    }

    #[test]
    fn silent_king_does_not_break_phase_king_agreement() {
        // The phase king of the first phase is corrupt (silent); agreement
        // must still hold thanks to the later honest-king phases.
        let n = 7;
        let t = 2;
        let mut parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|i| {
                let input = Some(BcValue::Bit(i % 2 == 0));
                Box::new(crate::sba::Sba::new(n, t, input)) as Box<dyn Protocol<Msg>>
            })
            .collect();
        parties[0] = Box::new(SilentParty); // party 0 is the king of phase 0
        let corrupt = CorruptionSet::new(vec![0]);
        let mut sim = Simulation::new(NetConfig::synchronous(n), corrupt, parties);
        sim.run_to_quiescence(100_000);
        let outs: Vec<_> = (1..n)
            .map(|i| {
                sim.party_as::<crate::sba::Sba>(i)
                    .unwrap()
                    .output
                    .clone()
                    .unwrap()
            })
            .collect();
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "honest outputs must agree"
        );
    }

    #[test]
    fn inconsistent_vss_dealer_cannot_break_commitment() {
        let params = Params::new(4, 1, 0, 10);
        let mut parties: Vec<Box<dyn Protocol<Msg>>> = (0..params.n)
            .map(|_| Box::new(Vss::new(0, params, 1)) as Box<dyn Protocol<Msg>>)
            .collect();
        parties[0] = Box::new(InconsistentRowsDealer {
            degree: params.ts,
            l_count: 1,
        });
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::new(vec![0]),
            parties,
        );
        sim.run_to_quiescence(params.t_vss() * 4);
        // Strong commitment: either nobody outputs, or every honest output
        // lies on one degree-t_s polynomial.
        let outputs: Vec<(usize, Fp)> = (1..params.n)
            .filter_map(|i| {
                sim.party_as::<Vss>(i)
                    .unwrap()
                    .shares
                    .as_ref()
                    .map(|s| (i, s[0]))
            })
            .collect();
        if outputs.len() > params.ts + 1 {
            // Interpolate through the shared evaluation domain's cached
            // points, like the protocols themselves do.
            let domain = mpc_algebra::EvalDomain::get(params.n);
            let pts: Vec<(Fp, Fp)> = outputs.iter().map(|&(i, s)| (domain.alpha(i), s)).collect();
            let poly = Polynomial::interpolate(&pts[..params.ts + 1]);
            for &(x, y) in &pts {
                assert_eq!(
                    poly.evaluate(x),
                    y,
                    "honest shares must lie on one polynomial"
                );
            }
        }
    }
}
