//! Best-of-both-worlds building blocks of the paper (Sections 3–5):
//!
//! * [`acast`] — Bracha's asynchronous reliable broadcast `Π_ACast`.
//! * [`sba`] — the synchronous phase-king Byzantine agreement used as
//!   `Π_BGP` (DESIGN.md substitution S2).
//! * [`aba`] — asynchronous Byzantine agreement with an ideal common coin
//!   (DESIGN.md substitution S1), providing the `Π_ABA` interface of
//!   Lemma 3.3.
//! * [`bc`] — the synchronous broadcast with asynchronous guarantees `Π_BC`
//!   (Fig 1), with regular and fallback output modes.
//! * [`ba`] — the best-of-both-worlds Byzantine agreement `Π_BA` (Fig 2).
//! * [`star`] — the `(n,t)`-star finding algorithm `AlgStar` of \[13\].
//! * [`voteboard`] — reliable dissemination of the OK/NOK pairwise
//!   consistency votes that build the consistency graphs of `Π_WPS`/`Π_VSS`.
//! * [`wps`] — the weak polynomial sharing protocol `Π_WPS` (Fig 3).
//! * [`vss`] — the verifiable secret sharing protocol `Π_VSS` (Fig 4).
//! * [`acs`] — agreement on a common subset `Π_ACS` (Fig 5).
//! * [`byzantine`] — adversarial protocol implementations used by tests and
//!   experiments.
//!
//! All protocols are written against [`mpc_net::Protocol`] and compose by
//! instance-path routing; see the crate-level documentation of `mpc-net`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aba;
pub mod acast;
pub mod acs;
pub mod ba;
pub mod bc;
pub mod byzantine;
pub mod msg;
pub mod params;
pub mod sba;
pub mod star;
#[cfg(test)]
pub(crate) mod testnet;
pub mod voteboard;
pub mod vss;
pub mod wps;

pub use msg::{AbaMsg, AcastMsg, BcValue, Msg, SbaMsg, Vote};
pub use params::Params;

/// Compile-time guard for the simulator's deterministic parallel engine:
/// every root protocol state machine (and the message tree they exchange)
/// must be `Send` so a time slice can hand ownership of a party to a worker
/// thread (`mpc_net::Protocol` has `Send` as a supertrait; this assertion
/// keeps the error message local to this crate if a future protocol ever
/// smuggles in a non-`Send` field).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Msg>();
    assert_send::<acast::Acast>();
    assert_send::<ba::Ba>();
    assert_send::<bc::Bc>();
    assert_send::<sba::Sba>();
    assert_send::<aba::Aba>();
    assert_send::<wps::Wps>();
    assert_send::<vss::Vss>();
    assert_send::<acs::Acs>();
    assert_send::<byzantine::SilentParty>();
};
