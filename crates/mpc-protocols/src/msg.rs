//! The wire-format message enum shared by every protocol in the stack.
//!
//! Keeping a single payload enum lets the whole composition tree run inside
//! one [`mpc_net::Simulation`] and lets the communication metrics attribute a
//! bit size to every message (the paper counts "bits communicated by the
//! honest parties").

use mpc_algebra::Fp;
use mpc_net::MessageSize;
use serde::{Deserialize, Serialize};

/// One pairwise-consistency verdict cast by a party about a counterpart
/// (the `OK(i, j)` / `NOK(i, j, q_i(α_j))` messages of `Π_WPS` / `Π_VSS`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vote {
    /// The common points agreed (`OK`).
    Ok,
    /// The common points disagreed (`NOK`); carries the index of the first
    /// disagreeing polynomial and the voter's version of the disputed point.
    Nok {
        /// Index (0-based) of the first polynomial whose check failed.
        ell: u32,
        /// The voter's version of the disputed common point.
        value: Fp,
    },
}

/// Values carried by the broadcast primitives (`Π_ACast`, `Π_BGP`, `Π_BC`).
///
/// The protocols of the paper broadcast a handful of structured values —
/// input bits, vote vectors, `(W, E, F)` triplets and `(E′, F′)` stars — so
/// they are enumerated here rather than serialised to opaque byte strings.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BcValue {
    /// A single bit (input broadcast of `Π_BA`).
    Bit(bool),
    /// A vector of pairwise-consistency votes `(counterpart, vote)`.
    Votes(Vec<(u32, Vote)>),
    /// The dealer's `(W, E, F)` triplet of `Π_WPS`/`Π_VSS` phase IV.
    Wef {
        /// The candidate support set `W` (`|W| ≥ n − t_s`).
        w: Vec<u32>,
        /// The star core `E` (`|E| ≥ n − 2·t_s`).
        e: Vec<u32>,
        /// The star periphery `F` (`|F| ≥ n − t_s`).
        f: Vec<u32>,
    },
    /// The dealer's `(E′, F′)` star of the asynchronous fallback path.
    Star {
        /// The star core `E′` (`|E′| ≥ n − 2·t_a`).
        e: Vec<u32>,
        /// The star periphery `F′` (`|F′| ≥ n − t_a`).
        f: Vec<u32>,
    },
    /// An opaque vector of field elements (generic payload, used by tests).
    Value(Vec<Fp>),
}

impl BcValue {
    fn elements(&self) -> u64 {
        match self {
            BcValue::Bit(_) => 1,
            BcValue::Votes(v) => v.len() as u64,
            BcValue::Wef { w, e, f } => (w.len() + e.len() + f.len()) as u64,
            BcValue::Star { e, f } => (e.len() + f.len()) as u64,
            BcValue::Value(v) => v.len() as u64,
        }
    }
}

/// Bracha A-cast messages.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcastMsg {
    /// The sender's initial dissemination.
    Send(BcValue),
    /// First-stage echo.
    Echo(BcValue),
    /// Second-stage ready/commit.
    Ready(BcValue),
}

/// The value domain of the phase-king SBA: either a broadcast value or `⊥`
/// (encoded as `None`, the paper's "default value").
pub type SbaValue = Option<BcValue>;

/// Phase-king SBA messages (one phase = three rounds).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SbaMsg {
    /// Round 1 of a phase: every party sends its current value.
    Round1 {
        /// Phase index (0-based; there are `t_s + 1` phases).
        phase: u32,
        /// The sender's current value.
        value: SbaValue,
    },
    /// Round 2 of a phase: every party sends its round-1 candidate (a value
    /// seen at least `n − t` times) or "no candidate".
    Round2 {
        /// Phase index.
        phase: u32,
        /// The candidate, if any.
        candidate: Option<SbaValue>,
    },
    /// Round 3 of a phase: only the phase king sends its proposal.
    King {
        /// Phase index.
        phase: u32,
        /// The king's proposal.
        value: SbaValue,
    },
}

/// Common-coin ABA messages (MMR-style round structure).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbaMsg {
    /// Round estimate.
    Est {
        /// Round number.
        round: u32,
        /// Estimated value.
        value: bool,
    },
    /// Auxiliary vote of a round.
    Aux {
        /// Round number.
        round: u32,
        /// Vote value (must be in the sender's `bin_values`).
        value: bool,
    },
    /// Termination-gadget message sent once a party decides.
    Finish {
        /// The decided value.
        value: bool,
    },
}

/// The unified payload type routed by the simulator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Msg {
    /// Bracha A-cast sub-messages.
    Acast(AcastMsg),
    /// Phase-king SBA sub-messages.
    Sba(SbaMsg),
    /// Common-coin ABA sub-messages.
    Aba(AbaMsg),
    /// Dealer → party: the `L` row polynomials of `Π_WPS`/`Π_VSS` phase I
    /// (each polynomial by its coefficient vector).
    RowPolys(Vec<Vec<Fp>>),
    /// Pairwise-consistency points (`L` supposedly common values) exchanged
    /// in `Π_WPS` phase II.
    Points(Vec<Fp>),
    /// A share-opening message (public reconstruction): used by Beaver's
    /// protocol, `Π_TripSh` difference/suspected-triple openings and the
    /// output phase of `Π_CirEval`.
    Open {
        /// Disambiguates parallel openings inside one protocol instance.
        tag: u32,
        /// The sender's shares of the opened values.
        values: Vec<Fp>,
    },
    /// Termination-phase `(ready, y)` message of `Π_CirEval`.
    Ready(Vec<Fp>),
}

const HEADER_BITS: u64 = 16;
const FIELD_BITS: u64 = 64;

impl MessageSize for Msg {
    fn size_bits(&self) -> u64 {
        let elements = match self {
            Msg::Acast(AcastMsg::Send(v) | AcastMsg::Echo(v) | AcastMsg::Ready(v)) => v.elements(),
            Msg::Sba(SbaMsg::Round1 { value, .. } | SbaMsg::King { value, .. }) => {
                value.as_ref().map_or(0, BcValue::elements)
            }
            Msg::Sba(SbaMsg::Round2 { candidate, .. }) => candidate
                .as_ref()
                .and_then(|c| c.as_ref())
                .map_or(0, BcValue::elements),
            Msg::Aba(_) => 1,
            Msg::RowPolys(polys) => polys.iter().map(|p| p.len() as u64).sum(),
            Msg::Points(v) => v.len() as u64,
            Msg::Open { values, .. } => values.len() as u64,
            Msg::Ready(v) => v.len() as u64,
        };
        HEADER_BITS + elements * FIELD_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes_scale_with_payload() {
        let small = Msg::Acast(AcastMsg::Send(BcValue::Bit(true)));
        let big = Msg::Acast(AcastMsg::Send(BcValue::Value(vec![Fp::from_u64(1); 100])));
        assert!(big.size_bits() > small.size_bits());
        assert_eq!(big.size_bits(), 16 + 100 * 64);
    }

    #[test]
    fn votes_and_stars_have_nonzero_size() {
        let v = Msg::Acast(AcastMsg::Echo(BcValue::Votes(vec![
            (1, Vote::Ok),
            (2, Vote::Ok),
        ])));
        assert_eq!(v.size_bits(), 16 + 2 * 64);
        let s = Msg::Acast(AcastMsg::Ready(BcValue::Star {
            e: vec![1, 2],
            f: vec![1, 2, 3],
        }));
        assert_eq!(s.size_bits(), 16 + 5 * 64);
    }

    #[test]
    fn sba_bottom_has_header_only() {
        let m = Msg::Sba(SbaMsg::Round1 {
            phase: 0,
            value: None,
        });
        assert_eq!(m.size_bits(), 16);
    }
}
