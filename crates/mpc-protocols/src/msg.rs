//! The wire-format message enum shared by every protocol in the stack.
//!
//! Keeping a single payload enum lets the whole composition tree run inside
//! one [`mpc_net::Simulation`] and gives every message a canonical byte
//! encoding ([`mpc_net::wire`]), from which the simulator derives the *exact*
//! bit accounting (the paper counts "bits communicated by the honest
//! parties"). The codec implementations live at the bottom of this file; the
//! round-trip property `decode(encode(m)) == m` is enforced for every variant
//! by `tests/codec_roundtrip.rs`.

use mpc_algebra::{Fp, MODULUS};
use mpc_net::wire::{WireDecode, WireEncode, WireError, WireReader};
use serde::{Deserialize, Serialize};

/// One pairwise-consistency verdict cast by a party about a counterpart
/// (the `OK(i, j)` / `NOK(i, j, q_i(α_j))` messages of `Π_WPS` / `Π_VSS`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vote {
    /// The common points agreed (`OK`).
    Ok,
    /// The common points disagreed (`NOK`); carries the index of the first
    /// disagreeing polynomial and the voter's version of the disputed point.
    Nok {
        /// Index (0-based) of the first polynomial whose check failed.
        ell: u32,
        /// The voter's version of the disputed common point.
        value: Fp,
    },
}

/// Values carried by the broadcast primitives (`Π_ACast`, `Π_BGP`, `Π_BC`).
///
/// The protocols of the paper broadcast a handful of structured values —
/// input bits, vote vectors, `(W, E, F)` triplets and `(E′, F′)` stars — so
/// they are enumerated here rather than serialised to opaque byte strings.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BcValue {
    /// A single bit (input broadcast of `Π_BA`).
    Bit(bool),
    /// A vector of pairwise-consistency votes `(counterpart, vote)`.
    Votes(Vec<(u32, Vote)>),
    /// The dealer's `(W, E, F)` triplet of `Π_WPS`/`Π_VSS` phase IV.
    Wef {
        /// The candidate support set `W` (`|W| ≥ n − t_s`).
        w: Vec<u32>,
        /// The star core `E` (`|E| ≥ n − 2·t_s`).
        e: Vec<u32>,
        /// The star periphery `F` (`|F| ≥ n − t_s`).
        f: Vec<u32>,
    },
    /// The dealer's `(E′, F′)` star of the asynchronous fallback path.
    Star {
        /// The star core `E′` (`|E′| ≥ n − 2·t_a`).
        e: Vec<u32>,
        /// The star periphery `F′` (`|F′| ≥ n − t_a`).
        f: Vec<u32>,
    },
    /// An opaque vector of field elements (generic payload, used by tests).
    Value(Vec<Fp>),
}

/// Bracha A-cast messages.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcastMsg {
    /// The sender's initial dissemination.
    Send(BcValue),
    /// First-stage echo.
    Echo(BcValue),
    /// Second-stage ready/commit.
    Ready(BcValue),
}

/// The value domain of the phase-king SBA: either a broadcast value or `⊥`
/// (encoded as `None`, the paper's "default value").
pub type SbaValue = Option<BcValue>;

/// Phase-king SBA messages (one phase = three rounds).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SbaMsg {
    /// Round 1 of a phase: every party sends its current value.
    Round1 {
        /// Phase index (0-based; there are `t_s + 1` phases).
        phase: u32,
        /// The sender's current value.
        value: SbaValue,
    },
    /// Round 2 of a phase: every party sends its round-1 candidate (a value
    /// seen at least `n − t` times) or "no candidate".
    Round2 {
        /// Phase index.
        phase: u32,
        /// The candidate, if any.
        candidate: Option<SbaValue>,
    },
    /// Round 3 of a phase: only the phase king sends its proposal.
    King {
        /// Phase index.
        phase: u32,
        /// The king's proposal.
        value: SbaValue,
    },
}

/// Common-coin ABA messages (MMR-style round structure).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbaMsg {
    /// Round estimate.
    Est {
        /// Round number.
        round: u32,
        /// Estimated value.
        value: bool,
    },
    /// Auxiliary vote of a round.
    Aux {
        /// Round number.
        round: u32,
        /// Vote value (must be in the sender's `bin_values`).
        value: bool,
    },
    /// Termination-gadget message sent once a party decides.
    Finish {
        /// The decided value.
        value: bool,
    },
}

/// The unified payload type routed by the simulator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Msg {
    /// Bracha A-cast sub-messages.
    Acast(AcastMsg),
    /// Phase-king SBA sub-messages.
    Sba(SbaMsg),
    /// Common-coin ABA sub-messages.
    Aba(AbaMsg),
    /// Dealer → party: the `L` row polynomials of `Π_WPS`/`Π_VSS` phase I
    /// (each polynomial by its coefficient vector).
    RowPolys(Vec<Vec<Fp>>),
    /// Pairwise-consistency points (`L` supposedly common values) exchanged
    /// in `Π_WPS` phase II.
    Points(Vec<Fp>),
    /// A share-opening message (public reconstruction): used by Beaver's
    /// protocol, `Π_TripSh` difference/suspected-triple openings and the
    /// output phase of `Π_CirEval`.
    Open {
        /// Disambiguates parallel openings inside one protocol instance.
        tag: u32,
        /// The sender's shares of the opened values.
        values: Vec<Fp>,
    },
    /// Termination-phase `(ready, y)` message of `Π_CirEval`.
    Ready(Vec<Fp>),
    /// Dealer → party (point-to-point): one flat vector of slot-positioned
    /// sharing evaluations for the packed circuit engine — the sender's
    /// input-slot sharings followed by the triple sharings of every gate
    /// block assigned to it, in the canonical layout both sides derive from
    /// the agreed common subset `CS₁`.
    PackedDeal(Vec<Fp>),
    /// Broadcast accusation that the named dealer's packed deal is missing,
    /// mis-shaped or degree-inconsistent (its blinded probe failed to
    /// decode) past the deal deadline. `t_s + 1` distinct reporters — at
    /// least one of them honest — trigger the uniform fallback of the packed
    /// engine to the scalar preprocessing path.
    PackedReport(u32),
}

// ---------------------------------------------------------------------------
// Canonical wire codec
//
// Field elements are encoded as their canonical representative in `[0, p)`
// as a little-endian u64; representatives `≥ p` are rejected at decode so
// that every field element has exactly one valid encoding. All other rules
// (tags, length prefixes, booleans) follow `mpc_net::wire`.
// ---------------------------------------------------------------------------

fn put_fp(out: &mut Vec<u8>, fp: Fp) {
    fp.as_u64().encode_into(out);
}

fn get_fp(r: &mut WireReader<'_>) -> Result<Fp, WireError> {
    let v = r.u64()?;
    if v >= MODULUS {
        return Err(WireError::NonCanonical {
            context: "field element",
        });
    }
    Ok(Fp::from_u64(v))
}

fn put_fp_vec(out: &mut Vec<u8>, v: &[Fp]) {
    (v.len() as u32).encode_into(out);
    for &fp in v {
        put_fp(out, fp);
    }
}

fn get_fp_vec(r: &mut WireReader<'_>) -> Result<Vec<Fp>, WireError> {
    let len = r.seq_len(8)?;
    (0..len).map(|_| get_fp(r)).collect()
}

fn invalid_tag<T>(tag: u8, context: &'static str) -> Result<T, WireError> {
    Err(WireError::InvalidTag { tag, context })
}

impl WireEncode for Vote {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Vote::Ok => out.push(0),
            Vote::Nok { ell, value } => {
                out.push(1);
                ell.encode_into(out);
                put_fp(out, *value);
            }
        }
    }

    fn encoded_len_hint(&self) -> usize {
        self.len_hint()
    }
}

impl Vote {
    fn len_hint(&self) -> usize {
        match self {
            Vote::Ok => 1,
            Vote::Nok { .. } => 1 + 4 + 8,
        }
    }
}

impl WireDecode for Vote {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Vote::Ok),
            1 => Ok(Vote::Nok {
                ell: r.u32()?,
                value: get_fp(r)?,
            }),
            tag => invalid_tag(tag, "Vote"),
        }
    }
}

impl WireEncode for BcValue {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            BcValue::Bit(b) => {
                out.push(0);
                b.encode_into(out);
            }
            BcValue::Votes(v) => {
                out.push(1);
                v.encode_into(out);
            }
            BcValue::Wef { w, e, f } => {
                out.push(2);
                w.encode_into(out);
                e.encode_into(out);
                f.encode_into(out);
            }
            BcValue::Star { e, f } => {
                out.push(3);
                e.encode_into(out);
                f.encode_into(out);
            }
            BcValue::Value(v) => {
                out.push(4);
                put_fp_vec(out, v);
            }
        }
    }

    fn encoded_len_hint(&self) -> usize {
        1 + match self {
            BcValue::Bit(_) => 1,
            BcValue::Votes(v) => 4 + v.iter().map(|(_, vote)| 4 + vote.len_hint()).sum::<usize>(),
            BcValue::Wef { w, e, f } => 12 + 4 * (w.len() + e.len() + f.len()),
            BcValue::Star { e, f } => 8 + 4 * (e.len() + f.len()),
            BcValue::Value(v) => 4 + 8 * v.len(),
        }
    }
}

impl WireDecode for BcValue {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(BcValue::Bit(r.bool()?)),
            1 => Ok(BcValue::Votes(Vec::decode_from(r)?)),
            2 => Ok(BcValue::Wef {
                w: Vec::decode_from(r)?,
                e: Vec::decode_from(r)?,
                f: Vec::decode_from(r)?,
            }),
            3 => Ok(BcValue::Star {
                e: Vec::decode_from(r)?,
                f: Vec::decode_from(r)?,
            }),
            4 => Ok(BcValue::Value(get_fp_vec(r)?)),
            tag => invalid_tag(tag, "BcValue"),
        }
    }
}

impl WireEncode for AcastMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let (tag, v) = match self {
            AcastMsg::Send(v) => (0, v),
            AcastMsg::Echo(v) => (1, v),
            AcastMsg::Ready(v) => (2, v),
        };
        out.push(tag);
        v.encode_into(out);
    }

    fn encoded_len_hint(&self) -> usize {
        let (AcastMsg::Send(v) | AcastMsg::Echo(v) | AcastMsg::Ready(v)) = self;
        1 + v.encoded_len_hint()
    }
}

impl WireDecode for AcastMsg {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(AcastMsg::Send(BcValue::decode_from(r)?)),
            1 => Ok(AcastMsg::Echo(BcValue::decode_from(r)?)),
            2 => Ok(AcastMsg::Ready(BcValue::decode_from(r)?)),
            tag => invalid_tag(tag, "AcastMsg"),
        }
    }
}

impl WireEncode for SbaMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            SbaMsg::Round1 { phase, value } => {
                out.push(0);
                phase.encode_into(out);
                value.encode_into(out);
            }
            SbaMsg::Round2 { phase, candidate } => {
                out.push(1);
                phase.encode_into(out);
                candidate.encode_into(out);
            }
            SbaMsg::King { phase, value } => {
                out.push(2);
                phase.encode_into(out);
                value.encode_into(out);
            }
        }
    }

    fn encoded_len_hint(&self) -> usize {
        1 + 4
            + match self {
                SbaMsg::Round1 { value, .. } | SbaMsg::King { value, .. } => {
                    value.encoded_len_hint()
                }
                SbaMsg::Round2 { candidate, .. } => candidate.encoded_len_hint(),
            }
    }
}

impl WireDecode for SbaMsg {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(SbaMsg::Round1 {
                phase: r.u32()?,
                value: Option::decode_from(r)?,
            }),
            1 => Ok(SbaMsg::Round2 {
                phase: r.u32()?,
                candidate: Option::decode_from(r)?,
            }),
            2 => Ok(SbaMsg::King {
                phase: r.u32()?,
                value: Option::decode_from(r)?,
            }),
            tag => invalid_tag(tag, "SbaMsg"),
        }
    }
}

impl WireEncode for AbaMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            AbaMsg::Est { round, value } => {
                out.push(0);
                round.encode_into(out);
                value.encode_into(out);
            }
            AbaMsg::Aux { round, value } => {
                out.push(1);
                round.encode_into(out);
                value.encode_into(out);
            }
            AbaMsg::Finish { value } => {
                out.push(2);
                value.encode_into(out);
            }
        }
    }

    fn encoded_len_hint(&self) -> usize {
        match self {
            AbaMsg::Est { .. } | AbaMsg::Aux { .. } => 1 + 4 + 1,
            AbaMsg::Finish { .. } => 1 + 1,
        }
    }
}

impl WireDecode for AbaMsg {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(AbaMsg::Est {
                round: r.u32()?,
                value: r.bool()?,
            }),
            1 => Ok(AbaMsg::Aux {
                round: r.u32()?,
                value: r.bool()?,
            }),
            2 => Ok(AbaMsg::Finish { value: r.bool()? }),
            tag => invalid_tag(tag, "AbaMsg"),
        }
    }
}

impl WireEncode for Msg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Acast(m) => {
                out.push(0);
                m.encode_into(out);
            }
            Msg::Sba(m) => {
                out.push(1);
                m.encode_into(out);
            }
            Msg::Aba(m) => {
                out.push(2);
                m.encode_into(out);
            }
            Msg::RowPolys(polys) => {
                out.push(3);
                (polys.len() as u32).encode_into(out);
                for p in polys {
                    put_fp_vec(out, p);
                }
            }
            Msg::Points(v) => {
                out.push(4);
                put_fp_vec(out, v);
            }
            Msg::Open { tag, values } => {
                out.push(5);
                tag.encode_into(out);
                put_fp_vec(out, values);
            }
            Msg::Ready(v) => {
                out.push(6);
                put_fp_vec(out, v);
            }
            Msg::PackedDeal(v) => {
                out.push(7);
                put_fp_vec(out, v);
            }
            Msg::PackedReport(dealer) => {
                out.push(8);
                dealer.encode_into(out);
            }
        }
    }

    fn encoded_len_hint(&self) -> usize {
        1 + match self {
            Msg::Acast(m) => m.encoded_len_hint(),
            Msg::Sba(m) => m.encoded_len_hint(),
            Msg::Aba(m) => m.encoded_len_hint(),
            Msg::RowPolys(polys) => 4 + polys.iter().map(|p| 4 + 8 * p.len()).sum::<usize>(),
            Msg::Points(v) => 4 + 8 * v.len(),
            Msg::Open { values, .. } => 4 + 4 + 8 * values.len(),
            Msg::Ready(v) => 4 + 8 * v.len(),
            Msg::PackedDeal(v) => 4 + 8 * v.len(),
            Msg::PackedReport(_) => 4,
        }
    }
}

impl WireDecode for Msg {
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Msg::Acast(AcastMsg::decode_from(r)?)),
            1 => Ok(Msg::Sba(SbaMsg::decode_from(r)?)),
            2 => Ok(Msg::Aba(AbaMsg::decode_from(r)?)),
            3 => {
                let len = r.seq_len(4)?;
                let polys = (0..len).map(|_| get_fp_vec(r)).collect::<Result<_, _>>()?;
                Ok(Msg::RowPolys(polys))
            }
            4 => Ok(Msg::Points(get_fp_vec(r)?)),
            5 => Ok(Msg::Open {
                tag: r.u32()?,
                values: get_fp_vec(r)?,
            }),
            6 => Ok(Msg::Ready(get_fp_vec(r)?)),
            7 => Ok(Msg::PackedDeal(get_fp_vec(r)?)),
            8 => Ok(Msg::PackedReport(r.u32()?)),
            tag => invalid_tag(tag, "Msg"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Msg) {
        let bytes = m.encode();
        assert_eq!(Msg::decode(&bytes).unwrap(), m);
        // The size hint is exact for every protocol message, so `encode`
        // reserves the output buffer in one allocation.
        assert_eq!(m.encoded_len_hint(), bytes.len(), "{m:?}");
    }

    #[test]
    fn every_variant_round_trips() {
        roundtrip(Msg::Acast(AcastMsg::Send(BcValue::Bit(true))));
        roundtrip(Msg::Acast(AcastMsg::Echo(BcValue::Votes(vec![
            (1, Vote::Ok),
            (
                2,
                Vote::Nok {
                    ell: 4,
                    value: Fp::from_u64(77),
                },
            ),
        ]))));
        roundtrip(Msg::Acast(AcastMsg::Ready(BcValue::Wef {
            w: vec![0, 1, 2],
            e: vec![1],
            f: vec![0, 2],
        })));
        roundtrip(Msg::Acast(AcastMsg::Send(BcValue::Star {
            e: vec![3],
            f: vec![],
        })));
        roundtrip(Msg::Sba(SbaMsg::Round1 {
            phase: 0,
            value: None,
        }));
        roundtrip(Msg::Sba(SbaMsg::Round2 {
            phase: 3,
            candidate: Some(Some(BcValue::Bit(false))),
        }));
        roundtrip(Msg::Sba(SbaMsg::Round2 {
            phase: 3,
            candidate: Some(None),
        }));
        roundtrip(Msg::Sba(SbaMsg::King {
            phase: 1,
            value: Some(BcValue::Value(vec![Fp::from_u64(5)])),
        }));
        roundtrip(Msg::Aba(AbaMsg::Est {
            round: 9,
            value: true,
        }));
        roundtrip(Msg::Aba(AbaMsg::Aux {
            round: 2,
            value: false,
        }));
        roundtrip(Msg::Aba(AbaMsg::Finish { value: true }));
        roundtrip(Msg::RowPolys(vec![
            vec![Fp::from_u64(1), Fp::from_u64(2)],
            vec![],
        ]));
        roundtrip(Msg::Points(vec![Fp::from_u64(3); 4]));
        roundtrip(Msg::Open {
            tag: 12,
            values: vec![Fp::from_u64(8)],
        });
        roundtrip(Msg::Ready(vec![Fp::from_u64(1)]));
        roundtrip(Msg::PackedDeal(vec![Fp::from_u64(6), Fp::from_u64(7)]));
        roundtrip(Msg::PackedDeal(vec![]));
        roundtrip(Msg::PackedReport(3));
    }

    #[test]
    fn message_sizes_scale_with_payload() {
        let small = Msg::Acast(AcastMsg::Send(BcValue::Bit(true)));
        let big = Msg::Acast(AcastMsg::Send(BcValue::Value(vec![Fp::from_u64(1); 100])));
        assert!(big.encoded_bits() > small.encoded_bits());
        // Msg tag + AcastMsg tag + BcValue tag + u32 length + 100 elements.
        assert_eq!(big.encoded_bits(), (1 + 1 + 1 + 4 + 100 * 8) * 8);
    }

    /// Regression test for the old `size_bits()` under-count: a `Nok` vote
    /// carries an extra polynomial index and disputed field element, which
    /// the hand-written estimate ignored. The codec makes the asymmetry
    /// exact: `Nok` costs `u32 + u64` more bytes than `Ok`.
    #[test]
    fn nok_votes_cost_more_bits_than_ok_votes() {
        let ok = Msg::Acast(AcastMsg::Echo(BcValue::Votes(vec![(1, Vote::Ok)])));
        let nok = Msg::Acast(AcastMsg::Echo(BcValue::Votes(vec![(
            1,
            Vote::Nok {
                ell: 0,
                value: Fp::from_u64(9),
            },
        )])));
        assert!(nok.encoded_bits() > ok.encoded_bits());
        assert_eq!(nok.encoded_bits() - ok.encoded_bits(), (4 + 8) * 8);
    }

    #[test]
    fn non_canonical_field_element_rejected() {
        let mut bytes = Msg::Points(vec![Fp::ZERO]).encode();
        // Overwrite the element with a representative ≥ p.
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Msg::decode(&bytes),
            Err(WireError::NonCanonical {
                context: "field element"
            })
        );
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            Msg::decode(&[200]),
            Err(WireError::InvalidTag { tag: 200, .. })
        ));
        assert!(matches!(
            Msg::decode(&[0, 9]),
            Err(WireError::InvalidTag { tag: 9, .. })
        ));
    }
}
