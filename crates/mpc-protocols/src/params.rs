//! Global protocol parameters and the timing constants derived from them.
//!
//! The paper expresses every time-out as a formula over `Δ` and lower-level
//! protocol completion times (`T_BGP`, `T_BC`, `T_BA`, `T_WPS`, `T_VSS`,
//! `T_ACS`, …). This module centralises those formulas, computed from *this
//! implementation's* round structure (see DESIGN.md substitution S2), so that
//! every stacked time-out is mutually consistent — exactly the property the
//! paper's proofs rely on.

use mpc_net::{AdversaryStructure, Time};

/// Protocol parameters shared by every sub-protocol instance of one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Number of parties `n`.
    pub n: usize,
    /// Synchronous corruption threshold `t_s`.
    pub ts: usize,
    /// Asynchronous corruption threshold `t_a`.
    pub ta: usize,
    /// The publicly known synchronous delivery bound `Δ` (ticks).
    pub delta: Time,
}

impl Params {
    /// Creates a parameter set, validating the paper's resilience condition
    /// `t_a ≤ t_s` and `3·t_s + t_a < n`.
    ///
    /// # Panics
    ///
    /// Panics if the condition is violated (the protocols are simply not
    /// defined outside it).
    pub fn new(n: usize, ts: usize, ta: usize, delta: Time) -> Self {
        assert!(ta <= ts, "the paper requires t_a <= t_s");
        assert!(3 * ts + ta < n, "the paper requires 3*t_s + t_a < n");
        assert!(delta > 0, "delta must be positive");
        Params { n, ts, ta, delta }
    }

    /// Parameters derived from a pluggable [`AdversaryStructure`]: the
    /// protocols run at the structure's *threshold hull*
    /// (`threshold_projection`), because the share-based machinery is
    /// Shamir/threshold — a general (non-threshold) structure refines which
    /// corruption sets are admissible, not the polynomial degrees.
    ///
    /// # Panics
    ///
    /// Panics if the structure itself is infeasible
    /// ([`AdversaryStructure::feasible`]) or its hull violates the paper's
    /// resilience condition — a `GeneralAdversary` can satisfy `Q^(3,1)`
    /// while its hull does not satisfy `3·t_s + t_a < n`, and this
    /// implementation only supports structures whose hull does.
    pub fn from_structure(structure: &dyn AdversaryStructure, delta: Time) -> Self {
        assert!(
            structure.feasible(),
            "the adversary structure violates the feasibility condition"
        );
        let (ts, ta) = structure.threshold_projection();
        Params::new(structure.n(), ts, ta, delta)
    }

    /// Parameters with the largest feasible `t_s` and then largest feasible
    /// `t_a` for a given `n` (the "best-of-both-worlds" operating point).
    pub fn max_thresholds(n: usize, delta: Time) -> Self {
        let ts = (n - 1) / 3;
        let mut ts = ts;
        // ensure 3 ts + 0 < n
        while 3 * ts >= n {
            ts -= 1;
        }
        let ta = (n - 1 - 3 * ts).min(ts);
        Params::new(n, ts, ta, delta)
    }

    /// `T_BGP`: time by which the phase-king SBA has an output in a
    /// synchronous network — `3·(t_s + 1)` rounds of `Δ` in this
    /// implementation.
    pub fn t_bgp(&self) -> Time {
        3 * (self.ts as Time + 1) * self.delta
    }

    /// `T_BC`: regular-mode output time of `Π_BC` — `3Δ + T_BGP` (Theorem 3.5).
    pub fn t_bc(&self) -> Time {
        3 * self.delta + self.t_bgp()
    }

    /// `T_ABA`: time by which `Π_ABA` outputs in a synchronous network when
    /// all honest inputs agree (the constant `k·Δ` of Lemma 3.3).
    pub fn t_aba(&self) -> Time {
        10 * self.delta
    }

    /// `T_BA = T_BC + T_ABA` (Theorem 3.6).
    pub fn t_ba(&self) -> Time {
        self.t_bc() + self.t_aba()
    }

    /// `T_WPS = 2Δ + 2·T_BC + T_BA` (Theorem 4.8).
    pub fn t_wps(&self) -> Time {
        2 * self.delta + 2 * self.t_bc() + self.t_ba()
    }

    /// `T_VSS = Δ + T_WPS + 2·T_BC + T_BA` (Theorem 4.16).
    pub fn t_vss(&self) -> Time {
        self.delta + self.t_wps() + 2 * self.t_bc() + self.t_ba()
    }

    /// `T_ACS = T_VSS + 2·T_BA` (Lemma 5.1).
    pub fn t_acs(&self) -> Time {
        self.t_vss() + 2 * self.t_ba()
    }

    /// `T_TripSh = T_ACS + 4Δ` (Lemma 6.3).
    pub fn t_tripsh(&self) -> Time {
        self.t_acs() + 4 * self.delta
    }

    /// `T_TripGen = T_TripSh + 2·T_BA + Δ` (Theorem 6.5).
    pub fn t_tripgen(&self) -> Time {
        self.t_tripsh() + 2 * self.t_ba() + self.delta
    }

    /// A generous simulation horizon for full circuit evaluations of
    /// multiplicative depth `depth` — used by tests/benches to bound runs.
    pub fn horizon_for_depth(&self, depth: usize) -> Time {
        (self.t_tripgen() + self.t_acs()) * 4 + (depth as Time + 8) * 4 * self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_constants_are_delta_multiples_and_monotone() {
        let p = Params::new(7, 2, 0, 10);
        for t in [
            p.t_bgp(),
            p.t_bc(),
            p.t_aba(),
            p.t_ba(),
            p.t_wps(),
            p.t_vss(),
            p.t_acs(),
        ] {
            assert_eq!(t % p.delta, 0, "all time-outs are multiples of Δ");
        }
        assert!(p.t_bc() > p.t_bgp());
        assert!(p.t_ba() > p.t_bc());
        assert!(p.t_wps() > p.t_ba());
        assert!(p.t_vss() > p.t_wps());
        assert!(p.t_acs() > p.t_vss());
        assert!(p.t_tripgen() > p.t_tripsh());
    }

    #[test]
    fn max_thresholds_matches_motivating_example() {
        // n = 8 → (t_s, t_a) = (2, 1): tolerate 2 faults synchronously and 1
        // asynchronously (Section 1 of the paper).
        let p = Params::max_thresholds(8, 10);
        assert_eq!((p.ts, p.ta), (2, 1));
        let p4 = Params::max_thresholds(4, 10);
        assert_eq!((p4.ts, p4.ta), (1, 0));
        let p13 = Params::max_thresholds(13, 10);
        assert_eq!((p13.ts, p13.ta), (4, 0));
        let p14 = Params::max_thresholds(14, 10);
        assert_eq!((p14.ts, p14.ta), (4, 1));
    }

    #[test]
    #[should_panic(expected = "3*t_s + t_a < n")]
    fn invalid_thresholds_rejected() {
        let _ = Params::new(8, 2, 2, 10);
    }

    #[test]
    fn params_from_adversary_structures() {
        use mpc_net::{GeneralAdversary, ThresholdAdversary};
        let p = Params::from_structure(&ThresholdAdversary::new(8, 2, 1), 10);
        assert_eq!((p.n, p.ts, p.ta), (8, 2, 1));
        // A general structure runs at its threshold hull.
        let g = GeneralAdversary::new(8, vec![vec![0], vec![1, 2]], vec![vec![0]]);
        let p = Params::from_structure(&g, 10);
        assert_eq!((p.n, p.ts, p.ta), (8, 2, 1));
    }

    #[test]
    #[should_panic(expected = "feasibility condition")]
    fn infeasible_structure_rejected() {
        use mpc_net::ThresholdAdversary;
        let _ = Params::from_structure(&ThresholdAdversary::new(8, 2, 2), 10);
    }
}
