//! The synchronous Byzantine agreement `Π_BGP` used inside `Π_BC`.
//!
//! We implement the classic phase-king protocol (Berman–Garay–Perry) for
//! `t < n/3`: `t + 1` phases of three `Δ`-rounds each, over an arbitrary
//! value domain (here [`SbaValue`] — a broadcast value or `⊥`). See DESIGN.md
//! substitution S2 for how this differs from the recursive variant the paper
//! cites (\[16\]) and why every property `Π_BC` needs is preserved:
//!
//! * in a synchronous network it is a `t`-perfectly-secure SBA with all
//!   honest parties holding their output at time `T_BGP = 3(t+1)Δ`;
//! * in an asynchronous network it still has guaranteed liveness at local
//!   time `T_BGP` (the output value may be arbitrary — `Π_BC` only needs
//!   liveness there, see footnote 4 of the paper).

use std::any::Any;
use std::collections::{HashMap, HashSet};

use mpc_net::{Context, PartyId, PathSlice, Protocol, Time};

use crate::msg::{Msg, SbaMsg, SbaValue};

/// One instance of the phase-king SBA.
#[derive(Debug)]
pub struct Sba {
    n: usize,
    t: usize,
    value: SbaValue,
    start: Option<Time>,
    // per-phase bookkeeping
    round1: HashMap<u32, HashMap<SbaValue, HashSet<PartyId>>>,
    round1_seen: HashSet<(u32, PartyId)>,
    round2: HashMap<u32, HashMap<SbaValue, HashSet<PartyId>>>,
    round2_seen: HashSet<(u32, PartyId)>,
    king_value: HashMap<u32, SbaValue>,
    phase_d: HashMap<u32, (SbaValue, usize)>,
    /// The agreed value, set at local time `T_BGP` after the final phase.
    pub output: Option<SbaValue>,
    /// Local time at which the output was fixed.
    pub output_at: Option<Time>,
}

impl Sba {
    /// Creates an SBA instance with the party's input value (`None` encodes
    /// the paper's `⊥`/default input).
    pub fn new(n: usize, t: usize, input: SbaValue) -> Self {
        Sba {
            n,
            t,
            value: input,
            start: None,
            round1: HashMap::new(),
            round1_seen: HashSet::new(),
            round2: HashMap::new(),
            round2_seen: HashSet::new(),
            king_value: HashMap::new(),
            phase_d: HashMap::new(),
            output: None,
            output_at: None,
        }
    }

    /// Total running time of the protocol: `3(t+1)Δ`.
    pub fn duration(t: usize, delta: Time) -> Time {
        3 * (t as Time + 1) * delta
    }

    fn king(&self, phase: u32) -> PartyId {
        phase as usize % self.n
    }

    /// Applies the end-of-phase update rule to `self.value`.
    fn finish_phase(&mut self, phase: u32) {
        if let Some((d_val, d_count)) = self.phase_d.get(&phase).cloned() {
            if d_count >= self.n - self.t {
                self.value = d_val;
                return;
            }
        }
        if let Some(kv) = self.king_value.get(&phase).cloned() {
            self.value = kv;
        }
    }
}

impl Protocol<Msg> for Sba {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        self.start = Some(ctx.now);
        // schedule every round of every phase plus the final output point
        for phase in 0..=(self.t as u64) {
            for round in 0..3u64 {
                ctx.set_timer((3 * phase + round) * ctx.delta, 3 * phase + round);
            }
        }
        ctx.set_timer(
            3 * (self.t as Time + 1) * ctx.delta,
            3 * (self.t as u64 + 1),
        );
    }

    fn on_message(
        &mut self,
        _ctx: &mut Context<'_, Msg>,
        from: PartyId,
        _path: PathSlice<'_>,
        msg: Msg,
    ) {
        let Msg::Sba(sm) = msg else { return };
        match sm {
            SbaMsg::Round1 { phase, value } => {
                if self.round1_seen.insert((phase, from)) {
                    self.round1
                        .entry(phase)
                        .or_default()
                        .entry(value)
                        .or_default()
                        .insert(from);
                }
            }
            SbaMsg::Round2 { phase, candidate } => {
                if self.round2_seen.insert((phase, from)) {
                    if let Some(c) = candidate {
                        self.round2
                            .entry(phase)
                            .or_default()
                            .entry(c)
                            .or_default()
                            .insert(from);
                    }
                }
            }
            SbaMsg::King { phase, value } => {
                if from == self.king(phase) {
                    self.king_value.entry(phase).or_insert(value);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _path: PathSlice<'_>, id: u64) {
        let phase = (id / 3) as u32;
        let round = id % 3;
        if id == 3 * (self.t as u64 + 1) {
            // end of the final phase: fix the output
            self.finish_phase(phase - 1);
            if self.output.is_none() {
                self.output = Some(self.value.clone());
                self.output_at = Some(ctx.now);
            }
            return;
        }
        match round {
            0 => {
                if phase > 0 {
                    self.finish_phase(phase - 1);
                }
                ctx.broadcast(Msg::Sba(SbaMsg::Round1 {
                    phase,
                    value: self.value.clone(),
                }));
            }
            1 => {
                // candidate: a value seen at least n - t times in round 1
                let candidate = self.round1.get(&phase).and_then(|m| {
                    m.iter()
                        .find(|(_, s)| s.len() >= self.n - self.t)
                        .map(|(v, _)| v.clone())
                });
                ctx.broadcast(Msg::Sba(SbaMsg::Round2 { phase, candidate }));
            }
            _ => {
                // determine D (most supported candidate with >= t+1 support)
                let d = self.round2.get(&phase).and_then(|m| {
                    m.iter()
                        .filter(|(_, s)| s.len() > self.t)
                        .max_by_key(|(_, s)| s.len())
                        .map(|(v, s)| (v.clone(), s.len()))
                });
                if let Some(d) = d {
                    self.phase_d.insert(phase, d);
                }
                if ctx.me == self.king(phase) {
                    let proposal = self
                        .phase_d
                        .get(&phase)
                        .map(|(v, _)| v.clone())
                        .unwrap_or_else(|| self.value.clone());
                    ctx.broadcast(Msg::Sba(SbaMsg::King {
                        phase,
                        value: proposal,
                    }));
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::BcValue;
    use mpc_algebra::Fp;
    use mpc_net::{party_as, CorruptionSet, NetConfig, PartyView, Simulation};

    fn value(x: u64) -> SbaValue {
        Some(BcValue::Value(vec![Fp::from_u64(x)]))
    }

    fn run(
        n: usize,
        t: usize,
        inputs: Vec<SbaValue>,
        corrupt: CorruptionSet,
        seed: u64,
    ) -> Vec<SbaValue> {
        let parties: Vec<Box<dyn Protocol<Msg>>> = inputs
            .into_iter()
            .map(|v| Box::new(Sba::new(n, t, v)) as Box<dyn Protocol<Msg>>)
            .collect();
        let cfg = NetConfig::synchronous(n).with_seed(seed);
        let mut net = crate::testnet::transport_for(cfg, corrupt.clone(), parties);
        let done = net.run_until_done(100_000, &mut |view| {
            (0..n).all(|i| party_as::<Sba, Msg>(view, i).unwrap().output.is_some())
        });
        assert!(done, "SBA must have guaranteed liveness");
        let view: &dyn PartyView<Msg> = net.as_ref();
        (0..n)
            .filter(|&i| corrupt.is_honest(i))
            .map(|i| {
                party_as::<Sba, Msg>(view, i)
                    .unwrap()
                    .output
                    .clone()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn validity_with_unanimous_inputs() {
        let n = 4;
        let t = 1;
        let outs = run(n, t, vec![value(7); n], CorruptionSet::none(), 1);
        assert!(outs.iter().all(|o| *o == value(7)));
    }

    #[test]
    fn validity_with_bottom_inputs() {
        let n = 7;
        let t = 2;
        let outs = run(n, t, vec![None; n], CorruptionSet::none(), 2);
        assert!(outs.iter().all(|o| o.is_none()));
    }

    #[test]
    fn consistency_with_mixed_inputs() {
        let n = 7;
        let t = 2;
        let mut inputs = vec![value(1); 4];
        inputs.extend(vec![value(2); 3]);
        let outs = run(n, t, inputs, CorruptionSet::none(), 3);
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "all honest outputs must agree"
        );
    }

    #[test]
    fn consistency_with_silent_corrupt_parties() {
        // corrupt parties participate as silent (they are modelled by parties
        // that never send because their timers do fire but... here we model
        // them by honest-coded parties counted as corrupt: the adversary that
        // follows the protocol). Stronger adversaries are exercised in the
        // byzantine module tests.
        let n = 7;
        let t = 2;
        let mut inputs = vec![value(5); 5];
        inputs.extend(vec![value(9); 2]);
        let outs = run(n, t, inputs, CorruptionSet::new(vec![5, 6]), 4);
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        // validity: all honest had input 5
        assert!(outs.iter().all(|o| *o == value(5)));
    }

    #[test]
    fn output_arrives_exactly_at_t_bgp() {
        let n = 4;
        let t = 1;
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..n)
            .map(|_| Box::new(Sba::new(n, t, value(3))) as Box<dyn Protocol<Msg>>)
            .collect();
        let cfg = NetConfig::synchronous(n);
        let delta = cfg.delta;
        let mut sim = Simulation::new(cfg, CorruptionSet::none(), parties);
        sim.run_to_quiescence(100_000);
        for i in 0..n {
            let p = sim.party_as::<Sba>(i).unwrap();
            assert_eq!(p.output_at.unwrap(), Sba::duration(t, delta));
        }
    }
}
