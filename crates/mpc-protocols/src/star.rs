//! The `(n, t)`-star finding algorithm `AlgStar` of \[13\] (Section 2.1).
//!
//! Given an undirected consistency graph `G` over the parties, an
//! `(n, t)`-star is a pair `(E, F)` with `E ⊆ F`, `|E| ≥ n − 2t`,
//! `|F| ≥ n − t` and an edge between every `P_i ∈ E` and every `P_j ∈ F`.
//! The algorithm runs in polynomial time and always finds a star whenever `G`
//! contains a clique of size at least `n − t`.

use std::collections::BTreeSet;

/// An undirected graph over the `n` parties, stored as a symmetric adjacency
/// matrix. Self-loops are implicit (every party is consistent with itself).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistencyGraph {
    n: usize,
    adj: Vec<bool>,
}

impl ConsistencyGraph {
    /// An edgeless graph over `n` parties.
    pub fn new(n: usize) -> Self {
        ConsistencyGraph {
            n,
            adj: vec![false; n * n],
        }
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `(i, j)`.
    pub fn add_edge(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        self.adj[i * self.n + j] = true;
        self.adj[j * self.n + i] = true;
    }

    /// Removes every edge incident to `i` (the dealer "discarding" a party
    /// that published an incorrect NOK message).
    pub fn remove_vertex_edges(&mut self, i: usize) {
        for j in 0..self.n {
            self.adj[i * self.n + j] = false;
            self.adj[j * self.n + i] = false;
        }
    }

    /// Is there an edge between `i` and `j`? (`true` for `i == j`.)
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        i == j || self.adj[i * self.n + j]
    }

    /// Degree of `i` (number of distinct neighbours, excluding itself).
    pub fn degree(&self, i: usize) -> usize {
        (0..self.n)
            .filter(|&j| j != i && self.has_edge(i, j))
            .count()
    }

    /// Degree of `i` counting only neighbours inside `set`.
    pub fn degree_within(&self, i: usize, set: &[usize]) -> usize {
        set.iter()
            .filter(|&&j| j != i && self.has_edge(i, j))
            .count()
    }

    /// Checks whether `(e, f)` forms an `(n, t)`-star in this graph restricted
    /// to `within` (if given): `E ⊆ F ⊆ within`, the size bounds hold and all
    /// `E × F` edges are present.
    pub fn is_star(&self, t: usize, e: &[usize], f: &[usize], within: Option<&[usize]>) -> bool {
        let es: BTreeSet<_> = e.iter().copied().collect();
        let fs: BTreeSet<_> = f.iter().copied().collect();
        if !es.is_subset(&fs) {
            return false;
        }
        if es.len() < self.n.saturating_sub(2 * t) || fs.len() < self.n.saturating_sub(t) {
            return false;
        }
        if let Some(w) = within {
            let ws: BTreeSet<_> = w.iter().copied().collect();
            if !fs.is_subset(&ws) {
                return false;
            }
        }
        es.iter().all(|&i| fs.iter().all(|&j| self.has_edge(i, j)))
    }

    /// `AlgStar`: attempts to find an `(n, t)`-star within the vertex set
    /// `within` (or all parties if `None`).
    ///
    /// Uses the matching-based construction of \[13\]: compute a maximal
    /// matching `M` of the complement graph, discard matched vertices and
    /// "triangle heads", and take the remaining independent set as `E` with
    /// `F` the vertices having no complement-edge into `E`. Because the
    /// outcome depends on which maximal matching the greedy pass produces,
    /// the construction is attempted from every rotation of the vertex order
    /// and the first success is returned (a particular maximal matching can
    /// be unlucky even when a clique of size `n − t` exists).
    pub fn find_star(
        &self,
        t: usize,
        within: Option<&[usize]>,
    ) -> Option<(Vec<usize>, Vec<usize>)> {
        let verts: Vec<usize> = match within {
            Some(w) => {
                let mut v: Vec<usize> = w.to_vec();
                v.sort_unstable();
                v.dedup();
                v
            }
            None => (0..self.n).collect(),
        };
        for rot in 0..verts.len().max(1) {
            let mut order = verts.clone();
            order.rotate_left(rot);
            if let Some(star) = self.find_star_with_order(t, &verts, &order) {
                return Some(star);
            }
        }
        None
    }

    fn find_star_with_order(
        &self,
        t: usize,
        verts: &[usize],
        order: &[usize],
    ) -> Option<(Vec<usize>, Vec<usize>)> {
        // complement edges restricted to `verts`
        let comp_edge = |i: usize, j: usize| i != j && !self.has_edge(i, j);

        // greedy maximal matching in the complement graph
        let mut matched: Vec<Option<usize>> = vec![None; self.n];
        for (ai, &a) in order.iter().enumerate() {
            if matched[a].is_some() {
                continue;
            }
            for &b in &order[ai + 1..] {
                if matched[b].is_none() && comp_edge(a, b) {
                    matched[a] = Some(b);
                    matched[b] = Some(a);
                    break;
                }
            }
        }
        let is_matched = |v: usize| matched[v].is_some();

        // triangle heads: unmatched vertices with complement edges to both
        // endpoints of some matched pair
        let matched_pairs: Vec<(usize, usize)> = verts
            .iter()
            .filter_map(|&a| matched[a].filter(|&b| a < b).map(|b| (a, b)))
            .collect();
        let mut e_set: Vec<usize> = Vec::new();
        for &v in verts {
            if is_matched(v) {
                continue;
            }
            let triangle_head = matched_pairs
                .iter()
                .any(|&(a, b)| comp_edge(v, a) && comp_edge(v, b));
            if !triangle_head {
                e_set.push(v);
            }
        }
        // F: vertices of `verts` with no complement edge into E
        let f_set: Vec<usize> = verts
            .iter()
            .copied()
            .filter(|&v| e_set.iter().all(|&u| !comp_edge(v, u)))
            .collect();

        if e_set.len() >= self.n.saturating_sub(2 * t) && f_set.len() >= self.n.saturating_sub(t) {
            Some((e_set, f_set))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clique_graph(n: usize, members: &[usize]) -> ConsistencyGraph {
        let mut g = ConsistencyGraph::new(n);
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                g.add_edge(a, b);
            }
        }
        g
    }

    #[test]
    fn full_clique_yields_full_star() {
        let n = 7;
        let g = clique_graph(n, &(0..n).collect::<Vec<_>>());
        let (e, f) = g.find_star(2, None).expect("full clique must give a star");
        assert!(g.is_star(2, &e, &f, None));
        assert_eq!(f.len(), n);
    }

    #[test]
    fn honest_clique_of_size_n_minus_t_yields_star() {
        // n = 7, t = 2: clique over parties {0,..,4} (the honest ones).
        let n = 7;
        let t = 2;
        let g = clique_graph(n, &[0, 1, 2, 3, 4]);
        let (e, f) = g
            .find_star(t, None)
            .expect("clique of size n-t must give a star");
        assert!(g.is_star(t, &e, &f, None));
        assert!(e.len() >= n - 2 * t);
        assert!(f.len() >= n - t);
    }

    #[test]
    fn empty_graph_has_no_star() {
        let g = ConsistencyGraph::new(7);
        assert!(g.find_star(2, None).is_none());
    }

    #[test]
    fn star_verification_rejects_missing_edges() {
        let n = 7;
        let t = 2;
        let mut g = clique_graph(n, &[0, 1, 2, 3, 4]);
        assert!(g.is_star(t, &[0, 1, 2], &[0, 1, 2, 3, 4], None));
        // break one E×F edge
        g.remove_vertex_edges(4);
        assert!(!g.is_star(t, &[0, 1, 2], &[0, 1, 2, 3, 4], None));
    }

    #[test]
    fn within_restriction_is_enforced() {
        let n = 7;
        let g = clique_graph(n, &(0..n).collect::<Vec<_>>());
        assert!(!g.is_star(2, &[0, 1, 2], &[0, 1, 2, 3, 4], Some(&[0, 1, 2, 3])));
    }

    #[test]
    fn degree_helpers() {
        let g = clique_graph(5, &[0, 1, 2]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.degree_within(0, &[1, 3, 4]), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_clique_implies_star_and_star_is_valid(
            seed in any::<u64>(),
            n in 4usize..14,
            extra_edges in 0usize..20,
        ) {
            let t = (n - 1) / 3;
            let mut rng = StdRng::seed_from_u64(seed);
            // honest clique of size n - t plus random noise edges
            let mut members: Vec<usize> = (0..n).collect();
            // shuffle deterministically
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                members.swap(i, j);
            }
            let clique: Vec<usize> = members[..n - t].to_vec();
            let mut g = clique_graph(n, &clique);
            for _ in 0..extra_edges {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                g.add_edge(a, b);
            }
            let (e, f) = g.find_star(t, None).expect("clique of size n-t exists");
            prop_assert!(g.is_star(t, &e, &f, None));
        }
    }
}
