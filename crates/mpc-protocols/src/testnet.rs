//! Test-only backend selection for protocol test harnesses.
//!
//! Harnesses that only assert protocol-level properties (agreement,
//! validity, termination) construct their network through [`transport_for`]
//! instead of naming [`Simulation`] directly, so the same tests double as a
//! real-runtime exercise under `MPC_TRANSPORT=threaded`. Harnesses that
//! assert simulator-specific behaviour (exact event schedules, adversarial
//! per-message scheduling) keep using [`Simulation`] explicitly.

use mpc_net::{
    Backend, CorruptionSet, LinkDelays, NetConfig, Protocol, Simulation, TcpNet, ThreadedNet,
    Transport,
};

use crate::Msg;

/// Builds the [`Transport`] selected by `MPC_TRANSPORT` (default: the
/// deterministic simulator). The threaded backend freezes the network kind's
/// default latency matrix ([`LinkDelays::for_kind`]).
pub(crate) fn transport_for(
    cfg: NetConfig,
    corrupt: CorruptionSet,
    parties: Vec<Box<dyn Protocol<Msg>>>,
) -> Box<dyn Transport<Msg>> {
    match Backend::from_env() {
        Backend::Simulator => Box::new(Simulation::new(cfg, corrupt, parties)),
        Backend::Threaded => {
            let links = LinkDelays::for_kind(cfg.n, cfg.kind, cfg.delta, cfg.seed);
            Box::new(ThreadedNet::with_links(cfg, corrupt, links, parties))
        }
        Backend::Tcp => {
            let links = LinkDelays::for_kind(cfg.n, cfg.kind, cfg.delta, cfg.seed);
            Box::new(TcpNet::with_links(cfg, corrupt, links, parties))
        }
    }
}
