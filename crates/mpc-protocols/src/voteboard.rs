//! Reliable dissemination of pairwise-consistency votes (`OK`/`NOK`) and the
//! consistency graphs built from them.
//!
//! `Π_WPS` and `Π_VSS` have every party make the results of its pairwise
//! consistency tests public and build a *consistency graph* from everyone's
//! published votes. Two delivery channels are used, mirroring the two ways
//! the paper consumes votes:
//!
//! * a **scheduled `Π_BC` broadcast per party** at the phase time fixed by the
//!   parent protocol — its *regular-mode* output is what the timed
//!   `(W, E, F)` acceptance checks look at;
//! * **incremental A-casts** for votes a party only establishes later (slow
//!   counterparts in an asynchronous network) — these only feed the
//!   *eventual* consistency graph used by the `(n, t_a)`-star fallback path.
//!   A-cast provides exactly the consistency and eventual-delivery guarantees
//!   those paths need (the fallback mode of `Π_BC` is itself just the
//!   sender's A-cast), see DESIGN.md.

use std::collections::BTreeMap;

use mpc_net::{Context, PartyId, PathSlice, Protocol};

use crate::acast::Acast;
use crate::bc::Bc;
use crate::msg::{BcValue, Msg, Vote};
use crate::params::Params;
use crate::star::ConsistencyGraph;

/// Vote dissemination and consistency-graph bookkeeping shared by
/// `Π_WPS`/`Π_VSS`.
#[derive(Debug)]
pub struct VoteBoard {
    base: u32,
    t: usize,
    params: Params,
    my_votes: BTreeMap<PartyId, Vote>,
    started: bool,
    scheduled: Vec<Bc>,
    updates: BTreeMap<u32, Acast>,
}

impl VoteBoard {
    /// Creates a vote board whose children occupy the segment range
    /// `[base, base + n + n²)` of the parent protocol.
    pub fn new(base: u32, t: usize, params: Params) -> Self {
        VoteBoard {
            base,
            t,
            params,
            my_votes: BTreeMap::new(),
            started: false,
            scheduled: Vec::new(),
            updates: BTreeMap::new(),
        }
    }

    /// Number of child segments occupied by a vote board.
    pub fn segment_span(n: usize) -> u32 {
        (n + n * n) as u32
    }

    /// Is `seg` one of this board's child segments?
    pub fn owns_segment(&self, seg: u32) -> bool {
        seg >= self.base && seg < self.base + Self::segment_span(self.params.n)
    }

    /// Whether this party has already cast its vote about `counterpart`
    /// (further [`VoteBoard::add_vote`] calls for it are no-ops — callers on
    /// hot paths use this to skip recomputing the vote).
    pub fn has_voted(&self, counterpart: PartyId) -> bool {
        self.my_votes.contains_key(&counterpart)
    }

    /// Records (and if already started, incrementally A-casts) this party's
    /// vote about `counterpart`. Votes recorded before [`VoteBoard::start`]
    /// ride in the scheduled broadcast.
    pub fn add_vote(&mut self, ctx: &mut Context<'_, Msg>, counterpart: PartyId, vote: Vote) {
        if self.my_votes.contains_key(&counterpart) {
            return;
        }
        self.my_votes.insert(counterpart, vote.clone());
        if self.started {
            let seg = self.update_segment(ctx.me, counterpart);
            let payload = BcValue::Votes(vec![(counterpart as u32, vote)]);
            let mut acast = Acast::new_sender(ctx.me, self.params.n, self.t, payload);
            ctx.scoped(seg, |ctx| acast.init(ctx));
            self.updates.insert(seg, acast);
        }
    }

    /// Starts the scheduled per-party vote broadcasts (called by the parent at
    /// the phase time it fixes, e.g. `2Δ` for `Π_WPS`).
    pub fn start(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.started {
            return;
        }
        self.started = true;
        let me = ctx.me;
        for j in 0..self.params.n {
            let seg = self.base + j as u32;
            let mut bc = if j == me {
                let votes: Vec<(u32, Vote)> = self
                    .my_votes
                    .iter()
                    .map(|(&k, v)| (k as u32, v.clone()))
                    .collect();
                Bc::new_sender(j, self.t, self.params, BcValue::Votes(votes))
            } else {
                Bc::new(j, self.t, self.params)
            };
            ctx.scoped(seg, |ctx| bc.init(ctx));
            self.scheduled.push(bc);
        }
    }

    fn update_segment(&self, sender: PartyId, counterpart: PartyId) -> u32 {
        self.base + self.params.n as u32 + (sender * self.params.n + counterpart) as u32
    }

    fn update_sender(&self, seg: u32) -> PartyId {
        ((seg - self.base) as usize - self.params.n) / self.params.n
    }

    /// Routes a message addressed to one of this board's children.
    pub fn on_message(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: PartyId,
        path: PathSlice<'_>,
        msg: Msg,
    ) {
        let Some(&seg) = path.first() else { return };
        let idx = (seg - self.base) as usize;
        if idx < self.params.n {
            if let Some(bc) = self.scheduled.get_mut(idx) {
                ctx.scoped(seg, |ctx| bc.on_message(ctx, from, &path[1..], msg));
            }
            // messages for a not-yet-started scheduled BC cannot occur: all
            // parties start the boards at the same local time and message
            // delays between distinct parties are positive.
        } else {
            let sender = self.update_sender(seg);
            let n = self.params.n;
            let t = self.t;
            let acast = self
                .updates
                .entry(seg)
                .or_insert_with(|| Acast::new(sender, n, t));
            ctx.scoped(seg, |ctx| acast.on_message(ctx, from, &path[1..], msg));
        }
    }

    /// Routes a timer event addressed to one of this board's children.
    pub fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, path: PathSlice<'_>, id: u64) {
        let Some(&seg) = path.first() else { return };
        let idx = (seg - self.base) as usize;
        if idx < self.params.n {
            if let Some(bc) = self.scheduled.get_mut(idx) {
                ctx.scoped(seg, |ctx| bc.on_timer(ctx, &path[1..], id));
            }
        } else if let Some(acast) = self.updates.get_mut(&seg) {
            ctx.scoped(seg, |ctx| acast.on_timer(ctx, &path[1..], id));
        }
    }

    fn votes_in(value: Option<&BcValue>) -> Vec<(PartyId, Vote)> {
        match value {
            Some(BcValue::Votes(v)) => v
                .iter()
                .map(|(k, vote)| (*k as PartyId, vote.clone()))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Votes of party `j` received through the *regular mode* of its scheduled
    /// broadcast (empty until that broadcast's `T_BC`).
    pub fn regular_votes_of(&self, j: PartyId) -> Vec<(PartyId, Vote)> {
        Self::votes_in(self.scheduled.get(j).and_then(|bc| bc.regular_value()))
    }

    /// All votes of party `j` visible so far, through any mode (scheduled
    /// broadcast regular/fallback output plus incremental A-casts).
    pub fn all_votes_of(&self, j: PartyId) -> Vec<(PartyId, Vote)> {
        let mut votes = Self::votes_in(self.scheduled.get(j).and_then(|bc| bc.value()));
        for (seg, acast) in &self.updates {
            if self.update_sender(*seg) == j {
                votes.extend(Self::votes_in(acast.output.as_ref()));
            }
        }
        votes
    }

    /// The consistency graph built from votes received through regular mode
    /// only (what the timed `(W, E, F)` acceptance check inspects).
    pub fn graph_regular(&self) -> ConsistencyGraph {
        self.graph(|j| self.regular_votes_of(j))
    }

    /// The consistency graph built from every vote visible so far (what the
    /// dealer's star search and the eventual verification paths inspect).
    pub fn graph_any(&self) -> ConsistencyGraph {
        self.graph(|j| self.all_votes_of(j))
    }

    fn graph(&self, votes_of: impl Fn(PartyId) -> Vec<(PartyId, Vote)>) -> ConsistencyGraph {
        let n = self.params.n;
        let mut ok = vec![vec![false; n]; n];
        for (j, row) in ok.iter_mut().enumerate() {
            for (k, vote) in votes_of(j) {
                if k < n && matches!(vote, Vote::Ok) {
                    row[k] = true;
                }
            }
        }
        let mut g = ConsistencyGraph::new(n);
        for (j, row_j) in ok.iter().enumerate() {
            for (k, &j_trusts_k) in row_j.iter().enumerate().skip(j + 1) {
                if j_trusts_k && ok[k][j] {
                    g.add_edge(j, k);
                }
            }
        }
        g
    }

    /// The NOK votes of party `j` received through regular mode, as
    /// `(counterpart, polynomial index, claimed value)` triples.
    pub fn regular_noks_of(&self, j: PartyId) -> Vec<(PartyId, u32, mpc_algebra::Fp)> {
        self.regular_votes_of(j)
            .into_iter()
            .filter_map(|(k, vote)| match vote {
                Vote::Nok { ell, value } => Some((k, ell, value)),
                Vote::Ok => None,
            })
            .collect()
    }

    /// Checks the paper's "conflicting NOK" condition among the parties of
    /// `w`, based on regular-mode votes: a pair `P_j, P_k ∈ W` that NOK'd each
    /// other on the same polynomial index with different claimed values.
    pub fn has_conflicting_noks(&self, w: &[PartyId]) -> bool {
        for &j in w {
            let noks_j = self.regular_noks_of(j);
            for &k in w {
                if j >= k {
                    continue;
                }
                let noks_k = self.regular_noks_of(k);
                for &(kj, ell_j, v_j) in &noks_j {
                    if kj != k {
                        continue;
                    }
                    for &(jk, ell_k, v_k) in &noks_k {
                        if jk == j && ell_j == ell_k && v_j != v_k {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}
