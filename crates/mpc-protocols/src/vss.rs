//! `Π_VSS` — the best-of-both-worlds verifiable secret sharing protocol
//! (Fig 4, Theorem 4.16).
//!
//! Structure mirrors `Π_WPS`, with one extra layer: instead of exchanging
//! plain points for the pairwise consistency test, every party re-shares its
//! row polynomial through its own `Π_WPS` instance. The WPS-shares obtained
//! from those instances are what the consistency votes compare against — and
//! they are exactly what lets parties *outside* `W` reconstruct their row
//! polynomials later (the property `Π_WPS` alone cannot give for a corrupt
//! dealer in a synchronous network).

use std::any::Any;
use std::collections::BTreeMap;

use mpc_algebra::evaluation_points::alpha;
use mpc_algebra::{EvalDomain, Fp, Polynomial};
use mpc_net::{Context, PartyId, PathSlice, Protocol, Time};

use crate::acast::Acast;
use crate::ba::Ba;
use crate::bc::Bc;
use crate::msg::{BcValue, Msg, Vote};
use crate::params::Params;
use crate::voteboard::VoteBoard;
use crate::wps::{accept_wef, dealer_compute_wef, decode_star, decode_wef, Wps};

const TIMER_START_WPS: u64 = 10;
const TIMER_VOTES: u64 = 11;
const TIMER_WEF: u64 = 12;
const TIMER_BA: u64 = 13;

/// One instance of `Π_VSS` for `L` polynomials.
#[derive(Debug)]
pub struct Vss {
    dealer: PartyId,
    params: Params,
    l_count: usize,
    /// Dealer only: the embedded symmetric bivariate polynomials.
    bivariates: Vec<mpc_algebra::SymmetricBivariate>,
    /// Dealer input, held until `init` performs the embedding.
    dealer_input: Option<Vec<Polynomial>>,
    /// Dealer only: whether the row polynomials have been distributed.
    distributed: bool,
    /// This party's row polynomials received from the dealer.
    my_rows: Option<Vec<Polynomial>>,
    wps: Vec<Wps>,
    wps_started: bool,
    votes: VoteBoard,
    wef_bc: Option<Bc>,
    ba: Option<Ba>,
    star_acast: Option<Acast>,
    pending: Vec<(u32, PartyId, Msg)>,
    accepted_wef: Option<(Vec<PartyId>, Vec<PartyId>, Vec<PartyId>)>,
    ba_output: Option<bool>,
    star_published: bool,
    voted: BTreeMap<PartyId, ()>,
    /// The VSS-shares (one per polynomial) once computed.
    pub shares: Option<Vec<Fp>>,
    /// Local time at which the shares were output.
    pub output_at: Option<Time>,
}

impl Vss {
    /// Creates a participant instance.
    pub fn new(dealer: PartyId, params: Params, l_count: usize) -> Self {
        Vss {
            dealer,
            params,
            l_count,
            bivariates: Vec::new(),
            dealer_input: None,
            distributed: false,
            my_rows: None,
            wps: Vec::new(),
            wps_started: false,
            votes: VoteBoard::new(Self::seg_votes(params.n), params.ts, params),
            wef_bc: None,
            ba: None,
            star_acast: None,
            pending: Vec::new(),
            accepted_wef: None,
            ba_output: None,
            star_published: false,
            voted: BTreeMap::new(),
            shares: None,
            output_at: None,
        }
    }

    /// Creates the dealer-side instance with its `L` polynomials of degree
    /// ≤ `t_s`.
    pub fn new_dealer(dealer: PartyId, params: Params, polynomials: Vec<Polynomial>) -> Self {
        let mut vss = Self::new(dealer, params, polynomials.len());
        vss.dealer_input = Some(polynomials);
        vss
    }

    /// The dealer of this instance.
    pub fn dealer(&self) -> PartyId {
        self.dealer
    }

    fn seg_wps(j: PartyId) -> u32 {
        j as u32
    }
    fn seg_wef(n: usize) -> u32 {
        n as u32
    }
    fn seg_ba(n: usize) -> u32 {
        n as u32 + 1
    }
    fn seg_star(n: usize) -> u32 {
        n as u32 + 2
    }
    fn seg_votes(n: usize) -> u32 {
        n as u32 + 3
    }

    fn wps_share_of(&self, j: PartyId) -> Option<&Vec<Fp>> {
        self.wps.get(j).and_then(|w| w.shares.as_ref())
    }

    /// Casts the consistency vote about party `j` once both this party's rows
    /// and the WPS-share from `Π_WPS^{(j)}` are available.
    fn refresh_votes(&mut self, ctx: &mut Context<'_, Msg>) {
        // Hot path: called after every delivered message/timer of the
        // instance. Work entirely on borrows (the old per-call clone of all
        // `L` row polynomials plus each counterpart's share vector dominated
        // large-`n` runs) and leave immediately once every vote is cast.
        if !self.wps_started || self.my_rows.is_none() || self.voted.len() == self.params.n {
            return;
        }
        for j in 0..self.params.n {
            if self.voted.contains_key(&j) {
                continue;
            }
            let vote = {
                let Some(shares) = self.wps_share_of(j) else {
                    continue;
                };
                let rows = self.my_rows.as_ref().expect("checked above");
                let mut vote = Vote::Ok;
                for (ell, row) in rows.iter().enumerate() {
                    let mine = row.evaluate(alpha(j));
                    if shares.get(ell) != Some(&mine) {
                        vote = Vote::Nok {
                            ell: ell as u32,
                            value: mine,
                        };
                        break;
                    }
                }
                vote
            };
            self.voted.insert(j, ());
            self.votes.add_vote(ctx, j, vote);
        }
    }

    fn dealer_try_publish_wef(&mut self, ctx: &mut Context<'_, Msg>) {
        if ctx.me != self.dealer || !self.distributed {
            return;
        }
        let graph = self.votes.graph_regular();
        let votes = &self.votes;
        let bivariates = &self.bivariates;
        let wef = dealer_compute_wef(
            &self.params,
            &graph,
            |i| votes.regular_noks_of(i),
            |i, j, ell, v| {
                bivariates
                    .get(ell as usize)
                    .is_none_or(|b| v != b.evaluate(alpha(j), alpha(i)))
            },
        );
        if let Some((w, e, f)) = wef {
            let value = BcValue::Wef {
                w: w.iter().map(|&x| x as u32).collect(),
                e: e.iter().map(|&x| x as u32).collect(),
                f: f.iter().map(|&x| x as u32).collect(),
            };
            if let Some(bc) = self.wef_bc.as_mut() {
                ctx.scoped(Self::seg_wef(self.params.n), |ctx| {
                    bc.provide_input(ctx, value)
                });
            }
        }
    }

    fn dealer_try_publish_star(&mut self, ctx: &mut Context<'_, Msg>) {
        if ctx.me != self.dealer || self.star_published || self.ba_output != Some(true) {
            return;
        }
        let graph = self.votes.graph_any();
        if let Some((e, f)) = graph.find_star(self.params.ta, None) {
            self.star_published = true;
            let value = BcValue::Star {
                e: e.iter().map(|&x| x as u32).collect(),
                f: f.iter().map(|&x| x as u32).collect(),
            };
            let mut acast = Acast::new_sender(self.dealer, self.params.n, self.params.ts, value);
            ctx.scoped(Self::seg_star(self.params.n), |ctx| acast.init(ctx));
            self.star_acast = Some(acast);
        }
    }

    fn try_output(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.shares.is_some() {
            return;
        }
        match self.ba_output {
            Some(false) => {
                let wef = self.accepted_wef.clone().or_else(|| {
                    self.wef_bc
                        .as_ref()
                        .and_then(|bc| bc.value())
                        .and_then(decode_wef)
                });
                let Some((w, _e, f)) = wef else { return };
                self.output_via(ctx, &w, &f);
            }
            Some(true) => {
                let Some((e, f)) = self
                    .star_acast
                    .as_ref()
                    .and_then(|a| a.output.as_ref())
                    .and_then(decode_star)
                else {
                    return;
                };
                if !self.votes.graph_any().is_star(self.params.ta, &e, &f, None) {
                    return;
                }
                self.output_via(ctx, &f, &f);
            }
            None => {}
        }
    }

    /// Outputs directly if a member of `direct_set` holding its rows,
    /// otherwise by interpolating the WPS-shares obtained in the instances of
    /// at least `t_s + 1` parties of `support_set`.
    fn output_via(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        direct_set: &[PartyId],
        support_set: &[PartyId],
    ) {
        let me = ctx.me;
        if direct_set.contains(&me) {
            if let Some(rows) = &self.my_rows {
                self.shares = Some(rows.iter().map(|r| r.constant_term()).collect());
                self.output_at = Some(ctx.now);
                return;
            }
        }
        let ts = self.params.ts;
        let support: Vec<PartyId> = support_set
            .iter()
            .copied()
            .filter(|&j| self.wps_share_of(j).is_some())
            .collect();
        if support.len() < ts + 1 {
            return;
        }
        // The same ts + 1 support parties back all L reconstructions, and
        // only the constant term is needed: one cached Lagrange-at-zero
        // vector from the shared evaluation domain turns each reconstruction
        // into an O(ts) dot product (no polynomial is materialised).
        let selected = &support[..ts + 1];
        let lambda = EvalDomain::get(self.params.n).lagrange_at_zero(selected);
        let mut shares = Vec::with_capacity(self.l_count);
        for ell in 0..self.l_count {
            let secret_share: Fp = selected
                .iter()
                .zip(&lambda)
                .map(|(&j, &l)| l * self.wps_share_of(j).expect("filtered")[ell])
                .sum();
            shares.push(secret_share);
        }
        self.shares = Some(shares);
        self.output_at = Some(ctx.now);
    }

    fn check_progress(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(ba) = &self.ba {
            if self.ba_output.is_none() {
                self.ba_output = ba.output;
            }
        }
        self.refresh_votes(ctx);
        self.dealer_try_publish_star(ctx);
        self.try_output(ctx);
    }
}

impl Protocol<Msg> for Vss {
    fn init(&mut self, ctx: &mut Context<'_, Msg>) {
        if ctx.me == self.dealer {
            if let Some(polys) = self.dealer_input.take() {
                self.distributed = true;
                let ts = self.params.ts;
                self.bivariates = polys
                    .iter()
                    .map(|q| mpc_algebra::SymmetricBivariate::embedding(ctx.rng(), ts, q))
                    .collect();
                for i in 0..self.params.n {
                    let rows: Vec<Vec<Fp>> = self
                        .bivariates
                        .iter()
                        .map(|b| b.row(alpha(i)).coeffs().to_vec())
                        .collect();
                    ctx.send(i, Msg::RowPolys(rows));
                }
            }
        }
        let delta = ctx.delta;
        ctx.set_timer(delta, TIMER_START_WPS);
        ctx.set_timer(delta + self.params.t_wps(), TIMER_VOTES);
        ctx.set_timer(delta + self.params.t_wps() + self.params.t_bc(), TIMER_WEF);
        ctx.set_timer(
            delta + self.params.t_wps() + 2 * self.params.t_bc(),
            TIMER_BA,
        );
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: PartyId,
        path: PathSlice<'_>,
        msg: Msg,
    ) {
        let n = self.params.n;
        match path.first() {
            None => {
                if let Msg::RowPolys(rows) = msg {
                    if from == self.dealer && self.my_rows.is_none() {
                        let rows: Vec<Polynomial> =
                            rows.into_iter().map(Polynomial::from_coeffs).collect();
                        self.my_rows = Some(rows.clone());
                        // if our own WPS instance already exists, feed it
                        if self.wps_started {
                            let me = ctx.me;
                            let wps = &mut self.wps[me];
                            ctx.scoped(Self::seg_wps(me), |ctx| {
                                wps.provide_dealer_input(ctx, rows)
                            });
                        }
                        self.check_progress(ctx);
                    }
                }
            }
            Some(&seg) if (seg as usize) < n => {
                if self.wps_started {
                    let wps = &mut self.wps[seg as usize];
                    ctx.scoped(seg, |ctx| wps.on_message(ctx, from, &path[1..], msg));
                } else {
                    self.pending.push((seg, from, msg));
                }
                self.check_progress(ctx);
            }
            Some(&seg) if seg == Self::seg_wef(n) => {
                if let Some(bc) = self.wef_bc.as_mut() {
                    ctx.scoped(seg, |ctx| bc.on_message(ctx, from, &path[1..], msg));
                } else {
                    self.pending.push((seg, from, msg));
                }
                self.check_progress(ctx);
            }
            Some(&seg) if seg == Self::seg_ba(n) => {
                if let Some(ba) = self.ba.as_mut() {
                    ctx.scoped(seg, |ctx| ba.on_message(ctx, from, &path[1..], msg));
                } else {
                    self.pending.push((seg, from, msg));
                }
                self.check_progress(ctx);
            }
            Some(&seg) if seg == Self::seg_star(n) => {
                let dealer = self.dealer;
                let params = self.params;
                let acast = self
                    .star_acast
                    .get_or_insert_with(|| Acast::new(dealer, params.n, params.ts));
                ctx.scoped(seg, |ctx| acast.on_message(ctx, from, &path[1..], msg));
                self.check_progress(ctx);
            }
            Some(&seg) if self.votes.owns_segment(seg) => {
                self.votes.on_message(ctx, from, path, msg);
                self.check_progress(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, path: PathSlice<'_>, id: u64) {
        let n = self.params.n;
        match path.first() {
            None => match id {
                TIMER_START_WPS => {
                    let me = ctx.me;
                    for j in 0..n {
                        let mut w = if j == me {
                            match &self.my_rows {
                                Some(rows) => Wps::new_dealer(j, self.params, rows.clone()),
                                None => Wps::new(j, self.params, self.l_count),
                            }
                        } else {
                            Wps::new(j, self.params, self.l_count)
                        };
                        ctx.scoped(Self::seg_wps(j), |ctx| w.init(ctx));
                        self.wps.push(w);
                    }
                    self.wps_started = true;
                    let pending = std::mem::take(&mut self.pending);
                    for (seg, from, msg) in pending {
                        if (seg as usize) < n {
                            let wps = &mut self.wps[seg as usize];
                            ctx.scoped(seg, |ctx| wps.on_message(ctx, from, &[], msg));
                        } else {
                            self.pending.push((seg, from, msg));
                        }
                    }
                }
                TIMER_VOTES => {
                    self.refresh_votes(ctx);
                    self.votes.start(ctx);
                }
                TIMER_WEF => {
                    let mut bc = Bc::new(self.dealer, self.params.ts, self.params);
                    ctx.scoped(Self::seg_wef(n), |ctx| bc.init(ctx));
                    self.wef_bc = Some(bc);
                    let pending = std::mem::take(&mut self.pending);
                    for (seg, from, msg) in pending {
                        if seg == Self::seg_wef(n) {
                            let bc = self.wef_bc.as_mut().expect("just created");
                            ctx.scoped(seg, |ctx| bc.on_message(ctx, from, &[], msg));
                        } else {
                            self.pending.push((seg, from, msg));
                        }
                    }
                    self.dealer_try_publish_wef(ctx);
                }
                TIMER_BA => {
                    let accepted = self
                        .wef_bc
                        .as_ref()
                        .and_then(|bc| bc.regular_value())
                        .and_then(decode_wef)
                        .filter(|(w, e, f)| accept_wef(&self.params, &self.votes, w, e, f));
                    self.accepted_wef = accepted.clone();
                    let input = accepted.is_none();
                    let mut ba = Ba::new(self.params.ts, self.params, Some(input));
                    ctx.scoped(Self::seg_ba(n), |ctx| ba.init(ctx));
                    self.ba = Some(ba);
                    let pending = std::mem::take(&mut self.pending);
                    for (seg, from, msg) in pending {
                        if seg == Self::seg_ba(n) {
                            let ba = self.ba.as_mut().expect("just created");
                            ctx.scoped(seg, |ctx| ba.on_message(ctx, from, &[], msg));
                        } else {
                            self.pending.push((seg, from, msg));
                        }
                    }
                    self.check_progress(ctx);
                }
                _ => {}
            },
            Some(&seg) if (seg as usize) < n => {
                if self.wps_started {
                    let wps = &mut self.wps[seg as usize];
                    ctx.scoped(seg, |ctx| wps.on_timer(ctx, &path[1..], id));
                }
                self.check_progress(ctx);
            }
            Some(&seg) if seg == Self::seg_wef(n) => {
                if let Some(bc) = self.wef_bc.as_mut() {
                    ctx.scoped(seg, |ctx| bc.on_timer(ctx, &path[1..], id));
                }
                self.check_progress(ctx);
            }
            Some(&seg) if seg == Self::seg_ba(n) => {
                if let Some(ba) = self.ba.as_mut() {
                    ctx.scoped(seg, |ctx| ba.on_timer(ctx, &path[1..], id));
                }
                self.check_progress(ctx);
            }
            Some(&seg) if seg == Self::seg_star(n) => {
                if let Some(acast) = self.star_acast.as_mut() {
                    ctx.scoped(seg, |ctx| acast.on_timer(ctx, &path[1..], id));
                }
            }
            Some(&seg) if self.votes.owns_segment(seg) => {
                self.votes.on_timer(ctx, path, id);
                self.check_progress(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_net::{CorruptionSet, NetConfig, Simulation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_parties(
        params: Params,
        dealer: PartyId,
        polys: Vec<Polynomial>,
    ) -> Vec<Box<dyn Protocol<Msg>>> {
        (0..params.n)
            .map(|i| {
                let v = if i == dealer {
                    Vss::new_dealer(dealer, params, polys.clone())
                } else {
                    Vss::new(dealer, params, polys.len())
                };
                Box::new(v) as Box<dyn Protocol<Msg>>
            })
            .collect()
    }

    #[test]
    fn honest_dealer_sync_correctness() {
        let params = Params::new(4, 1, 0, 10);
        let mut rng = StdRng::seed_from_u64(7);
        let polys = vec![Polynomial::random_with_constant_term(
            &mut rng,
            params.ts,
            Fp::from_u64(31),
        )];
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::none(),
            make_parties(params, 0, polys.clone()),
        );
        let done = sim.run_until(params.t_vss() + params.delta, |s| {
            (0..params.n).all(|i| s.party_as::<Vss>(i).unwrap().shares.is_some())
        });
        assert!(
            done,
            "VSS must complete within T_VSS for an honest dealer in sync network"
        );
        for i in 0..params.n {
            let p = sim.party_as::<Vss>(i).unwrap();
            assert_eq!(p.shares.as_ref().unwrap()[0], polys[0].evaluate(alpha(i)));
            assert!(p.output_at.unwrap() <= params.t_vss());
        }
    }

    #[test]
    fn honest_dealer_async_eventual_correctness() {
        let params = Params::new(5, 1, 1, 10);
        let mut rng = StdRng::seed_from_u64(8);
        let polys = vec![Polynomial::random_with_constant_term(
            &mut rng,
            params.ts,
            Fp::from_u64(64),
        )];
        let corrupt = CorruptionSet::new(vec![3]);
        let mut sim = Simulation::new(
            NetConfig::asynchronous(params.n).with_seed(2),
            corrupt.clone(),
            make_parties(params, 0, polys.clone()),
        );
        let done = sim.run_until(100_000_000, |s| {
            (0..params.n)
                .filter(|&i| corrupt.is_honest(i))
                .all(|i| s.party_as::<Vss>(i).unwrap().shares.is_some())
        });
        assert!(
            done,
            "honest parties must eventually receive VSS shares in async network"
        );
        for i in 0..params.n {
            if corrupt.is_honest(i) {
                let p = sim.party_as::<Vss>(i).unwrap();
                assert_eq!(p.shares.as_ref().unwrap()[0], polys[0].evaluate(alpha(i)));
            }
        }
    }

    #[test]
    fn silent_dealer_produces_no_output() {
        let params = Params::new(4, 1, 0, 10);
        let parties: Vec<Box<dyn Protocol<Msg>>> = (0..params.n)
            .map(|_| Box::new(Vss::new(0, params, 1)) as Box<dyn Protocol<Msg>>)
            .collect();
        let mut sim = Simulation::new(
            NetConfig::synchronous(params.n),
            CorruptionSet::new(vec![0]),
            parties,
        );
        sim.run_to_quiescence(params.t_vss() * 3);
        for i in 1..params.n {
            assert!(sim.party_as::<Vss>(i).unwrap().shares.is_none());
        }
    }
}
